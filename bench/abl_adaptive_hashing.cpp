// Ablation: the Shi & Kencl line of schemes next to AFS and LAPS on the
// Fig. 9 workload — adaptive hashing alone, adaptive + AFD migration (the
// combination the paper's Sec. VI calls "complementary to LAPS"), and LAPS.
//
// Usage: abl_adaptive_hashing [--seconds=S] [--traces=...] [--load=1.05]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/adaptive_hash.h"
#include "baselines/afs.h"
#include "baselines/batch.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  laps::Flags flags(argc, argv);
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.03);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 55));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const double load = flags.get_double("load", 1.05);
  const auto traces = parse_traces(flags.get_string("traces", "caida1,auck1"));
  flags.finish();

  std::printf("=== Adaptive hashing family vs AFS and LAPS (single service, "
              "%.0f%% load, %.2f s) ===\n\n",
              load * 100, options.seconds);
  laps::Table out({"trace", "scheduler", "drop%", "ooo", "migrations",
                   "bundle moves/shifts"});
  for (const std::string& trace : traces) {
    const auto cfg = laps::make_single_service_scenario(trace, options, load);

    auto add = [&](const laps::SimReport& r, double moves) {
      out.add_row({trace, r.scheduler, laps::Table::pct(r.drop_ratio()),
                   laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
                   laps::Table::num(static_cast<std::int64_t>(r.flow_migrations)),
                   laps::Table::num(moves, 0)});
    };
    {
      laps::StaticHashScheduler sched;
      add(laps::run_scenario(cfg, sched), 0);
    }
    {
      laps::AfsScheduler sched;
      const auto r = laps::run_scenario(cfg, sched);
      add(r, r.extra.at("bundle_shifts"));
    }
    {
      laps::BatchScheduler sched;
      const auto r = laps::run_scenario(cfg, sched);
      add(r, r.extra.at("batches_opened"));
    }
    {
      laps::AdaptiveHashScheduler sched;
      const auto r = laps::run_scenario(cfg, sched);
      add(r, r.extra.at("bundle_moves"));
    }
    {
      laps::CombinedAdaptiveScheduler sched;
      const auto r = laps::run_scenario(cfg, sched);
      add(r, r.extra.at("bundle_moves"));
    }
    {
      laps::LapsConfig laps_cfg;
      laps_cfg.num_services = 1;
      laps::LapsScheduler sched(laps_cfg);
      add(laps::run_scenario(cfg, sched), 0);
    }
    std::fprintf(stderr, "done: %s\n", trace.c_str());
  }
  std::cout << out.to_string();
  std::printf("\nReading: adaptive re-weighting fixes slow bundle skew with "
              "few moves; adding AFD migration handles acute elephant "
              "imbalance — together they approach LAPS's single-service "
              "behaviour, which is why the paper calls the scheme "
              "complementary.\n");
  return 0;
}
