// Ablation: the Shi & Kencl line of schemes next to AFS and LAPS on the
// Fig. 9 workload — adaptive hashing alone, adaptive + AFD migration (the
// combination the paper's Sec. VI calls "complementary to LAPS"), and LAPS.
//
// Usage: abl_adaptive_hashing [--seconds=S] [--traces=...] [--load=1.05]
//                             [--jobs=N] [--json=PATH] [--scheduler=LIST]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// The "bundle moves/shifts" column pulls a scheduler-specific counter.
double moves_of(const laps::SimReport& r) {
  for (const char* key : {"bundle_shifts", "batches_opened", "bundle_moves"}) {
    if (auto it = r.extra.find(key); it != r.extra.end()) return it->second;
  }
  return 0;
}

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.03);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 55));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const double load = flags.get_double("load", 1.05);
  const auto traces = parse_traces(flags.get_string("traces", "caida1,auck1"));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  // Registry specs; --scheduler=LIST replaces the whole table.
  const std::vector<laps::SchedulerSpec> schedulers =
      laps::schedulers_or(harness,
                          {
                              laps::make_scheduler_spec("hash"),
                              laps::make_scheduler_spec("afs"),
                              laps::make_scheduler_spec("batch"),
                              laps::make_scheduler_spec("adaptive"),
                              laps::make_scheduler_spec("adaptive-afd"),
                              laps::make_scheduler_spec("laps:services=1"),
                          });

  laps::ExperimentPlan plan(options.seed);
  plan.add_grid(traces, schedulers, {options.seed},
                [options, load](const std::string& trace, std::uint64_t seed) {
                  laps::ScenarioOptions o = options;
                  o.seed = seed;
                  return laps::make_single_service_scenario(trace, o, load);
                },
                laps::observed_runner(harness));

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  std::printf("=== Adaptive hashing family vs AFS and LAPS (single service, "
              "%.0f%% load, %.2f s) ===\n\n",
              load * 100, options.seconds);
  laps::Table out({"trace", "scheduler", "drop%", "ooo", "migrations",
                   "bundle moves/shifts"});
  for (const auto& res : results) {
    const auto& r = res.report;
    out.add_row({res.scenario, res.scheduler,
                 laps::Table::pct(r.drop_ratio()),
                 laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
                 laps::Table::num(static_cast<std::int64_t>(r.flow_migrations)),
                 laps::Table::num(moves_of(r), 0)});
  }
  std::cout << out.to_string();
  std::printf("\nReading: adaptive re-weighting fixes slow bundle skew with "
              "few moves; adding AFD migration handles acute elephant "
              "imbalance — together they approach LAPS's single-service "
              "behaviour, which is why the paper calls the scheme "
              "complementary.\n");

  laps::write_json_artifact(harness.json_path, "abl_adaptive_hashing",
                            results, {{"adaptive_hashing", &out}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
