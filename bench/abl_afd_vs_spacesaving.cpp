// Ablation: cache-based AFD vs the counter-based Space-Saving sketch at
// equal state budgets — the "per-flow counter" line of related work the
// paper contrasts with (Sec. VI). Space-Saving gives deterministic
// guarantees but needs count comparisons on every packet; the AFD is a
// plain cache lookup. We compare top-16 identification quality.
//
// Usage: abl_afd_vs_spacesaving [--packets=N] [--traces=...|all]
//                               [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/afd.h"
#include "cache/space_saving.h"
#include "cache/topk.h"
#include "exp/harness.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"
#include "util/thread_pool.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(laps::Flags& flags) {
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 2'000'000));
  const auto traces =
      parse_traces(flags.get_string("traces", "caida1,caida2,auck1,auck2"));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== AFD vs Space-Saving, top-16 identification (%llu "
              "packets/trace) ===\n\n",
              static_cast<unsigned long long>(packets));

  std::vector<std::pair<std::string, std::size_t>> cells;
  for (const std::string& name : traces) {
    for (std::size_t budget : {128u, 512u}) cells.emplace_back(name, budget);
  }

  const auto rows = laps::parallel_index_map(
      harness.jobs, cells.size(), [&](std::size_t i) {
        const auto& [name, budget] = cells[i];
        laps::AfdConfig cfg;
        cfg.afc_entries = 16;
        cfg.annex_entries = budget - 16;
        laps::Afd afd(cfg);
        laps::SpaceSaving sketch(budget);
        laps::ExactTopK truth;

        auto trace = laps::make_trace(name);
        for (std::uint64_t p = 0; p < packets; ++p) {
          const std::uint64_t key = trace->next()->tuple.key64();
          truth.access(key);
          afd.access(key);
          sketch.access(key);
        }
        std::vector<std::uint64_t> ss_claim;
        for (const auto& counter : sketch.top_k(16)) {
          ss_claim.push_back(counter.key);
        }
        const auto afd_acc =
            laps::score_detector(truth, afd.aggressive_flows(), 16);
        const auto ss_acc = laps::score_detector(truth, ss_claim, 16);
        std::fprintf(stderr, "done: %s/%zu\n", name.c_str(), budget);
        return std::vector<std::string>{
            name, std::to_string(budget),
            laps::Table::pct(afd_acc.false_positive_ratio(), 1),
            laps::Table::pct(afd_acc.recall(16), 1),
            laps::Table::pct(ss_acc.false_positive_ratio(), 1),
            laps::Table::pct(ss_acc.recall(16), 1)};
      });

  laps::Table out({"trace", "budget", "AFD FPR", "AFD recall",
                   "SpaceSaving FPR", "SpaceSaving recall"});
  for (auto row : rows) out.add_row(std::move(row));
  std::cout << out.to_string();
  std::printf("\nExpected: Space-Saving is at least as accurate (it has "
              "deterministic guarantees); the AFD trades a little accuracy "
              "for a cheaper, directly-schedulable cache structure.\n");

  laps::write_json_artifact(harness.json_path, "abl_afd_vs_spacesaving", {},
                            {{"afd_vs_spacesaving", &out}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
