// Ablation: scheduler hash quality — CRC16 (the paper's choice, after Cao
// et al. INFOCOM'00), Toeplitz/RSS, and a naive additive fold — measured as
// (a) bucket uniformity (chi-squared) over the flow population and
// (b) end-to-end drops when used as the static-hash spreading function.
//
// Usage: abl_hash_quality [--flows=N] [--trace=caida1] [--seconds=S]
//                         [--json=PATH]
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/static_hash.h"
#include "exp/harness.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"
#include "util/toeplitz.h"

namespace {

/// StaticHash variant whose bucket index uses a pluggable hash function.
class HashVariantScheduler final : public laps::StaticHashScheduler {
 public:
  enum class Kind { kCrc16, kToeplitz, kNaiveFold };

  explicit HashVariantScheduler(Kind kind) : kind_(kind) {}

  laps::CoreId schedule(const laps::SimPacket& pkt,
                        const laps::NpuView& view) override {
    static_cast<void>(view);
    return table_[index(pkt.tuple)];
  }

  /// Bucket index for a tuple (also used standalone for the uniformity
  /// measurement).
  std::size_t index(const laps::FiveTuple& tuple) const {
    switch (kind_) {
      case Kind::kCrc16: return tuple.crc16() % table_.size();
      case Kind::kToeplitz: return toeplitz_.hash(tuple) % table_.size();
      case Kind::kNaiveFold:
        return laps::naive_fold_hash(tuple) % table_.size();
    }
    return 0;
  }

  std::string name() const override {
    switch (kind_) {
      case Kind::kCrc16: return "CRC16";
      case Kind::kToeplitz: return "Toeplitz";
      case Kind::kNaiveFold: return "NaiveFold";
    }
    return "?";
  }

 private:
  Kind kind_;
  laps::ToeplitzHash toeplitz_;
};

int run(laps::Flags& flags) {
  const auto flows = static_cast<std::size_t>(flags.get_int("flows", 100'000));
  const std::string trace_name = flags.get_string("trace", "caida1");
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.02);
  options.seed = 23;
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  const auto kinds = {HashVariantScheduler::Kind::kCrc16,
                      HashVariantScheduler::Kind::kToeplitz,
                      HashVariantScheduler::Kind::kNaiveFold};

  // (a) Bucket uniformity over the trace's flow population, 16 cores.
  std::printf("=== Hash uniformity over %zu flows of %s (chi^2 across 16 "
              "cores; 15-dof 1%% critical value = 30.6) ===\n\n",
              flows, trace_name.c_str());
  auto spec = laps::trace_spec(trace_name);
  spec.churn_per_packet = 0.0;  // enumerate the rank population directly
  laps::SyntheticTrace trace(spec);

  laps::Table uni({"hash", "chi^2", "max bucket", "min bucket"});
  for (const auto kind : kinds) {
    HashVariantScheduler hasher(kind);
    hasher.attach(16);
    std::vector<double> hist(16, 0);
    const std::size_t n = std::min(flows, spec.num_flows);
    for (std::uint32_t f = 0; f < n; ++f) {
      // index() is over buckets; fold onto cores the way attach() does.
      hist[hasher.index(trace.tuple_of(f)) % 16] += 1;
    }
    const double expected = static_cast<double>(n) / 16.0;
    double chi2 = 0;
    for (double c : hist) chi2 += (c - expected) * (c - expected) / expected;
    uni.add_row({hasher.name(), laps::Table::num(chi2, 1),
                 laps::Table::num(*std::max_element(hist.begin(), hist.end()), 0),
                 laps::Table::num(*std::min_element(hist.begin(), hist.end()), 0)});
  }
  std::cout << uni.to_string() << "\n";

  // (a') Structured population: sequential client addresses behind one
  // gateway, two server ports — the LAN pattern where weak hashes
  // collapse. 16 cores, stride-16 clients alias for the additive fold.
  std::printf("=== Hash uniformity on structured LAN addresses (stride-16 "
              "clients, fixed peer) ===\n\n");
  laps::Table structured({"hash", "chi^2", "max bucket", "min bucket"});
  for (const auto kind : kinds) {
    HashVariantScheduler hasher(kind);
    hasher.attach(16);
    std::vector<double> hist(16, 0);
    constexpr std::size_t kClients = 4096;
    for (std::uint32_t i = 0; i < kClients; ++i) {
      laps::FiveTuple t;
      t.src_ip = 0xC0A80000u + i * 16;  // 192.168.x.y, stride 16
      t.dst_ip = 0x08080808u;
      t.src_port = 32768;
      t.dst_port = (i & 1) ? 443 : 80;
      t.protocol = 6;
      hist[hasher.index(t) % 16] += 1;
    }
    const double expected = kClients / 16.0;
    double chi2 = 0;
    for (double c : hist) chi2 += (c - expected) * (c - expected) / expected;
    structured.add_row(
        {hasher.name(), laps::Table::num(chi2, 1),
         laps::Table::num(*std::max_element(hist.begin(), hist.end()), 0),
         laps::Table::num(*std::min_element(hist.begin(), hist.end()), 0)});
  }
  std::cout << structured.to_string() << "\n";

  // (b) End-to-end drops near capacity with each hash as the spreader.
  std::printf("=== End-to-end static hashing at 95%% load, %s ===\n\n",
              trace_name.c_str());
  const auto cfg =
      laps::make_single_service_scenario(trace_name, options, 0.95);
  laps::Table e2e({"hash", "drop%", "utilization"});
  for (const auto kind : kinds) {
    HashVariantScheduler sched(kind);
    const auto r = laps::run_observed(cfg, sched, harness);
    e2e.add_row({r.scheduler, laps::Table::pct(r.drop_ratio()),
                 laps::Table::pct(r.mean_core_utilization)});
    std::fprintf(stderr, "done: %s\n", r.scheduler.c_str());
  }
  std::cout << e2e.to_string();
  std::printf("\nExpected: CRC16 and Toeplitz are statistically uniform and "
              "perform alike; the additive fold correlates with address "
              "structure and loses more packets at equal load.\n");

  laps::write_json_artifact(harness.json_path, "abl_hash_quality", {},
                            {{"uniformity", &uni}, {"structured", &structured},
                             {"end_to_end", &e2e}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
