// Ablation: incremental (linear) hashing vs a plain full rehash (`% b`)
// when a service's core count changes — quantifying Sec. III-C's "minimal
// disruption" claim. For each transition b -> b+1 we count how much of the
// 16-bit hash space changes buckets under each scheme, and how many
// *packets* of a real trace prefix that represents.
//
// Usage: abl_incremental_hash [--packets=N] [--trace=caida1]
//                             [--json=PATH]
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/map_table.h"
#include "exp/harness.h"
#include "trace/flow_stats.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 500'000));
  const std::string trace_name = flags.get_string("trace", "caida1");
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  // Hash histogram of the trace prefix: packets per 16-bit CRC value.
  std::vector<std::uint64_t> weight(65536, 0);
  auto trace = laps::make_trace(trace_name);
  for (std::uint64_t i = 0; i < packets; ++i) {
    ++weight[trace->next()->tuple.crc16()];
  }

  std::printf("=== Flow disruption when growing a service b -> b+1 "
              "(%s, %llu packets) ===\n\n",
              trace_name.c_str(), static_cast<unsigned long long>(packets));
  laps::Table out({"b -> b+1", "incremental: hash space moved",
                   "incremental: packets moved", "full rehash: hash space",
                   "full rehash: packets"});

  for (std::size_t b = 1; b <= 16; ++b) {
    // Incremental hashing via MapTable.
    std::vector<laps::CoreId> cores;
    for (laps::CoreId c = 0; c < b; ++c) cores.push_back(c);
    laps::MapTable table(cores);
    std::vector<std::size_t> before(65536);
    for (std::uint32_t h = 0; h < 65536; ++h) {
      before[h] = table.bucket_index(static_cast<std::uint16_t>(h));
    }
    table.add_core(static_cast<laps::CoreId>(b));

    std::uint64_t inc_space = 0, inc_packets = 0;
    std::uint64_t full_space = 0, full_packets = 0;
    for (std::uint32_t h = 0; h < 65536; ++h) {
      if (before[h] != table.bucket_index(static_cast<std::uint16_t>(h))) {
        ++inc_space;
        inc_packets += weight[h];
      }
      if (h % b != h % (b + 1)) {
        ++full_space;
        full_packets += weight[h];
      }
    }
    out.add_row({std::to_string(b) + " -> " + std::to_string(b + 1),
                 laps::Table::pct(inc_space / 65536.0, 1),
                 laps::Table::num(static_cast<std::int64_t>(inc_packets)),
                 laps::Table::pct(full_space / 65536.0, 1),
                 laps::Table::num(static_cast<std::int64_t>(full_packets))});
  }
  std::cout << out.to_string();
  std::printf("\nExpected: incremental hashing moves ~1/(2b) of the space "
              "(half of one split bucket) vs ~b/(b+1) for a full rehash — "
              "the reason LAPS can reassign cores without mass flow "
              "migration.\n");

  laps::write_json_artifact(harness.json_path, "abl_incremental_hash", {},
                            {{"incremental_hash", &out}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
