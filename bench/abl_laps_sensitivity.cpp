// Ablation: sensitivity of LAPS to its design knobs on the Fig. 9 workload
// (single service, ~105% load): migration-table capacity, high_thresh,
// AFD promotion threshold, and AFD aging — the parameters DESIGN.md calls
// out as defaults the paper leaves open.
//
// Usage: abl_laps_sensitivity [--seconds=S] [--trace=caida1] [--seed=N]
//                             [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.02);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  const std::string trace = flags.get_string("trace", "caida1");
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  const std::string base = "laps:services=1";

  // Each variant = one (label, registry spec) job over the same scenario —
  // the sweep is written entirely in the --scheduler grammar, so any row
  // can be reproduced standalone with --scheduler=SPEC on any bench.
  std::vector<std::pair<std::string, std::string>> variants;
  variants.emplace_back("defaults", base);
  for (std::size_t cap : {64u, 256u, 4096u}) {
    variants.emplace_back("migration_table=" + std::to_string(cap),
                          base + ",pins=" + std::to_string(cap));
  }
  for (std::uint32_t thresh : {16u, 28u}) {
    variants.emplace_back("high_thresh=" + std::to_string(thresh),
                          base + ",high_th=" + std::to_string(thresh));
  }
  for (std::uint64_t promote : {2u, 32u}) {
    variants.emplace_back("promote_threshold=" + std::to_string(promote),
                          base + ",promote=" + std::to_string(promote));
  }
  // The paper's threshold-only promotion pins far more flows; with it, a
  // small migration table evicts live pins, whose flows bounce back to
  // the hash path and re-migrate — the capacity sensitivity the guarded
  // default hides.
  variants.emplace_back("paper promotion rule", base + ",beat_min=0");
  variants.emplace_back("paper rule + table=128",
                        base + ",beat_min=0,pins=128");
  variants.emplace_back("afd aging every 100k", base + ",aging=100000");
  variants.emplace_back("afd sampling p=1/100", base + ",sample=0.01");

  laps::ExperimentPlan plan(options.seed);
  for (const auto& [label, spec] : variants) {
    const auto make = laps::make_scheduler_spec(spec).make;
    plan.add(label, "LAPS", options.seed,
             [options, trace, make, harness]() -> laps::SimReport {
               const auto cfg =
                   laps::make_single_service_scenario(trace, options, 1.05);
               auto sched = make();
               return laps::run_observed(cfg, *sched, harness);
             });
  }

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  std::printf("=== LAPS sensitivity on %s (single service, 105%% load, "
              "%.2f s) ===\n\n",
              trace.c_str(), options.seconds);
  laps::Table out({"variant", "drop%", "ooo", "migrations",
                   "aggressive pins", "afd promotions"});
  for (const auto& res : results) {
    const auto& r = res.report;
    out.add_row(
        {res.scenario, laps::Table::pct(r.drop_ratio()),
         laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
         laps::Table::num(static_cast<std::int64_t>(r.flow_migrations)),
         laps::Table::num(r.extra.at("aggressive_migrations"), 0),
         laps::Table::num(r.extra.at("afd_promotions"), 0)});
  }
  std::cout << out.to_string();
  std::printf("\nReading: drop%% is capacity; ooo/migrations are the "
              "ordering cost. Defaults should sit at or near the best "
              "corner; tiny migration tables re-migrate evicted pins and "
              "inflate ooo.\n");

  laps::write_json_artifact(harness.json_path, "abl_laps_sensitivity",
                            results, {{"sensitivity", &out}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
