// Ablation: sensitivity of LAPS to its design knobs on the Fig. 9 workload
// (single service, ~105% load): migration-table capacity, high_thresh,
// AFD promotion threshold, and AFD aging — the parameters DESIGN.md calls
// out as defaults the paper leaves open.
//
// Usage: abl_laps_sensitivity [--seconds=S] [--trace=caida1] [--seed=N]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/laps.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

void run_and_add(laps::Table& out, const std::string& label,
                 const laps::LapsConfig& laps_cfg,
                 const laps::ScenarioConfig& cfg) {
  laps::LapsScheduler sched(laps_cfg);
  const auto r = laps::run_scenario(cfg, sched);
  out.add_row({label, laps::Table::pct(r.drop_ratio()),
               laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
               laps::Table::num(static_cast<std::int64_t>(r.flow_migrations)),
               laps::Table::num(r.extra.at("aggressive_migrations"), 0),
               laps::Table::num(r.extra.at("afd_promotions"), 0)});
  std::fprintf(stderr, "done: %s\n", label.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  laps::Flags flags(argc, argv);
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.02);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  const std::string trace = flags.get_string("trace", "caida1");
  flags.finish();

  const auto cfg = laps::make_single_service_scenario(trace, options, 1.05);
  laps::LapsConfig base;
  base.num_services = 1;

  std::printf("=== LAPS sensitivity on %s (single service, 105%% load, "
              "%.2f s) ===\n\n",
              trace.c_str(), options.seconds);
  laps::Table out({"variant", "drop%", "ooo", "migrations",
                   "aggressive pins", "afd promotions"});

  run_and_add(out, "defaults", base, cfg);

  for (std::size_t cap : {64u, 256u, 4096u}) {
    laps::LapsConfig c = base;
    c.migration_table_capacity = cap;
    run_and_add(out, "migration_table=" + std::to_string(cap), c, cfg);
  }
  for (std::uint32_t thresh : {16u, 28u}) {
    laps::LapsConfig c = base;
    c.high_thresh = thresh;
    run_and_add(out, "high_thresh=" + std::to_string(thresh), c, cfg);
  }
  for (std::uint64_t promote : {2u, 32u}) {
    laps::LapsConfig c = base;
    c.afd.promote_threshold = promote;
    run_and_add(out, "promote_threshold=" + std::to_string(promote), c, cfg);
  }
  {
    // The paper's threshold-only promotion pins far more flows; with it, a
    // small migration table evicts live pins, whose flows bounce back to
    // the hash path and re-migrate — the capacity sensitivity the guarded
    // default hides.
    laps::LapsConfig c = base;
    c.afd.require_beat_afc_min = false;
    run_and_add(out, "paper promotion rule", c, cfg);
    c.migration_table_capacity = 128;
    run_and_add(out, "paper rule + table=128", c, cfg);
  }
  {
    laps::LapsConfig c = base;
    c.afd.aging_period = 100'000;
    run_and_add(out, "afd aging every 100k", c, cfg);
  }
  {
    laps::LapsConfig c = base;
    c.afd.sample_probability = 0.01;
    run_and_add(out, "afd sampling p=1/100", c, cfg);
  }
  std::cout << out.to_string();
  std::printf("\nReading: drop%% is capacity; ooo/migrations are the "
              "ordering cost. Defaults should sit at or near the best "
              "corner; tiny migration tables re-migrate evicted pins and "
              "inflate ooo.\n");
  return 0;
}
