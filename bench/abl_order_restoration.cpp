// Ablation: order *preservation* (LAPS) vs order *restoration* (Shi et al.
// [35] — spray packets freely, reorder at egress). The paper argues
// restoration has "considerable storage overheads, and even worse, packets
// of the same flow can be processed on different cores, destroying flow
// locality"; this bench measures both costs.
//
// Usage: abl_order_restoration [--seconds=S] [--trace=caida1] [--load=1.0]
//                              [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <memory>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.03);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const double load = flags.get_double("load", 0.9);
  const std::string trace = flags.get_string("trace", "caida1");
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  auto scenario = [options, trace, load](bool restore) {
    auto cfg = laps::make_single_service_scenario(trace, options, load);
    cfg.restore_order = restore;
    return cfg;
  };

  laps::ExperimentPlan plan(options.seed);
  plan.add("LAPS (preserve order)", "LAPS", options.seed,
           [scenario, harness]() -> laps::SimReport {
             auto sched = laps::make_scheduler("laps:services=1");
             return laps::run_observed(scenario(false), *sched, harness);
           });
  plan.add("FCFS, no buffer (reorders!)", "FCFS", options.seed,
           [scenario, harness]() -> laps::SimReport {
             auto sched = laps::make_scheduler("fcfs");
             return laps::run_observed(scenario(false), *sched, harness);
           });
  plan.add("FCFS + reorder buffer", "FCFS", options.seed,
           [scenario, harness]() -> laps::SimReport {
             auto sched = laps::make_scheduler("fcfs");
             return laps::run_observed(scenario(true), *sched, harness);
           });

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  std::printf("=== Order preservation (LAPS) vs restoration (FCFS + egress "
              "reorder buffer), %s at %.0f%% load ===\n\n",
              trace.c_str(), load * 100);
  laps::Table out({"scheme", "wire ooo", "drop%", "fm penalties",
                   "rob peak pkts", "rob buffered", "rob mean hold us",
                   "p99 latency us"});
  for (const auto& res : results) {
    const auto& r = res.report;
    const bool rob = r.extra.count("rob_max_occupancy") > 0;
    out.add_row(
        {res.scenario,
         laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
         laps::Table::pct(r.drop_ratio()),
         laps::Table::num(static_cast<std::int64_t>(r.fm_penalties)),
         rob ? laps::Table::num(r.extra.at("rob_max_occupancy"), 0) : "-",
         rob ? laps::Table::num(r.extra.at("rob_buffered_packets"), 0) : "-",
         rob ? laps::Table::num(r.extra.at("rob_mean_held_us"), 2) : "-",
         laps::Table::num(laps::to_us(r.latency_ns.quantile(0.99)), 1)});
  }
  std::cout << out.to_string();
  std::printf(
      "\nReading: the buffer restores order perfectly (wire ooo = 0) but "
      "pays output storage (peak pkts) and hold latency, and the spraying "
      "still destroys flow locality (fm penalties) — the paper's Sec. VI "
      "argument, quantified.\n");

  laps::write_json_artifact(harness.json_path, "abl_order_restoration",
                            results, {{"order_restoration", &out}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
