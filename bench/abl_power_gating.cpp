// Ablation / extension: power gating of surplus cores (the paper's Sec. I
// motivation via traffic-aware power management [20],[29]). Runs LAPS with
// and without gating across load levels and reports packet cost vs energy
// saved, using a simple per-core power model:
//
//   P(core) = busy * P_active + parked * P_sleep + otherwise * P_idle
//
// Usage: abl_power_gating [--seconds=S] [--trace=caida1] [--cores=16]
//                         [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

constexpr double kActiveW = 1.00;  // per-core, normalized
constexpr double kIdleW = 0.35;    // clock running, no work
constexpr double kSleepW = 0.03;   // power-gated

double energy(const laps::SimReport& r, std::size_t cores, double seconds) {
  const double total = static_cast<double>(cores) * seconds;
  const double busy = r.mean_core_utilization * total;
  const double parked = r.extra.count("parked_core_us")
                            ? r.extra.at("parked_core_us") / 1e6
                            : 0.0;
  const double idle = total - busy - parked;
  return busy * kActiveW + idle * kIdleW + parked * kSleepW;
}

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.05);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const std::string trace = flags.get_string("trace", "caida1");
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Power gating: packet cost vs energy, %zu cores, %s, "
              "%.2f s ===\n",
              options.num_cores, trace.c_str(), options.seconds);
  std::printf("Power model (normalized/core): active %.2f, idle %.2f, "
              "sleep %.2f\n\n",
              kActiveW, kIdleW, kSleepW);

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  laps::ExperimentPlan plan(options.seed);
  for (double load : {0.2, 0.4, 0.6, 0.8}) {
    for (bool gating : {false, true}) {
      plan.add("load=" + laps::Table::pct(load, 0), gating ? "on" : "off",
               options.seed, [options, trace, load, gating, harness]() {
                 const auto cfg = laps::make_single_service_scenario(
                     trace, options, load);
                 auto sched = laps::make_scheduler(
                     gating ? "laps:services=1,power=1" : "laps:services=1");
                 return laps::run_observed(cfg, *sched, harness);
               });
    }
  }

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  laps::Table out({"load", "gating", "drop%", "parked core-s", "sleep/wake",
                   "energy (core-s eq)", "energy saved"});
  double baseline_energy = 0.0;
  for (const auto& res : results) {
    const auto& r = res.report;
    const bool gating = res.scheduler == "on";
    const double e = energy(r, options.num_cores, options.seconds);
    if (!gating) baseline_energy = e;  // "off" precedes "on" in plan order
    const double parked_s = gating ? r.extra.at("parked_core_us") / 1e6 : 0;
    out.add_row(
        {res.scenario, res.scheduler,
         laps::Table::pct(r.drop_ratio()), laps::Table::num(parked_s, 4),
         gating ? laps::Table::num(r.extra.at("sleep_events"), 0) + "/" +
                      laps::Table::num(r.extra.at("wake_events"), 0)
                : "-",
         laps::Table::num(e, 4),
         gating ? laps::Table::pct(1.0 - e / baseline_energy) : "-"});
  }
  std::cout << out.to_string();
  std::printf(
      "\nReading: gating pays off well below ~30%% utilization (double-digit "
      "savings, no packet cost). At mid/high load consolidation keeps "
      "probing, and the map-table churn of each park/wake cycle costs more "
      "FM-penalty work than the brief sleep saves — deploy with a "
      "utilization-gated enable, exactly the conclusion of the "
      "traffic-aware power-management literature the paper cites.\n");

  laps::write_json_artifact(harness.json_path, "abl_power_gating", results,
                            {{"power_gating", &out}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
