// Ablation / extension: power gating of surplus cores (the paper's Sec. I
// motivation via traffic-aware power management [20],[29]). Runs LAPS with
// and without gating across load levels and reports packet cost vs energy
// saved, using a simple per-core power model:
//
//   P(core) = busy * P_active + parked * P_sleep + otherwise * P_idle
//
// Usage: abl_power_gating [--seconds=S] [--trace=caida1] [--cores=16]
#include <cstdio>
#include <iostream>

#include "core/laps.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

constexpr double kActiveW = 1.00;  // per-core, normalized
constexpr double kIdleW = 0.35;    // clock running, no work
constexpr double kSleepW = 0.03;   // power-gated

double energy(const laps::SimReport& r, std::size_t cores, double seconds) {
  const double total = static_cast<double>(cores) * seconds;
  const double busy = r.mean_core_utilization * total;
  const double parked = r.extra.count("parked_core_us")
                            ? r.extra.at("parked_core_us") / 1e6
                            : 0.0;
  const double idle = total - busy - parked;
  return busy * kActiveW + idle * kIdleW + parked * kSleepW;
}

}  // namespace

int main(int argc, char** argv) {
  laps::Flags flags(argc, argv);
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.05);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const std::string trace = flags.get_string("trace", "caida1");
  flags.finish();

  std::printf("=== Power gating: packet cost vs energy, %zu cores, %s, "
              "%.2f s ===\n",
              options.num_cores, trace.c_str(), options.seconds);
  std::printf("Power model (normalized/core): active %.2f, idle %.2f, "
              "sleep %.2f\n\n",
              kActiveW, kIdleW, kSleepW);

  laps::Table out({"load", "gating", "drop%", "parked core-s", "sleep/wake",
                   "energy (core-s eq)", "energy saved"});
  for (double load : {0.2, 0.4, 0.6, 0.8}) {
    const auto cfg =
        laps::make_single_service_scenario(trace, options, load);
    double baseline_energy = 0.0;
    for (bool gating : {false, true}) {
      laps::LapsConfig laps_cfg;
      laps_cfg.num_services = 1;
      laps_cfg.power_gating = gating;
      laps::LapsScheduler sched(laps_cfg);
      const auto r = laps::run_scenario(cfg, sched);
      const double e = energy(r, options.num_cores, options.seconds);
      if (!gating) baseline_energy = e;
      const double parked_s = gating ? r.extra.at("parked_core_us") / 1e6 : 0;
      out.add_row(
          {laps::Table::pct(load, 0), gating ? "on" : "off",
           laps::Table::pct(r.drop_ratio()), laps::Table::num(parked_s, 4),
           gating ? laps::Table::num(r.extra.at("sleep_events"), 0) + "/" +
                        laps::Table::num(r.extra.at("wake_events"), 0)
                  : "-",
           laps::Table::num(e, 4),
           gating ? laps::Table::pct(1.0 - e / baseline_energy) : "-"});
    }
    std::fprintf(stderr, "done: load %.1f\n", load);
  }
  std::cout << out.to_string();
  std::printf(
      "\nReading: gating pays off well below ~30%% utilization (double-digit "
      "savings, no packet cost). At mid/high load consolidation keeps "
      "probing, and the map-table churn of each park/wake cycle costs more "
      "FM-penalty work than the brief sleep saves — deploy with a "
      "utilization-gated enable, exactly the conclusion of the "
      "traffic-aware power-management literature the paper cites.\n");
  return 0;
}
