// Ablation: the paper's two-level AFD (annex filter + AFC) vs a
// single-level ElephantTrap-style cache (Lu et al., the Sec. VI comparison:
// "such a scheme can result in large number of false positives due to many
// mice flows"). Both detectors are scored against exact top-16 analysis at
// several state budgets, on CAIDA-like and Auckland-like traces.
//
// Usage: abl_single_vs_two_level [--packets=N] [--traces=...|all]
//                                [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/afd.h"
#include "cache/elephant_trap.h"
#include "cache/topk.h"
#include "exp/harness.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"
#include "util/thread_pool.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(laps::Flags& flags) {
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 2'000'000));
  const auto traces =
      parse_traces(flags.get_string("traces", "caida1,auck1"));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Single-level cache vs two-level AFD, top-16 FPR (%llu "
              "packets/trace) ===\n",
              static_cast<unsigned long long>(packets));
  std::printf("State budgets compare equal total entries: trap(N) vs "
              "AFD(16 AFC + N-16 annex).\n\n");

  std::vector<std::pair<std::string, std::size_t>> cells;
  for (const std::string& name : traces) {
    for (std::size_t entries : {16u, 64u, 256u, 1024u}) {
      cells.emplace_back(name, entries);
    }
  }

  const auto rows = laps::parallel_index_map(
      harness.jobs, cells.size(), [&](std::size_t i) {
        const auto& [name, entries] = cells[i];
        laps::ElephantTrap trap(entries, 16);
        laps::AfdConfig cfg;
        cfg.afc_entries = 16;
        cfg.annex_entries = entries > 16 ? entries - 16 : 16;
        laps::Afd afd(cfg);
        laps::AfdConfig guarded_cfg = cfg;
        guarded_cfg.require_beat_afc_min = true;
        laps::Afd guarded(guarded_cfg);
        laps::ExactTopK truth;

        auto trace = laps::make_trace(name);
        for (std::uint64_t p = 0; p < packets; ++p) {
          const std::uint64_t key = trace->next()->tuple.key64();
          truth.access(key);
          trap.access(key);
          afd.access(key);
          guarded.access(key);
        }
        const auto trap_acc = laps::score_detector(truth, trap.elephants(), 16);
        const auto afd_acc =
            laps::score_detector(truth, afd.aggressive_flows(), 16);
        const auto guarded_acc =
            laps::score_detector(truth, guarded.aggressive_flows(), 16);
        std::fprintf(stderr, "done: %s/%zu\n", name.c_str(), entries);
        return std::vector<std::string>{
            name, std::to_string(entries),
            laps::Table::pct(trap_acc.false_positive_ratio(), 1),
            laps::Table::pct(afd_acc.false_positive_ratio(), 1),
            laps::Table::pct(guarded_acc.false_positive_ratio(), 1)};
      });

  laps::Table out({"trace", "entries", "single-level FPR",
                   "two-level FPR", "two-level+guard FPR"});
  for (auto row : rows) out.add_row(std::move(row));
  std::cout << out.to_string();
  std::printf(
      "\nReading: at 16 entries the single cache is the paper's comparator "
      "(Lu et al.)\nand suffers mice churn; the AFD removes that with a "
      "16-entry decision\nstructure. A large single LFU also converges — "
      "but then the migration\ndecision must search the full structure, "
      "not 16 entries.\n");

  laps::write_json_artifact(harness.json_path, "abl_single_vs_two_level", {},
                            {{"single_vs_two_level", &out}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
