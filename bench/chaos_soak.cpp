// Chaos soak: a seeded grid of randomized fault schedules (core failures,
// recoveries, slowdowns, stalls, collision bursts, flash crowds) driven
// through the paper's Table VI scenarios, one scheduler per schedule.
//
// Every schedule is a self-contained job that runs its simulation TWICE and
// asserts the hard invariants the fault engine guarantees:
//   conservation   offered == delivered + dropped, nothing in flight at end
//   dead routing   no packet was ever enqueued to a dead core
//                  (fault_dead_route_drops == 0: every scheduler degrades)
//   reordering     flows that never migrated depart in order even across
//                  failures (flush drops are losses, not reorders)
//   determinism    both runs of the same seed produce byte-identical report
//                  JSON and fault timelines
// Any violation throws, which fails the binary with a nonzero exit — CI
// runs this under ASan/UBSan via scripts/check_sanitize.sh --chaos.
//
// Usage: chaos_soak [--schedules=N] [--seed=N] [--seconds=S] [--cores=N]
//                   [--jobs=N] [--json=PATH] [--scheduler=LIST]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/fault.h"
#include "sim/flow_audit.h"
#include "sim/report_json.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

/// Deterministic per-schedule outcome collected from the job's probes.
/// Indexed by schedule, so the table is identical for any --jobs value.
struct ScheduleOutcome {
  std::uint64_t fault_events = 0;
  std::uint64_t flush_drops = 0;
  std::size_t recoveries = 0;           ///< core_down events observed
  std::size_t recovered = 0;            ///< of those, back up before the end
  laps::TimeNs max_outage_ns = 0;
  laps::TimeNs max_reintegrate_ns = 0;  ///< up -> first dispatch on the core
};

[[noreturn]] void fail(std::size_t schedule, std::uint64_t seed,
                       const std::string& spec, const std::string& why) {
  throw std::runtime_error("chaos_soak: schedule " + std::to_string(schedule) +
                           " (seed " + std::to_string(seed) + ", faults '" +
                           spec + "'): " + why);
}

int run(laps::Flags& flags) {
  const std::int64_t schedules = flags.get_int("schedules", 60);
  if (schedules < 1) throw std::invalid_argument("--schedules must be >= 1");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 7));
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.01);
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  // Registry specs; --scheduler=LIST replaces the rotation (each schedule
  // still picks one scheduler round-robin from the table).
  const std::vector<laps::SchedulerSpec> schedulers =
      laps::schedulers_or(harness, {
                                       laps::make_scheduler_spec("fcfs"),
                                       laps::make_scheduler_spec("hash"),
                                       laps::make_scheduler_spec("afs"),
                                       laps::make_scheduler_spec("laps"),
                                   });
  const auto scenario_ids = laps::paper_scenario_ids();

  // Fault plans are generated up front so the summary table can show each
  // schedule's spec; the jobs capture their plan by shared_ptr.
  laps::RandomFaultParams fault_params;
  fault_params.horizon = laps::from_seconds(options.seconds);
  fault_params.num_cores = options.num_cores;
  std::vector<std::shared_ptr<const laps::FaultPlan>> plans;
  std::vector<std::uint64_t> seeds;
  plans.reserve(static_cast<std::size_t>(schedules));
  for (std::int64_t i = 0; i < schedules; ++i) {
    const std::uint64_t s = laps::ExperimentPlan::derive_seed(
        seed, static_cast<std::uint64_t>(i));
    seeds.push_back(s);
    plans.push_back(std::make_shared<const laps::FaultPlan>(
        laps::random_fault_plan(s, fault_params)));
  }

  std::vector<ScheduleOutcome> outcomes(static_cast<std::size_t>(schedules));

  laps::ExperimentPlan plan(seed);
  for (std::int64_t i = 0; i < schedules; ++i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    const std::string scenario = scenario_ids[idx % scenario_ids.size()];
    const laps::SchedulerSpec& spec = schedulers[idx % schedulers.size()];
    const std::uint64_t job_seed = seeds[idx];
    auto faults = plans[idx];
    auto make = spec.make;
    laps::ScenarioOptions opts = options;
    opts.seed = job_seed;
    ScheduleOutcome* outcome = &outcomes[idx];

    plan.add(scenario, spec.name, job_seed, [=]() -> laps::SimReport {
      auto run_once = [&](laps::FlowAuditProbe& audit,
                          laps::FaultProbe& fault_probe,
                          std::string* timeline_json) -> laps::SimReport {
        laps::ScenarioConfig cfg = laps::make_paper_scenario(scenario, opts);
        cfg.faults = faults;
        if (harness.event_queue) cfg.event_queue = *harness.event_queue;
        auto scheduler = make();
        laps::ProbeSet extra;
        extra.add(&audit);
        extra.add(&fault_probe);
        laps::SimReport report = laps::run_scenario(cfg, *scheduler, extra);
        if (timeline_json != nullptr) *timeline_json = fault_probe.to_json();
        return report;
      };

      laps::FlowAuditProbe audit(laps::FlowAuditProbe::Options{16, 0});
      laps::FaultProbe fault_probe;
      std::string timeline;
      laps::SimReport report = run_once(audit, fault_probe, &timeline);
      const std::string spec_str = faults->to_spec();

      // Conservation: the engine drains to completion, so every offered
      // packet is accounted as delivered or dropped — core failures
      // included (flush and dead-route drops are drops, not losses of
      // accounting).
      if (report.offered != report.delivered + report.dropped) {
        fail(idx, job_seed, spec_str,
             "conservation violated: offered " +
                 std::to_string(report.offered) + " != delivered " +
                 std::to_string(report.delivered) + " + dropped " +
                 std::to_string(report.dropped));
      }
      if (report.in_flight_at_end != 0) {
        fail(idx, job_seed, spec_str,
             std::to_string(report.in_flight_at_end) +
                 " packets in flight at end");
      }

      // Graceful degradation: every scheduler reroutes around dead cores,
      // so the engine's dead-core backstop never fires.
      const auto dead = report.extra.find("fault_dead_route_drops");
      if (dead != report.extra.end() && dead->second != 0) {
        fail(idx, job_seed, spec_str,
             std::to_string(static_cast<std::uint64_t>(dead->second)) +
                 " packets routed to a dead core");
      }

      // Bounded reordering: a flow that never changed cores departs in
      // order, whatever faults hit its core (runs are order-preserving,
      // restore_order=false).
      for (const auto& entry : audit.sorted_entries()) {
        if (entry.migrations == 0 && entry.out_of_order != 0) {
          fail(idx, job_seed, spec_str,
               "flow " + std::to_string(entry.key) + " never migrated but " +
                   std::to_string(entry.out_of_order) + " departures were "
                   "out of order");
        }
      }

      // Determinism: the same seed replays bit-identically — reports and
      // fault timelines alike.
      {
        laps::FlowAuditProbe audit2(laps::FlowAuditProbe::Options{16, 0});
        laps::FaultProbe fault_probe2;
        std::string timeline2;
        const laps::SimReport report2 =
            run_once(audit2, fault_probe2, &timeline2);
        if (laps::report_to_json(report) != laps::report_to_json(report2)) {
          fail(idx, job_seed, spec_str,
               "rerun of the same seed produced a different report");
        }
        if (timeline != timeline2) {
          fail(idx, job_seed, spec_str,
               "rerun of the same seed produced a different fault timeline");
        }
      }

      // Built locally and assigned whole: a cell retried after a transient
      // failure (e.g. --runner-chaos) must not double-accumulate.
      ScheduleOutcome local;
      const auto events = report.extra.find("fault_events");
      local.fault_events = events != report.extra.end()
                               ? static_cast<std::uint64_t>(events->second)
                               : 0;
      local.flush_drops = fault_probe.flush_drops();
      for (const auto& r : fault_probe.recoveries()) {
        ++local.recoveries;
        if (r.outage_ns() >= 0) {
          ++local.recovered;
          if (r.outage_ns() > local.max_outage_ns) {
            local.max_outage_ns = r.outage_ns();
          }
        }
        if (r.reintegrate_ns() > local.max_reintegrate_ns) {
          local.max_reintegrate_ns = r.reintegrate_ns();
        }
      }
      *outcome = local;
      return report;
    });
  }

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  std::printf("=== chaos_soak: %lld fault schedules, %zu cores, %.3f s, "
              "seed %llu ===\n",
              static_cast<long long>(schedules), options.num_cores,
              options.seconds, static_cast<unsigned long long>(seed));
  laps::Table table({"schedule", "scenario", "scheduler", "faults",
                     "offered", "dropped", "flushed", "recovered",
                     "max outage us", "max reint us"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].report;
    const ScheduleOutcome& o = outcomes[i];
    table.add_row(
        {std::to_string(i), results[i].scenario, results[i].scheduler,
         laps::Table::num(static_cast<std::int64_t>(o.fault_events)),
         laps::Table::num(static_cast<std::int64_t>(r.offered)),
         laps::Table::num(static_cast<std::int64_t>(r.dropped)),
         laps::Table::num(static_cast<std::int64_t>(o.flush_drops)),
         std::to_string(o.recovered) + "/" + std::to_string(o.recoveries),
         laps::Table::num(laps::to_us(o.max_outage_ns), 1),
         laps::Table::num(laps::to_us(o.max_reintegrate_ns), 1)});
  }
  std::cout << table.to_string();

  laps::write_json_artifact(harness.json_path, "chaos_soak", results,
                            {{"chaos", &table}});
  // Invariant violations throw inside jobs; the resilient runner contains
  // them as per-cell errors, so the binary's verdict comes from the results
  // (grid_exit_code lists every failed schedule and returns nonzero).
  const int rc = laps::grid_exit_code(runner, results);
  if (rc == 0) {
    std::printf("\nchaos_soak: all %zu schedules passed conservation, "
                "dead-core routing, non-migrated-flow ordering, and "
                "bit-identical replay.\n",
                results.size());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
