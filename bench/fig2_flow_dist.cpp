// Reproduces paper Fig. 2: "Distribution of flow sizes in real network
// traces. Rank 1 is the flow with the largest flow size." — a log-log
// rank/size series per trace, plus the Tables I/II trace inventory realized
// by the synthetic registry.
//
// Usage: fig2_flow_dist [--packets=N] [--traces=name,name,...|all]
//                       [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "trace/flow_stats.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"
#include "util/thread_pool.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(laps::Flags& flags) {
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 1'000'000));
  const auto traces =
      parse_traces(flags.get_string("traces", "caida1,caida2,auck1,auck2"));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Tables I/II: trace registry (synthetic substitutes; see "
              "DESIGN.md) ===\n");
  laps::Table inventory(
      {"trace", "flows", "zipf_alpha", "burstiness", "seed"});
  for (const std::string& name : laps::trace_registry_names()) {
    const auto spec = laps::trace_spec(name);
    inventory.add_row({name,
                       laps::Table::num(static_cast<std::int64_t>(spec.num_flows)),
                       laps::Table::num(spec.zipf_alpha, 2),
                       laps::Table::num(spec.burstiness, 2),
                       laps::Table::num(static_cast<std::int64_t>(spec.seed))});
  }
  std::cout << inventory.to_string() << "\n";

  std::printf("=== Fig. 2: flow-size distribution (%llu packets/trace) ===\n",
              static_cast<unsigned long long>(packets));
  // One independent analysis pass per trace.
  std::vector<laps::FlowStatsAnalyzer> stats = laps::parallel_index_map(
      harness.jobs, traces.size(), [&](std::size_t t) {
        laps::FlowStatsAnalyzer analyzer;
        auto trace = laps::make_trace(traces[t]);
        analyzer.consume(*trace, packets);
        std::fprintf(stderr, "done: fig2/%s\n", traces[t].c_str());
        return analyzer;
      });
  // Log-spaced ranks, as in the paper's log-log axes.
  std::vector<std::size_t> ranks;
  for (std::size_t r = 1; r <= 100'000; r *= 10) {
    ranks.push_back(r);
    if (r * 3 <= 100'000) ranks.push_back(r * 3);
  }
  laps::Table out([&] {
    std::vector<std::string> headers{"rank"};
    for (const auto& name : traces) headers.push_back(name + " pkts");
    return headers;
  }());
  for (std::size_t rank : ranks) {
    std::vector<std::string> row{laps::Table::num(static_cast<std::int64_t>(rank))};
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const auto ranked = stats[t].by_rank();
      row.push_back(rank <= ranked.size()
                        ? laps::Table::num(static_cast<std::int64_t>(
                              ranked[rank - 1].packets))
                        : "-");
    }
    out.add_row(std::move(row));
  }
  std::cout << out.to_string() << "\n";

  std::printf("=== Head concentration (the Sec. III-A premise) ===\n");
  laps::Table head({"trace", "distinct flows", "top-16 share", "top-100 share"});
  for (std::size_t t = 0; t < traces.size(); ++t) {
    head.add_row({traces[t],
                  laps::Table::num(static_cast<std::int64_t>(
                      stats[t].distinct_flows())),
                  laps::Table::pct(stats[t].top_share(16)),
                  laps::Table::pct(stats[t].top_share(100))});
  }
  std::cout << head.to_string();

  laps::write_json_artifact(
      harness.json_path, "fig2_flow_dist", {},
      {{"inventory", &inventory}, {"fig2", &out}, {"head", &head}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
