// Reproduces paper Fig. 7 (a: packets dropped, b: cold-cache packets,
// c: out-of-order packets) for LAPS vs FCFS vs AFS across the traffic
// scenarios T1-T8 of Table VI, plus the Table IV parameter sets and the
// Table V trace groups used to build them.
//
// The paper simulates 60 s; the default here is 0.25 s so the whole bench
// suite stays fast — pass --seconds=60 for the full run. Shapes (who wins,
// by what factor) are stable well before 1 s; the only horizon effect is
// LAPS's start-up core-allocation transient, which shrinks relative to run
// length.
//
// Usage: fig7_scheduler_comparison [--seconds=S] [--seed=N] [--cores=N]
//                                  [--scenarios=T1,T5|all] [--jobs=N]
//                                  [--json=PATH] [--scheduler=LIST]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

std::vector<std::string> parse_list(const std::string& arg,
                                    std::vector<std::string> all) {
  if (arg == "all") return all;
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.25);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2013));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const auto scenario_ids = parse_list(flags.get_string("scenarios", "all"),
                                       laps::paper_scenario_ids());
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Table IV: Holt-Winters parameter sets (a,b in Mpps, m in "
              "s; pre-calibration) ===\n");
  laps::Table t4({"set", "service", "a", "b", "C", "m", "sigma"});
  for (int set : {1, 2}) {
    const auto params = laps::table4_params(set);
    for (std::size_t s = 0; s < params.size(); ++s) {
      t4.add_row({std::to_string(set), "S" + std::to_string(s + 1),
                  laps::Table::num(params[s].a, 3),
                  laps::Table::num(params[s].b, 3),
                  laps::Table::num(params[s].c, 2),
                  laps::Table::num(params[s].m, 0),
                  laps::Table::num(params[s].sigma, 2)});
    }
  }
  std::cout << t4.to_string() << "\n";

  std::printf("=== Tables V/VI: trace groups and scenarios ===\n");
  laps::Table t56({"scenario", "param set", "S1", "S2", "S3", "S4"});
  for (const std::string& id : laps::paper_scenario_ids()) {
    const int idx = id[1] - '0';
    const int set = idx <= 4 ? 1 : 2;
    const auto group = laps::table5_group(idx <= 4 ? idx : idx - 4);
    t56.add_row(
        {id, "Set " + std::to_string(set), group[0], group[1], group[2],
         group[3]});
  }
  std::cout << t56.to_string() << "\n";

  // All jobs replay the same traces through a shared store: packets are
  // materialized once and read concurrently, and every job's calibration
  // sees the identical size mix it would see opening the trace directly.
  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  // Registry specs; --scheduler=LIST replaces the whole table. The default
  // laps spec is the paper configuration (4 services).
  const std::vector<laps::SchedulerSpec> schedulers =
      laps::schedulers_or(harness, {
                                       laps::make_scheduler_spec("fcfs"),
                                       laps::make_scheduler_spec("afs"),
                                       laps::make_scheduler_spec("laps"),
                                   });

  laps::ExperimentPlan plan(options.seed);
  plan.add_grid(scenario_ids, schedulers, {options.seed},
                [options](const std::string& id, std::uint64_t seed) {
                  laps::ScenarioOptions o = options;
                  o.seed = seed;
                  return laps::make_paper_scenario(id, o);
                },
                laps::observed_runner(harness));

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  std::printf("=== Fig. 7: LAPS vs FCFS vs AFS, %zu cores, %.2f s, seed %llu "
              "===\n",
              options.num_cores, options.seconds,
              static_cast<unsigned long long>(options.seed));
  laps::Table fig({"scenario", "scheduler", "offered", "dropped", "drop%",
                   "cold%", "ooo", "ooo%", "migrations", "thru Mpps"});
  for (const auto& res : results) {
    const auto& r = res.report;
    fig.add_row({res.scenario, res.scheduler,
                 laps::Table::num(static_cast<std::int64_t>(r.offered)),
                 laps::Table::num(static_cast<std::int64_t>(r.dropped)),
                 laps::Table::pct(r.drop_ratio()),
                 laps::Table::pct(r.cold_cache_ratio()),
                 laps::Table::num(static_cast<std::int64_t>(r.out_of_order)),
                 laps::Table::pct(r.ooo_ratio(), 4),
                 laps::Table::num(static_cast<std::int64_t>(r.flow_migrations)),
                 laps::Table::num(r.throughput_mpps(), 3)});
  }
  std::cout << fig.to_string();
  std::printf(
      "\nFig. 7a = drop%% column | Fig. 7b = cold%% column | Fig. 7c = ooo "
      "columns.\nExpected shape (paper): LAPS lowest drops everywhere; "
      "FCFS/AFS ~60%% cold vs ~0 for LAPS; FCFS >> AFS > LAPS on ooo.\n");

  laps::write_json_artifact(harness.json_path, "fig7_scheduler_comparison",
                            results, {{"fig7", &fig}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
