// Reproduces paper Fig. 8 — effectiveness of the Aggressive Flow Detector:
//   (a) false-positive ratio of a 16-entry AFC as annex size varies
//       (64..1024 entries), vs off-line top-16 analysis;
//   (b) accuracy when checked every `window` packets (10^3..10^6), annex
//       fixed at 512;
//   (c) false-positive ratio under packet sampling with probability
//       1 .. 1/10k.
//
// Usage: fig8_afd_accuracy [--packets=N] [--traces=...|all] [--afc=16]
//                          [--jobs=N] [--json=PATH]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/afd.h"
#include "cache/topk.h"
#include "exp/harness.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"
#include "util/thread_pool.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(laps::Flags& flags) {
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 2'000'000));
  const auto traces =
      parse_traces(flags.get_string("traces", "caida1,caida2,auck1,auck2"));
  const auto afc_entries = static_cast<std::size_t>(flags.get_int("afc", 16));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  // ---------------------------------------------------------- Fig. 8a ----
  const std::vector<std::size_t> annex_sizes{64, 128, 256, 512, 1024};
  std::printf("=== Fig. 8a: FPR in a %zu-entry AFC vs annex size (%llu "
              "packets/trace) ===\n",
              afc_entries, static_cast<unsigned long long>(packets));
  laps::Table fig_a([&] {
    std::vector<std::string> headers{"trace"};
    for (std::size_t a : annex_sizes) {
      headers.push_back("annex " + std::to_string(a));
    }
    return headers;
  }());
  // One independent job per trace; each feeds every annex size in one pass.
  const auto rows_a = laps::parallel_index_map(
      harness.jobs, traces.size(), [&](std::size_t t) {
        const std::string& name = traces[t];
        std::vector<std::unique_ptr<laps::Afd>> afds;
        for (std::size_t a : annex_sizes) {
          laps::AfdConfig cfg;
          cfg.afc_entries = afc_entries;
          cfg.annex_entries = a;
          afds.push_back(std::make_unique<laps::Afd>(cfg));
        }
        laps::ExactTopK truth;
        auto trace = laps::make_trace(name);
        for (std::uint64_t i = 0; i < packets; ++i) {
          const auto rec = trace->next();
          const std::uint64_t key = rec->tuple.key64();
          truth.access(key);
          for (auto& afd : afds) afd->access(key);
        }
        std::vector<std::string> row{name};
        for (auto& afd : afds) {
          const auto acc = laps::score_detector(truth, afd->aggressive_flows(),
                                                afc_entries);
          row.push_back(laps::Table::pct(acc.false_positive_ratio(), 1));
        }
        std::fprintf(stderr, "done: fig8a/%s\n", name.c_str());
        return row;
      });
  for (auto row : rows_a) fig_a.add_row(std::move(row));
  std::cout << fig_a.to_string() << "\n";

  // ---------------------------------------------------------- Fig. 8b ----
  const std::vector<std::uint64_t> windows{1'000, 10'000, 100'000, 1'000'000};
  std::printf("=== Fig. 8b: mean accuracy when AFC is checked every W "
              "packets (annex 512) ===\n");
  laps::Table fig_b([&] {
    std::vector<std::string> headers{"trace"};
    for (std::uint64_t w : windows) headers.push_back("W=" + std::to_string(w));
    return headers;
  }());
  const auto rows_b = laps::parallel_index_map(
      harness.jobs, traces.size(), [&](std::size_t t) {
        const std::string& name = traces[t];
        std::vector<std::string> row{name};
        for (std::uint64_t window : windows) {
          laps::AfdConfig cfg;
          cfg.afc_entries = afc_entries;
          cfg.annex_entries = 512;
          laps::Afd afd(cfg);
          laps::ExactTopK truth;
          auto trace = laps::make_trace(name);
          double recall_sum = 0.0;
          std::uint64_t checks = 0;
          for (std::uint64_t i = 1; i <= packets; ++i) {
            const auto rec = trace->next();
            const std::uint64_t key = rec->tuple.key64();
            truth.access(key);
            afd.access(key);
            if (i % window == 0) {
              // "accuracy is checked at every fixed interval" against the
              // cumulative off-line top-k at that instant.
              const auto acc = laps::score_detector(
                  truth, afd.aggressive_flows(), afc_entries);
              recall_sum += 1.0 - acc.false_positive_ratio();
              ++checks;
            }
          }
          row.push_back(checks
                            ? laps::Table::pct(recall_sum / static_cast<double>(checks), 1)
                            : "-");
        }
        std::fprintf(stderr, "done: fig8b/%s\n", name.c_str());
        return row;
      });
  for (auto row : rows_b) fig_b.add_row(std::move(row));
  std::cout << fig_b.to_string() << "\n";

  // ---------------------------------------------------------- Fig. 8c ----
  const std::vector<double> probabilities{1.0, 0.1, 0.01, 0.001, 0.0001};
  std::printf("=== Fig. 8c: FPR under packet sampling (annex 512) ===\n");
  laps::Table fig_c([&] {
    std::vector<std::string> headers{"trace"};
    for (double p : probabilities) {
      headers.push_back(p == 1.0 ? "p=1" : "p=1/" + std::to_string(
                                               static_cast<int>(1.0 / p)));
    }
    return headers;
  }());
  const auto rows_c = laps::parallel_index_map(
      harness.jobs, traces.size(), [&](std::size_t t) {
        const std::string& name = traces[t];
        std::vector<std::unique_ptr<laps::Afd>> afds;
        for (double p : probabilities) {
          laps::AfdConfig cfg;
          cfg.afc_entries = afc_entries;
          cfg.annex_entries = 512;
          cfg.sample_probability = p;
          afds.push_back(std::make_unique<laps::Afd>(cfg));
        }
        laps::ExactTopK truth;
        auto trace = laps::make_trace(name);
        for (std::uint64_t i = 0; i < packets; ++i) {
          const auto rec = trace->next();
          const std::uint64_t key = rec->tuple.key64();
          truth.access(key);
          for (auto& afd : afds) afd->access(key);
        }
        std::vector<std::string> row{name};
        for (auto& afd : afds) {
          const auto acc = laps::score_detector(truth, afd->aggressive_flows(),
                                                afc_entries);
          row.push_back(laps::Table::pct(acc.false_positive_ratio(), 1));
        }
        std::fprintf(stderr, "done: fig8c/%s\n", name.c_str());
        return row;
      });
  for (auto row : rows_c) fig_c.add_row(std::move(row));
  std::cout << fig_c.to_string();
  std::printf(
      "\nExpected shape (paper): (a) FPR falls as annex grows; Auckland "
      "reaches ~0%% at 512 while CAIDA needs 1024; (b) >90%% accuracy at "
      "every window size; (c) sampling up to 1/1k matches or beats p=1, "
      "then degrades for CAIDA.\n");

  laps::write_json_artifact(
      harness.json_path, "fig8_afd_accuracy", {},
      {{"fig8a", &fig_a}, {"fig8b", &fig_b}, {"fig8c", &fig_c}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
