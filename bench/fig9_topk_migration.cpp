// Reproduces paper Fig. 9 — the benefit of migrating only the top
// aggressive flows, relative to AFS, with a single active service (IP
// forwarding) and input slightly above the ideal capacity:
//   (a) packets dropped relative to AFS (no-migration and top-K LAPS),
//   (b) out-of-order packets relative to AFS,
//   (c) number of flow migrations relative to AFS.
// Also includes the Shi-style exact-statistics oracle as a reference.
//
// Usage: fig9_topk_migration [--seconds=S] [--seed=N] [--cores=N]
//                            [--load=1.05] [--traces=...|all] [--jobs=N]
//                            [--json=PATH] [--scheduler=LIST]
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

std::vector<std::string> parse_traces(const std::string& arg) {
  if (arg == "all") return laps::trace_registry_names();
  std::vector<std::string> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string rel(std::uint64_t value, std::uint64_t base) {
  if (base == 0) return value == 0 ? "1.00" : "inf";
  return laps::Table::num(static_cast<double>(value) /
                              static_cast<double>(base),
                          2);
}

int run(laps::Flags& flags) {
  laps::ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.05);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const double load = flags.get_double("load", 1.05);
  const auto traces =
      parse_traces(flags.get_string("traces", "caida1,caida2,auck1,auck2"));
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Fig. 9: single service (IP forwarding), %zu cores, "
              "%.0f%% of ideal capacity, %.2f s ===\n",
              options.num_cores, load * 100.0, options.seconds);
  std::printf("All ratios are relative to AFS (paper's presentation).\n\n");

  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();

  // Registry specs; --scheduler=LIST replaces the whole table. Display
  // names for the top-K sweep are overridden so artifact/table bytes keep
  // the paper's "LAPS top-K" labels.
  std::vector<laps::SchedulerSpec> defaults = {
      laps::make_scheduler_spec("afs"),
      laps::make_scheduler_spec("hash"),
  };
  for (std::size_t k : {4u, 8u, 10u, 16u}) {
    defaults.push_back(laps::make_scheduler_spec(
        "laps:services=1,afc=" + std::to_string(k),
        "LAPS top-" + std::to_string(k)));
  }
  defaults.push_back(laps::make_scheduler_spec("oracle"));
  const auto schedulers = laps::schedulers_or(harness, std::move(defaults));

  laps::ExperimentPlan plan(options.seed);
  plan.add_grid(traces, schedulers, {options.seed},
                [options, load](const std::string& trace, std::uint64_t seed) {
                  laps::ScenarioOptions o = options;
                  o.seed = seed;
                  return laps::make_single_service_scenario(trace, o, load);
                },
                laps::observed_runner(harness));

  laps::ParallelRunner runner = laps::make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = laps::grid_abort_code(runner)) return rc;

  // Ratios are computed after collection: each trace's AFS row is the base
  // for every scheduler of that trace (plan order is trace-major, AFS
  // first, so the base always precedes its dependents).
  laps::Table fig({"trace", "scheduler", "drop%", "drops/AFS", "ooo/AFS",
                   "migrations/AFS", "migrations"});
  const laps::SimReport* afs_base = nullptr;
  for (const auto& res : results) {
    const auto& r = res.report;
    if (res.scheduler == "AFS") afs_base = &r;
    if (afs_base == nullptr) {
      throw std::logic_error("fig9: no AFS base row for " + res.scenario);
    }
    fig.add_row({res.scenario, res.scheduler,
                 laps::Table::pct(r.drop_ratio()),
                 rel(r.dropped, afs_base->dropped),
                 rel(r.out_of_order, afs_base->out_of_order),
                 rel(r.flow_migrations, afs_base->flow_migrations),
                 laps::Table::num(static_cast<std::int64_t>(
                     r.flow_migrations))});
  }
  std::cout << fig.to_string();
  std::printf(
      "\nFig. 9a = drops/AFS (StaticHash row = 'no flows migrated') | "
      "Fig. 9b = ooo/AFS | Fig. 9c = migrations/AFS.\nExpected shape "
      "(paper): no-migration drops far more than AFS; LAPS top-10/16 "
      "matches or beats AFS drops; ooo and migrations fall ~80-85%% vs "
      "AFS.\n");

  laps::write_json_artifact(harness.json_path, "fig9_topk_migration", results,
                            {{"fig9", &fig}});
  return laps::grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
