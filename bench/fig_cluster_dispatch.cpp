// fig_cluster_dispatch: the NIC-side dispatcher comparison on the sharded
// multi-NP fabric (src/cluster). One trace is recorded once and replayed
// through every dispatcher row, so the rows differ ONLY in how the front
// end spreads flows across NPs:
//
//   pass      everything to shard 0 — the degenerate single-NP baseline
//   rr        packet-level round robin: best instantaneous balance, and
//             the reorder-maximizing wire (every multi-packet flow is
//             sprayed across NPs)
//   rss       Toeplitz receive-side scaling: flows never move, zero
//             cross-NP reordering by construction, but whatever imbalance
//             the hash deals is permanent
//   fdir      Flow Director-style signature table: collisions evict to the
//             least-loaded shard, trading a bounded amount of migration
//             (and thus cross-NP reordering) for balance
//   affinity  A-TFN-style in-flight-aware redirection: migrate an
//             overloaded flow only when nothing of it is in flight, so
//             migrations cannot reorder
//   load      least-loaded with immediate migration: the balance-greedy
//             upper bound on cross-NP reordering
//
// The table contrasts the paper's two metrics at cluster scope: load
// (drop%) against packet order (intra- vs cross-NP out-of-order), which is
// exactly the Fig. 7/9 trade-off lifted one level up the hierarchy.
//
// Usage: fig_cluster_dispatch [--shards=4] [--cores=4] [--seconds=0.02]
//                             [--seed=17] [--load=1.05] [--trace=caida1]
//                             [--sync=100us] [--jobs=1]
//                             [--dispatch=pass;rr;rss;fdir;affinity;load]
//                             [--scheduler=afs] [--json=PATH]
//
// --cores is per shard; --load is relative to the ideal capacity of ALL
// shards * cores, so shard counts compare at equal offered work. --jobs
// drives the per-shard-thread executor (bit-identical to --jobs=1 by the
// cluster determinism contract).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exp/dispatcher_registry.h"
#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/duration.h"
#include "util/fileio.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 4));
  const auto cores = static_cast<std::size_t>(flags.get_int("cores", 4));
  const double seconds = flags.get_double("seconds", 0.02);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  const double load = flags.get_double("load", 1.05);
  const std::string trace = flags.get_string("trace", "caida1");
  const std::string sync_spec = flags.get_string("sync", "");
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();
  if (shards < 1) throw std::invalid_argument("--shards must be >= 1");
  if (cores < 1) throw std::invalid_argument("--cores must be >= 1");

  // One scheduler spec for every shard of every row (fresh instance per
  // shard — shards are independent NPs).
  const auto scheduler_specs = laps::schedulers_or(
      harness, laps::parse_scheduler_list("afs"));
  if (scheduler_specs.size() != 1) {
    throw std::invalid_argument(
        "fig_cluster_dispatch wants exactly one --scheduler spec");
  }
  const laps::SchedulerSpec& scheduler = scheduler_specs[0];

  const std::vector<laps::DispatcherSpec> dispatchers =
      laps::parse_dispatcher_list(harness.dispatch_spec.empty()
                                      ? "pass;rr;rss;fdir;affinity;load"
                                      : harness.dispatch_spec);

  // Load is calibrated against the whole cluster's ideal capacity, then the
  // stream is recorded once; every row forks the same recording.
  laps::ScenarioOptions options;
  options.seconds = seconds;
  options.seed = seed;
  options.num_cores = shards * cores;
  auto store = std::make_shared<laps::TraceStore>();
  options.trace_factory = store->factory();
  const laps::ScenarioConfig scenario =
      laps::make_single_service_scenario(trace, options, load);
  for (const laps::ServiceTraffic& s : scenario.services) s.trace->reset();
  laps::PacketGenerator generator(scenario.services, scenario.seed,
                                  scenario.seconds);
  laps::ReplayStream replay = laps::ReplayStream::record(generator);

  laps::ClusterConfig cluster;
  cluster.name = scenario.name;
  cluster.num_shards = shards;
  cluster.cores_per_shard = cores;
  cluster.queue_capacity = scenario.queue_capacity;
  cluster.delay = scenario.delay;
  cluster.event_queue = scenario.event_queue;
  cluster.threads = harness.jobs;
  cluster.make_scheduler = scheduler.make;
  if (!sync_spec.empty()) {
    cluster.sync_ns = laps::util::parse_duration("--sync", sync_spec);
    if (cluster.sync_ns <= 0) {
      throw std::invalid_argument("--sync must be > 0");
    }
  } else {
    cluster.sync_ns = harness.cluster_sync;
  }

  std::printf("=== Cluster dispatch: %zu shards x %zu cores, %s @ %.2f load, "
              "%llu packets, scheduler %s ===\n\n",
              shards, cores, trace.c_str(), load,
              static_cast<unsigned long long>(replay.size()),
              scheduler.name.c_str());

  std::vector<laps::ClusterReport> reports;
  reports.reserve(dispatchers.size());
  laps::Table out({"dispatcher", "drop %", "intra-NP ooo %", "cross-NP ooo %",
                   "cross-NP migr", "Mpps"});
  for (const laps::DispatcherSpec& spec : dispatchers) {
    auto dispatcher = spec.make();
    laps::ReplayStream stream = replay.fork();
    laps::ClusterReport report = laps::run_cluster(cluster, stream,
                                                   *dispatcher);
    out.add_row({spec.display, laps::Table::pct(report.drop_ratio()),
                 laps::Table::pct(static_cast<double>(
                                      report.intra_np_out_of_order) /
                                  std::max<std::uint64_t>(report.delivered, 1)),
                 laps::Table::pct(report.cross_np_ooo_ratio()),
                 std::to_string(report.cross_np_migrations),
                 laps::Table::num(report.throughput_mpps(), 2)});
    reports.push_back(std::move(report));
  }
  std::printf("%s\n", out.to_string().c_str());

  if (!harness.json_path.empty()) {
    laps::JsonWriter w;
    w.begin_object();
    w.field("schema", "laps-cluster-grid-v1");
    w.field("tool", "fig_cluster_dispatch");
    w.key("reports");
    w.begin_array();
    for (const laps::ClusterReport& r : reports) {
      laps::write_cluster_report_json(w, r);
    }
    w.end_array();
    w.end_object();
    const std::string doc = w.str() + "\n";
    laps::util::write_file_atomic(harness.json_path, doc, "cluster artifact");
    std::fprintf(stderr, "wrote JSON artifact: %s (%zu bytes)\n",
                 harness.json_path.c_str(), doc.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return laps::guarded_main(argc, argv, run); }
