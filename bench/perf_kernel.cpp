// perf_kernel: packets-per-second of the simulation kernel itself.
//
// Traffic is generated ONCE into a ReplayStream, then replayed through
// six kernels, so the (dominant) cost of online packet generation is out
// of the timed loop and the numbers compare pure kernel throughput:
//
//   npu            the retained seed kernel (std::deque queues, per-flow
//                  state in four parallel vectors, SimReport built inline)
//   engine         the SimEngine with NO probes attached — the bare
//                  discrete-event loop on its default TimingWheel
//                  completion queue, nothing measured
//   engine+heap    the bare SimEngine on the retained EventHeap oracle
//                  (--event-queue=heap); engine vs engine+heap isolates
//                  the wheel's win over the binary heap
//   engine+report  the SimEngine with a ReportProbe, i.e. exactly what
//                  run_scenario does for every bench and test
//   engine+audit   the SimEngine with a FlowAuditProbe — exact per-flow
//                  statistics in the open-addressed audit table; its
//                  overhead over bare engine is the price of per-flow
//                  attribution (--flow-audit), gated at <= 15% by
//                  scripts/compare_bench.py
//   engine+flight  the SimEngine with a FlightRecorderProbe — the
//                  always-on postmortem ring (--flight-recorder)
//   engine+laps    the bare SimEngine driven by a real single-service
//                  LapsScheduler instead of the modulo spreader — the
//                  full policy cost (AFD access, surplus scan, map-table
//                  hash, migration-table lookup) on the kernel's fast
//                  path; gated at 2% by scripts/compare_bench.py so the
//                  policy/mechanism split cannot tax the scheduler
//   engine+telemetry  the SimEngine with a TelemetryProbe on 100 us
//                  epochs — the price of --telemetry (cached-cell counter
//                  bumps per packet plus gauge/snapshot work at epoch
//                  boundaries); gated at <= 5% by scripts/compare_bench.py
//   cluster+pass   run_cluster with ONE shard behind the pass dispatcher —
//                  the whole cluster fabric (stepping API, sync windows,
//                  egress merge, cross-NP detector) wrapped around the
//                  same engine+report work; its overhead over
//                  engine+report is the price of the coordination layer,
//                  and the row is gated at 2% by scripts/compare_bench.py
//   cluster+rss    run_cluster with four shards of cores/4 each behind
//                  Toeplitz RSS — the sharded fabric doing real front-end
//                  work (lockstep executor, so the number is mechanism
//                  cost, not parallel speedup)
//
// When the host allows perf_event_open, every kernel row additionally
// carries hardware attribution from the best repetition: cycles and
// cache/branch misses per packet plus IPC. Locked-down runners (most CI
// containers) silently degrade: perf_counters_available=false and the
// per-kernel columns are omitted.
//

// A deliberately trivial scheduler (gflow mod cores) keeps scheduling cost
// out of the measurement, so the comparison isolates queue structure,
// flow-state layout, and inline-vs-probe measurement.
//
// The workload is IP forwarding over a million-flow Zipf trace: large
// enough that per-flow state outgrows the cache — the regime where the
// kernels' flow-state layouts actually differ — and representative of the
// paper's backbone traces. Repetitions interleave the three kernels so
// machine noise hits all of them alike.
//
// Usage: perf_kernel [--seconds=0.02] [--reps=7] [--seed=3] [--cores=16]
//                    [--flows=1000000] [--rate-mpps=28]
//                    [--json=BENCH_kernel.json]
//
// The JSON artifact intentionally contains wall-clock measurements — it is
// a performance trajectory (BENCH_kernel.json), not a simulation result.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatchers.h"
#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "sim/engine.h"
#include "sim/flight_recorder.h"
#include "sim/flow_audit.h"
#include "sim/probes.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "telemetry/perf_counters.h"
#include "telemetry/probe.h"
#include "trace/synthetic.h"
#include "util/fileio.h"
#include "util/json_writer.h"
#include "util/tableio.h"

namespace {

using namespace laps;

/// gflow mod cores: the cheapest deterministic spreader possible, so the
/// measured time is the kernel, not the scheduler under test.
class ModuloScheduler final : public Scheduler {
 public:
  void attach(std::size_t num_cores) override { num_cores_ = num_cores; }
  CoreId schedule(const SimPacket& pkt, const NpuView&) override {
    return static_cast<CoreId>(pkt.gflow % num_cores_);
  }
  std::string name() const override { return "Modulo"; }

 private:
  std::size_t num_cores_ = 1;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Measurement {
  std::string variant;
  std::uint64_t packets = 0;  ///< packets per replayed run
  double best_seconds = 0.0;  ///< fastest repetition
  /// Hardware counters of the best repetition (available=false when the
  /// host rejects perf_event_open; columns are then omitted).
  telemetry::PerfCounterReading perf = {};
  double mpps() const {
    return best_seconds > 0 ? static_cast<double>(packets) / best_seconds / 1e6
                            : 0.0;
  }
  double per_packet(double v) const {
    return packets > 0 ? v / static_cast<double>(packets) : 0.0;
  }
};

int run(Flags& flags) {
  const double seconds = flags.get_double("seconds", 0.02);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const auto cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  const auto flows = static_cast<std::size_t>(flags.get_int("flows", 1'000'000));
  const double rate = flags.get_double("rate-mpps", 28.0);
  const int reps = static_cast<int>(flags.get_int("reps", 7));
  const auto harness = parse_harness_flags(flags);
  flags.finish();
  if (reps < 1) throw std::invalid_argument("--reps must be >= 1");

  // Constant-rate IP forwarding: high load keeps every core busy
  // (completions dominate the heap) without heavy drops. No churn, so the
  // generator's flow-id fast path applies while recording.
  SyntheticTraceSpec spec;
  spec.name = "perf";
  spec.num_flows = flows;
  spec.zipf_alpha = 1.02;
  spec.seed = 101;
  ServiceTraffic traffic;
  traffic.path = ServicePath::kIpForward;
  traffic.rate = HoltWintersParams{rate, 0.0, 0.0, 60.0, 0.0};
  traffic.trace = std::make_shared<SyntheticTrace>(spec);

  // Record the arrival stream once; every kernel replays identical traffic.
  PacketGenerator generator({traffic}, seed, seconds);
  ReplayStream replay = ReplayStream::record(generator);

  NpuConfig npu_cfg;
  npu_cfg.num_cores = cores;
  SimEngineConfig eng_cfg;
  eng_cfg.num_cores = cores;  // event_queue defaults to the TimingWheel
  SimEngineConfig heap_cfg = eng_cfg;
  heap_cfg.event_queue = EventQueueKind::kHeap;
  // The telemetry row needs epoch boundaries for its gauge/snapshot work —
  // that cost is part of what --telemetry charges, so it belongs in the row.
  SimEngineConfig telem_cfg = eng_cfg;
  telem_cfg.epoch_ns = 100 * kMicrosecond;

  Measurement npu{"npu"}, engine{"engine"}, engine_heap{"engine+heap"},
      engine_report{"engine+report"}, engine_audit{"engine+audit"},
      engine_flight{"engine+flight"}, engine_laps{"engine+laps"},
      engine_telem{"engine+telemetry"}, cluster_pass{"cluster+pass"},
      cluster_rss{"cluster+rss"};
  npu.packets = engine.packets = engine_heap.packets =
      engine_report.packets = engine_audit.packets = engine_flight.packets =
          engine_laps.packets = engine_telem.packets = cluster_pass.packets =
              cluster_rss.packets = replay.size();
  SimReport check_npu, check_engine;
  SimReport check_cluster;

  // One scope for all kernels: counters reset at each start(), and the
  // reading of the repetition that won best-of is what the artifact keeps.
  telemetry::PerfCounterScope pmu;
  telemetry::PerfCounterReading last_reading;

  const auto time_npu = [&]() {
    ModuloScheduler sched;
    replay.rewind();
    Npu kernel(npu_cfg, sched);
    pmu.start();
    const auto t0 = std::chrono::steady_clock::now();
    SimReport rep = kernel.run(replay, "perf_kernel");
    const double s = seconds_since(t0);
    last_reading = pmu.stop();
    check_npu = std::move(rep);
    return s;
  };
  /// Times one engine pass with `probe` attached (nullptr = bare engine).
  const auto time_engine_cfg = [&](const SimEngineConfig& cfg,
                                   SimProbe* probe) {
    ModuloScheduler sched;
    replay.rewind();
    ProbeSet probes;
    probes.add(probe);
    SimEngine kernel(cfg, sched, probes);
    pmu.start();
    const auto t0 = std::chrono::steady_clock::now();
    kernel.run(replay, "perf_kernel");
    const double s = seconds_since(t0);
    last_reading = pmu.stop();
    return s;
  };
  const auto time_engine_probe = [&](SimProbe* probe) {
    return time_engine_cfg(eng_cfg, probe);
  };
  const auto time_engine = [&]() { return time_engine_probe(nullptr); };
  const auto time_heap = [&]() { return time_engine_cfg(heap_cfg, nullptr); };
  const auto time_report = [&]() {
    ReportProbe probe;
    const double s = time_engine_probe(&probe);
    check_engine = probe.take_report();
    return s;
  };
  // Reused across reps so the event log keeps its steady-state pages — the
  // measured cost is the probe's per-event price, not the allocator warming
  // 32 MiB of fresh pages every rep. Aggregation into the audit table is
  // deferred to artifact time by design, so it is rightly outside the
  // kernel row (see FlowAuditProbe docs).
  FlowAuditProbe audit_probe;
  const auto time_audit = [&]() { return time_engine_probe(&audit_probe); };
  const auto time_flight = [&]() {
    FlightRecorderProbe probe;  // default ring; dump is never written here
    return time_engine_probe(&probe);
  };
  // The full scheduling policy on the bare engine: replayed traffic is one
  // IP-forwarding service, so LAPS runs single-service (the Fig. 9 shape).
  const auto time_laps = [&]() {
    // Built via the registry (construction is outside the timed region);
    // the kernel.run path is identical either way.
    auto sched_ptr = make_scheduler("laps:services=1");
    Scheduler& sched = *sched_ptr;
    replay.rewind();
    SimEngine kernel(eng_cfg, sched);
    pmu.start();
    const auto t0 = std::chrono::steady_clock::now();
    kernel.run(replay, "perf_kernel");
    const double s = seconds_since(t0);
    last_reading = pmu.stop();
    return s;
  };
  // A fresh probe per rep (registry construction and instrument
  // registration stay outside the timed region); epochs come from
  // telem_cfg, snapshots from the probe's default 100 us interval.
  const auto time_telemetry = [&]() {
    telemetry::TelemetryProbe probe;
    return time_engine_cfg(telem_cfg, &probe);
  };
  // The cluster fabric on replayed traffic. Engine construction happens
  // inside run_cluster and is therefore timed; at bench packet counts it is
  // noise, and including it keeps the row honest about what --shards costs
  // end to end. Streams fork the shared recording (no re-record, no copy).
  const auto time_cluster = [&](std::size_t shards, Dispatcher& dispatcher,
                                SimReport* check) {
    ClusterConfig cfg;
    cfg.name = "perf_kernel";
    cfg.num_shards = shards;
    cfg.cores_per_shard = cores / shards;
    cfg.make_scheduler = [] { return std::make_unique<ModuloScheduler>(); };
    ReplayStream stream = replay.fork();
    pmu.start();
    const auto t0 = std::chrono::steady_clock::now();
    ClusterReport rep = run_cluster(cfg, stream, dispatcher);
    const double s = seconds_since(t0);
    last_reading = pmu.stop();
    if (check != nullptr) *check = std::move(rep.shards[0]);
    return s;
  };
  const auto time_cluster_pass = [&]() {
    PassDispatcher pass;
    return time_cluster(1, pass, &check_cluster);
  };
  const auto time_cluster_rss = [&]() {
    RssDispatcher rss;
    return time_cluster(cores >= 4 ? 4 : 1, rss, nullptr);
  };

  // One warm-up pass, then `reps` interleaved passes (noise hits all eight
  // kernels alike); best-of wins. The telemetry row runs right after the
  // report row, not after engine+laps: the laps pass is ~3.5x longer and
  // leaves enough cache/allocator wake to inflate whichever row follows
  // it by several points, and telemetry is the row with the tightest
  // budget (5%) riding on that comparison.
  time_npu();
  time_engine();
  time_heap();
  time_report();
  time_telemetry();
  time_audit();
  time_flight();
  time_laps();
  time_cluster_pass();
  time_cluster_rss();
  const auto keep_best = [&last_reading](Measurement& m, double s, int r) {
    if (r == 0 || s < m.best_seconds) {
      m.best_seconds = s;
      m.perf = last_reading;  // attribution follows the winning rep
    }
  };
  for (int r = 0; r < reps; ++r) {
    keep_best(npu, time_npu(), r);
    keep_best(engine, time_engine(), r);
    keep_best(engine_heap, time_heap(), r);
    keep_best(engine_report, time_report(), r);
    keep_best(engine_telem, time_telemetry(), r);
    keep_best(engine_audit, time_audit(), r);
    keep_best(engine_flight, time_flight(), r);
    keep_best(engine_laps, time_laps(), r);
    keep_best(cluster_pass, time_cluster_pass(), r);
    keep_best(cluster_rss, time_cluster_rss(), r);
  }

  // The two reporting kernels must agree exactly — this bench doubles as a
  // cheap end-to-end equivalence check (the real one is the golden suite).
  // check_npu comes from the seed kernel's own heap, check_engine from the
  // wheel-backed SimEngine, so this also cross-checks the two queues.
  if (report_to_json(check_npu) != report_to_json(check_engine)) {
    throw std::logic_error("perf_kernel: npu and engine reports differ");
  }
  // And the one-shard pass-through cluster must BE the engine+report run —
  // the shards=1 identity contract, re-proven on every bench invocation.
  if (report_to_json(check_cluster) != report_to_json(check_engine)) {
    throw std::logic_error(
        "perf_kernel: cluster+pass shard report diverged from engine+report");
  }

  const double speedup = npu.best_seconds / engine.best_seconds;
  const double wheel_speedup = engine_heap.best_seconds / engine.best_seconds;
  const auto overhead_vs_engine = [&](const Measurement& m) {
    return m.best_seconds / engine.best_seconds - 1.0;
  };
  const double probe_overhead = overhead_vs_engine(engine_report);
  const double audit_overhead = overhead_vs_engine(engine_audit);
  const double flight_overhead = overhead_vs_engine(engine_flight);
  const double telemetry_overhead = overhead_vs_engine(engine_telem);
  // Coordination cost of the cluster fabric over the identical simulation
  // work (engine+report is what one shard runs inside).
  const double cluster_pass_overhead =
      cluster_pass.best_seconds / engine_report.best_seconds - 1.0;

  const std::vector<const Measurement*> rows = {
      &npu,          &engine,        &engine_heap, &engine_report,
      &engine_audit, &engine_flight, &engine_laps, &engine_telem,
      &cluster_pass, &cluster_rss};

  std::printf("=== Kernel throughput: %llu replayed packets/run, %zu cores, "
              "best of %d ===\n\n",
              static_cast<unsigned long long>(npu.packets), cores, reps);
  Table out({"kernel", "wall ms", "Mpps", "vs npu"});
  for (const Measurement* m : rows) {
    out.add_row({m->variant, Table::num(m->best_seconds * 1e3, 2),
                 Table::num(m->mpps(), 2),
                 Table::num(npu.best_seconds / m->best_seconds, 2) + "x"});
  }
  std::printf("%s\n", out.to_string().c_str());
  if (pmu.available()) {
    Table hw({"kernel", "cycles/pkt", "IPC", "cache-miss/pkt",
              "branch-miss/pkt"});
    for (const Measurement* m : rows) {
      hw.add_row({m->variant, Table::num(m->per_packet(m->perf.cycles), 1),
                  Table::num(m->perf.ipc(), 2),
                  Table::num(m->per_packet(m->perf.cache_misses), 2),
                  Table::num(m->per_packet(m->perf.branch_misses), 2)});
    }
    std::printf("%s\n", hw.to_string().c_str());
  } else {
    std::printf("(hardware counters unavailable: perf_event_open rejected "
                "or not Linux)\n\n");
  }
  std::printf("engine speedup over npu (null probes): %.2fx\n", speedup);
  std::printf("TimingWheel speedup over EventHeap (bare engine): %.2fx\n",
              wheel_speedup);
  std::printf("ReportProbe overhead over null probes: %.1f%%\n",
              probe_overhead * 100.0);
  std::printf("FlowAuditProbe overhead over null probes: %.1f%%\n",
              audit_overhead * 100.0);
  std::printf("FlightRecorderProbe overhead over null probes: %.1f%%\n",
              flight_overhead * 100.0);
  std::printf("TelemetryProbe overhead over null probes: %.1f%%\n",
              telemetry_overhead * 100.0);
  std::printf("Cluster fabric overhead over engine+report (1 shard, pass): "
              "%.1f%%\n",
              cluster_pass_overhead * 100.0);

  if (!harness.json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.field("schema", "laps-perf-v1");
    w.field("tool", "perf_kernel");
    w.field("packets_per_run", static_cast<std::int64_t>(npu.packets));
    w.field("reps", static_cast<std::int64_t>(reps));
    w.field("perf_counters_available", pmu.available());
    w.key("kernels");
    w.begin_array();
    for (const Measurement* m : rows) {
      w.begin_object();
      w.field("name", m->variant);
      w.field("best_seconds", m->best_seconds);
      w.field("mpps", m->mpps());
      // Hardware attribution columns exist only when there is hardware
      // truth behind them (see PerfCounterScope degradation contract).
      if (m->perf.available) {
        w.field("cycles_per_packet", m->per_packet(m->perf.cycles));
        w.field("ipc", m->perf.ipc());
        w.field("cache_misses_per_packet",
                m->per_packet(m->perf.cache_misses));
        w.field("branch_misses_per_packet",
                m->per_packet(m->perf.branch_misses));
      }
      w.end_object();
    }
    w.end_array();
    w.field("engine_speedup_vs_npu", speedup);
    w.field("wheel_speedup_vs_heap", wheel_speedup);
    w.field("report_probe_overhead", probe_overhead);
    w.field("audit_probe_overhead", audit_overhead);
    w.field("flight_probe_overhead", flight_overhead);
    w.field("telemetry_probe_overhead", telemetry_overhead);
    w.field("cluster_pass_overhead", cluster_pass_overhead);
    w.end_object();
    const std::string doc = w.str() + "\n";
    laps::util::write_file_atomic(harness.json_path, doc, "perf artifact");
    std::fprintf(stderr, "wrote perf artifact: %s\n",
                 harness.json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return laps::guarded_main(argc, argv, run); }
