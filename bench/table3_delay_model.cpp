// Reproduces paper Table III + Sec. IV-C3: the data-plane core
// configuration and the processing-delay model (Eqs. 3-5) derived from it,
// evaluated over the packet-size mixes the traces use. This is the bench
// that documents the GEMS-derived constants our simulator plugs in.
//
// Usage: table3_delay_model [--json=PATH]
#include <cstdio>
#include <iostream>

#include "exp/harness.h"
#include "trace/synthetic.h"
#include "traffic/workload.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  const auto harness = laps::parse_harness_flags(flags);
  flags.finish();

  std::printf("=== Table III: data-plane core configuration (modeled) ===\n");
  laps::Table t3({"frequency", "pipeline", "branch predictor", "i-cache",
                  "d-cache"});
  t3.add_row({"1 GHz", "7 stage, 2-issue in-order", "gshare/BTB 128-entry",
              "16KB 2-way", "32KB 4-way"});
  std::cout << t3.to_string() << "\n";

  const laps::DelayModel delay;
  std::printf("=== Sec. IV-C3: processing-delay model (Eqs. 3-5) ===\n");
  laps::Table model({"service", "T_proc(64B) us", "T_proc(576B) us",
                     "T_proc(1500B) us", "formula"});
  const char* formulas[] = {
      "3.7 + (size/64)*0.23 us (Eq. 4)",
      "0.5 us",
      "3.53 us",
      "5.8 + (size/64)*0.21 us (Eq. 5)",
  };
  for (std::size_t s = 0; s < laps::kNumServices; ++s) {
    const auto path = static_cast<laps::ServicePath>(s);
    model.add_row({laps::service_name(path),
                   laps::Table::num(laps::to_us(delay.proc_time(path, 64)), 2),
                   laps::Table::num(laps::to_us(delay.proc_time(path, 576)), 2),
                   laps::Table::num(laps::to_us(delay.proc_time(path, 1500)), 2),
                   formulas[s]});
  }
  std::cout << model.to_string() << "\n";

  std::printf("Penalties: FM_penalty = %.2f us (four cache misses), "
              "CC_penalty = %.2f us (cold I-cache refill of the smallest "
              "service).\n\n",
              laps::to_us(delay.fm_penalty), laps::to_us(delay.cc_penalty));

  std::printf("=== Mean T_proc under trace packet-size mixes, and ideal "
              "16-core capacity ===\n");
  laps::Table cap({"service", "mix", "mean T_proc us", "1-core Mpps",
                   "16-core Mpps"});
  for (const char* trace_name : {"caida1", "auck1"}) {
    const auto spec = laps::trace_spec(trace_name);
    for (std::size_t s = 0; s < laps::kNumServices; ++s) {
      const auto path = static_cast<laps::ServicePath>(s);
      const double t =
          delay.mean_proc_time_us(path, spec.size_bytes, spec.size_weights);
      cap.add_row({laps::service_name(path), trace_name,
                   laps::Table::num(t, 2), laps::Table::num(1.0 / t, 3),
                   laps::Table::num(16.0 / t, 2)});
    }
  }
  std::cout << cap.to_string();

  laps::write_json_artifact(harness.json_path, "table3_delay_model", {},
                            {{"table3", &t3}, {"delay_model", &model},
                             {"capacity", &cap}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
