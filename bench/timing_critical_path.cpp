// Reproduces Sec. III-G "Timing Analysis of LAPS": the scheduler's critical
// path is Hash -> Map Table -> Mux, and must sustain >= 100 Mpps (the paper
// argues >= 200 Mpps for an FPGA CRC16). Here google-benchmark measures the
// software model of each stage and the full decision path; one packet per
// iteration, so `items_per_second` reads directly in packets/s.
//
// Also benchmarks the AFD (off the critical path), the DES substrate, and
// end-to-end simulation throughput, documenting the harness's own capacity.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "cache/afd.h"
#include "core/laps.h"
#include "core/map_table.h"
#include "sim/event_heap.h"
#include "sim/timing_wheel.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"
#include "util/crc.h"

namespace laps {
namespace {

std::vector<SimPacket> make_packets(std::size_t n, std::uint64_t seed) {
  SyntheticTraceSpec spec;
  spec.num_flows = 100'000;
  spec.seed = seed;
  SyntheticTrace trace(spec);
  std::vector<SimPacket> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto rec = trace.next();
    SimPacket pkt;
    pkt.tuple = rec->tuple;
    pkt.gflow = rec->flow_id;
    pkt.size_bytes = rec->size_bytes;
    pkt.service = static_cast<ServicePath>(rec->flow_id % kNumServices);
    out.push_back(pkt);
  }
  return out;
}

class IdleView final : public NpuView {
 public:
  explicit IdleView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = -1;  // never trigger idle logic
  }
  TimeNs now() const override { return 0; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

 private:
  std::vector<CoreView> cores_;
};

// Stage 1 of the critical path: CRC16 over the 13-byte 5-tuple.
void BM_Crc16FiveTuple(benchmark::State& state) {
  const auto packets = make_packets(4096, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(packets[i].tuple.crc16());
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Crc16FiveTuple);

// Stage 2: map-table (incremental hashing) bucket lookup.
void BM_MapTableLookup(benchmark::State& state) {
  std::vector<CoreId> cores;
  for (CoreId c = 0; c < 11; ++c) cores.push_back(c);  // non-power-of-two b
  MapTable table(cores);
  std::uint16_t h = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.core_for(h++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapTableLookup);

// The full LAPS decision path per packet (hash + map + migration-table
// lookup + AFD access + imbalance checks), on an idle 16-core system.
void BM_LapsDecision(benchmark::State& state) {
  LapsConfig cfg;
  cfg.num_services = 4;
  LapsScheduler laps(cfg);
  laps.attach(16);
  IdleView view(16);
  const auto packets = make_packets(8192, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(laps.schedule(packets[i], view));
    i = (i + 1) & 8191;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LapsDecision);

// Baseline decision paths for comparison.
void BM_AfsDecision(benchmark::State& state) {
  AfsScheduler afs;
  afs.attach(16);
  IdleView view(16);
  const auto packets = make_packets(8192, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(afs.schedule(packets[i], view));
    i = (i + 1) & 8191;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AfsDecision);

void BM_FcfsDecision(benchmark::State& state) {
  FcfsScheduler fcfs;
  fcfs.attach(16);
  IdleView view(16);
  const auto packets = make_packets(8192, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fcfs.schedule(packets[i], view));
    i = (i + 1) & 8191;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FcfsDecision);

// AFD access (background path) across annex sizes — Fig. 8a's sweep axis.
void BM_AfdAccess(benchmark::State& state) {
  AfdConfig cfg;
  cfg.annex_entries = static_cast<std::size_t>(state.range(0));
  Afd afd(cfg);
  const auto packets = make_packets(8192, 5);
  std::size_t i = 0;
  for (auto _ : state) {
    afd.access(packets[i].flow_key());
    i = (i + 1) & 8191;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AfdAccess)->Arg(64)->Arg(512)->Arg(1024);

// DES substrate: event heap push+pop at simulator-typical occupancy.
// Pop-modify-push cycle at the simulator's steady-state occupancy (one
// pending completion per busy core, 17 events). The Arg is the reschedule
// horizon in ticks: 150 is the engine's regime (service latencies a couple
// hundred ns out, where the wheel's single-tick near level pays off);
// 10000 scatters events across wheel blocks (the cascade-heavy regime a
// coarse-timer workload would see).
template <template <typename> class Q>
void queue_push_pop(benchmark::State& state) {
  struct Ev {
    TimeNs time;
  };
  const auto horizon = static_cast<std::uint64_t>(state.range(0));
  Q<Ev> queue;
  Rng rng(6);
  for (int i = 0; i < 17; ++i) {
    queue.push(Ev{static_cast<TimeNs>(rng.below(horizon))});
  }
  for (auto _ : state) {
    Ev e = queue.pop();
    e.time += static_cast<TimeNs>(rng.below(horizon));
    queue.push(e);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EventHeapPushPop(benchmark::State& state) {
  queue_push_pop<EventHeap>(state);
}
BENCHMARK(BM_EventHeapPushPop)->Arg(150)->Arg(10'000);

void BM_TimingWheelPushPop(benchmark::State& state) {
  queue_push_pop<TimingWheel>(state);
}
BENCHMARK(BM_TimingWheelPushPop)->Arg(150)->Arg(10'000);

// End-to-end simulator throughput in simulated packets per wall second.
void BM_FullSimulation(benchmark::State& state) {
  ScenarioOptions options;
  options.seconds = 0.01;
  options.seed = 7;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const auto cfg = make_paper_scenario("T1", options);
    LapsConfig laps_cfg;
    laps_cfg.num_services = 4;
    LapsScheduler sched(laps_cfg);
    const auto report = run_scenario(cfg, sched);
    packets += report.offered;
    benchmark::DoNotOptimize(report.delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_FullSimulation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace laps

// Like BENCHMARK_MAIN(), but unrecognized arguments (e.g. a typo'd
// --benchmark_filter) exit nonzero instead of being silently ignored.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
