// Uses the Aggressive Flow Detector standalone as a line-rate heavy-hitter
// detector — the paper's Sec. III-F hardware, outside the scheduler — and
// checks it against exact off-line analysis, alongside the single-cache and
// Space-Saving alternatives.
//
// Usage: heavy_hitter_detection [--trace=caida1] [--packets=1000000]
//                               [--json=PATH]
#include <cstdio>
#include <iostream>

#include "cache/afd.h"
#include "exp/harness.h"
#include "cache/elephant_trap.h"
#include "cache/space_saving.h"
#include "cache/topk.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  using namespace laps;

  const std::string trace_name = flags.get_string("trace", "caida1");
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 1'000'000));
  const auto harness = parse_harness_flags(flags);
  flags.finish();

  // Paper configuration: 16-entry AFC qualified through a 512-entry annex.
  AfdConfig afd_config;
  afd_config.afc_entries = 16;
  afd_config.annex_entries = 512;
  Afd afd(afd_config);

  // Same detector with the stricter promotion guard the LAPS scheduler
  // uses (a candidate must also beat the weakest AFC resident).
  AfdConfig guarded_config = afd_config;
  guarded_config.require_beat_afc_min = true;
  Afd guarded(guarded_config);

  ElephantTrap small_trap(16, 16);   // the paper's single-cache comparator
  ElephantTrap big_trap(512, 16);    // single cache at the AFD's full budget
  SpaceSaving sketch(512);           // counter-based alternative
  ExactTopK truth;                   // off-line ground truth

  auto trace = make_trace(trace_name);
  // Remember each flow key's header so we can print detected flows.
  std::unordered_map<std::uint64_t, FiveTuple> headers;
  for (std::uint64_t i = 0; i < packets; ++i) {
    const auto rec = trace->next();
    const std::uint64_t key = rec->tuple.key64();
    headers.emplace(key, rec->tuple);
    afd.access(key);
    guarded.access(key);
    small_trap.access(key);
    big_trap.access(key);
    sketch.access(key);
    truth.access(key);
  }

  std::printf("Processed %llu packets of %s (%zu distinct flows)\n\n",
              static_cast<unsigned long long>(packets), trace_name.c_str(),
              truth.distinct());

  const auto truth_set = truth.top_k_set(16);
  Table detected({"rank", "flow", "packets", "in AFC?"});
  std::size_t rank = 1;
  for (std::uint64_t key : truth.top_k(16)) {
    detected.add_row({std::to_string(rank++), headers.at(key).to_string(),
                      Table::num(static_cast<std::int64_t>(truth.count(key))),
                      afd.is_aggressive(key) ? "yes" : "NO"});
  }
  std::cout << detected.to_string() << "\n";

  auto fpr = [&](const std::vector<std::uint64_t>& claimed) {
    return Table::pct(score_detector(truth, claimed, 16).false_positive_ratio(), 1);
  };
  std::vector<std::uint64_t> ss_claim;
  for (const auto& counter : sketch.top_k(16)) ss_claim.push_back(counter.key);

  Table summary({"detector", "state", "top-16 FPR"});
  summary.add_row({"AFD, paper promotion rule", "16 AFC + 512 annex",
                   fpr(afd.aggressive_flows())});
  summary.add_row({"AFD, + AFC-min guard (LAPS default)",
                   "16 AFC + 512 annex", fpr(guarded.aggressive_flows())});
  summary.add_row({"single 16-entry LFU (paper's comparator)", "16 entries",
                   fpr(small_trap.elephants())});
  summary.add_row({"single 512-entry LFU", "512 entries",
                   fpr(big_trap.elephants())});
  summary.add_row({"Space-Saving", "512 counters", fpr(ss_claim)});
  std::cout << summary.to_string();
  std::printf(
      "\nA big single LFU also finds the elephants, but the structure the "
      "scheduler\nmust search on a migration decision is then 512-way; the "
      "AFD keeps that\ndecision structure at 16 entries.\n");

  const auto& stats = afd.stats();
  std::printf("\nAFD internals: %llu AFC hits, %llu annex hits, "
              "%llu promotions, %llu demotions.\n",
              static_cast<unsigned long long>(stats.afc_hits),
              static_cast<unsigned long long>(stats.annex_hits),
              static_cast<unsigned long long>(stats.promotions),
              static_cast<unsigned long long>(stats.demotions));

  write_json_artifact(harness.json_path, "heavy_hitter_detection", {},
                      {{"detected", &detected}, {"summary", &summary}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
