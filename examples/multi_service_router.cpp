// The paper's multi-service edge router (Fig. 5): four services — outgoing
// VPN, IP forwarding, malware scanning, incoming VPN+scan — with traffic
// that shifts over time (Eq. 1), on a 16-core NPU whose cores LAPS
// dynamically reallocates between services.
//
// Usage: multi_service_router [--seconds=0.25] [--seed=N] [--cores=16]
//                             [--json=PATH] [--timeseries=PATH]
//                             [--trace-out=PATH] [--scheduler=SPEC]
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "core/laps.h"
#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  using namespace laps;

  ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.25);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  options.num_cores = static_cast<std::size_t>(flags.get_int("cores", 16));
  // This example introspects the scheduler after the run (allocator state),
  // so it stays serial; --jobs is accepted for CLI uniformity.
  const auto harness = parse_harness_flags(flags);
  flags.finish();

  // Table IV Set 2 traffic (overload) over the CAIDA-like trace group: the
  // regime where dynamic core allocation earns its keep.
  const ScenarioConfig config = make_paper_scenario("T5", options);

  std::printf("Edge router: %zu cores, 4 services, %.2f s of traffic\n\n",
              options.num_cores, options.seconds);
  Table services({"service", "what it models", "T_proc"});
  services.add_row({service_name(ServicePath::kVpnOut),
                    "outgoing packets tunneled via VPN (IPsec encrypt)",
                    "3.7us + 0.23us/64B"});
  services.add_row({service_name(ServicePath::kIpForward),
                    "default packet forwarding", "0.5us"});
  services.add_row({service_name(ServicePath::kMalwareScan),
                    "incoming packets scanned for malware", "3.53us"});
  services.add_row({service_name(ServicePath::kVpnInScan),
                    "incoming VPN packets (decrypt + scan)",
                    "5.8us + 0.21us/64B"});
  std::cout << services.to_string() << "\n";

  // LAPS by default; --scheduler=SPEC swaps in any registry scheduler (the
  // core-allocation table below is shown only for LAPS-family schedulers).
  const std::vector<SchedulerSpec> specs =
      schedulers_or(harness, {make_scheduler_spec("laps")});
  if (specs.size() != 1) {
    throw std::invalid_argument("multi_service_router runs one scheduler; "
                                "pass a single --scheduler spec");
  }
  auto scheduler = specs.front().make();
  const SimReport report = run_observed(config, *scheduler, harness);

  Table per_service({"service", "offered", "dropped", "drop%"});
  for (std::size_t s = 0; s < kNumServices; ++s) {
    const auto offered = report.offered_by_service[s];
    const auto dropped = report.dropped_by_service[s];
    per_service.add_row(
        {service_name(static_cast<ServicePath>(s)),
         Table::num(static_cast<std::int64_t>(offered)),
         Table::num(static_cast<std::int64_t>(dropped)),
         Table::pct(offered ? static_cast<double>(dropped) /
                                  static_cast<double>(offered)
                            : 0.0)});
  }
  std::cout << per_service.to_string() << "\n";

  // How the allocator moved cores around: each service started with an
  // equal share; grants flowed toward the heavy services. Only LAPS has a
  // per-service core allocator to show.
  Table alloc({"service", "cores at end", "core ids"});
  if (const auto* laps = dynamic_cast<const LapsScheduler*>(scheduler.get())) {
    const auto& allocator = laps->allocator();
    for (std::size_t s = 0; s < kNumServices; ++s) {
      std::string ids;
      for (CoreId c : allocator.cores_of(s)) {
        if (!ids.empty()) ids += ",";
        ids += std::to_string(c);
      }
      alloc.add_row({service_name(static_cast<ServicePath>(s)),
                     std::to_string(allocator.cores_of(s).size()), ids});
    }
    std::cout << alloc.to_string() << "\n";

    std::printf("Core ownership transfers: %.0f (from %.0f requests, %.0f "
                "denied)\n",
                report.extra.at("core_transfers"),
                report.extra.at("core_requests"),
                report.extra.at("core_requests_denied"));
  }
  std::printf("Cold I-cache events: %llu (%.2f%% of packets) — "
              "only reallocated cores ever refill their I-cache.\n"
              "Out-of-order deliveries: %llu (%.4f%%)\n",
              static_cast<unsigned long long>(report.cold_cache_events),
              report.cold_cache_ratio() * 100.0,
              static_cast<unsigned long long>(report.out_of_order),
              report.ooo_ratio() * 100.0);

  JobResult result;
  result.scenario = config.name;
  result.scheduler = report.scheduler;
  result.seed = config.seed;
  result.report = report;
  write_json_artifact(harness.json_path, "multi_service_router", {result},
                      {{"services", &services},
                       {"per_service", &per_service},
                       {"allocation", &alloc}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
