// Quickstart: simulate the LAPS scheduler on one synthetic trace and print
// the run report. This is the smallest end-to-end use of the library:
//
//   trace -> traffic model -> scenario -> scheduler -> report
//
// Build & run:  ./build/examples/quickstart [--json=PATH]
//               [--timeseries=PATH] [--trace-out=PATH] [--scheduler=SPEC]
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "sim/runner.h"
#include "trace/synthetic.h"
#include "util/flags.h"

namespace {

int run(laps::Flags& flags) {
  using namespace laps;

  const auto harness = parse_harness_flags(flags);
  flags.finish();

  // 1. A header trace. The registry reproduces the paper's trace names;
  //    "caida1" is an OC-192-backbone-like stream (heavy-tailed flow sizes,
  //    ~300k flows). Any TraceSource works here, including PcapTrace for
  //    real captures.
  ScenarioConfig config;
  config.name = "quickstart";
  config.num_cores = 16;
  config.seconds = 0.02;  // simulated time
  config.seed = 1;

  // 2. Traffic: IP forwarding at a constant 20 Mpps (16 cores forward at
  //    most 32 Mpps of 64 B-equivalent packets, so this is ~2/3 load).
  ServiceTraffic traffic;
  traffic.path = ServicePath::kIpForward;
  traffic.rate = HoltWintersParams{20.0, 0.0, 0.0, 60.0, 0.0};  // Mpps
  traffic.trace = make_trace("caida1");
  config.services = {traffic};

  // 3. The scheduler under test: LAPS with the paper's defaults (16-entry
  //    AFC, 512-entry annex, 32-descriptor queues, CRC16 flow hashing).
  //    --scheduler=SPEC swaps in any registry scheduler, e.g.
  //    --scheduler=hash-migrate or --scheduler=laps:afc=64,power=1.
  const std::vector<SchedulerSpec> specs =
      schedulers_or(harness, {make_scheduler_spec("laps:services=1")});
  if (specs.size() != 1) {
    throw std::invalid_argument(
        "quickstart runs one scheduler; pass a single --scheduler spec");
  }
  auto scheduler = specs.front().make();

  // 4. Run and report. run_observed = run_scenario plus any observability
  //    probes requested on the command line (--timeseries, --trace-out).
  const SimReport report = run_observed(config, *scheduler, harness);
  std::cout << report.summary() << "\n\n";

  std::printf("Delivered %.1f%% of %llu packets at %.2f Mpps; "
              "%llu flows were migrated to balance load.\n",
              100.0 * (1.0 - report.drop_ratio()),
              static_cast<unsigned long long>(report.offered),
              report.throughput_mpps(),
              static_cast<unsigned long long>(report.flow_migrations));

  // 5. Optional machine-readable artifact (--json=PATH).
  JobResult result;
  result.scenario = config.name;
  result.scheduler = report.scheduler;
  result.seed = config.seed;
  result.report = report;
  write_json_artifact(harness.json_path, "quickstart", {result});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
