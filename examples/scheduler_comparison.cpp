// Compares every scheduler in the library on the same traffic — the
// experiment of paper Fig. 7 in miniature, on one scenario.
//
// Usage: scheduler_comparison [--scenario=T5] [--seconds=0.1] [--seed=N]
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

int main(int argc, char** argv) {
  using namespace laps;

  Flags flags(argc, argv);
  ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.1);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string id = flags.get_string("scenario", "T5");
  flags.finish();

  const ScenarioConfig config = make_paper_scenario(id, options);
  std::cout << "Scenario " << id << ": 4 services, " << config.num_cores
            << " cores, " << options.seconds << " s\n\n";

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<FcfsScheduler>());
  schedulers.push_back(std::make_unique<StaticHashScheduler>());
  schedulers.push_back(std::make_unique<AfsScheduler>());
  schedulers.push_back(std::make_unique<OracleTopKScheduler>(16));
  LapsConfig laps_config;
  laps_config.num_services = kNumServices;
  schedulers.push_back(std::make_unique<LapsScheduler>(laps_config));

  Table table({"scheduler", "drop%", "cold-cache%", "out-of-order%",
               "migrations", "p99 latency us", "throughput Mpps"});
  for (auto& scheduler : schedulers) {
    const SimReport r = run_scenario(config, *scheduler);
    table.add_row({r.scheduler, Table::pct(r.drop_ratio()),
                   Table::pct(r.cold_cache_ratio()),
                   Table::pct(r.ooo_ratio(), 4),
                   Table::num(static_cast<std::int64_t>(r.flow_migrations)),
                   Table::num(to_us(r.latency_ns.quantile(0.99)), 1),
                   Table::num(r.throughput_mpps(), 3)});
  }
  std::cout << table.to_string()
            << "\nLAPS keeps I-caches warm (cold% ~ 0) by partitioning cores "
               "among services,\nand keeps packet order by migrating only "
               "AFC-resident aggressive flows.\n";
  return 0;
}
