// Compares every scheduler in the library on the same traffic — the
// experiment of paper Fig. 7 in miniature, on one scenario. Also the
// smallest use of the parallel experiment engine: one plan, one scenario,
// five schedulers, run on --jobs threads with identical results.
//
// Usage: scheduler_comparison [--scenario=T5] [--seconds=0.1] [--seed=N]
//                             [--jobs=N] [--json=PATH] [--scheduler=LIST]
#include <iostream>
#include <memory>
#include <vector>

#include "exp/harness.h"
#include "exp/scheduler_registry.h"
#include "exp/trace_store.h"
#include "sim/scenarios.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  using namespace laps;

  ScenarioOptions options;
  options.seconds = flags.get_double("seconds", 0.1);
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string id = flags.get_string("scenario", "T5");
  const auto harness = parse_harness_flags(flags);
  flags.finish();

  auto store = std::make_shared<TraceStore>();
  options.trace_factory = store->factory();

  std::cout << "Scenario " << id << ": 4 services, " << options.num_cores
            << " cores, " << options.seconds << " s\n\n";

  // Registry specs; --scheduler=LIST replaces the whole table. The default
  // laps/oracle specs match the paper configuration (4 services, K = 16).
  const std::vector<SchedulerSpec> schedulers =
      schedulers_or(harness, {
                                 make_scheduler_spec("fcfs"),
                                 make_scheduler_spec("hash"),
                                 make_scheduler_spec("afs"),
                                 make_scheduler_spec("oracle"),
                                 make_scheduler_spec("laps"),
                             });

  ExperimentPlan plan(options.seed);
  plan.add_grid({id}, schedulers, {options.seed},
                [options](const std::string& scenario, std::uint64_t seed) {
                  ScenarioOptions o = options;
                  o.seed = seed;
                  return make_paper_scenario(scenario, o);
                },
                observed_runner(harness));

  ParallelRunner runner = make_runner(harness);
  const auto results = runner.run(plan);
  if (const int rc = grid_abort_code(runner)) return rc;

  Table table({"scheduler", "drop%", "cold-cache%", "out-of-order%",
               "migrations", "p99 latency us", "throughput Mpps"});
  for (const auto& res : results) {
    const SimReport& r = res.report;
    table.add_row({res.scheduler, Table::pct(r.drop_ratio()),
                   Table::pct(r.cold_cache_ratio()),
                   Table::pct(r.ooo_ratio(), 4),
                   Table::num(static_cast<std::int64_t>(r.flow_migrations)),
                   Table::num(to_us(r.latency_ns.quantile(0.99)), 1),
                   Table::num(r.throughput_mpps(), 3)});
  }
  std::cout << table.to_string()
            << "\nLAPS keeps I-caches warm (cold% ~ 0) by partitioning cores "
               "among services,\nand keeps packet order by migrating only "
               "AFC-resident aggressive flows.\n";

  write_json_artifact(harness.json_path, "scheduler_comparison", results,
                      {{"comparison", &table}});
  return grid_exit_code(runner, results);
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
