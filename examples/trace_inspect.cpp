// Trace tooling: export a synthetic trace to a real .pcap file, read it
// back with the library's pcap reader, and print flow statistics — the
// workflow for swapping the synthetic substitutes for real captures.
//
// Usage: trace_inspect [--trace=auck1] [--packets=50000] [--out=/tmp/x.pcap]
//        trace_inspect --pcap=/path/to/capture.pcap   (inspect a real file)
//        trace_inspect [--json=PATH]
#include <cstdio>
#include <iostream>

#include "exp/harness.h"
#include "trace/flow_stats.h"
#include "trace/pcap_io.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/tableio.h"

namespace {

int run(laps::Flags& flags) {
  using namespace laps;

  const std::string pcap_in = flags.get_string("pcap", "");
  const std::string trace_name = flags.get_string("trace", "auck1");
  const auto packets =
      static_cast<std::uint64_t>(flags.get_int("packets", 50'000));
  const std::string out = flags.get_string("out", "/tmp/laps_trace.pcap");
  const auto harness = parse_harness_flags(flags);
  flags.finish();

  std::string path = pcap_in;
  if (path.empty()) {
    // Export a synthetic trace as a real pcap file (Ethernet/IPv4 frames,
    // readable by tcpdump/wireshark as well as by PcapReader below).
    auto trace = make_trace(trace_name);
    PcapWriter writer(out);
    std::uint64_t ts = 0;
    for (std::uint64_t i = 0; i < packets; ++i) {
      writer.write(ts, *trace->next());
      ts += 1'000;  // 1 us spacing
    }
    writer.close();
    std::printf("Wrote %llu packets of '%s' to %s\n\n",
                static_cast<unsigned long long>(writer.written()),
                trace_name.c_str(), out.c_str());
    path = out;
  }

  // Read it back through the TraceSource interface and analyze.
  PcapTrace trace(path);
  FlowStatsAnalyzer stats;
  stats.consume(trace, ~0ULL);

  std::printf("%s: %llu packets, %zu flows, %llu bytes\n\n", path.c_str(),
              static_cast<unsigned long long>(stats.total_packets()),
              stats.distinct_flows(),
              static_cast<unsigned long long>(stats.total_bytes()));

  Table top({"rank", "packets", "bytes", "share"});
  const auto ranked = stats.by_rank();
  for (std::size_t r = 0; r < std::min<std::size_t>(10, ranked.size()); ++r) {
    top.add_row({std::to_string(r + 1),
                 Table::num(static_cast<std::int64_t>(ranked[r].packets)),
                 Table::num(static_cast<std::int64_t>(ranked[r].bytes)),
                 Table::pct(static_cast<double>(ranked[r].packets) /
                            static_cast<double>(stats.total_packets()))});
  }
  std::cout << top.to_string();
  std::printf("\nTop 16 flows carry %s of the packets — the skew that "
              "drives the paper's load-balancing problem.\n",
              Table::pct(stats.top_share(16)).c_str());

  write_json_artifact(harness.json_path, "trace_inspect", {},
                      {{"top_flows", &top}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return laps::guarded_main(argc, argv, run);
}
