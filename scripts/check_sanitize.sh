#!/usr/bin/env bash
# Builds the ASan+UBSan configuration and runs the full test suite under it.
# Any sanitizer report aborts the offending test (-fno-sanitize-recover=all),
# so a green run means the suite is clean of UB and memory errors.
#
# Usage: scripts/check_sanitize.sh [ctest-args...]
#        scripts/check_sanitize.sh --chaos [chaos_soak-args...]
#        scripts/check_sanitize.sh --tsan [ctest-args...]
#        scripts/check_sanitize.sh --resilience
#        scripts/check_sanitize.sh --cluster [fig_cluster_dispatch-args...]
#
# --chaos builds and runs the chaos_soak fault-injection grid under the
# sanitizers instead of ctest: every fault path (core flush, stall resume,
# adversarial traffic merge, recovery) executes with memory/UB checking on.
# Default grid is small enough for CI; pass chaos_soak flags to widen it.
#
# --tsan builds the ThreadSanitizer configuration (its own build-tsan tree;
# TSan and ASan cannot share a process) and runs the concurrency-sensitive
# subset: the telemetry registry (sharded writers + concurrent
# snapshot_counters), the snapshot ring, the parallel runner, and the
# duration parser that both flag paths share. Pass ctest args to widen or
# narrow the selection.
#
# --resilience runs the resilient-runner proof under ASan+UBSan: the
# resilience test suite (journal codec round-trips, watchdog/retry state
# machine, and the SIGTERM/SIGKILL kill-and-resume byte-identity
# differentials), then a chaos_soak slice with runner-level fault injection
# on (--runner-chaos: seeded transient throws and watchdog-cancelled hangs
# against the runner itself, every failure retried to success).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--chaos" ]]; then
  shift
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" --target chaos_soak
  exec ./build-asan/bench/chaos_soak --schedules=12 --jobs=2 --seconds=0.005 "$@"
fi

if [[ "${1:-}" == "--resilience" ]]; then
  shift
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" --target resilience_test chaos_soak
  ctest --preset asan --output-on-failure \
    -R 'Journal|HistogramRestore|ParallelRunner|ResumeDifferential'
  # Runner chaos soak: deterministic seed, transient throws AND hangs
  # injected into the runner; retries + watchdog must absorb every one
  # (exit 0) and the invariant checks inside each schedule still hold.
  exec ./build-asan/bench/chaos_soak --schedules=8 --jobs=2 --seconds=0.004 \
    --runner-chaos=1905 --runner-chaos-fail=0.2 --runner-chaos-hang=0.05 \
    --job-timeout=2s --job-retries=6 "$@"
fi

if [[ "${1:-}" == "--cluster" ]]; then
  shift
  # Cluster-layer proof under ASan+UBSan: the shards=1 byte-identity and
  # lockstep-vs-threaded differentials, dispatcher-spec parsing/fuzzing,
  # and the ReplayStream fork regression — then a threaded
  # fig_cluster_dispatch grid so every dispatcher's hot path executes with
  # memory/UB checking on. Pass fig_cluster_dispatch flags to widen it.
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" \
    --target cluster_test registry_test traffic_test fig_cluster_dispatch
  ctest --preset asan --output-on-failure \
    -R 'Cluster|DispatcherSpec|DispatcherRoundTrip|ReplayFork'
  exec ./build-asan/bench/fig_cluster_dispatch --shards=3 --cores=2 \
    --seconds=0.004 --jobs=3 "$@"
fi

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  if [[ $# -eq 0 ]]; then
    exec ctest --preset tsan -R 'Telemetry|Metrics|SnapshotRing|ParallelRunner|Duration'
  fi
  exec ctest --preset tsan "$@"
fi

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan "$@"
