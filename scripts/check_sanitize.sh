#!/usr/bin/env bash
# Builds the ASan+UBSan configuration and runs the full test suite under it.
# Any sanitizer report aborts the offending test (-fno-sanitize-recover=all),
# so a green run means the suite is clean of UB and memory errors.
#
# Usage: scripts/check_sanitize.sh [ctest-args...]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan "$@"
