#!/usr/bin/env bash
# Builds the ASan+UBSan configuration and runs the full test suite under it.
# Any sanitizer report aborts the offending test (-fno-sanitize-recover=all),
# so a green run means the suite is clean of UB and memory errors.
#
# Usage: scripts/check_sanitize.sh [ctest-args...]
#        scripts/check_sanitize.sh --chaos [chaos_soak-args...]
#        scripts/check_sanitize.sh --tsan [ctest-args...]
#
# --chaos builds and runs the chaos_soak fault-injection grid under the
# sanitizers instead of ctest: every fault path (core flush, stall resume,
# adversarial traffic merge, recovery) executes with memory/UB checking on.
# Default grid is small enough for CI; pass chaos_soak flags to widen it.
#
# --tsan builds the ThreadSanitizer configuration (its own build-tsan tree;
# TSan and ASan cannot share a process) and runs the concurrency-sensitive
# subset: the telemetry registry (sharded writers + concurrent
# snapshot_counters), the snapshot ring, the parallel runner, and the
# duration parser that both flag paths share. Pass ctest args to widen or
# narrow the selection.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--chaos" ]]; then
  shift
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" --target chaos_soak
  exec ./build-asan/bench/chaos_soak --schedules=12 --jobs=2 --seconds=0.005 "$@"
fi

if [[ "${1:-}" == "--tsan" ]]; then
  shift
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  if [[ $# -eq 0 ]]; then
    exec ctest --preset tsan -R 'Telemetry|Metrics|SnapshotRing|ParallelRunner|Duration'
  fi
  exec ctest --preset tsan "$@"
fi

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan "$@"
