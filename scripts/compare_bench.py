#!/usr/bin/env python3
"""Compare a fresh perf_kernel run against the committed baseline.

Usage:
    perf_kernel --seconds=0.02 --reps=5 --json=fresh.json
    scripts/compare_bench.py fresh.json [--baseline BENCH_kernel.json]
                             [--threshold 0.15] [--gate NAME=FRAC ...]
    scripts/compare_bench.py --self-test

Exits non-zero when any kernel present in both documents regressed by more
than its threshold in mpps, or when the fresh run's FlowAuditProbe overhead
exceeds the audit budget (the flow-audit PR's <= 15% acceptance bar), or
when its TelemetryProbe overhead exceeds the telemetry budget (the live
telemetry PR's <= 5% bar). Kernels only present on one side are reported
but never fail the gate, so adding a bench row does not require
regenerating the baseline in the same change; that also holds for gated
kernels — a --gate naming a row that the fresh run has but the baseline
lacks prints a "new row, skipping" notice and gates from the next baseline
regeneration onward.

The default threshold is deliberately loose (15%): shared CI runners are
noisy, and this gate exists to catch structural regressions (an accidental
O(n) scan on the fast path, a probe hook gone virtual-and-cold), not
single-digit jitter. `--gate NAME=FRAC` tightens (or loosens) the bar for
one kernel — e.g. `--gate engine=0.02` holds the bare-engine row to 2% so
pay-for-what-you-use features (fault injection, probes) cannot tax the
fault-free fast path and hide inside the loose global threshold. A gate
naming a kernel absent from the fresh run is an error: a tightened gate
that silently stopped gating would defeat its purpose. Absent from only
the baseline is the one benign case (the row is brand new), announced
loudly rather than failed.

Every failure path exits with a one-line message naming the file and the
problem; `--self-test` exercises those paths plus the gate arithmetic with
synthetic documents (no bench run needed), so CI can verify the gate itself.
"""

import argparse
import json
import sys

AUDIT_BUDGET = 0.15      # acceptance bar for FlowAuditProbe overhead
TELEMETRY_BUDGET = 0.05  # acceptance bar for TelemetryProbe overhead
SCHEMA = "laps-perf-v1"


def load(path):
    """Reads and validates one perf document; exits with a clear message on
    any malformation so CI logs state the problem, not a traceback."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        sys.exit(f"{path}: file not found — run perf_kernel with "
                 f"--json={path} first (or pass --baseline for the "
                 "committed reference)")
    except json.JSONDecodeError as err:
        sys.exit(f"{path}: not valid JSON ({err}) — was the bench "
                 "interrupted mid-write?")
    schema = doc.get("schema")
    if schema != SCHEMA:
        sys.exit(f"{path}: expected schema {SCHEMA}, got {schema!r}")
    kernels = {}
    for i, entry in enumerate(doc.get("kernels", [])):
        name = entry.get("name")
        if not name:
            sys.exit(f"{path}: kernels[{i}] has no \"name\" field")
        mpps = entry.get("mpps")
        if not isinstance(mpps, (int, float)):
            sys.exit(f"{path}: kernel {name!r} has no numeric \"mpps\" "
                     f"field (got {mpps!r})")
        kernels[name] = entry
    if not kernels:
        sys.exit(f"{path}: no kernels in document — the bench produced an "
                 "empty run")
    return doc, kernels


def parse_gates(items):
    """['engine=0.02', ...] -> {'engine': 0.02}; exits on malformed items."""
    gates = {}
    for item in items or []:
        name, sep, frac = item.partition("=")
        if not sep or not name:
            sys.exit(f"--gate {item!r}: expected NAME=FRAC "
                     "(e.g. --gate engine=0.02)")
        try:
            value = float(frac)
        except ValueError:
            sys.exit(f"--gate {item!r}: {frac!r} is not a number")
        if not 0 < value < 1:
            sys.exit(f"--gate {item!r}: fraction must be in (0, 1)")
        gates[name] = value
    return gates


def compare(fresh_doc, fresh, base, threshold, gates):
    """Returns (report_lines, failure_messages). Pure so --self-test can
    drive it with synthetic documents."""
    lines = []
    failures = []
    for name in gates:
        if name not in fresh:
            failures.append(
                f"--gate {name}={gates[name]}: kernel {name!r} is not in "
                "the fresh run; a gate that gates nothing is a config error")
        elif name not in base:
            # A brand-new bench row cannot have a baseline counterpart yet;
            # the gate arms itself at the next baseline regeneration.
            lines.append(
                f"--gate {name}={gates[name]}: new row, skipping "
                "(no baseline counterpart; gates after the next "
                "BENCH_kernel.json regeneration)")
    lines.append(f"{'kernel':<16} {'baseline':>10} {'fresh':>10} {'delta':>8}")
    for name in base:
        if name not in fresh:
            lines.append(f"{name:<16} {base[name]['mpps']:>10.3f} "
                         f"{'absent':>10} {'--':>8}  (not gated)")
            continue
        b, f = base[name]["mpps"], fresh[name]["mpps"]
        if b <= 0:
            failures.append(
                f"{name}: baseline mpps is {b} — a zero/negative baseline "
                "cannot gate anything; regenerate BENCH_kernel.json")
            continue
        bar = gates.get(name, threshold)
        delta = (f - b) / b
        verdict = ""
        if delta < -bar:
            verdict = "  REGRESSION"
            failures.append(
                f"{name}: {b:.3f} -> {f:.3f} mpps "
                f"({delta:+.1%}, threshold -{bar:.0%})")
        lines.append(f"{name:<16} {b:>10.3f} {f:>10.3f} {delta:>+8.1%}"
                     f"{verdict}")
    for name in fresh:
        if name not in base:
            lines.append(f"{name:<16} {'absent':>10} "
                         f"{fresh[name]['mpps']:>10.3f} {'--':>8}"
                         "  (not gated)")

    for field, budget in (("audit_probe_overhead", AUDIT_BUDGET),
                          ("telemetry_probe_overhead", TELEMETRY_BUDGET)):
        overhead = fresh_doc.get(field)
        if overhead is None:
            continue
        ok = overhead <= budget
        lines.append(f"{field}: {overhead:.1%} (budget {budget:.0%}) "
                     f"{'ok' if ok else 'OVER BUDGET'}")
        if not ok:
            failures.append(
                f"{field} {overhead:.1%} exceeds the {budget:.0%} budget")
    return lines, failures


def self_test():
    """Exercises the gate arithmetic and failure paths without a bench run."""
    def doc(**mpps):
        return {"schema": SCHEMA,
                "kernels": [{"name": n, "mpps": v} for n, v in mpps.items()]}

    def run(fresh, base, threshold=0.15, gates=None):
        fresh_kernels = {k["name"]: k for k in fresh["kernels"]}
        base_kernels = {k["name"]: k for k in base["kernels"]}
        return compare(fresh, fresh_kernels, base_kernels, threshold,
                       gates or {})

    checks = []

    def check(label, got, want):
        checks.append((label, got == want, got, want))

    # Within the loose threshold: no failure.
    _, fails = run(doc(engine=9.0), doc(engine=10.0))
    check("10% dip passes the default 15% gate", len(fails), 0)
    # Beyond it: exactly one failure naming the kernel.
    _, fails = run(doc(engine=8.0), doc(engine=10.0))
    check("20% dip fails the default gate", len(fails), 1)
    check("failure names the kernel", "engine" in (fails or [""])[0], True)
    # A per-kernel gate overrides the global threshold.
    _, fails = run(doc(engine=9.7), doc(engine=10.0), gates={"engine": 0.02})
    check("3% dip fails a 2% per-kernel gate", len(fails), 1)
    _, fails = run(doc(engine=9.9), doc(engine=10.0), gates={"engine": 0.02})
    check("1% dip passes a 2% per-kernel gate", len(fails), 0)
    # The gate only tightens its kernel; others keep the global bar.
    _, fails = run(doc(engine=10.0, probes=9.0), doc(engine=10.0, probes=10.0),
                   gates={"engine": 0.02})
    check("ungated kernel keeps the loose bar", len(fails), 0)
    # Gating a kernel absent from the fresh run is a config error.
    _, fails = run(doc(engine=10.0), doc(engine=10.0), gates={"ghost": 0.02})
    check("gate on a kernel missing from fresh fails", len(fails), 1)
    # ... but a gated row that is new in the fresh run (no baseline
    # counterpart yet) is announced and skipped, never failed.
    lines, fails = run(doc(engine=10.0, fresh_row=10.0), doc(engine=10.0),
                       gates={"fresh_row": 0.05})
    check("gate on a new fresh-only row never fails", len(fails), 0)
    check("new gated row announces the skip",
          any("new row, skipping" in ln for ln in lines), True)
    # One-sided kernels are reported but never gated.
    _, fails = run(doc(engine=10.0, extra=1.0), doc(engine=10.0, gone=1.0))
    check("one-sided kernels never gate", len(fails), 0)
    # A zero baseline is a loud config error, not a ZeroDivisionError.
    _, fails = run(doc(engine=10.0), doc(engine=0.0))
    check("zero baseline fails loudly", len(fails), 1)
    # Audit budget enforcement rides along.
    over = doc(engine=10.0)
    over["audit_probe_overhead"] = 0.20
    _, fails = run(over, doc(engine=10.0))
    check("audit overhead over budget fails", len(fails), 1)
    # Telemetry budget enforcement too, at its own (tighter) bar.
    over = doc(engine=10.0)
    over["telemetry_probe_overhead"] = 0.07
    _, fails = run(over, doc(engine=10.0))
    check("telemetry overhead over budget fails", len(fails), 1)
    under = doc(engine=10.0)
    under["telemetry_probe_overhead"] = 0.03
    _, fails = run(under, doc(engine=10.0))
    check("telemetry overhead under budget passes", len(fails), 0)
    # Improvements never fail.
    _, fails = run(doc(engine=20.0), doc(engine=10.0))
    check("speedups pass", len(fails), 0)

    bad = [c for c in checks if not c[1]]
    for label, ok, got, want in checks:
        print(f"  {'ok  ' if ok else 'FAIL'} {label}"
              + ("" if ok else f" (got {got!r}, want {want!r})"))
    if bad:
        print(f"\nself-test: {len(bad)}/{len(checks)} checks failed",
              file=sys.stderr)
        return 1
    print(f"\nself-test: all {len(checks)} checks passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="?",
                    help="perf_kernel JSON from the current build")
    ap.add_argument("--baseline", default="BENCH_kernel.json",
                    help="committed reference JSON (default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated mpps regression (default: %(default)s)")
    ap.add_argument("--gate", action="append", metavar="NAME=FRAC",
                    help="per-kernel threshold override, repeatable "
                         "(e.g. --gate engine=0.02)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic itself and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.fresh is None:
        ap.error("fresh JSON path required (or use --self-test)")
    gates = parse_gates(args.gate)

    fresh_doc, fresh = load(args.fresh)
    _, base = load(args.baseline)

    lines, failures = compare(fresh_doc, fresh, base, args.threshold, gates)
    for line in lines:
        print(line)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: no kernel regressed beyond its threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
