#!/usr/bin/env python3
"""Compare a fresh perf_kernel run against the committed baseline.

Usage:
    perf_kernel --seconds=0.02 --reps=5 --json=fresh.json
    scripts/compare_bench.py fresh.json [--baseline BENCH_kernel.json]
                             [--threshold 0.15]

Exits non-zero when any kernel present in both documents regressed by more
than --threshold in mpps, or when the fresh run's FlowAuditProbe overhead
exceeds the audit budget (the tentpole's <= 15% acceptance bar). Kernels
only present on one side are reported but never fail the gate, so adding a
bench row does not require regenerating the baseline in the same change.

The default threshold is deliberately loose (15%): shared CI runners are
noisy, and this gate exists to catch structural regressions (an accidental
O(n) scan on the fast path, a probe hook gone virtual-and-cold), not
single-digit jitter.
"""

import argparse
import json
import sys

AUDIT_BUDGET = 0.15  # acceptance bar for FlowAuditProbe overhead


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "laps-perf-v1":
        sys.exit(f"{path}: expected schema laps-perf-v1, got {schema!r}")
    kernels = {k["name"]: k for k in doc.get("kernels", [])}
    if not kernels:
        sys.exit(f"{path}: no kernels in document")
    return doc, kernels


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="perf_kernel JSON from the current build")
    ap.add_argument("--baseline", default="BENCH_kernel.json",
                    help="committed reference JSON (default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated mpps regression (default: %(default)s)")
    args = ap.parse_args()

    fresh_doc, fresh = load(args.fresh)
    _, base = load(args.baseline)

    failures = []
    print(f"{'kernel':<16} {'baseline':>10} {'fresh':>10} {'delta':>8}")
    for name in base:
        if name not in fresh:
            print(f"{name:<16} {base[name]['mpps']:>10.3f} {'absent':>10}"
                  f" {'--':>8}  (not gated)")
            continue
        b, f = base[name]["mpps"], fresh[name]["mpps"]
        delta = (f - b) / b
        verdict = ""
        if delta < -args.threshold:
            verdict = "  REGRESSION"
            failures.append(
                f"{name}: {b:.3f} -> {f:.3f} mpps "
                f"({delta:+.1%}, threshold -{args.threshold:.0%})")
        print(f"{name:<16} {b:>10.3f} {f:>10.3f} {delta:>+8.1%}{verdict}")
    for name in fresh:
        if name not in base:
            print(f"{name:<16} {'absent':>10} {fresh[name]['mpps']:>10.3f}"
                  f" {'--':>8}  (not gated)")

    audit = fresh_doc.get("audit_probe_overhead")
    if audit is not None:
        ok = audit <= AUDIT_BUDGET
        print(f"audit_probe_overhead: {audit:.1%} "
              f"(budget {AUDIT_BUDGET:.0%}) {'ok' if ok else 'OVER BUDGET'}")
        if not ok:
            failures.append(
                f"audit_probe_overhead {audit:.1%} exceeds the "
                f"{AUDIT_BUDGET:.0%} budget")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: no kernel regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
