#include "baselines/adaptive_hash.h"

#include <algorithm>
#include <numeric>

namespace laps {

void AdaptiveHashScheduler::attach(std::size_t num_cores) {
  StaticHashScheduler::attach(num_cores);
  bucket_count_.assign(table_.size(), 0);
  seen_ = 0;
  bundle_moves_ = 0;
  rebalances_ = 0;
}

std::uint64_t AdaptiveHashScheduler::measured_core_load(CoreId core) const {
  std::uint64_t load = 0;
  for (std::size_t b = 0; b < table_.size(); ++b) {
    if (table_[b] == core) load += bucket_count_[b];
  }
  return load;
}

std::size_t AdaptiveHashScheduler::rebalance() {
  ++rebalances_;
  std::vector<std::uint64_t> core_load(num_cores_, 0);
  for (std::size_t b = 0; b < table_.size(); ++b) {
    core_load[table_[b]] += bucket_count_[b];
  }
  const std::uint64_t total =
      std::accumulate(core_load.begin(), core_load.end(), std::uint64_t{0});
  const double avg =
      static_cast<double>(total) / static_cast<double>(num_cores_);

  std::size_t moves = 0;
  while (moves < options_.max_moves_per_period) {
    const auto max_it = std::max_element(core_load.begin(), core_load.end());
    const auto min_it = std::min_element(core_load.begin(), core_load.end());
    if (static_cast<double>(*max_it) <= (1.0 + options_.slack) * avg) break;

    const CoreId hot = static_cast<CoreId>(max_it - core_load.begin());
    const CoreId cold = static_cast<CoreId>(min_it - core_load.begin());
    // Pick the hot core's largest bucket that still fits under the average
    // at the cold core — moving the biggest helpful chunk converges with
    // the fewest bundle disruptions.
    const std::uint64_t headroom =
        avg > static_cast<double>(*min_it)
            ? static_cast<std::uint64_t>(avg) - *min_it
            : 0;
    std::size_t best_bucket = table_.size();
    std::uint64_t best_size = 0;
    for (std::size_t b = 0; b < table_.size(); ++b) {
      if (table_[b] != hot) continue;
      if (bucket_count_[b] > best_size && bucket_count_[b] <= headroom) {
        best_size = bucket_count_[b];
        best_bucket = b;
      }
    }
    if (best_bucket == table_.size() || best_size == 0) break;  // stuck
    table_[best_bucket] = cold;
    *max_it -= best_size;
    *min_it += best_size;
    ++bundle_moves_;
    ++moves;
  }

  // Exponential decay: the measurement window tracks recent traffic.
  for (auto& count : bucket_count_) count /= 2;
  return moves;
}

CoreId AdaptiveHashScheduler::schedule(const SimPacket& pkt,
                                       const NpuView& view) {
  static_cast<void>(view);
  const std::size_t bucket = bucket_of(pkt);
  ++bucket_count_[bucket];
  if (++seen_ % options_.period == 0) rebalance();
  return table_[bucket];
}

CombinedAdaptiveScheduler::CombinedAdaptiveScheduler(CombinedOptions options)
    : AdaptiveHashScheduler(options.adaptive),
      combined_(options),
      detector_(options.afd),
      pins_(options.migration_table_capacity) {}

void CombinedAdaptiveScheduler::attach(std::size_t num_cores) {
  AdaptiveHashScheduler::attach(num_cores);
  detector_.reset();
  pins_.clear();
  aggressive_migrations_ = 0;
}

CoreId CombinedAdaptiveScheduler::schedule(const SimPacket& pkt,
                                           const NpuView& view) {
  const std::uint64_t key = pkt.flow_key();
  detector_.observe(key);

  // Flow pins take priority over the (adaptive) hash path.
  if (const auto pin = pins_.lookup(key)) {
    // Keep the bundle counters honest: attribute the packet to its bucket
    // so the adaptive layer sees true bundle weights.
    ++bucket_count_[bucket_of(pkt)];
    if (++seen_ % options_.period == 0) rebalance();
    return *pin;
  }

  CoreId target = AdaptiveHashScheduler::schedule(pkt, view);
  if (view.cores()[target].queue_len >= combined_.high_thresh) {
    CoreId best = target;
    std::uint32_t best_load = view.load(target);
    for (std::size_t c = 0; c < num_cores_; ++c) {
      const std::uint32_t load = view.load(static_cast<CoreId>(c));
      if (load < best_load) {
        best_load = load;
        best = static_cast<CoreId>(c);
      }
    }
    if (best != target &&
        view.cores()[best].queue_len < combined_.high_thresh &&
        detector_.is_aggressive(key)) {
      pins_.add(key, best);
      detector_.invalidate(key);
      ++aggressive_migrations_;
      target = best;
    }
  }
  return target;
}

std::map<std::string, double> CombinedAdaptiveScheduler::extra_stats() const {
  auto stats = AdaptiveHashScheduler::extra_stats();
  stats["aggressive_migrations"] = static_cast<double>(aggressive_migrations_);
  stats["afd_promotions"] = static_cast<double>(detector_.stats().promotions);
  return stats;
}

}  // namespace laps
