#pragma once

#include <cstdint>
#include <vector>

#include "baselines/static_hash.h"
#include "cache/afd.h"
#include "core/aggressive_detector.h"
#include "core/migration_table.h"

namespace laps {

/// Adaptive hashing — Shi & Kencl's sequence-preserving adaptive load
/// balancer (ANCS'06, the paper's reference [36]/[22]): the bucket-to-core
/// mapping is re-weighted periodically from *measured* per-bucket load, so
/// persistent bundle skew is corrected without per-flow state. Bundle moves
/// preserve order within each flow (a flow changes core only when its whole
/// bundle moves).
///
/// Every `period` packets: compute per-core load from bucket counters; while
/// the most loaded core exceeds (1 + slack) * average, move its
/// lightest-that-helps bucket to the least loaded core, up to
/// `max_moves_per_period`. Counters then decay by half so the measurement
/// tracks the recent window.
class AdaptiveHashScheduler : public StaticHashScheduler {
 public:
  struct Options {
    std::uint64_t period = 8'192;         ///< packets between rebalances
    double slack = 0.15;                   ///< tolerated overload fraction
    std::size_t max_moves_per_period = 4;  ///< bundle moves per rebalance
    std::size_t num_buckets = 0;           ///< 0 = StaticHash default
  };

  AdaptiveHashScheduler() : AdaptiveHashScheduler(Options{}) {}
  explicit AdaptiveHashScheduler(Options options)
      : StaticHashScheduler(options.num_buckets), options_(options) {}

  void attach(std::size_t num_cores) override;
  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;
  std::string name() const override { return "AdaptiveHash"; }

  std::map<std::string, double> extra_stats() const override {
    return {{"bundle_moves", static_cast<double>(bundle_moves_)},
            {"rebalances", static_cast<double>(rebalances_)}};
  }

  /// Measured load currently attributed to a core (sum of its buckets'
  /// counters); for tests.
  std::uint64_t measured_core_load(CoreId core) const;

 protected:
  /// One rebalance pass; returns the number of bundle moves performed.
  std::size_t rebalance();

  Options options_;
  std::vector<std::uint64_t> bucket_count_;  // packets per bucket (window)
  std::uint64_t seen_ = 0;
  std::uint64_t bundle_moves_ = 0;
  std::uint64_t rebalances_ = 0;
};

/// Combined scheme — Shi & Kencl's adaptive hashing *plus* migration of
/// aggressive bundles/flows (the paper's [36], called out in Sec. VI as
/// "complementary to LAPS"): adaptive bundle re-weighting handles the slow
/// skew, while AFD-identified elephants are pinned to the least-loaded core
/// on acute imbalance, exactly like LAPS's migration path but without
/// service partitioning or dynamic core allocation.
class CombinedAdaptiveScheduler final : public AdaptiveHashScheduler {
 public:
  struct CombinedOptions {
    Options adaptive;
    AfdConfig afd = default_afd();
    std::uint32_t high_thresh = 24;
    std::size_t migration_table_capacity = 1024;

    static AfdConfig default_afd() {
      AfdConfig cfg;
      cfg.require_beat_afc_min = true;
      return cfg;
    }
  };

  CombinedAdaptiveScheduler() : CombinedAdaptiveScheduler(CombinedOptions{}) {}
  explicit CombinedAdaptiveScheduler(CombinedOptions options);

  void attach(std::size_t num_cores) override;
  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;
  std::string name() const override { return "Adaptive+AFD"; }

  std::map<std::string, double> extra_stats() const override;

  /// Live AFC contents for accuracy probes (shared AggressiveDetector
  /// mechanism; read-only, never perturbs the detector).
  std::vector<std::uint64_t> aggressive_snapshot() const override {
    return detector_.snapshot();
  }

 private:
  CombinedOptions combined_;
  AggressiveDetector detector_;
  MigrationTable pins_;
  std::uint64_t aggressive_migrations_ = 0;
};

}  // namespace laps
