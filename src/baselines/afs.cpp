#include "baselines/afs.h"

namespace laps {

CoreId AfsScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  const std::size_t bucket = bucket_of(pkt);
  CoreId target = table_[bucket];
  ++seen_;
  const bool cooled_down =
      bundle_shifts_ == 0 || seen_ - last_shift_ >= shift_cooldown_;
  if (cooled_down && view.cores()[target].queue_len >= high_thresh_) {
    CoreId best = target;
    std::uint32_t best_load = view.load(target);
    for (std::size_t c = 0; c < num_cores_; ++c) {
      if (live_.is_down(static_cast<CoreId>(c))) {
        continue;  // never shift a bundle onto a dead core
      }
      const std::uint32_t load = view.load(static_cast<CoreId>(c));
      if (load < best_load) {
        best_load = load;
        best = static_cast<CoreId>(c);
      }
    }
    if (best != target) {
      table_[bucket] = best;  // shift the whole (arbitrary) flow bundle
      ++bundle_shifts_;
      last_shift_ = seen_;
      target = best;
    }
  }
  return target;
}

}  // namespace laps
