#pragma once

#include "baselines/static_hash.h"

namespace laps {

/// Arbitrary Flow Shift — Dittmann & Herkersdorf's load balancer, the
/// paper's main prior-work comparator (Sec. V-A, Fig. 7/9).
///
/// Hash-based like StaticHash, but when an arriving packet's target core is
/// overloaded (queue at or beyond `high_thresh`), the packet's *entire hash
/// bucket* is remapped to the least-loaded core. The bucket carries whatever
/// flows happen to hash there — aggressive or not — hence "arbitrary": many
/// low-rate flows get migrated (paying FM penalties and reordering) for
/// every aggressive flow that actually needed to move.
/// Dittmann's balancer re-evaluates the mapping periodically rather than on
/// every packet; `shift_cooldown` (in packets) models that period. Without
/// it, per-packet bundle shifts thrash every flow through FM penalties and
/// AFS collapses below even the no-migration baseline — far worse than the
/// scheme the paper compares against.
class AfsScheduler final : public StaticHashScheduler {
 public:
  explicit AfsScheduler(std::uint32_t high_thresh = 24,
                        std::size_t num_buckets = 0,
                        std::uint64_t shift_cooldown = 2048)
      : StaticHashScheduler(num_buckets),
        high_thresh_(high_thresh),
        shift_cooldown_(shift_cooldown) {}

  void attach(std::size_t num_cores) override {
    StaticHashScheduler::attach(num_cores);
    seen_ = 0;
    last_shift_ = 0;
    bundle_shifts_ = 0;
  }

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "AFS"; }

  std::map<std::string, double> extra_stats() const override {
    return {{"bundle_shifts", static_cast<double>(bundle_shifts_)}};
  }

 private:
  std::uint32_t high_thresh_;
  std::uint64_t shift_cooldown_;
  std::uint64_t seen_ = 0;
  std::uint64_t last_shift_ = 0;
  std::uint64_t bundle_shifts_ = 0;
};

}  // namespace laps
