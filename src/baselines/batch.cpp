#include "baselines/batch.h"

namespace laps {

CoreId BatchScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  const std::uint64_t key = pkt.flow_key();
  const auto it = current_.find(key);
  if (it != current_.end() && it->second.remaining > 0) {
    --it->second.remaining;
    const CoreId core = it->second.core;
    // Reclaim the per-flow slot as soon as the batch completes, so state
    // tracks *active* batches rather than every flow ever seen.
    if (it->second.remaining == 0) current_.erase(it);
    return core;
  }

  // New batch: least-loaded core right now.
  CoreId best = 0;
  std::uint32_t best_load = view.load(0);
  for (std::size_t c = 1; c < num_cores_; ++c) {
    const std::uint32_t load = view.load(static_cast<CoreId>(c));
    if (load < best_load) {
      best_load = load;
      best = static_cast<CoreId>(c);
    }
  }
  ++batches_;
  if (batch_size_ > 1) {
    current_[key] = Assignment{best, batch_size_ - 1};
  }
  return best;
}

}  // namespace laps
