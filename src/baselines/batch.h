#pragma once

#include <unordered_map>

#include "sim/scheduler.h"

namespace laps {

/// Batch scheduling — Guo, Yao & Bhuyan (INFOCOM'05), the paper's Sec. VI
/// comparison: packets are assigned to cores in per-flow *batches*. The
/// first packet of a batch picks the least-loaded core; the next
/// `batch_size - 1` packets of that flow follow it. Within a batch order
/// is preserved and load chases the instantaneous minimum; across batch
/// boundaries a flow may hop cores, reordering the boundary packets and
/// paying FM penalties — and, as the paper notes, the scheme assumes every
/// packet needs the same application (no service partitioning) and keeps
/// per-active-flow state the hardware must synchronize.
class BatchScheduler final : public Scheduler {
 public:
  explicit BatchScheduler(std::uint32_t batch_size = 32)
      : batch_size_(batch_size) {}

  void attach(std::size_t num_cores) override {
    num_cores_ = num_cores;
    current_.clear();
    batches_ = 0;
  }

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "Batch"; }

  std::map<std::string, double> extra_stats() const override {
    return {{"batches_opened", static_cast<double>(batches_)},
            {"active_flow_state", static_cast<double>(current_.size())}};
  }

 private:
  struct Assignment {
    CoreId core = 0;
    std::uint32_t remaining = 0;  // packets left in the current batch
  };

  std::uint32_t batch_size_;
  std::size_t num_cores_ = 0;
  std::unordered_map<std::uint64_t, Assignment> current_;
  std::uint64_t batches_ = 0;
};

}  // namespace laps
