#include "baselines/fcfs.h"

namespace laps {

CoreId FcfsScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  static_cast<void>(pkt);
  CoreId best = 0;
  std::uint32_t best_load = ~0u;
  // Start the scan at a rotating offset so equally-loaded cores share
  // traffic instead of core 0 absorbing every tie.
  bool have = false;
  for (std::size_t i = 0; i < num_cores_; ++i) {
    const CoreId c = static_cast<CoreId>((rr_ + i) % num_cores_);
    if (live_.is_down(c)) continue;
    const std::uint32_t load = view.load(c);
    if (!have || load < best_load) {
      have = true;
      best_load = load;
      best = c;
      if (load == 0) break;
    }
  }
  // Every core down: any answer is a drop; the engine accounts it.
  rr_ = (static_cast<std::size_t>(best) + 1) % num_cores_;
  return best;
}

}  // namespace laps
