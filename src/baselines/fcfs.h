#pragma once

#include "core/live_core_set.h"
#include "sim/scheduler.h"

namespace laps {

/// First-Come-First-Served baseline (paper Sec. V-A): packets are handed to
/// whichever core can take them soonest, with no notion of flows or
/// services. Modeled as dispatch-to-least-loaded (a single logical FCFS
/// queue feeding idle cores behaves identically when queues are short; with
/// finite per-core queues, least-occupancy is the standard realization).
/// Maximizes instantaneous balance; destroys flow locality, packet order,
/// and I-cache locality — the paper's lower bound.
class FcfsScheduler final : public Scheduler {
 public:
  void attach(std::size_t num_cores) override {
    num_cores_ = num_cores;
    rr_ = 0;
    live_.reset(num_cores);
  }

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "FCFS"; }

  /// Degradation: failed cores drop out of the least-loaded scan until
  /// recovery.
  void notify_core_down(CoreId core, const NpuView&) override {
    live_.mark_down(core);
  }
  void notify_core_up(CoreId core, const NpuView&) override {
    live_.mark_up(core);
  }

 private:
  std::size_t num_cores_ = 0;
  std::size_t rr_ = 0;  // tie-break rotation so ties spread evenly
  LiveCoreSet live_;
};

}  // namespace laps
