#pragma once

#include <vector>

#include "sim/scheduler.h"

namespace laps {

/// First-Come-First-Served baseline (paper Sec. V-A): packets are handed to
/// whichever core can take them soonest, with no notion of flows or
/// services. Modeled as dispatch-to-least-loaded (a single logical FCFS
/// queue feeding idle cores behaves identically when queues are short; with
/// finite per-core queues, least-occupancy is the standard realization).
/// Maximizes instantaneous balance; destroys flow locality, packet order,
/// and I-cache locality — the paper's lower bound.
class FcfsScheduler final : public Scheduler {
 public:
  void attach(std::size_t num_cores) override {
    num_cores_ = num_cores;
    rr_ = 0;
    down_.assign(num_cores, 0);
  }

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "FCFS"; }

  /// Degradation: failed cores drop out of the least-loaded scan until
  /// recovery.
  void notify_core_down(CoreId core, const NpuView&) override {
    if (core < down_.size()) down_[core] = 1;
  }
  void notify_core_up(CoreId core, const NpuView&) override {
    if (core < down_.size()) down_[core] = 0;
  }

 private:
  std::size_t num_cores_ = 0;
  std::size_t rr_ = 0;  // tie-break rotation so ties spread evenly
  std::vector<std::uint8_t> down_;
};

}  // namespace laps
