#include "baselines/hybrids.h"

namespace laps {

// ------------------------------------------------------------ HashMigrate

void HashMigrateScheduler::attach(std::size_t num_cores) {
  StaticHashScheduler::attach(num_cores);
  detector_.reset();
  pins_.clear();
  aggressive_migrations_ = 0;
  stale_pins_dropped_ = 0;
}

CoreId HashMigrateScheduler::schedule(const SimPacket& pkt,
                                      const NpuView& view) {
  const std::uint64_t key = pkt.flow_key();
  detector_.observe(key);

  // Pin path first (priority over the hash path, as in LAPS Fig. 3). A pin
  // to a core that has since died is stale — drop it and fall through.
  if (const auto pin = pins_.lookup(key)) {
    if (live_.is_live(*pin)) return *pin;
    pins_.erase(key);
    ++stale_pins_dropped_;
  }

  CoreId target = table_[bucket_of(pkt)];

  // Listing 1's migration rule, without any bucket-level rebalancing: only
  // AFC-resident elephants ever move, one flow at a time.
  if (view.cores()[target].queue_len >= options_.high_thresh) {
    CoreId best = target;
    std::uint32_t best_load = view.load(target);
    for (std::size_t c = 0; c < num_cores_; ++c) {
      const CoreId candidate = static_cast<CoreId>(c);
      if (live_.is_down(candidate)) continue;
      const std::uint32_t load = view.load(candidate);
      if (load < best_load) {
        best_load = load;
        best = candidate;
      }
    }
    if (best != target &&
        view.cores()[best].queue_len < options_.high_thresh &&
        detector_.is_aggressive(key)) {
      pins_.add(key, best);
      detector_.invalidate(key);
      ++aggressive_migrations_;
      target = best;
    }
  }
  return target;
}

std::map<std::string, double> HashMigrateScheduler::extra_stats() const {
  return {
      {"aggressive_migrations", static_cast<double>(aggressive_migrations_)},
      {"stale_pins_dropped", static_cast<double>(stale_pins_dropped_)},
      {"afd_promotions", static_cast<double>(detector_.stats().promotions)},
      {"afd_afc_hits", static_cast<double>(detector_.stats().afc_hits)},
  };
}

// -------------------------------------------------------------- AFS+power

void AfsPowerScheduler::attach(std::size_t num_cores) {
  // Size the power arrays before the base attach: the base calls rebuild(),
  // and our override reads parked() for every core.
  power_.attach(num_cores, /*num_services=*/1);
  all_cores_.resize(num_cores);
  std::iota(all_cores_.begin(), all_cores_.end(), CoreId{0});
  StaticHashScheduler::attach(num_cores);
  last_now_ = 0;
  seen_ = 0;
  last_shift_ = 0;
  bundle_shifts_ = 0;
}

void AfsPowerScheduler::rebuild() {
  std::vector<CoreId> avail;
  avail.reserve(num_cores_);
  for (CoreId core : live_.live_cores()) {
    if (!power_.parked(core)) avail.push_back(core);
  }
  // min_unparked keeps this nonempty in steady state; if every live core is
  // parked mid-transition, fall back to the live set so packets still route.
  if (avail.empty()) avail = live_.live_cores();
  if (avail.empty()) return;
  for (std::size_t b = 0; b < table_.size(); ++b) {
    table_[b] = avail[b % avail.size()];
  }
}

CoreId AfsPowerScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  const TimeNs now = view.now();
  last_now_ = now;

  // Surplus marking from the engine's idle timers, then the idle-timeout
  // parking pass (same inputs gated LAPS feeds its PowerManager).
  const auto cores = view.cores();
  for (CoreId c = 0; c < static_cast<CoreId>(cores.size()); ++c) {
    const CoreView& v = cores[c];
    if (v.idle_since >= 0 && now - v.idle_since >= options_.idle_th) {
      power_.note_surplus(c, v.idle_since + options_.idle_th);
    }
  }
  power_.update_parking(now, *this);

  const std::size_t bucket = bucket_of(pkt);
  ++seen_;
  CoreId target = table_[bucket];

  // Consolidation may park the coldest core (a global rehash here — AFS has
  // no incremental table); re-read the bucket afterwards.
  power_.update_consolidation(/*service=*/0, target, view, *this);
  target = table_[bucket];

  // Wake-ahead: deep queue at the target and a parked core available —
  // bring capacity back before the overload shift even triggers.
  if (view.cores()[target].queue_len >= options_.wake_watermark) {
    for (CoreId core : all_cores_) {
      if (!power_.parked(core)) continue;
      power_.wake(core, now);
      power_.clear_surplus(core);
      power_.note_wake_backoff(/*service=*/0, now);
      rebuild();
      target = table_[bucket];
      break;
    }
  }

  // Dittmann's arbitrary bundle shift, restricted to live unparked cores.
  const bool cooled_down =
      bundle_shifts_ == 0 || seen_ - last_shift_ >= options_.shift_cooldown;
  if (cooled_down && view.cores()[target].queue_len >= options_.high_thresh) {
    CoreId best = target;
    std::uint32_t best_load = view.load(target);
    for (std::size_t c = 0; c < num_cores_; ++c) {
      const CoreId candidate = static_cast<CoreId>(c);
      if (live_.is_down(candidate) || power_.parked(candidate)) continue;
      const std::uint32_t load = view.load(candidate);
      if (load < best_load) {
        best_load = load;
        best = candidate;
      }
    }
    if (best != target) {
      table_[bucket] = best;  // shift the whole (arbitrary) flow bundle
      ++bundle_shifts_;
      last_shift_ = seen_;
      target = best;
    }
  }

  power_.clear_surplus(target);
  return target;
}

std::map<std::string, double> AfsPowerScheduler::extra_stats() const {
  std::map<std::string, double> stats = {
      {"bundle_shifts", static_cast<double>(bundle_shifts_)},
  };
  power_.append_stats(stats, last_now_);
  return stats;
}

}  // namespace laps
