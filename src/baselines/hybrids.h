#pragma once

#include <numeric>
#include <vector>

#include "baselines/static_hash.h"
#include "cache/afd.h"
#include "core/aggressive_detector.h"
#include "core/migration_table.h"
#include "core/power_manager.h"

namespace laps {

/// HashMigrate — StaticHash + AggressiveDetector: Dittmann's static bucket
/// table with LAPS's elephant-migration path grafted on, composed entirely
/// from the shared scheduler mechanisms.
///
/// The hash path never rebalances (no AFS bundle shifts, no adaptive
/// re-weighting); the *only* adaptivity is Listing 1's migration rule: when
/// a packet's target core is overloaded and the flow hits in the AFC, pin
/// it to the least-loaded core. This isolates what flow-granular migration
/// alone buys over a static hash — the middle ground between StaticHash
/// ("no flows migrated") and LAPS in the Fig. 9 comparison.
class HashMigrateScheduler final : public StaticHashScheduler {
 public:
  struct Options {
    std::size_t num_buckets = 0;  ///< 0 = StaticHash default
    /// AFD tuned like the integrated LAPS detector (AFC-min guard on).
    AfdConfig afd = default_afd();
    std::uint32_t high_thresh = 24;
    std::size_t migration_table_capacity = 1024;

    static AfdConfig default_afd() {
      AfdConfig cfg;
      cfg.require_beat_afc_min = true;
      return cfg;
    }
  };

  HashMigrateScheduler() : HashMigrateScheduler(Options{}) {}
  explicit HashMigrateScheduler(Options options)
      : StaticHashScheduler(options.num_buckets),
        options_(options),
        detector_(options.afd),
        pins_(options.migration_table_capacity) {}

  void attach(std::size_t num_cores) override;
  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;
  std::string name() const override { return "HashMigrate"; }

  std::map<std::string, double> extra_stats() const override;

  std::vector<std::uint64_t> aggressive_snapshot() const override {
    return detector_.snapshot();
  }

  /// StaticHash's liveness churn plus the detector/pin-table occupancies
  /// this hybrid adds on top.
  SchedTelemetry telemetry_sample() const override {
    SchedTelemetry t = StaticHashScheduler::telemetry_sample();
    t.afc_occupancy = static_cast<std::int64_t>(detector_.afd().afc_size());
    t.afd_hits = static_cast<std::int64_t>(detector_.stats().afc_hits);
    t.afd_evictions = static_cast<std::int64_t>(detector_.stats().demotions);
    t.pinned_flows = static_cast<std::int64_t>(pins_.size());
    return t;
  }

  /// Degradation: pins to the dead core are dead routes — drop them, then
  /// let StaticHash rehash the bucket table over the survivors.
  void notify_core_down(CoreId core, const NpuView& view) override {
    pins_.remove_core_entries(core);
    StaticHashScheduler::notify_core_down(core, view);
  }

  const Options& options() const { return options_; }
  const MigrationTable& migration_table() const { return pins_; }

 private:
  Options options_;
  AggressiveDetector detector_;
  MigrationTable pins_;
  std::uint64_t aggressive_migrations_ = 0;
  std::uint64_t stale_pins_dropped_ = 0;
};

/// AFS+power — Dittmann's Arbitrary Flow Shift with the PowerManager
/// mechanism attached: cores that stay surplus are parked out of the hash
/// table (the rebuild simply excludes them), and the wake-ahead watermark /
/// consolidation-window machinery works exactly as in gated LAPS.
///
/// AFS has no incremental map table, so every park/wake is a global rehash
/// — deliberately crude. Comparing its reordering and parked core-time
/// against gated LAPS shows what incremental hashing buys a power policy.
class AfsPowerScheduler final : public StaticHashScheduler,
                                private PowerHost {
 public:
  struct Options {
    std::uint32_t high_thresh = 24;
    std::size_t num_buckets = 0;
    std::uint64_t shift_cooldown = 2048;
    /// Idle time after which a core counts as surplus (parking input).
    TimeNs idle_th = from_us(5.0);
    /// Queue depth at the packet's target that wakes a parked core.
    std::uint32_t wake_watermark = 16;
    /// Park/wake timing knobs (enabled is forced on — an AfsPower without
    /// power would just be AFS).
    PowerConfig power = default_power();

    static PowerConfig default_power() {
      PowerConfig cfg;
      cfg.enabled = true;
      return cfg;
    }
  };

  AfsPowerScheduler() : AfsPowerScheduler(Options{}) {}
  explicit AfsPowerScheduler(Options options)
      : StaticHashScheduler(options.num_buckets),
        options_(force_enabled(std::move(options))),
        power_(options_.power) {}

  void attach(std::size_t num_cores) override;
  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;
  std::string name() const override { return "AFS+power"; }

  std::map<std::string, double> extra_stats() const override;

  /// StaticHash's liveness churn plus the power-gating occupancies.
  SchedTelemetry telemetry_sample() const override {
    SchedTelemetry t = StaticHashScheduler::telemetry_sample();
    t.parked_cores = static_cast<std::int64_t>(power_.parked_count());
    t.wake_strikes = static_cast<std::int64_t>(power_.wake_strikes_total());
    return t;
  }

  void notify_core_down(CoreId core, const NpuView& view) override {
    last_now_ = view.now();
    // A parked core that dies closes its sleep span without waking.
    if (live_.is_live(core)) power_.on_core_down(core, last_now_);
    StaticHashScheduler::notify_core_down(core, view);
  }

  const Options& options() const { return options_; }
  const PowerManager& power() const { return power_; }

 protected:
  /// The rehash domain shrinks to live *unparked* cores; parking a core is
  /// "remove it from the table and fold its buckets onto the rest".
  void rebuild() override;

 private:
  static Options force_enabled(Options options) {
    options.power.enabled = true;
    return options;
  }

  // PowerHost: the whole NPU is one service.
  std::size_t owner_of(CoreId) const override { return 0; }
  const std::vector<CoreId>& cores_of(std::size_t) const override {
    return all_cores_;
  }
  bool core_down(CoreId core) const override { return live_.is_down(core); }
  void park_core(std::size_t, CoreId core, TimeNs now) override {
    power_.park(core, now);
    rebuild();
  }

  Options options_;
  PowerManager power_;
  std::vector<CoreId> all_cores_;
  TimeNs last_now_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t last_shift_ = 0;
  std::uint64_t bundle_shifts_ = 0;
};

}  // namespace laps
