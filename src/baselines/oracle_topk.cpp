#include "baselines/oracle_topk.h"

namespace laps {

void OracleTopKScheduler::attach(std::size_t num_cores) {
  StaticHashScheduler::attach(num_cores);
  seen_ = 0;
  counts_.reset();
  top_set_.clear();
  prev_top_set_.clear();
  migrated_.clear();
  migrations_ = 0;
}

CoreId OracleTopKScheduler::least_loaded(const NpuView& view) const {
  CoreId best = 0;
  std::uint32_t best_load = view.load(0);
  for (std::size_t c = 1; c < num_cores_; ++c) {
    const std::uint32_t load = view.load(static_cast<CoreId>(c));
    if (load < best_load) {
      best_load = load;
      best = static_cast<CoreId>(c);
    }
  }
  return best;
}

CoreId OracleTopKScheduler::schedule(const SimPacket& pkt,
                                     const NpuView& view) {
  const std::uint64_t key = pkt.flow_key();
  counts_.access(key);
  if (++seen_ % refresh_interval_ == 0) {
    prev_top_set_ = std::move(top_set_);
    top_set_ = counts_.top_k_set(k_);
  }

  // Migration pins take priority over the hash path, as in LAPS.
  if (const auto it = migrated_.find(key); it != migrated_.end()) {
    return it->second;
  }

  CoreId target = table_[bucket_of(pkt)];
  if (view.cores()[target].queue_len >= high_thresh_) {
    const CoreId dest = least_loaded(view);
    if (view.load(dest) < high_thresh_ && dest != target &&
        top_set_.count(key) && prev_top_set_.count(key)) {
      migrated_[key] = dest;
      ++migrations_;
      target = dest;
    }
  }
  return target;
}

}  // namespace laps
