#pragma once

#include <unordered_map>
#include <unordered_set>

#include "baselines/static_hash.h"
#include "cache/topk.h"

namespace laps {

/// Oracle top-K migration — Shi et al.'s scheme (the paper's reference
/// [37]) realized with the per-flow statistics it assumes: exact packet
/// counters for every active flow, from which the true top-K set is drawn.
///
/// On load imbalance, a packet's flow is migrated to the least-loaded core
/// *only if* it is among the true top-K flows. This is the behaviour the
/// AFD approximates with two small caches; the paper argues exact per-flow
/// statistics are infeasible in the data path ("significant overheads"),
/// which is precisely why the AFD exists. Comparing LAPS against this
/// oracle quantifies how much the approximation costs.
class OracleTopKScheduler final : public StaticHashScheduler {
 public:
  /// `k`: migrate only the true top-k flows. `refresh_interval`: packets
  /// between recomputations of the top-k set (counting is exact and
  /// continuous; only the sorted set is cached).
  OracleTopKScheduler(std::size_t k, std::uint32_t high_thresh = 24,
                      std::uint64_t refresh_interval = 8192,
                      std::size_t num_buckets = 0)
      : StaticHashScheduler(num_buckets),
        k_(k),
        high_thresh_(high_thresh),
        refresh_interval_(refresh_interval) {}

  void attach(std::size_t num_cores) override;

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "OracleTop" + std::to_string(k_); }

  std::map<std::string, double> extra_stats() const override {
    return {{"oracle_migrations", static_cast<double>(migrations_)}};
  }

 private:
  CoreId least_loaded(const NpuView& view) const;

  std::size_t k_;
  std::uint32_t high_thresh_;
  std::uint64_t refresh_interval_;
  std::uint64_t seen_ = 0;
  ExactTopK counts_;
  // A flow is migratable only if it was in the exact top-k at the last TWO
  // refreshes: boundary flows swap in and out of the top-k every interval,
  // and pinning each transient member would migrate far more flows than
  // the "few aggressive flows" premise intends.
  std::unordered_set<std::uint64_t> top_set_;
  std::unordered_set<std::uint64_t> prev_top_set_;
  std::unordered_map<std::uint64_t, CoreId> migrated_;  // flow -> pinned core
  std::uint64_t migrations_ = 0;
};

}  // namespace laps
