#include "baselines/static_hash.h"

#include <bit>

namespace laps {

void StaticHashScheduler::attach(std::size_t num_cores) {
  num_cores_ = num_cores;
  std::size_t buckets = num_buckets_;
  if (buckets == 0) buckets = std::bit_ceil(num_cores * 16);
  table_.resize(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    table_[b] = static_cast<CoreId>(b % num_cores);
  }
}

CoreId StaticHashScheduler::schedule(const SimPacket& pkt,
                                     const NpuView& view) {
  static_cast<void>(view);
  return table_[bucket_of(pkt)];
}

}  // namespace laps
