#include "baselines/static_hash.h"

#include <bit>

namespace laps {

void StaticHashScheduler::attach(std::size_t num_cores) {
  num_cores_ = num_cores;
  std::size_t buckets = num_buckets_;
  if (buckets == 0) buckets = std::bit_ceil(num_cores * 16);
  table_.resize(buckets);
  live_.reset(num_cores);
  rebuild();
}

void StaticHashScheduler::rebuild() {
  const std::vector<CoreId> live = live_.live_cores();
  if (live.empty()) return;
  for (std::size_t b = 0; b < table_.size(); ++b) {
    // live[b % live.size()] == b % num_cores when nothing is down, so the
    // fault-free mapping is bit-identical to the historical attach().
    table_[b] = live[b % live.size()];
  }
}

CoreId StaticHashScheduler::schedule(const SimPacket& pkt,
                                     const NpuView& view) {
  static_cast<void>(view);
  return table_[bucket_of(pkt)];
}

}  // namespace laps
