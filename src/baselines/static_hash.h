#pragma once

#include <vector>

#include "core/live_core_set.h"
#include "sim/scheduler.h"

namespace laps {

/// Pure hash-based scheduler with no migration: CRC16 of the 5-tuple
/// indexes a fixed bucket table mapping to cores (Dittmann's base scheme,
/// and the "no flows migrated" reference point of Fig. 9).
///
/// Perfect flow locality and packet order, zero adaptivity: under skewed
/// flow sizes one core saturates while others idle, so it drops the most
/// packets of any hash-based scheme in the Fig. 9 overload experiment.
class StaticHashScheduler : public Scheduler {
 public:
  /// `num_buckets` = size of the indirection table (0 = 16x the core count,
  /// rounded up to a power of two, so remapping granularity is fine-grained
  /// as in Dittmann's design).
  explicit StaticHashScheduler(std::size_t num_buckets = 0)
      : num_buckets_(num_buckets) {}

  void attach(std::size_t num_cores) override;

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "StaticHash"; }

  /// The only mechanism a pure hash scheduler owns is the liveness bitmap,
  /// so that is the only telemetry field it exports. Derived hybrids
  /// extend this sample with their own mechanisms.
  SchedTelemetry telemetry_sample() const override {
    SchedTelemetry t;
    t.core_transitions = static_cast<std::int64_t>(live_.transitions());
    return t;
  }

  /// Degradation: rebuild the bucket table over the live cores (a global
  /// rehash — Dittmann's scheme has no incremental structure to do better,
  /// which is exactly the contrast with LAPS's drain/remap).
  void notify_core_down(CoreId core, const NpuView&) override {
    if (live_.mark_down(core)) rebuild();
  }
  void notify_core_up(CoreId core, const NpuView&) override {
    if (live_.mark_up(core)) rebuild();
  }

 protected:
  /// Bucket index of a packet: CRC16(5-tuple) mod table size.
  std::size_t bucket_of(const SimPacket& pkt) const {
    return pkt.tuple.crc16() % table_.size();
  }

  /// Fills the table round-robin over the live cores; with nothing down
  /// this is exactly the attach()-time `b % num_cores` mapping. With every
  /// core down the table is left as-is (drops are accounted upstream).
  /// Virtual so derived policies can shrink the rehash domain further
  /// (AfsPowerScheduler excludes parked cores).
  virtual void rebuild();

  std::size_t num_buckets_;
  std::vector<CoreId> table_;  // bucket -> core
  std::size_t num_cores_ = 0;
  LiveCoreSet live_;
};

}  // namespace laps
