#include "cache/afd.h"

namespace laps {

Afd::Afd(const AfdConfig& config)
    : config_(config),
      afc_(config.afc_entries),
      annex_(config.annex_entries),
      rng_(config.seed) {}

void Afd::access(std::uint64_t flow_key) {
  ++stats_.accesses;
  if (config_.sample_probability < 1.0 &&
      !rng_.chance(config_.sample_probability)) {
    return;
  }
  ++stats_.sampled;

  // 1. AFC hit: just bump the hit counter (paper: "If it is a hit in AFC,
  //    the hit counter is incremented").
  if (afc_.touch(flow_key)) {
    ++stats_.afc_hits;
  } else if (auto count = annex_.touch(flow_key)) {
    // 2. Annex hit: increment and compare against the promotion threshold
    //    (paper: "If the hit count exceeds the threshold, the flow is
    //    promoted to AFC"). Optionally also require the candidate to beat
    //    the weakest AFC resident (see AfdConfig::require_beat_afc_min).
    ++stats_.annex_hits;
    const bool beats_afc = !config_.require_beat_afc_min ||
                           afc_.size() < afc_.capacity() ||
                           *count > afc_.min_freq();
    if (*count > config_.promote_threshold && beats_afc) {
      const auto promoted = annex_.erase(flow_key);
      const auto victim = afc_.insert(flow_key, promoted->freq);
      ++stats_.promotions;
      if (victim) {
        // 3. The AFC victim is placed in the annex cache (victim-cache
        //    behaviour), keeping its counter so it retains inertia.
        annex_.insert(victim->key, victim->freq);
        ++stats_.demotions;
      }
    }
  } else {
    // 4. Miss in both: the flow replaces the LFU flow of the annex.
    annex_.insert(flow_key, 1);
    ++stats_.annex_inserts;
  }

  if (config_.aging_period != 0 &&
      stats_.sampled % config_.aging_period == 0) {
    afc_.age_halve();
    annex_.age_halve();
  }
}

bool Afd::is_aggressive(std::uint64_t flow_key) const {
  return afc_.contains(flow_key);
}

void Afd::invalidate(std::uint64_t flow_key) {
  if (afc_.erase(flow_key)) ++stats_.invalidations;
}

std::vector<std::uint64_t> Afd::aggressive_flows() const {
  std::vector<std::uint64_t> out;
  out.reserve(afc_.size());
  for (const auto& entry : afc_.entries()) out.push_back(entry.key);
  return out;
}

void Afd::reset() {
  afc_.clear();
  annex_.clear();
  stats_ = AfdStats{};
  rng_.reseed(config_.seed);
}

}  // namespace laps
