#pragma once

#include <cstdint>
#include <vector>

#include "cache/lfu_cache.h"
#include "util/rng.h"

namespace laps {

/// Configuration of the Aggressive Flow Detector (paper Sec. III-F, Fig. 4).
struct AfdConfig {
  /// Aggressive Flow Cache entries. The paper fixes this at 16: the AFC
  /// holds exactly the flows the scheduler is allowed to migrate.
  std::size_t afc_entries = 16;
  /// Annex cache entries; the qualifying filter in front of the AFC.
  /// Fig. 8a sweeps 64..1024.
  std::size_t annex_entries = 512;
  /// A flow is promoted from annex to AFC once its annex hit counter
  /// exceeds this threshold ("compared with a predefined threshold").
  std::uint64_t promote_threshold = 8;
  /// Probability that a packet accesses the AFD at all (Fig. 8c sampling
  /// experiment). 1.0 = every packet.
  double sample_probability = 1.0;
  /// If nonzero, every `aging_period` sampled accesses all counters are
  /// halved, modeling periodic decay of small hardware rate counters.
  /// Aging biases the detector toward *recently* aggressive flows; the
  /// paper's AFD (and the default here) keeps cumulative counters, which
  /// also retain elephants through quiet phases. Exercised by the
  /// sensitivity ablation.
  std::uint64_t aging_period = 0;
  /// If true, a full AFC additionally requires the candidate's annex count
  /// to beat the weakest AFC resident before promoting. The paper's AFD
  /// promotes on the threshold alone (Sec. III-F), accepting boundary churn
  /// that aging later corrects; the guard is kept as an ablation (it
  /// freezes the AFC when the annex is too small to requalify elephants).
  bool require_beat_afc_min = false;
  /// Seed for the sampling coin (only used when sample_probability < 1).
  std::uint64_t seed = 0x5EED0AFD;
};

/// Running counters exposed for tests and benches.
struct AfdStats {
  std::uint64_t accesses = 0;        ///< packets offered to the AFD
  std::uint64_t sampled = 0;         ///< packets that passed sampling
  std::uint64_t afc_hits = 0;
  std::uint64_t annex_hits = 0;
  std::uint64_t annex_inserts = 0;   ///< misses that installed a new flow
  std::uint64_t promotions = 0;      ///< annex -> AFC moves
  std::uint64_t demotions = 0;       ///< AFC victims parked back in annex
  std::uint64_t invalidations = 0;   ///< scheduler-initiated removals
};

/// Aggressive Flow Detector: the paper's two-level caching scheme for
/// identifying top heavy-hitter flows at line rate.
///
/// Structure (paper Fig. 4): a tiny fully-associative LFU cache (the AFC)
/// holds the flows currently believed aggressive; a larger LFU *annex cache*
/// sits in front of it as a qualifying station. A flow enters the AFC only
/// after proving locality in the annex (hit counter exceeding a threshold),
/// so one-packet "mice" can never displace an elephant from the AFC. The
/// annex doubles as a victim cache: AFC victims are parked there with their
/// counters, giving them inertia to re-enter.
///
/// The scheduler treats *AFC membership* as the aggressiveness predicate:
/// under load imbalance, a flow that hits in the AFC is migrated and then
/// invalidated (paper Listing 1).
class Afd {
 public:
  explicit Afd(const AfdConfig& config);

  /// Feeds one packet's flow key through the detector. Counter and
  /// promotion bookkeeping happens here; this is off the scheduler's
  /// critical path in hardware (Sec. III-G).
  void access(std::uint64_t flow_key);

  /// True if the flow is currently classified aggressive (AFC resident).
  /// Read-only: does not perturb counters, matching the hardware lookup the
  /// scheduler performs in Listing 1.
  bool is_aggressive(std::uint64_t flow_key) const;

  /// Removes a flow from the AFC after the scheduler migrated it
  /// (Listing 1 line 8: `AFC.invalidate(flowID)`).
  void invalidate(std::uint64_t flow_key);

  /// Current AFC contents, most-frequent first. Size <= afc_entries.
  std::vector<std::uint64_t> aggressive_flows() const;

  /// AFC occupancy.
  std::size_t afc_size() const { return afc_.size(); }
  /// Annex occupancy.
  std::size_t annex_size() const { return annex_.size(); }

  const AfdConfig& config() const { return config_; }
  const AfdStats& stats() const { return stats_; }

  /// Clears both caches and statistics.
  void reset();

 private:
  AfdConfig config_;
  LfuCache<std::uint64_t> afc_;
  LfuCache<std::uint64_t> annex_;
  AfdStats stats_;
  Rng rng_;
};

}  // namespace laps
