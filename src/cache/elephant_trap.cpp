#include "cache/elephant_trap.h"

#include <stdexcept>

namespace laps {

ElephantTrap::ElephantTrap(std::size_t entries, std::size_t top_k)
    : cache_(entries), top_k_(top_k) {
  if (top_k == 0 || top_k > entries) {
    throw std::invalid_argument("ElephantTrap: top_k must be in [1, entries]");
  }
}

void ElephantTrap::access(std::uint64_t flow_key) {
  ++accesses_;
  if (cache_.touch(flow_key)) {
    ++hits_;
  } else {
    cache_.insert(flow_key, 1);
  }
}

std::vector<std::uint64_t> ElephantTrap::elephants() const {
  std::vector<std::uint64_t> out;
  out.reserve(top_k_);
  for (const auto& entry : cache_.entries()) {
    if (out.size() == top_k_) break;
    out.push_back(entry.key);
  }
  return out;
}

bool ElephantTrap::is_elephant(std::uint64_t flow_key) const {
  std::size_t rank = 0;
  for (const auto& entry : cache_.entries()) {
    if (rank == top_k_) return false;
    if (entry.key == flow_key) return true;
    ++rank;
  }
  return false;
}

void ElephantTrap::reset() {
  cache_.clear();
  accesses_ = 0;
  hits_ = 0;
}

}  // namespace laps
