#pragma once

#include <cstdint>
#include <vector>

#include "cache/lfu_cache.h"

namespace laps {

/// Single-level cache heavy-hitter detector in the style of ElephantTrap
/// (Lu et al., HOTI 2007) — the closest prior work the paper compares its
/// AFD against conceptually (Sec. VI: "a single cache is used to identify
/// elephant flows. Our experiments show that such a scheme can result in a
/// large number of false positives").
///
/// A single LFU cache of `entries` flows; the `top_k` highest-counter
/// residents are reported as elephants. Because every miss installs the new
/// flow directly into the one cache, a burst of mice can displace elephants
/// — exactly the failure mode the AFD's annex filter removes. Used by the
/// `abl_single_vs_two_level` ablation bench.
class ElephantTrap {
 public:
  ElephantTrap(std::size_t entries, std::size_t top_k);

  /// Feeds one packet's flow key.
  void access(std::uint64_t flow_key);

  /// The current top-k residents by counter, most frequent first.
  std::vector<std::uint64_t> elephants() const;

  /// True if `flow_key` is among the current top-k residents.
  bool is_elephant(std::uint64_t flow_key) const;

  std::size_t size() const { return cache_.size(); }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t hits() const { return hits_; }

  void reset();

 private:
  LfuCache<std::uint64_t> cache_;
  std::size_t top_k_;
  std::uint64_t accesses_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace laps
