#pragma once

#include <cstdint>
#include <iterator>
#include <list>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace laps {

/// Fully-associative cache with Least-Frequently-Used replacement.
///
/// This models the hardware structures of the paper's Aggressive Flow
/// Detector: both the Aggressive Flow Cache (AFC) and the annex cache are
/// small fully-associative LFU caches (Sec. III-F). The implementation uses
/// the classic O(1) LFU algorithm (frequency buckets holding LRU-ordered
/// entry lists), so software simulation cost does not grow with cache size
/// — important because Fig. 8a sweeps the annex up to 1024 entries over
/// multi-million-packet traces.
///
/// Ties within a frequency are broken LRU (the least recently touched entry
/// of the minimum frequency is evicted), which is what a hardware LFU with a
/// secondary recency bit does.
template <typename Key>
class LfuCache {
 public:
  /// One cache entry as seen by callers: the key and its frequency counter.
  struct Entry {
    Key key;
    std::uint64_t freq;
  };

  explicit LfuCache(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("LfuCache: capacity 0");
    index_.reserve(capacity * 2);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool full() const { return size() == capacity_; }

  /// True if `key` is cached. Does not change replacement state.
  bool contains(const Key& key) const { return index_.count(key) > 0; }

  /// Frequency counter of `key`, or nullopt if absent. Read-only.
  std::optional<std::uint64_t> freq_of(const Key& key) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    return it->second.node->freq;
  }

  /// Cache access: if `key` is present, increments its counter and returns
  /// the new value; otherwise returns nullopt (caller decides whether to
  /// insert — the AFD's promotion logic needs that decision to be separate).
  std::optional<std::uint64_t> touch(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    promote_node(it->second, it->second.node->freq + 1);
    return it->second.node->freq;
  }

  /// Inserts `key` with initial frequency `freq` (default 1). If the cache
  /// is full, evicts and returns the LFU victim. Inserting an existing key
  /// overwrites its frequency. Returns nullopt when nothing was evicted.
  std::optional<Entry> insert(const Key& key, std::uint64_t freq = 1) {
    auto existing = index_.find(key);
    if (existing != index_.end()) {
      promote_node(existing->second, freq);
      return std::nullopt;
    }
    std::optional<Entry> victim;
    if (full()) victim = evict_lfu();
    auto& bucket = buckets_[freq];
    bucket.push_front(Node{key, freq});
    index_.emplace(key, Locator{freq, bucket.begin()});
    return victim;
  }

  /// Removes `key`; returns its entry if it was present.
  std::optional<Entry> erase(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    const Entry out{key, it->second.node->freq};
    detach(it->second);
    index_.erase(it);
    return out;
  }

  /// Evicts the least-frequently-used entry (LRU among ties). The cache
  /// must not be empty.
  Entry evict_lfu() {
    if (index_.empty()) throw std::logic_error("LfuCache: evict on empty");
    auto bucket_it = buckets_.begin();  // minimum frequency
    Node& node = bucket_it->second.back();
    const Entry out{node.key, node.freq};
    index_.erase(node.key);
    bucket_it->second.pop_back();
    if (bucket_it->second.empty()) buckets_.erase(bucket_it);
    return out;
  }

  /// Minimum frequency currently cached; 0 if empty.
  std::uint64_t min_freq() const {
    return buckets_.empty() ? 0 : buckets_.begin()->first;
  }

  /// Snapshot of all entries, most-frequent first (ties: most recent first).
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    out.reserve(size());
    for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
      for (const Node& n : it->second) out.push_back(Entry{n.key, n.freq});
    }
    return out;
  }

  /// Halves every frequency counter (integer division, minimum 1), modeling
  /// the periodic aging of hardware rate counters. When two old counts
  /// collapse into the same new tier, the entry that had the *higher* old
  /// count is placed nearer the protected (recent) end: it demonstrated
  /// more locality, so it should outlive the tier's existing entries.
  /// Without this, a decayed elephant would land at the eviction end of the
  /// count-1 tier and be thrown out ahead of one-hit mice.
  void age_halve() {
    std::map<std::uint64_t, std::list<Node>> aged;
    // Iterate descending old frequency so higher-old-count entries are
    // appended first (end of list = eviction side; begin = protected side).
    // Within one old frequency, preserve existing LRU order.
    for (auto bucket_it = buckets_.rbegin(); bucket_it != buckets_.rend();
         ++bucket_it) {
      const std::uint64_t nf =
          bucket_it->first / 2 > 0 ? bucket_it->first / 2 : 1;
      auto& dst = aged[nf];
      auto& src = bucket_it->second;
      for (auto it = src.begin(); it != src.end();) {
        auto next = std::next(it);
        it->freq = nf;
        dst.splice(dst.end(), src, it);
        it = next;
      }
    }
    buckets_ = std::move(aged);
    for (auto& [freq, bucket] : buckets_) {
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        index_[it->key] = Locator{freq, it};
      }
    }
  }

  /// Removes every entry.
  void clear() {
    buckets_.clear();
    index_.clear();
  }

 private:
  struct Node {
    Key key;
    std::uint64_t freq;
  };
  struct Locator {
    std::uint64_t freq;
    typename std::list<Node>::iterator node;
  };

  void detach(const Locator& loc) {
    auto bucket_it = buckets_.find(loc.freq);
    bucket_it->second.erase(loc.node);
    if (bucket_it->second.empty()) buckets_.erase(bucket_it);
  }

  void promote_node(Locator& loc, std::uint64_t new_freq) {
    const Key key = loc.node->key;
    detach(loc);
    auto& bucket = buckets_[new_freq];
    bucket.push_front(Node{key, new_freq});
    loc = Locator{new_freq, bucket.begin()};
  }

  std::size_t capacity_;
  // freq -> entries at that freq, front = most recently touched.
  std::map<std::uint64_t, std::list<Node>> buckets_;
  std::unordered_map<Key, Locator> index_;
};

}  // namespace laps
