#include "cache/space_saving.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SpaceSaving: capacity 0");
  counters_.reserve(capacity);
  index_.reserve(capacity * 2);
}

void SpaceSaving::heap_swap(std::size_t a, std::size_t b) {
  std::swap(counters_[a], counters_[b]);
  index_[counters_[a].key] = a;
  index_[counters_[b].key] = b;
}

void SpaceSaving::sift_down(std::size_t i) {
  const std::size_t n = counters_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && counters_[l].count < counters_[smallest].count) smallest = l;
    if (r < n && counters_[r].count < counters_[smallest].count) smallest = r;
    if (smallest == i) return;
    heap_swap(i, smallest);
    i = smallest;
  }
}

void SpaceSaving::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (counters_[parent].count <= counters_[i].count) return;
    heap_swap(i, parent);
    i = parent;
  }
}

void SpaceSaving::access(std::uint64_t flow_key) {
  ++total_;
  const auto it = index_.find(flow_key);
  if (it != index_.end()) {
    counters_[it->second].count += 1;
    sift_down(it->second);
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.push_back(Counter{flow_key, 1, 0});
    index_[flow_key] = counters_.size() - 1;
    sift_up(counters_.size() - 1);
    return;
  }
  // Replace the minimum-count entry; the newcomer inherits its count as the
  // overestimation error. This is the defining Space-Saving step.
  Counter& min = counters_[0];
  index_.erase(min.key);
  const std::uint64_t inherited = min.count;
  min = Counter{flow_key, inherited + 1, inherited};
  index_[flow_key] = 0;
  sift_down(0);
}

std::vector<SpaceSaving::Counter> SpaceSaving::top_k(std::size_t k) const {
  std::vector<Counter> sorted = counters_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Counter& a, const Counter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.error < b.error;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::uint64_t SpaceSaving::estimate(std::uint64_t flow_key) const {
  const auto it = index_.find(flow_key);
  return it == index_.end() ? 0 : counters_[it->second].count;
}

bool SpaceSaving::guaranteed_top(std::uint64_t flow_key) const {
  const auto it = index_.find(flow_key);
  if (it == index_.end()) return false;
  if (counters_.size() < capacity_) return true;  // nothing was ever evicted
  const Counter& c = counters_[it->second];
  return c.count - c.error > counters_[0].count;
}

void SpaceSaving::reset() {
  counters_.clear();
  index_.clear();
  total_ = 0;
}

}  // namespace laps
