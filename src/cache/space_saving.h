#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace laps {

/// Space-Saving heavy-hitter sketch (Metwally et al. 2005).
///
/// Counter-based alternative to the paper's cache-based AFD, representative
/// of the "reducing the overheads of keeping per flow counters" line of
/// related work (Sec. VI). Maintains `capacity` (key, count, error) triples;
/// a miss replaces the minimum-count entry and inherits its count as error.
/// Guarantees: every flow with true count > N/capacity is present, and
/// count - error <= true count <= count.
///
/// Used by the `abl_afd_vs_spacesaving` bench to compare detector quality at
/// equal state budgets.
class SpaceSaving {
 public:
  struct Counter {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  explicit SpaceSaving(std::size_t capacity);

  /// Processes one packet of `flow_key`.
  void access(std::uint64_t flow_key);

  /// The k monitored flows with the highest counts, descending. Fewer than
  /// k if the sketch has seen fewer distinct flows.
  std::vector<Counter> top_k(std::size_t k) const;

  /// Estimated count of `flow_key` (0 if not monitored).
  std::uint64_t estimate(std::uint64_t flow_key) const;

  /// True if the flow is monitored *and* its count is guaranteed above the
  /// count of every unmonitored flow (count - error > min count).
  bool guaranteed_top(std::uint64_t flow_key) const;

  std::size_t size() const { return counters_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total() const { return total_; }

  void reset();

 private:
  // Counters stored as a min-heap on count so replacement is O(log n);
  // counters_[0] is the minimum. index_ maps key -> heap position.
  void sift_down(std::size_t i);
  void sift_up(std::size_t i);
  void heap_swap(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Counter> counters_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

}  // namespace laps
