#include "cache/topk.h"

#include <algorithm>

namespace laps {

std::uint64_t ExactTopK::count(std::uint64_t flow_key) const {
  const auto it = counts_.find(flow_key);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> ExactTopK::top_k(std::size_t k) const {
  // Partial-sort a (count, key) scratch vector; n log k with a heap would
  // save little here because the map walk already dominates.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
  items.reserve(counts_.size());
  for (const auto& [key, count] : counts_) items.emplace_back(count, key);
  const std::size_t take = std::min(k, items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(take),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<std::uint64_t> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(items[i].second);
  return out;
}

std::unordered_set<std::uint64_t> ExactTopK::top_k_set(std::size_t k) const {
  const auto keys = top_k(k);
  return {keys.begin(), keys.end()};
}

DetectorAccuracy score_detector(const ExactTopK& truth,
                                const std::vector<std::uint64_t>& claimed,
                                std::size_t k) {
  const auto truth_set = truth.top_k_set(k);
  DetectorAccuracy acc;
  acc.claimed = claimed.size();
  for (std::uint64_t key : claimed) {
    if (truth_set.count(key)) {
      ++acc.true_positives;
    } else {
      ++acc.false_positives;
    }
  }
  return acc;
}

}  // namespace laps
