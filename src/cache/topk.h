#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace laps {

/// Exact per-flow packet counter — the "off-line analysis" ground truth of
/// the paper (Sec. V-B): a perfectly accurate AFC would hold the IDs of the
/// top-16 flows by packet count. Also models the infeasible-in-hardware
/// per-flow statistics that Shi et al. [37] assume, which the oracle
/// scheduler baseline uses.
class ExactTopK {
 public:
  ExactTopK() = default;

  /// Counts one packet of `flow_key`.
  void access(std::uint64_t flow_key) { ++counts_[flow_key]; ++total_; }

  /// Exact count of a flow so far.
  std::uint64_t count(std::uint64_t flow_key) const;

  /// The k flows with the largest counts, descending (ties broken by key so
  /// results are deterministic). O(n log k).
  std::vector<std::uint64_t> top_k(std::size_t k) const;

  /// top_k() as a set, for O(1) membership checks in accuracy evaluation.
  std::unordered_set<std::uint64_t> top_k_set(std::size_t k) const;

  /// Number of distinct flows observed.
  std::size_t distinct() const { return counts_.size(); }
  /// Number of packets observed.
  std::uint64_t total() const { return total_; }

  void reset() { counts_.clear(); total_ = 0; }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Compares a detector's claimed aggressive set against exact ground truth.
///
/// Paper definition (Sec. V-B): with a 16-entry AFC, "a flow found in AFC
/// which is not among the top 16 flows identified by off-line analysis is
/// considered a false positive", and FPR = false positives / total entries.
struct DetectorAccuracy {
  std::size_t claimed = 0;          ///< entries in the detector (<= 16)
  std::size_t false_positives = 0;  ///< claimed but not in true top-k
  std::size_t true_positives = 0;   ///< claimed and in true top-k

  /// false positives / claimed entries; 0 when nothing is claimed.
  double false_positive_ratio() const {
    return claimed == 0
               ? 0.0
               : static_cast<double>(false_positives) /
                     static_cast<double>(claimed);
  }
  /// true positives / k — "how many of the real top-k did we find".
  double recall(std::size_t k) const {
    return k == 0 ? 0.0
                  : static_cast<double>(true_positives) /
                        static_cast<double>(k);
  }
};

/// Scores `claimed` against the exact top-k of `truth`. `relaxed_k` lets the
/// caller reproduce the paper's observation that CAIDA "false positives"
/// actually fall within the top-20 (use relaxed_k = 20 and k = 16).
DetectorAccuracy score_detector(const ExactTopK& truth,
                                const std::vector<std::uint64_t>& claimed,
                                std::size_t k);

}  // namespace laps
