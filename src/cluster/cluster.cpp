#include "cluster/cluster.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/probes.h"
#include "util/thread_pool.h"

namespace laps {
namespace {

/// Per-shard egress tap: records departures (time, flow, cluster seq) and
/// drops, drained by the coordinator at every sync barrier. The recorded
/// seq is the CLUSTER-global per-flow arrival seq the coordinator stamped
/// on the packet at dispatch (GeneratedPacket::cluster_seq), not the
/// engine's shard-local ingress seq — each engine numbers a flow's packets
/// from 0, so comparing local seqs across shards would charge a migrated
/// flow phantom inversions until the new shard's numbering caught up with
/// the old shard's high-water mark. Departure
/// times are nondecreasing within a shard and, because shards are settled
/// window by window, every batch a barrier drains lies strictly after the
/// previous barrier — so window-local merges compose into one globally
/// time-ordered cluster egress.
///
/// With restore_order the tap observes shard *completions* (the per-NP
/// ReorderBuffer sits downstream of the hook); the cluster-level detector
/// then measures the unrestored merge, which is the honest upper bound on
/// what a cross-NP wire would see.
class EgressTapProbe final : public SimProbe {
 public:
  struct Departure {
    TimeNs time;
    std::uint32_t gflow;
    std::uint32_t cluster_seq;
  };

  void on_departure(TimeNs now, const SimPacket& pkt, CoreId,
                    std::uint32_t) override {
    departures.push_back(Departure{now, pkt.gflow, pkt.cluster_seq});
  }
  void on_drop(TimeNs, const SimPacket& pkt, CoreId) override {
    drops.push_back(pkt.gflow);
  }

  std::vector<Departure> departures;
  std::vector<std::uint32_t> drops;
};

/// One shard NP: its scheduler instance, engine, probes, and the arrival
/// batch the coordinator assembled for the current window. Heap-allocated
/// so addresses stay stable (the engine holds references into the struct).
struct ShardState {
  std::unique_ptr<Scheduler> scheduler;
  ReportProbe report;
  EgressTapProbe tap;
  std::unique_ptr<SimEngine> engine;
  std::vector<GeneratedPacket> batch;
};

void grow_u32_lane(std::vector<std::uint32_t>& lane, std::uint32_t gflow) {
  if (gflow >= lane.size()) {
    lane.resize(std::max<std::size_t>(
        64, std::bit_ceil(static_cast<std::size_t>(gflow) + 1)));
  }
}

/// Telemetry instruments, registered before the first publication freezes
/// the registry. All published from the coordinator thread only.
struct ClusterMetrics {
  telemetry::MetricsRegistry::Shard* shard = nullptr;
  std::vector<telemetry::GaugeId> outstanding;
  std::vector<telemetry::GaugeId> queue_len;
  std::vector<telemetry::GaugeId> delivered;
  std::vector<telemetry::GaugeId> dropped;
  telemetry::GaugeId offered;
  telemetry::GaugeId cross_migrations;
  telemetry::GaugeId cluster_ooo;
  telemetry::GaugeId windows;
  std::vector<std::pair<std::string, telemetry::GaugeId>> dispatch_extra;
};

}  // namespace

ClusterReport run_cluster(const ClusterConfig& config, ArrivalStream& arrivals,
                          Dispatcher& dispatcher,
                          telemetry::MetricsRegistry* metrics) {
  if (config.num_shards == 0) {
    throw std::invalid_argument("run_cluster: 0 shards");
  }
  if (config.sync_ns <= 0) {
    throw std::invalid_argument("run_cluster: sync_ns must be positive");
  }
  if (!config.make_scheduler) {
    throw std::invalid_argument("run_cluster: make_scheduler is required");
  }
  if (!config.shard_faults.empty() &&
      config.shard_faults.size() != config.num_shards) {
    throw std::invalid_argument(
        "run_cluster: shard_faults must be empty or have one entry per "
        "shard");
  }

  const std::size_t n = config.num_shards;
  std::vector<std::unique_ptr<ShardState>> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<ShardState>();
    shard->scheduler = config.make_scheduler();
    if (!shard->scheduler) {
      throw std::invalid_argument("run_cluster: make_scheduler returned null");
    }
    SimEngineConfig engine_config;
    engine_config.num_cores = config.cores_per_shard;
    engine_config.queue_capacity = config.queue_capacity;
    engine_config.delay = config.delay;
    engine_config.restore_order = config.restore_order;
    engine_config.event_queue = config.event_queue;
    if (i < config.shard_faults.size() && config.shard_faults[i]) {
      engine_config.faults = config.shard_faults[i].get();
    }
    ProbeSet probes;
    probes.add(&shard->report);
    probes.add(&shard->tap);
    shard->engine = std::make_unique<SimEngine>(engine_config,
                                                *shard->scheduler, probes);
    shards.push_back(std::move(shard));
  }

  dispatcher.attach(n);

  // Register instruments before the first publication freezes the registry.
  ClusterMetrics tm;
  if (metrics != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string stem = "cluster.shard" + std::to_string(i) + ".";
      tm.outstanding.push_back(metrics->gauge(stem + "outstanding"));
      tm.queue_len.push_back(metrics->gauge(stem + "queue_len"));
      tm.delivered.push_back(metrics->gauge(stem + "delivered"));
      tm.dropped.push_back(metrics->gauge(stem + "dropped"));
    }
    tm.offered = metrics->gauge("cluster.offered");
    tm.cross_migrations = metrics->gauge("cluster.cross_np_migrations");
    tm.cluster_ooo = metrics->gauge("cluster.out_of_order");
    tm.windows = metrics->gauge("cluster.windows");
    // Dispatcher gauges: the stat keys are stable over a dispatcher's
    // lifetime (counters start at 0), so the pre-run key set is the set.
    for (const auto& [key, value] : dispatcher.extra_stats()) {
      tm.dispatch_extra.emplace_back(
          key, metrics->gauge("cluster.dispatch." + key));
    }
    tm.shard = &metrics->local_shard();
  }

  const std::size_t total_flows = arrivals.total_flows();
  for (const auto& shard : shards) {
    shard->engine->begin_run(config.name, total_flows);
  }

  std::vector<ShardGauge> gauges(n);
  ClusterView view;
  view.shards = {gauges.data(), gauges.size()};

  // Cluster-level accounting lanes, indexed by global flow id.
  std::vector<std::uint32_t> last_shard_plus1;
  std::vector<std::uint32_t> egress_hi;
  std::vector<std::uint32_t> next_global_seq;
  if (total_flows > 0) {
    last_shard_plus1.resize(total_flows);
    egress_hi.resize(total_flows);
    next_global_seq.resize(total_flows);
  }

  std::uint64_t offered = 0;
  std::uint64_t cross_migrations = 0;
  std::uint64_t cluster_ooo = 0;
  std::uint64_t windows_run = 0;
  std::vector<std::uint32_t> completed;  // per barrier: flows that left
  std::vector<std::size_t> cursor(n);    // per-shard merge positions

  // Declared after `shards` so the pool destructs (joining any in-flight
  // shard task) before the shard states it references.
  const std::size_t exec_threads = std::min(config.threads, n);
  std::optional<ThreadPool> pool;
  if (exec_threads > 1) pool.emplace(exec_threads);

  // Feed each shard its window batch and settle it to the barrier. Shard
  // tasks touch only their own ShardState; the futures' get() is both the
  // barrier and the happens-before edge back to the coordinator — which is
  // why threaded execution is bit-identical to lockstep.
  auto run_window = [&](TimeNs window_end) {
    auto shard_task = [&shards, window_end](std::size_t i) {
      ShardState& shard = *shards[i];
      const std::size_t count = shard.batch.size();
      if (count > 0) shard.engine->prefetch_flow(shard.batch[0].gflow);
      for (std::size_t p = 0; p < count; ++p) {
        if (p + 1 < count) {
          shard.engine->prefetch_flow(shard.batch[p + 1].gflow);
        }
        shard.engine->feed(shard.batch[p]);
      }
      shard.batch.clear();
      shard.engine->advance_to(window_end);
    };
    if (pool) {
      std::vector<std::future<void>> done;
      done.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        done.push_back(pool->submit([&shard_task, i] { shard_task(i); }));
      }
      for (auto& f : done) f.get();
    } else {
      for (std::size_t i = 0; i < n; ++i) shard_task(i);
    }
    ++windows_run;
  };

  // Merge the window's departures into global egress order (time, ties by
  // shard id — deterministic), run the cluster-level high-water order
  // detector over the dispatcher-stamped cluster seqs — what a downstream
  // observer of the merged wire would measure — and collect the flows that
  // left the system (departed or dropped) for the dispatcher's in-flight
  // feedback. `completed` is skipped when the dispatcher declares it
  // ignores barrier feedback (wants_completions()).
  const bool feed_completions = dispatcher.wants_completions();
  auto detect = [&](const EgressTapProbe::Departure& d) {
    grow_u32_lane(egress_hi, d.gflow);
    std::uint32_t& hi = egress_hi[d.gflow];
    if (d.cluster_seq + 1 < hi) {
      ++cluster_ooo;
    } else {
      hi = d.cluster_seq + 1;
    }
    if (feed_completions) completed.push_back(d.gflow);
  };
  auto merge_egress = [&] {
    completed.clear();
    if (n == 1) {
      // Single shard: the merge is the shard's own departure list. Walk it
      // linearly, fetching the flow's high-water entry a few departures
      // ahead — with realistic flow populations every lookup is a cold
      // cache line, and the lookahead is most of this loop's speed.
      const auto& departures = shards[0]->tap.departures;
      const std::size_t count = departures.size();
      constexpr std::size_t kLookahead = 8;
      for (std::size_t i = 0; i < count; ++i) {
        if (i + kLookahead < count) {
          const std::uint32_t f = departures[i + kLookahead].gflow;
          if (f < egress_hi.size()) __builtin_prefetch(&egress_hi[f], 1);
        }
        detect(departures[i]);
      }
    } else {
      std::fill(cursor.begin(), cursor.end(), std::size_t{0});
      for (;;) {
        std::size_t best = n;
        TimeNs best_time = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const auto& departures = shards[i]->tap.departures;
          if (cursor[i] >= departures.size()) continue;
          const TimeNs t = departures[cursor[i]].time;
          if (best == n || t < best_time) {
            best = i;
            best_time = t;
          }
        }
        if (best == n) break;
        const auto& departures = shards[best]->tap.departures;
        // Hide the next high-water miss of this shard's lane behind the
        // current departure's detector work.
        if (cursor[best] + 1 < departures.size()) {
          const std::uint32_t f = departures[cursor[best] + 1].gflow;
          if (f < egress_hi.size()) __builtin_prefetch(&egress_hi[f], 1);
        }
        detect(departures[cursor[best]++]);
      }
    }
    for (const auto& shard : shards) {
      if (feed_completions) {
        completed.insert(completed.end(), shard->tap.drops.begin(),
                         shard->tap.drops.end());
      }
      shard->tap.departures.clear();
      shard->tap.drops.clear();
    }
  };

  auto publish_metrics = [&] {
    if (tm.shard == nullptr) return;
    for (std::size_t i = 0; i < n; ++i) {
      tm.shard->set(tm.outstanding[i],
                    static_cast<std::int64_t>(gauges[i].outstanding()));
      tm.shard->set(tm.queue_len[i],
                    static_cast<std::int64_t>(gauges[i].queue_len));
      tm.shard->set(tm.delivered[i],
                    static_cast<std::int64_t>(gauges[i].delivered));
      tm.shard->set(tm.dropped[i],
                    static_cast<std::int64_t>(gauges[i].dropped));
    }
    tm.shard->set(tm.offered, static_cast<std::int64_t>(offered));
    tm.shard->set(tm.cross_migrations,
                  static_cast<std::int64_t>(cross_migrations));
    tm.shard->set(tm.cluster_ooo, static_cast<std::int64_t>(cluster_ooo));
    tm.shard->set(tm.windows, static_cast<std::int64_t>(windows_run));
    if (!tm.dispatch_extra.empty()) {
      const auto stats = dispatcher.extra_stats();
      for (const auto& [key, id] : tm.dispatch_extra) {
        const auto it = stats.find(key);
        if (it != stats.end()) {
          tm.shard->set(id, std::llround(it->second));
        }
      }
    }
  };

  auto sync_barrier = [&](TimeNs window_end) {
    merge_egress();
    for (std::size_t i = 0; i < n; ++i) {
      const SimReport& r = shards[i]->report.report();
      gauges[i].delivered = r.delivered;
      gauges[i].dropped = r.dropped;
      std::uint32_t queued = 0;
      std::uint32_t busy = 0;
      for (const CoreView& core : shards[i]->engine->cores()) {
        queued += core.queue_len;
        busy += core.busy ? 1 : 0;
      }
      gauges[i].queue_len = queued;
      gauges[i].busy_cores = busy;
    }
    view.now = window_end;
    dispatcher.on_sync(view, {completed.data(), completed.size()});
    publish_metrics();
  };

  auto arrival = arrivals.next();
  TimeNs window_end = config.sync_ns;
  while (arrival) {
    // Dispatch every arrival in ((k-1)*sync, k*sync] — single-threaded,
    // from gauges frozen at the last barrier plus the live dispatched
    // counts, in both execution modes.
    while (arrival && arrival->time <= window_end) {
      view.now = arrival->time;
      const ShardId target = dispatcher.pick(*arrival, view);
      if (target >= n) {
        throw std::logic_error("dispatcher returned invalid shard id");
      }
      ++offered;
      ++gauges[target].dispatched;
      grow_u32_lane(last_shard_plus1, arrival->gflow);
      std::uint32_t& prev = last_shard_plus1[arrival->gflow];
      if (prev != 0 && prev != target + 1) ++cross_migrations;
      prev = target + 1;
      grow_u32_lane(next_global_seq, arrival->gflow);
      shards[target]->batch.push_back(*arrival);
      // Stamp the cluster-global per-flow seq on the shard-bound copy (NIC
      // RX metadata); the egress tap reads it back so the merged order
      // detector compares one numbering across shards.
      shards[target]->batch.back().cluster_seq =
          next_global_seq[arrival->gflow]++;
      arrival = arrivals.next();
    }
    run_window(window_end);
    sync_barrier(window_end);
    window_end += config.sync_ns;
    // Idle gap: jump to the window containing the next arrival rather
    // than turning empty windows (identically in both execution modes).
    if (arrival && arrival->time > window_end) {
      const TimeNs k = (arrival->time + config.sync_ns - 1) / config.sync_ns;
      window_end = k * config.sync_ns;
    }
  }

  // Drain: no more arrivals; run every shard to completion, then fold the
  // trailing departures into the merged accounting.
  {
    auto finish_task = [&shards](std::size_t i) {
      shards[i]->engine->finish_run();
    };
    if (pool) {
      std::vector<std::future<void>> done;
      done.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        done.push_back(pool->submit([&finish_task, i] { finish_task(i); }));
      }
      for (auto& f : done) f.get();
    } else {
      for (std::size_t i = 0; i < n; ++i) finish_task(i);
    }
  }
  merge_egress();

  ClusterReport out;
  out.scenario = config.name;
  out.dispatcher = dispatcher.name();
  out.num_shards = n;
  out.offered = offered;
  out.cross_np_migrations = cross_migrations;
  out.cluster_out_of_order = cluster_ooo;
  out.extra = dispatcher.extra_stats();
  out.shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SimReport r = shards[i]->report.take_report();
    out.delivered += r.delivered;
    out.dropped += r.dropped;
    out.intra_np_out_of_order += r.out_of_order;
    out.intra_np_migrations += r.flow_migrations;
    out.sim_time = std::max(out.sim_time, r.sim_time);
    out.shards.push_back(std::move(r));
  }
  // The merged detector sees every inversion each shard's own detector saw:
  // the local-to-global seq relabeling is strictly increasing per (shard,
  // flow) — both numberings follow the same dispatch order — so it
  // preserves each shard's below-running-max structure, a shard's
  // departures keep their relative order in the merge, and interleaving
  // other shards can only raise the high-water mark. So this subtraction
  // cannot go negative; the guard documents the claim.
  out.cross_np_out_of_order =
      out.cluster_out_of_order >= out.intra_np_out_of_order
          ? out.cluster_out_of_order - out.intra_np_out_of_order
          : 0;

  // Final publication so scrapes after the run see end-of-run values.
  for (std::size_t i = 0; i < n; ++i) {
    gauges[i].delivered = out.shards[i].delivered;
    gauges[i].dropped = out.shards[i].dropped;
    gauges[i].queue_len = 0;
    gauges[i].busy_cores = 0;
  }
  publish_metrics();
  return out;
}

}  // namespace laps
