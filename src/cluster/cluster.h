#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/report.h"
#include "sim/scheduler.h"
#include "sim/timing_wheel.h"
#include "telemetry/metrics.h"
#include "traffic/generator.h"
#include "traffic/workload.h"
#include "util/time.h"

namespace laps {

struct FaultPlan;  // sim/fault.h

/// Configuration of a sharded multi-NP cluster run: N independent SimEngine
/// shards (each with its own scheduler instance, queues, flow state, and
/// optional fault plan) behind one front-end Dispatcher, driven from one
/// merged clock in fixed sync windows.
struct ClusterConfig {
  std::string name = "cluster";  ///< scenario label
  std::size_t num_shards = 2;
  std::size_t cores_per_shard = 16;
  std::uint32_t queue_capacity = 32;
  DelayModel delay;
  bool restore_order = false;  ///< per-shard egress ReorderBuffer
  EventQueueKind event_queue = EventQueueKind::kWheel;

  /// Sync-window width: the coordinator dispatches all arrivals of one
  /// window, runs every shard to the window end, then merges egress and
  /// feeds the dispatcher its delayed feedback. Smaller = fresher NIC
  /// feedback, more barriers; the window also bounds how stale a
  /// dispatcher's delivered/dropped gauges can be.
  TimeNs sync_ns = 100 * kMicrosecond;

  /// Shard executor threads: 1 = single-threaded lockstep (the oracle);
  /// >1 runs the shards of each window on a ThreadPool between barriers.
  /// Both modes produce bit-identical ClusterReports (shards share no
  /// mutable state; all dispatch decisions happen on the coordinator from
  /// barrier-frozen gauges) — asserted by cluster_test's differential
  /// grid.
  std::size_t threads = 1;

  /// Per-shard fault plans: empty, or exactly num_shards entries (null =
  /// fault-free shard). Plans must outlive the run. Traffic fault events
  /// (burst/crowd) are realized by the *arrival stream*, as in
  /// run_scenario — wrap the stream in FaultTrafficStream yourself.
  std::vector<std::shared_ptr<const FaultPlan>> shard_faults;

  /// Factory for each shard's scheduler instance (fresh per shard — shards
  /// must not share scheduler state). Required.
  std::function<std::unique_ptr<Scheduler>()> make_scheduler;
};

/// Runs `arrivals` through the cluster: `dispatcher` assigns every packet
/// to a shard, shards simulate independently between sync barriers, and
/// the coordinator merges their egress into the cluster-level accounting
/// (intra- vs cross-NP out-of-order, cross-NP migrations).
///
/// When `metrics` is non-null, per-shard gauges
/// (cluster.shard<i>.{outstanding,queue_len,delivered,dropped}), cluster
/// totals, and the dispatcher's extra_stats are registered up front and
/// published at every sync barrier from the coordinator thread.
///
/// Deterministic: same config + same stream + same dispatcher state =>
/// byte-identical ClusterReport JSON, regardless of config.threads.
ClusterReport run_cluster(const ClusterConfig& config, ArrivalStream& arrivals,
                          Dispatcher& dispatcher,
                          telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace laps
