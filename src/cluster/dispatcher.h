#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "traffic/generator.h"
#include "util/time.h"

namespace laps {

using ShardId = std::uint32_t;

/// What the front-end dispatcher can observe about one shard NP.
///
/// `dispatched` is live — the coordinator bumps it at every pick, so the
/// dispatcher always knows exactly what it has sent. `delivered`/`dropped`
/// (and the queue/busy snapshot) are frozen at the last sync barrier: NIC
/// feedback from a backend is delayed, not instantaneous, and keeping the
/// lag explicit is also what makes the threaded cluster bit-identical to
/// lockstep (mid-window shard state is never read).
struct ShardGauge {
  std::uint32_t queue_len = 0;   ///< total input-queue occupancy at barrier
  std::uint32_t busy_cores = 0;  ///< cores in service at barrier
  std::uint64_t delivered = 0;   ///< cumulative departures as of barrier
  std::uint64_t dropped = 0;     ///< cumulative drops as of barrier
  std::uint64_t dispatched = 0;  ///< cumulative packets sent (live)

  /// Packets sent to the shard and not yet known to have left it — the
  /// dispatcher's load estimate. Exact at barriers; mid-window it
  /// overestimates by the packets the shard completed since the barrier.
  std::uint64_t outstanding() const {
    return dispatched - delivered - dropped;
  }
};

/// The dispatcher-visible cluster state at one decision point.
struct ClusterView {
  TimeNs now = 0;
  std::span<const ShardGauge> shards;
};

/// Front-end packet dispatcher: the NIC/load-balancer layer that assigns
/// each arriving packet to one shard NP before the shard's own scheduler
/// assigns it to a core.
///
/// Determinism contract: pick() and on_sync() must be pure functions of
/// (attach arguments, the sequence of prior pick/on_sync calls and their
/// arguments) — no wall clocks, no unseeded randomness, ties broken by
/// lowest shard id. The cluster fabric calls dispatchers exclusively from
/// the single-threaded coordinator, which is why lockstep and per-shard-
/// thread execution produce bit-identical ClusterReports (see
/// cluster/cluster.h).
class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Called once before any pick(); sizes state for `num_shards` shards.
  virtual void attach(std::size_t num_shards) = 0;

  /// Picks the target shard for `pkt` (must be < num_shards).
  virtual ShardId pick(const GeneratedPacket& pkt,
                       const ClusterView& view) = 0;

  /// Sync-barrier feedback. `completed` carries the global flow id of
  /// every packet that left the cluster (departed or dropped) since the
  /// previous barrier, in the deterministic merged egress order —
  /// in-flight-aware dispatchers decrement their per-flow estimates here.
  virtual void on_sync(const ClusterView& view,
                       std::span<const std::uint32_t> completed) {
    (void)view;
    (void)completed;
  }

  /// Whether this dispatcher reads on_sync's `completed` span. Defaults to
  /// true (safe for any subclass); dispatchers that ignore it return false
  /// so the fabric can skip building the per-barrier list — one push per
  /// packet on the merge path.
  virtual bool wants_completions() const { return true; }

  /// Display name for tables and the ClusterReport.
  virtual std::string name() const = 0;

  /// Dispatcher-specific counters merged into ClusterReport::extra.
  virtual std::map<std::string, double> extra_stats() const { return {}; }
};

}  // namespace laps
