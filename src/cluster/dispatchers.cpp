#include "cluster/dispatchers.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace laps {
namespace {

/// Least-outstanding shard, ties to the lowest id (the deterministic
/// tie-break every dispatcher shares).
ShardId least_outstanding(const ClusterView& view) {
  ShardId best = 0;
  std::uint64_t best_out = view.shards[0].outstanding();
  for (ShardId i = 1; i < view.shards.size(); ++i) {
    const std::uint64_t out = view.shards[i].outstanding();
    if (out < best_out) {
      best = i;
      best_out = out;
    }
  }
  return best;
}

void grow_flow_lane(std::vector<ShardId>& lane, std::uint32_t gflow) {
  if (gflow >= lane.size()) {
    lane.resize(std::max<std::size_t>(
        64, std::bit_ceil(static_cast<std::size_t>(gflow) + 1)));
  }
}

}  // namespace

void PassDispatcher::attach(std::size_t num_shards) {
  if (target_ >= num_shards) {
    throw std::invalid_argument("PassDispatcher: target shard out of range");
  }
}

void RoundRobinDispatcher::attach(std::size_t num_shards) {
  shards_ = static_cast<ShardId>(num_shards);
  next_ = 0;
}

void RssDispatcher::attach(std::size_t num_shards) {
  shards_ = static_cast<std::uint32_t>(num_shards);
}

FlowDirectorDispatcher::FlowDirectorDispatcher(std::size_t slots) {
  if (slots == 0) {
    throw std::invalid_argument("FlowDirectorDispatcher: 0 slots");
  }
  slots_.resize(slots);
}

void FlowDirectorDispatcher::attach(std::size_t) {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  inserts_ = 0;
  evictions_ = 0;
  reassignments_ = 0;
}

ShardId FlowDirectorDispatcher::pick(const GeneratedPacket& pkt,
                                     const ClusterView& view) {
  const std::uint32_t h = hash_.hash(pkt.record.tuple);
  Slot& slot = slots_[h % slots_.size()];
  if (!slot.valid || slot.sig != h) {
    // Miss: insert (evicting a colliding flow's entry), placing the flow on
    // the currently least-loaded shard. The evicted flow's next packet will
    // itself miss and re-insert — possibly elsewhere: the reordering
    // mechanism under study.
    const ShardId target = least_outstanding(view);
    if (slot.valid) {
      ++evictions_;
      if (slot.target != target) ++reassignments_;
    }
    slot = Slot{h, target, true};
    ++inserts_;
  }
  return slot.target;
}

std::map<std::string, double> FlowDirectorDispatcher::extra_stats() const {
  return {
      {"fdir_inserts", static_cast<double>(inserts_)},
      {"fdir_evictions", static_cast<double>(evictions_)},
      {"fdir_reassignments", static_cast<double>(reassignments_)},
  };
}

AffinityDispatcher::AffinityDispatcher(std::uint64_t th, bool drain)
    : th_(th), drain_(drain) {}

void AffinityDispatcher::attach(std::size_t) {
  home_plus1_.clear();
  inflight_.clear();
  migrations_ = 0;
  blocked_migrations_ = 0;
}

void AffinityDispatcher::ensure(std::uint32_t gflow) {
  if (gflow >= home_plus1_.size()) {
    const std::size_t size = std::max<std::size_t>(
        64, std::bit_ceil(static_cast<std::size_t>(gflow) + 1));
    home_plus1_.resize(size);
    inflight_.resize(size);
  }
}

ShardId AffinityDispatcher::pick(const GeneratedPacket& pkt,
                                 const ClusterView& view) {
  ensure(pkt.gflow);
  ShardId& home_plus1 = home_plus1_[pkt.gflow];
  if (home_plus1 == 0) {
    home_plus1 = least_outstanding(view) + 1;
  } else {
    const ShardId home = home_plus1 - 1;
    const ShardId best = least_outstanding(view);
    if (view.shards[home].outstanding() >
        view.shards[best].outstanding() + th_) {
      // The home is overloaded; redirect — but only reorder-safely: with
      // drain on, a flow moves only between its own bursts (no packet of
      // it still in flight on the old shard).
      if (!drain_ || inflight_[pkt.gflow] == 0) {
        home_plus1 = best + 1;
        ++migrations_;
      } else {
        ++blocked_migrations_;
      }
    }
  }
  ++inflight_[pkt.gflow];
  return home_plus1 - 1;
}

void AffinityDispatcher::on_sync(const ClusterView&,
                                 std::span<const std::uint32_t> completed) {
  for (const std::uint32_t gflow : completed) {
    if (gflow < inflight_.size() && inflight_[gflow] > 0) {
      --inflight_[gflow];
    }
  }
}

std::map<std::string, double> AffinityDispatcher::extra_stats() const {
  return {
      {"affinity_migrations", static_cast<double>(migrations_)},
      {"affinity_blocked_migrations",
       static_cast<double>(blocked_migrations_)},
  };
}

LeastLoadedDispatcher::LeastLoadedDispatcher(std::uint64_t th) : th_(th) {}

void LeastLoadedDispatcher::attach(std::size_t) {
  home_plus1_.clear();
  migrations_ = 0;
}

ShardId LeastLoadedDispatcher::pick(const GeneratedPacket& pkt,
                                    const ClusterView& view) {
  grow_flow_lane(home_plus1_, pkt.gflow);
  ShardId& home_plus1 = home_plus1_[pkt.gflow];
  if (home_plus1 == 0) {
    home_plus1 = least_outstanding(view) + 1;
  } else {
    const ShardId home = home_plus1 - 1;
    const ShardId best = least_outstanding(view);
    if (view.shards[home].outstanding() >
        view.shards[best].outstanding() + th_) {
      if (best != home) ++migrations_;
      home_plus1 = best + 1;
    }
  }
  return home_plus1 - 1;
}

std::map<std::string, double> LeastLoadedDispatcher::extra_stats() const {
  return {{"load_migrations", static_cast<double>(migrations_)}};
}

}  // namespace laps
