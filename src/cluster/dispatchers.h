#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dispatcher.h"
#include "util/toeplitz.h"

namespace laps {

/// `pass`: every packet to one fixed shard. With shards=1 this is the
/// identity front end — the cluster's differential anchor: the shard's
/// SimReport must be byte-identical to running the engine directly
/// (asserted by cluster_test).
class PassDispatcher final : public Dispatcher {
 public:
  explicit PassDispatcher(ShardId target = 0) : target_(target) {}

  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket&, const ClusterView&) override {
    return target_;
  }
  bool wants_completions() const override { return false; }
  std::string name() const override { return "Pass"; }

 private:
  ShardId target_;
};

/// `rr`: packet-level round robin. Perfect packet balance, zero flow
/// affinity — the reorder-maximizing baseline every NIC design is
/// measured against.
class RoundRobinDispatcher final : public Dispatcher {
 public:
  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket&, const ClusterView&) override {
    const ShardId t = next_;
    next_ = (next_ + 1 == shards_) ? 0 : next_ + 1;
    return t;
  }
  bool wants_completions() const override { return false; }
  std::string name() const override { return "RoundRobin"; }

 private:
  ShardId shards_ = 1;
  ShardId next_ = 0;
};

/// `rss`: receive-side scaling — Toeplitz hash of the 5-tuple modulo the
/// shard count (Microsoft's canonical key). Stateless, so a flow never
/// moves: zero cross-NP migrations and zero cross-NP reordering, at the
/// cost of whatever imbalance the hash hands out.
class RssDispatcher final : public Dispatcher {
 public:
  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket& pkt, const ClusterView&) override {
    return static_cast<ShardId>(hash_.hash(pkt.record.tuple) % shards_);
  }
  bool wants_completions() const override { return false; }
  std::string name() const override { return "RSS"; }

 private:
  ToeplitzHash hash_;
  std::uint32_t shards_ = 1;
};

/// `fdir:slots=N`: Intel Flow Director emulation. A hash-indexed signature
/// table maps flows to shards: slot = hash % slots, the full 32-bit hash
/// as the signature. A miss (empty slot or signature mismatch) assigns the
/// least-outstanding shard and overwrites the slot — the eviction/
/// re-insertion of colliding flows is exactly the mechanism that makes
/// Flow Director reorder packets ("Why Does Flow Director Cause Packet
/// Reordering?"): an evicted flow that later re-inserts may land on a
/// different shard while its earlier packets are still in flight. Flows
/// whose full hashes collide share an entry, as in the real table.
class FlowDirectorDispatcher final : public Dispatcher {
 public:
  explicit FlowDirectorDispatcher(std::size_t slots = 4096);

  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket& pkt, const ClusterView& view) override;
  bool wants_completions() const override { return false; }
  std::string name() const override { return "FlowDirector"; }
  std::map<std::string, double> extra_stats() const override;

 private:
  struct Slot {
    std::uint32_t sig = 0;
    ShardId target = 0;
    bool valid = false;
  };

  ToeplitzHash hash_;
  std::vector<Slot> slots_;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reassignments_ = 0;  ///< re-inserts that changed shard
};

/// `affinity:th=T,drain=0|1`: A-TFN-style flow affinity with in-flight-
/// aware redirection ("A Transport-Friendly NIC for Multicore/
/// Multiprocessor Systems"). Each flow has a home shard (first packet:
/// least outstanding). When the home's outstanding backlog exceeds the
/// least-loaded shard's by more than `th`, the flow wants to migrate —
/// but with drain=1 (the A-TFN rule, default) the move is taken only when
/// the flow has zero packets in flight, so migration cannot reorder;
/// drain=0 migrates immediately (the control for what the safety rule
/// buys). In-flight counts are dispatch-increment / sync-feedback-
/// decrement, so estimates lag by at most one sync window.
class AffinityDispatcher final : public Dispatcher {
 public:
  explicit AffinityDispatcher(std::uint64_t th = 32, bool drain = true);

  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket& pkt, const ClusterView& view) override;
  void on_sync(const ClusterView& view,
               std::span<const std::uint32_t> completed) override;
  std::string name() const override {
    return drain_ ? "Affinity" : "Affinity-nodrain";
  }
  std::map<std::string, double> extra_stats() const override;

 private:
  void ensure(std::uint32_t gflow);

  std::uint64_t th_;
  bool drain_;
  std::vector<ShardId> home_plus1_;      ///< by gflow; 0 = unassigned
  std::vector<std::uint32_t> inflight_;  ///< by gflow; home-shard packets
  std::uint64_t migrations_ = 0;
  std::uint64_t blocked_migrations_ = 0;  ///< wanted but in-flight (drain)
};

/// `load:th=T`: least-loaded with immediate migration. New flows go to the
/// least-outstanding shard; an existing flow migrates the moment its home
/// exceeds the least-loaded by more than `th`. Maximum balance, no
/// reordering protection — the cluster-level analogue of the paper's
/// naive intra-NP migration.
class LeastLoadedDispatcher final : public Dispatcher {
 public:
  explicit LeastLoadedDispatcher(std::uint64_t th = 32);

  void attach(std::size_t num_shards) override;
  ShardId pick(const GeneratedPacket& pkt, const ClusterView& view) override;
  bool wants_completions() const override { return false; }
  std::string name() const override { return "LeastLoaded"; }
  std::map<std::string, double> extra_stats() const override;

 private:
  std::uint64_t th_;
  std::vector<ShardId> home_plus1_;  ///< by gflow; 0 = unassigned
  std::uint64_t migrations_ = 0;
};

}  // namespace laps
