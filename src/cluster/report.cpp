#include "cluster/report.h"

#include <sstream>

#include "sim/report_json.h"
#include "util/fileio.h"

namespace laps {

std::string ClusterReport::summary() const {
  std::ostringstream out;
  out << "cluster " << scenario << " / " << dispatcher << " (" << num_shards
      << " shards)\n";
  out << "  offered " << offered << "  delivered " << delivered
      << "  dropped " << dropped << " (" << drop_ratio() * 100 << "%)\n";
  out << "  out-of-order: intra-NP " << intra_np_out_of_order
      << "  cross-NP " << cross_np_out_of_order << "  cluster "
      << cluster_out_of_order << " (" << cluster_ooo_ratio() * 100 << "%)\n";
  out << "  migrations: intra-NP " << intra_np_migrations << "  cross-NP "
      << cross_np_migrations << "\n";
  out << "  throughput " << throughput_mpps() << " Mpps\n";
  return out.str();
}

void write_cluster_report_json(JsonWriter& w, const ClusterReport& r) {
  w.begin_object();
  w.field("schema", "laps-cluster-v1");
  w.field("scenario", r.scenario);
  w.field("dispatcher", r.dispatcher);
  w.field("num_shards", static_cast<std::uint64_t>(r.num_shards));
  w.field("sim_time_ns", static_cast<std::int64_t>(r.sim_time));

  w.field("offered", r.offered);
  w.field("delivered", r.delivered);
  w.field("dropped", r.dropped);

  w.field("intra_np_out_of_order", r.intra_np_out_of_order);
  w.field("cluster_out_of_order", r.cluster_out_of_order);
  w.field("cross_np_out_of_order", r.cross_np_out_of_order);
  w.field("intra_np_migrations", r.intra_np_migrations);
  w.field("cross_np_migrations", r.cross_np_migrations);

  w.field("drop_ratio", r.drop_ratio());
  w.field("cluster_ooo_ratio", r.cluster_ooo_ratio());
  w.field("cross_np_ooo_ratio", r.cross_np_ooo_ratio());
  w.field("throughput_mpps", r.throughput_mpps());

  w.key("extra");
  w.begin_object();
  for (const auto& [key, value] : r.extra) {  // std::map: sorted, stable
    w.field(key, value);
  }
  w.end_object();

  w.key("shards");
  w.begin_array();
  for (const SimReport& shard : r.shards) write_report_json(w, shard);
  w.end_array();
  w.end_object();
}

std::string cluster_report_to_json(const ClusterReport& report) {
  JsonWriter w;
  write_cluster_report_json(w, report);
  return w.str();
}

void write_cluster_report_file(const std::string& path,
                               const ClusterReport& report) {
  util::write_file_atomic(path, cluster_report_to_json(report) + "\n",
                          "cluster report");
}

}  // namespace laps
