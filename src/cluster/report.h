#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/report.h"
#include "util/json_writer.h"
#include "util/time.h"

namespace laps {

/// Aggregate results of one cluster run: the per-shard SimReports plus the
/// accounting only the cluster layer can do — splitting out-of-order
/// departures into what happened *inside* a shard NP (the paper's metric,
/// summed) and what the front-end dispatcher added by moving flows
/// *between* NPs (the Flow Director / A-TFN tension this layer exists to
/// measure).
struct ClusterReport {
  std::string scenario;
  std::string dispatcher;  ///< display name (Dispatcher::name())
  std::size_t num_shards = 0;
  TimeNs sim_time = 0;  ///< max shard sim_time

  std::uint64_t offered = 0;    ///< packets presented to the dispatcher
  std::uint64_t delivered = 0;  ///< sum of shard deliveries
  std::uint64_t dropped = 0;    ///< sum of shard drops

  /// Sum of shard out_of_order: reordering each shard's own scheduler
  /// caused, visible even on that shard's wire alone.
  std::uint64_t intra_np_out_of_order = 0;
  /// Out-of-order departures on the merged cluster egress (all shards'
  /// departures in global time order, ties by shard id). Always >= the
  /// intra sum: merging can only expose more inversions.
  std::uint64_t cluster_out_of_order = 0;
  /// cluster - sum(intra): inversions that exist only across shards, i.e.
  /// caused by the dispatcher splitting a flow over NPs.
  std::uint64_t cross_np_out_of_order = 0;

  /// Sum of shard flow_migrations (core changes inside a shard).
  std::uint64_t intra_np_migrations = 0;
  /// Dispatches that sent a flow to a different shard than its previous
  /// packet (first packet of a flow does not count).
  std::uint64_t cross_np_migrations = 0;

  /// Dispatcher-specific counters (Dispatcher::extra_stats).
  std::map<std::string, double> extra;

  /// Per-shard reports, index = shard id.
  std::vector<SimReport> shards;

  double drop_ratio() const {
    return offered ? static_cast<double>(dropped) /
                         static_cast<double>(offered)
                   : 0.0;
  }
  double cluster_ooo_ratio() const {
    return delivered ? static_cast<double>(cluster_out_of_order) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
  double cross_np_ooo_ratio() const {
    return delivered ? static_cast<double>(cross_np_out_of_order) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
  double throughput_mpps() const {
    const double secs = to_seconds(sim_time);
    return secs > 0 ? static_cast<double>(delivered) / secs / 1e6 : 0.0;
  }

  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// Serializes a ClusterReport (schema laps-cluster-v1) into an open writer.
void write_cluster_report_json(JsonWriter& writer,
                               const ClusterReport& report);

/// Full document as a string. Byte-stable for identical reports — the
/// lockstep-vs-threaded and shards=1 differential tests compare these
/// strings directly.
std::string cluster_report_to_json(const ClusterReport& report);

/// Writes the JSON document to `path` via the shared atomic tmp+rename
/// path (util::write_file_atomic).
void write_cluster_report_file(const std::string& path,
                               const ClusterReport& report);

}  // namespace laps
