#pragma once

#include <cstdint>
#include <vector>

#include "cache/afd.h"

namespace laps {

/// Aggressive-flow detection mechanism: a thin policy-facing wrapper over
/// the two-level AFD (AFC + annex, paper Sec. III-F) that standardizes the
/// three things every migrating scheduler does with it — feed packets,
/// query the aggressiveness predicate, and expose a read-only AFC snapshot
/// for accuracy probes.
///
/// The wrapper also owns the promotion-detection idiom: promotions are only
/// observable as a stats delta, and comparing deltas on every packet is
/// wasted work when nobody listens, so observe() runs the comparison only
/// when the caller asks for it (i.e. an event sink is installed).
class AggressiveDetector {
 public:
  explicit AggressiveDetector(const AfdConfig& config) : afd_(config) {}

  /// Feeds one packet. When `detect_promotion`, returns whether this access
  /// promoted the flow into the AFC; otherwise always false (and skips the
  /// stats comparison).
  bool observe(std::uint64_t flow_key, bool detect_promotion = false) {
    if (!detect_promotion) {
      afd_.access(flow_key);
      return false;
    }
    const std::uint64_t before = afd_.stats().promotions;
    afd_.access(flow_key);
    return afd_.stats().promotions != before;
  }

  /// The aggressiveness predicate (AFC membership). Read-only.
  bool is_aggressive(std::uint64_t flow_key) const {
    return afd_.is_aggressive(flow_key);
  }

  /// Listing 1 line 8: drop a just-migrated flow from the AFC.
  void invalidate(std::uint64_t flow_key) { afd_.invalidate(flow_key); }

  /// Live AFC contents, most-frequent first — the Scheduler::
  /// aggressive_snapshot() payload. Afd::aggressive_flows() is a read-only
  /// hardware-style lookup, so sampling never perturbs the detector.
  std::vector<std::uint64_t> snapshot() const {
    return afd_.aggressive_flows();
  }

  const AfdStats& stats() const { return afd_.stats(); }
  const Afd& afd() const { return afd_; }

  /// Clears both caches and statistics (per-run reset for policies that
  /// hold the detector by value across attach() calls).
  void reset() { afd_.reset(); }

 private:
  Afd afd_;
};

}  // namespace laps
