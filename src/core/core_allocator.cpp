#include "core/core_allocator.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

CoreAllocator::CoreAllocator(std::size_t num_cores, std::size_t num_services,
                             std::size_t min_cores)
    : min_cores_(min_cores) {
  if (num_services == 0) {
    throw std::invalid_argument("CoreAllocator: no services");
  }
  if (num_cores < num_services) {
    throw std::invalid_argument("CoreAllocator: fewer cores than services");
  }
  if (min_cores == 0) {
    throw std::invalid_argument("CoreAllocator: min_cores must be >= 1");
  }
  owner_.resize(num_cores);
  cores_of_.resize(num_services);
  // Contiguous, as-even-as-possible split (16/4 -> 4 each, the paper's
  // "at initialization, cores are equally divided among services").
  for (std::size_t c = 0; c < num_cores; ++c) {
    const std::size_t service = c * num_services / num_cores;
    owner_[c] = service;
    cores_of_[service].push_back(static_cast<CoreId>(c));
  }
}

void CoreAllocator::mark_surplus(CoreId core, TimeNs now) {
  if (core >= owner_.size()) {
    throw std::out_of_range("CoreAllocator: bad core id");
  }
  if (is_surplus(core)) return;
  surplus_.push_back(Surplus{core, now});
}

void CoreAllocator::unmark_surplus(CoreId core) {
  const auto it = std::find_if(
      surplus_.begin(), surplus_.end(),
      [core](const Surplus& s) { return s.core == core; });
  if (it != surplus_.end()) surplus_.erase(it);
}

bool CoreAllocator::is_surplus(CoreId core) const {
  return std::any_of(surplus_.begin(), surplus_.end(),
                     [core](const Surplus& s) { return s.core == core; });
}

std::optional<CoreId> CoreAllocator::grant_core(std::size_t service) {
  if (service >= cores_of_.size()) {
    throw std::out_of_range("CoreAllocator: bad service id");
  }
  // Longest-marked eligible core: marked earliest, owned by another
  // service, and its owner keeps at least min_cores cores after donating.
  auto best = surplus_.end();
  for (auto it = surplus_.begin(); it != surplus_.end(); ++it) {
    const std::size_t victim = owner_[it->core];
    if (victim == service) continue;
    if (cores_of_[victim].size() <= min_cores_) continue;
    if (best == surplus_.end() || it->since < best->since) best = it;
  }
  if (best == surplus_.end()) return std::nullopt;

  const CoreId core = best->core;
  surplus_.erase(best);
  const std::size_t victim = owner_[core];
  auto& victim_cores = cores_of_[victim];
  victim_cores.erase(std::find(victim_cores.begin(), victim_cores.end(), core));
  owner_[core] = service;
  cores_of_[service].push_back(core);
  ++transfers_;
  return core;
}

}  // namespace laps
