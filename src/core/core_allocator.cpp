#include "core/core_allocator.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

CoreAllocator::CoreAllocator(std::size_t num_cores, std::size_t num_services,
                             std::size_t min_cores)
    : min_cores_(min_cores) {
  if (num_services == 0) {
    throw std::invalid_argument("CoreAllocator: no services");
  }
  if (num_cores < num_services) {
    throw std::invalid_argument("CoreAllocator: fewer cores than services");
  }
  if (min_cores == 0) {
    throw std::invalid_argument("CoreAllocator: min_cores must be >= 1");
  }
  owner_.resize(num_cores);
  cores_of_.resize(num_services);
  offline_.assign(num_cores, 0);
  // Contiguous, as-even-as-possible split (16/4 -> 4 each, the paper's
  // "at initialization, cores are equally divided among services").
  for (std::size_t c = 0; c < num_cores; ++c) {
    const std::size_t service = c * num_services / num_cores;
    owner_[c] = service;
    cores_of_[service].push_back(static_cast<CoreId>(c));
  }
}

void CoreAllocator::mark_surplus(CoreId core, TimeNs now) {
  if (core >= owner_.size()) {
    throw std::out_of_range("CoreAllocator: bad core id");
  }
  if (offline_[core] != 0) return;  // a dead core has no spare capacity
  if (is_surplus(core)) return;
  surplus_.push_back(Surplus{core, now});
}

void CoreAllocator::unmark_surplus(CoreId core) {
  const auto it = std::find_if(
      surplus_.begin(), surplus_.end(),
      [core](const Surplus& s) { return s.core == core; });
  if (it != surplus_.end()) surplus_.erase(it);
}

bool CoreAllocator::is_surplus(CoreId core) const {
  return std::any_of(surplus_.begin(), surplus_.end(),
                     [core](const Surplus& s) { return s.core == core; });
}

std::optional<CoreId> CoreAllocator::grant_core(std::size_t service) {
  if (service >= cores_of_.size()) {
    throw std::out_of_range("CoreAllocator: bad service id");
  }
  // Longest-marked eligible core: marked earliest, owned by another
  // service, and its owner keeps at least min_cores cores after donating.
  auto best = surplus_.end();
  for (auto it = surplus_.begin(); it != surplus_.end(); ++it) {
    const std::size_t victim = owner_[it->core];
    if (victim == service) continue;
    // Victim viability counts *online* cores: a service whose spare cores
    // are all dead is not a donor. Identical to size() with no faults.
    if (online_of(victim) <= min_cores_) continue;
    if (best == surplus_.end() || it->since < best->since) best = it;
  }
  if (best == surplus_.end()) return std::nullopt;

  const CoreId core = best->core;
  surplus_.erase(best);
  const std::size_t victim = owner_[core];
  auto& victim_cores = cores_of_[victim];
  victim_cores.erase(std::find(victim_cores.begin(), victim_cores.end(), core));
  owner_[core] = service;
  cores_of_[service].push_back(core);
  ++transfers_;
  return core;
}

void CoreAllocator::set_offline(CoreId core) {
  if (core >= owner_.size()) {
    throw std::out_of_range("CoreAllocator: bad core id");
  }
  if (offline_[core] != 0) return;
  offline_[core] = 1;
  unmark_surplus(core);
}

void CoreAllocator::set_online(CoreId core) {
  if (core >= owner_.size()) {
    throw std::out_of_range("CoreAllocator: bad core id");
  }
  offline_[core] = 0;
}

std::size_t CoreAllocator::online_of(std::size_t service) const {
  std::size_t n = 0;
  for (const CoreId c : cores_of_.at(service)) n += offline_[c] == 0 ? 1 : 0;
  return n;
}

std::optional<CoreId> CoreAllocator::grant_any(std::size_t service) {
  if (service >= cores_of_.size()) {
    throw std::out_of_range("CoreAllocator: bad service id");
  }
  // Donor: the other service with the most online cores, required to keep
  // at least one so the theft never black-holes the donor instead.
  std::size_t donor = cores_of_.size();
  std::size_t donor_online = 1;
  for (std::size_t s = 0; s < cores_of_.size(); ++s) {
    if (s == service) continue;
    const std::size_t online = online_of(s);
    if (online > donor_online) {
      donor = s;
      donor_online = online;
    }
  }
  if (donor == cores_of_.size()) return std::nullopt;

  // Prefer a surplus (idle) core of the donor; otherwise its most recently
  // granted online core.
  CoreId core = owner_.size();
  for (const Surplus& s : surplus_) {
    if (owner_[s.core] == donor) {
      core = s.core;
      break;
    }
  }
  if (core == owner_.size()) {
    const auto& donor_cores = cores_of_[donor];
    for (auto it = donor_cores.rbegin(); it != donor_cores.rend(); ++it) {
      if (offline_[*it] == 0) {
        core = *it;
        break;
      }
    }
  }
  unmark_surplus(core);
  auto& donor_cores = cores_of_[donor];
  donor_cores.erase(std::find(donor_cores.begin(), donor_cores.end(), core));
  owner_[core] = service;
  cores_of_[service].push_back(core);
  ++transfers_;
  return core;
}

}  // namespace laps
