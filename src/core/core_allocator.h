#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/scheduler.h"
#include "util/time.h"

namespace laps {

/// Dynamic core-to-service ownership with the paper's surplus-core protocol
/// (Sec. III-C/III-D):
///
///  * at initialization cores are divided equally among services;
///  * a core idle for `idle_th` is *marked surplus* but stays allocated to
///    its service (cheap to reclaim — no context switch);
///  * a service that runs out of capacity requests a core; the allocator
///    grants the core that has been surplus the longest ("least utility for
///    the victim service"), never starving a service below `min_cores`.
class CoreAllocator {
 public:
  /// `num_cores` cores split contiguously and as evenly as possible among
  /// `num_services` services. Requires num_cores >= num_services so every
  /// service starts with at least one core.
  CoreAllocator(std::size_t num_cores, std::size_t num_services,
                std::size_t min_cores = 1);

  /// Owning service of a core.
  std::size_t owner(CoreId core) const { return owner_.at(core); }

  /// Cores currently owned by a service, in grant order.
  const std::vector<CoreId>& cores_of(std::size_t service) const {
    return cores_of_.at(service);
  }

  /// Marks a core surplus at `now`; no-op if already marked. Must be owned.
  void mark_surplus(CoreId core, TimeNs now);

  /// Clears a surplus mark (the owning service touched the core again).
  /// No-op if not marked.
  void unmark_surplus(CoreId core);

  bool is_surplus(CoreId core) const;

  /// Number of cores currently marked surplus.
  std::size_t surplus_count() const { return surplus_.size(); }

  /// Grants `service` the longest-surplus core owned by a *different*
  /// service whose owner would keep at least `min_cores` cores. Transfers
  /// ownership and clears the mark. Returns nullopt when no eligible core
  /// exists — the paper's "all cores overloaded" case, where packets simply
  /// keep dropping until traffic subsides.
  std::optional<CoreId> grant_core(std::size_t service);

  std::size_t num_cores() const { return owner_.size(); }
  std::size_t num_services() const { return cores_of_.size(); }

  /// Total ownership transfers so far (reported as reallocations).
  std::uint64_t transfers() const { return transfers_; }

  /// Marks a core failed: it keeps its owner (so recovery restores the
  /// allocation) but stops being grantable and loses any surplus mark.
  /// Fault-injection only; no-op if already offline.
  void set_offline(CoreId core);

  /// Clears the failed mark. No-op if online.
  void set_online(CoreId core);

  bool is_offline(CoreId core) const { return offline_.at(core) != 0; }

  /// Cores of `service` that are not offline — the capacity it can
  /// actually run packets on.
  std::size_t online_of(std::size_t service) const;

  /// Emergency grant for fault recovery: when a dead core must be replaced
  /// and no surplus donor exists, takes an online core from the service
  /// with the most online cores (which must keep at least one). Unlike
  /// grant_core this may take a busy, never-surplus core and may dip below
  /// min_cores — losing a core beats black-holing a service's traffic.
  /// Returns nullopt only when no other service has two online cores.
  std::optional<CoreId> grant_any(std::size_t service);

 private:
  struct Surplus {
    CoreId core;
    TimeNs since;
  };

  std::vector<std::size_t> owner_;
  std::vector<std::vector<CoreId>> cores_of_;
  std::vector<Surplus> surplus_;  // tiny; linear scans are fine
  std::vector<std::uint8_t> offline_;
  std::size_t min_cores_;
  std::uint64_t transfers_ = 0;
};

}  // namespace laps
