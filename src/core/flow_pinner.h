#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/map_table.h"
#include "core/migration_table.h"
#include "sim/scheduler.h"

namespace laps {

/// Per-service flow-placement mechanism: the pinned-override path (a
/// MigrationTable, paper Fig. 3's CAM) layered over the hash path (a
/// MapTable with incremental linear hashing, Sec. III-C), with the pin
/// accounting every policy that migrates flows needs.
///
/// The policy decides *when* to pin, unpin, or move cores; FlowPinner owns
/// the two tables and keeps the bookkeeping (stale-pin drops, pins added)
/// consistent between them. LAPS holds one FlowPinner per service; hybrid
/// policies that migrate within a single hash domain hold one.
class FlowPinner {
 public:
  /// `initial_buckets` is the map table's starting bucket list (already
  /// replicated per core if the policy uses virtual buckets);
  /// `pin_capacity` bounds the migration table like the hardware CAM.
  FlowPinner(std::vector<CoreId> initial_buckets, std::size_t pin_capacity)
      : map_(std::move(initial_buckets)), pins_(pin_capacity) {}

  // --- lookup --------------------------------------------------------------
  /// Hash path: core for a flow's CRC16.
  CoreId hash_core(std::uint16_t crc) const { return map_.core_for(crc); }
  /// Pin path: pinned core for a flow, if any (priority over the hash path).
  std::optional<CoreId> pinned(std::uint64_t flow_key) const {
    return pins_.lookup(flow_key);
  }

  // --- pin accounting ------------------------------------------------------
  /// Pins a flow to `core` (FIFO-evicting when the table is full).
  void pin(std::uint64_t flow_key, CoreId core) {
    pins_.add(flow_key, core);
    ++pins_added_;
  }
  /// Drops a pin the policy found stale (owner changed or core died while
  /// the pin survived); counted separately so extra_stats can report it.
  void drop_stale(std::uint64_t flow_key) {
    pins_.erase(flow_key);
    ++stale_pins_dropped_;
  }
  /// Drops every pin targeting `core` (core left the service or died).
  /// Returns the number evicted.
  std::size_t drop_core_pins(CoreId core) {
    return pins_.remove_core_entries(core);
  }

  // --- core membership -----------------------------------------------------
  /// Adds `core` to the hash domain, `reps` virtual buckets.
  void add_core(CoreId core, std::size_t reps) {
    for (std::size_t rep = 0; rep < reps; ++rep) map_.add_core(core);
  }
  bool has_core(CoreId core) const { return map_.contains(core); }
  /// Scrubs `core` out of both tables: drains its map buckets one by one
  /// (stopping if the table refuses the last remaining bucket) and drops
  /// its pins. This is the shared "core leaves the service" protocol used
  /// by parking, donor transfer, and (partially) fault drain.
  void scrub_core(CoreId core) {
    while (map_.contains(core)) {
      if (!map_.remove_core(core)) break;
    }
    pins_.remove_core_entries(core);
  }

  // --- accounting ----------------------------------------------------------
  std::uint64_t pins_added() const { return pins_added_; }
  std::uint64_t stale_pins_dropped() const { return stale_pins_dropped_; }

  // --- escape hatches ------------------------------------------------------
  // Policies with protocols the mechanism cannot anticipate (LAPS's fault
  // drain interleaves bucket removal with emergency core grants) work on
  // the tables directly; introspection tests read them too.
  MapTable& map_table() { return map_; }
  const MapTable& map_table() const { return map_; }
  MigrationTable& migration_table() { return pins_; }
  const MigrationTable& migration_table() const { return pins_; }

 private:
  MapTable map_;
  MigrationTable pins_;
  std::uint64_t pins_added_ = 0;
  std::uint64_t stale_pins_dropped_ = 0;
};

}  // namespace laps
