#include "core/laps.h"

#include <stdexcept>

namespace laps {

LapsScheduler::LapsScheduler(LapsConfig config) : config_(config) {
  if (config_.num_services == 0) {
    throw std::invalid_argument("LapsScheduler: num_services == 0");
  }
}

void LapsScheduler::attach(std::size_t num_cores) {
  allocator_ = std::make_unique<CoreAllocator>(
      num_cores, config_.num_services, config_.min_cores_per_service);
  afd_ = std::make_unique<Afd>(config_.afd);
  map_tables_.clear();
  migration_tables_.clear();
  for (std::size_t s = 0; s < config_.num_services; ++s) {
    // Round-robin the service's cores over entries_per_core virtual
    // buckets each, so per-core load skew from linear hashing's split
    // structure averages out (see LapsConfig::entries_per_core).
    const auto& owned = allocator_->cores_of(s);
    std::vector<CoreId> buckets;
    buckets.reserve(owned.size() * config_.entries_per_core);
    for (std::size_t rep = 0; rep < config_.entries_per_core; ++rep) {
      for (CoreId core : owned) buckets.push_back(core);
    }
    map_tables_.emplace_back(std::move(buckets));
    migration_tables_.emplace_back(config_.migration_table_capacity);
  }
  aggressive_migrations_ = 0;
  core_requests_ = 0;
  core_requests_denied_ = 0;
  stale_pins_dropped_ = 0;
  down_.assign(num_cores, 0);
  cores_down_events_ = 0;
  cores_up_events_ = 0;
  fault_unreplaced_buckets_ = 0;

  parked_.assign(num_cores, false);
  surplus_since_.assign(num_cores, -1);
  parked_since_.assign(num_cores, 0);
  no_park_until_.assign(num_cores, 0);
  window_packets_.assign(config_.num_services, 0);
  window_core_max_.assign(num_cores, 0);
  no_consolidate_until_.assign(config_.num_services, 0);
  wake_strikes_.assign(config_.num_services, 0);
  slack_streak_.assign(config_.num_services, 0);
  parked_total_ns_ = 0;
  last_now_ = 0;
  sleep_events_ = 0;
  wake_events_ = 0;
}

void LapsScheduler::add_core_buckets(std::size_t service, CoreId core) {
  for (std::size_t rep = 0; rep < config_.entries_per_core; ++rep) {
    map_tables_[service].add_core(core);
  }
}

bool LapsScheduler::wake_core(CoreId core, TimeNs now) {
  if (!parked_[core]) return false;
  parked_[core] = false;
  parked_total_ns_ += now - parked_since_[core];
  // Post-wake hysteresis: a core that was just needed is likely to be
  // needed again; without this, moderate load makes cores thrash through
  // hundreds of sleep/wake cycles (each one churns the map table).
  no_park_until_[core] = now + 10 * config_.sleep_after;
  ++wake_events_;
  emit(SchedEvent::Kind::kWake, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(allocator_->owner(core)));
  return true;
}

void LapsScheduler::update_parking(TimeNs now) {
  if (!config_.power_gating) return;
  for (CoreId c = 0; c < static_cast<CoreId>(parked_.size()); ++c) {
    if (parked_[c] || down_[c] != 0 || surplus_since_[c] < 0) continue;
    if (now - surplus_since_[c] < config_.sleep_after) continue;
    if (now < no_park_until_[c]) continue;
    const std::size_t owner = allocator_->owner(c);
    // The owner must keep at least min_cores powered, live cores.
    std::size_t unparked = 0;
    for (CoreId other : allocator_->cores_of(owner)) {
      unparked += !parked_[other] && down_[other] == 0;
    }
    if (unparked <= config_.min_cores_per_service) continue;
    park_core(owner, c, now);
  }
}

void LapsScheduler::park_core(std::size_t service, CoreId core, TimeNs now) {
  // Park: the core leaves the routing tables but stays owned, so waking
  // it later needs no context switch (its I-cache still holds the
  // owner's program).
  while (map_tables_[service].contains(core)) {
    if (!map_tables_[service].remove_core(core)) break;
  }
  migration_tables_[service].remove_core_entries(core);
  parked_[core] = true;
  parked_since_[core] = now;
  ++sleep_events_;
  emit(SchedEvent::Kind::kPark, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(service));
}

void LapsScheduler::update_consolidation(std::size_t service, CoreId target,
                                         const NpuView& view) {
  // Record this dispatch in the target core's window maximum. The target
  // is always owned by `service`, so per-core maxima partition cleanly.
  const std::uint32_t depth = view.cores()[target].queue_len;
  if (depth > window_core_max_[target]) window_core_max_[target] = depth;
  if (++window_packets_[service] < config_.consolidate_window) {
    return;
  }
  window_packets_[service] = 0;

  // Window end: park the coldest core — the one whose own queue never
  // reached the watermark all window (cores that received nothing have a
  // window max of 0 and are the first to fold).
  const TimeNs now = view.now();
  std::size_t unparked = 0;
  CoreId victim = 0;
  bool have = false;
  std::uint32_t victim_max = 0;
  for (CoreId core : allocator_->cores_of(service)) {
    if (parked_[core] || down_[core] != 0) {
      window_core_max_[core] = 0;
      continue;
    }
    ++unparked;
    const std::uint32_t core_max = window_core_max_[core];
    window_core_max_[core] = 0;
    if (now < no_park_until_[core]) continue;
    if (!have || core_max < victim_max) {
      have = true;
      victim_max = core_max;
      victim = core;
    }
  }
  // Require the slack to persist for two consecutive windows before
  // parking: one quiet window at moderate load is common, and a premature
  // park costs a wake plus map-table churn.
  if (have && victim_max < config_.consolidate_watermark) {
    ++slack_streak_[service];
  } else {
    slack_streak_[service] = 0;
  }
  if (slack_streak_[service] >= 2 &&
      unparked > config_.min_cores_per_service &&
      now >= no_consolidate_until_[service]) {
    park_core(service, victim, now);
    slack_streak_[service] = 0;
  }
}

void LapsScheduler::update_surplus_marks(const NpuView& view) {
  const TimeNs now = view.now();
  const auto cores = view.cores();
  for (CoreId c = 0; c < static_cast<CoreId>(cores.size()); ++c) {
    const CoreView& v = cores[c];
    if (v.idle_since >= 0 && now - v.idle_since >= config_.idle_th) {
      allocator_->mark_surplus(c, v.idle_since + config_.idle_th);
      if (surplus_since_[c] < 0) {
        surplus_since_[c] = v.idle_since + config_.idle_th;
      }
    }
  }
}

CoreId LapsScheduler::least_loaded_of(std::size_t service,
                                      const NpuView& view) const {
  // Parked cores are powered down and must not receive migrated flows;
  // with power gating at least min_cores stay unparked, so a candidate
  // always exists.
  const auto& owned = allocator_->cores_of(service);
  CoreId best = owned.front();
  bool have = false;
  std::uint32_t best_load = 0;
  for (CoreId core : owned) {
    if (parked_[core] || down_[core] != 0) continue;
    const std::uint32_t load = view.load(core);
    if (!have || load < best_load) {
      have = true;
      best_load = load;
      best = core;
    }
  }
  return best;
}

bool LapsScheduler::acquire_core(std::size_t service, bool emergency) {
  // Power gating: reclaim the service's own parked cores first — the
  // paper's Sec. III-D "unmarked and removed from the list of surplus
  // cores without incurring the overhead of context switch".
  if (config_.power_gating) {
    for (CoreId core : allocator_->cores_of(service)) {
      if (!parked_[core] || down_[core] != 0) continue;
      wake_core(core, last_now_);
      surplus_since_[core] = -1;
      allocator_->unmark_surplus(core);
      add_core_buckets(service, core);
      emit(SchedEvent::Kind::kCoreGrant, static_cast<std::int32_t>(core),
           static_cast<std::int32_t>(service));
      return true;
    }
  }
  auto granted = allocator_->grant_core(service);
  // Emergency (dead-core replacement) only: no surplus donor exists, so
  // take a live core from the richest service — a mere overload request
  // never reaches this and never steals a busy core.
  if (!granted && emergency) granted = allocator_->grant_any(service);
  if (!granted) return false;
  const CoreId core = *granted;
  wake_core(core, last_now_);
  surplus_since_[core] = -1;
  // Scrub the donor's routing state: its buckets leave the list one by one
  // (each removal shifts later buckets, but the donor is lightly loaded —
  // Sec. III-D accepts this) and any migration pins to the departed core
  // are dropped.
  for (std::size_t s = 0; s < config_.num_services; ++s) {
    if (s == service) continue;
    while (map_tables_[s].contains(core)) {
      if (!map_tables_[s].remove_core(core)) break;
    }
    migration_tables_[s].remove_core_entries(core);
  }
  add_core_buckets(service, core);
  emit(SchedEvent::Kind::kCoreGrant, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(service));
  return true;
}

bool LapsScheduler::request_core(std::size_t service) {
  ++core_requests_;
  if (acquire_core(service, /*emergency=*/false)) return true;
  ++core_requests_denied_;
  emit(SchedEvent::Kind::kCoreDenied, -1, static_cast<std::int32_t>(service));
  return false;
}

void LapsScheduler::notify_core_down(CoreId core, const NpuView& view) {
  if (allocator_ == nullptr || core >= down_.size() || down_[core] != 0) {
    return;
  }
  down_[core] = 1;
  ++cores_down_events_;
  last_now_ = view.now();
  if (config_.power_gating && parked_[core]) {
    // Close the sleep span without wake semantics — the core did not wake,
    // it died.
    parked_[core] = false;
    parked_total_ns_ += last_now_ - parked_since_[core];
  }
  surplus_since_[core] = -1;
  allocator_->set_offline(core);

  const std::size_t service = allocator_->owner(core);
  // Pins to the dead core are dead routes; drop them (their flows fall
  // back to the hash path, re-migrating later if still aggressive).
  migration_tables_[service].remove_core_entries(core);
  // Drain the dead core's buckets. remove_core refuses the service's last
  // bucket, at which point a replacement must arrive *before* the drain
  // can finish — acquire one (own parked core, surplus donor, or the
  // emergency grant_any). If even that fails the dead bucket stays and the
  // engine's dead-route drop accounts the loss.
  MapTable& table = map_tables_[service];
  while (table.contains(core)) {
    if (table.remove_core(core)) continue;
    if (acquire_core(service, /*emergency=*/true)) continue;
    ++fault_unreplaced_buckets_;
    emit(SchedEvent::Kind::kCoreDenied, static_cast<std::int32_t>(core),
         static_cast<std::int32_t>(service));
    break;
  }
}

void LapsScheduler::notify_core_up(CoreId core, const NpuView& view) {
  if (allocator_ == nullptr || core >= down_.size() || down_[core] == 0) {
    return;
  }
  down_[core] = 0;
  ++cores_up_events_;
  last_now_ = view.now();
  allocator_->set_online(core);
  surplus_since_[core] = -1;
  // Rejoin the owner's map table; incremental hashing moves only the
  // recovered buckets' flows, so reintegration is gradual, not a reshuffle.
  add_core_buckets(allocator_->owner(core), core);
}

CoreId LapsScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  const std::size_t service = service_index(pkt.service);
  const std::uint64_t key = pkt.flow_key();

  // The AFD observes every packet in the background (Sec. III-G: not on the
  // critical path; sampling is handled inside per Fig. 8c). Promotions are
  // only detectable as a stats delta, so the (cheap) comparison runs only
  // while a sink is listening.
  if (sink_ != nullptr) {
    const std::uint64_t promotions_before = afd_->stats().promotions;
    afd_->access(key);
    if (afd_->stats().promotions != promotions_before) {
      emit(SchedEvent::Kind::kAfdPromotion, -1,
           static_cast<std::int32_t>(service), key);
    }
  } else {
    afd_->access(key);
  }
  last_now_ = view.now();
  update_surplus_marks(view);
  update_parking(last_now_);

  // Step 1: migration-table override. A pin whose core left the service is
  // stale (can happen if remove_core_entries raced a reallocation) — drop
  // it and fall through to the hash path.
  CoreId target = 0;
  bool pinned = false;
  if (const auto pin = migration_tables_[service].lookup(key)) {
    if (allocator_->owner(*pin) == service && down_[*pin] == 0) {
      target = *pin;
      pinned = true;
    } else {
      migration_tables_[service].erase(key);
      ++stale_pins_dropped_;
    }
  }
  // Step 2: the service's map table via incremental hashing.
  if (!pinned) {
    target = map_tables_[service].core_for(pkt.tuple.crc16());
  }

  // Power gating: wake a parked core before queues overflow (wake-ahead),
  // and consolidate onto fewer cores when a whole window shows slack.
  if (config_.power_gating) {
    update_consolidation(service, target, view);
    const std::uint32_t watermark = config_.wake_watermark
                                        ? config_.wake_watermark
                                        : config_.high_thresh / 2;
    if (view.cores()[target].queue_len >= watermark) {
      for (CoreId core : allocator_->cores_of(service)) {
        if (!parked_[core]) continue;
        wake_core(core, last_now_);
        surplus_since_[core] = -1;
        allocator_->unmark_surplus(core);
        add_core_buckets(service, core);
        // Exponential backoff: every wake doubles the consolidation pause
        // (capped), so a load level that keeps defeating parking converges
        // to a stable, unparked configuration instead of cycling map-table
        // churn forever.
        const std::uint32_t strikes = std::min(wake_strikes_[service]++, 6u);
        no_consolidate_until_[service] =
            last_now_ + (config_.consolidate_backoff << strikes);
        if (!pinned) {
          target = map_tables_[service].core_for(pkt.tuple.crc16());
        }
        break;
      }
    }
    // Consolidation may have just parked this packet's target (its buckets
    // are gone, but the lookup above preceded the park): re-route.
    if (parked_[target]) {
      target = pinned ? least_loaded_of(service, view)
                      : map_tables_[service].core_for(pkt.tuple.crc16());
    }
  }

  // Step 3/4: Listing 1 — load imbalance handling.
  if (view.cores()[target].queue_len >= config_.high_thresh) {
    const CoreId minq = least_loaded_of(service, view);
    if (view.cores()[minq].queue_len < config_.high_thresh) {
      if (!pinned && afd_->is_aggressive(key)) {
        migration_tables_[service].add(key, minq);
        afd_->invalidate(key);
        ++aggressive_migrations_;
        emit(SchedEvent::Kind::kAggressiveMigration,
             static_cast<std::int32_t>(minq),
             static_cast<std::int32_t>(service), key);
        target = minq;
      }
    } else {
      // Every core of this service is overloaded: the allocation is
      // insufficient — request one more core and re-hash this packet so it
      // can land on the (idle) newcomer.
      if (request_core(service)) {
        if (!pinned) {
          target = map_tables_[service].core_for(pkt.tuple.crc16());
        }
      }
    }
  }

  // Defense in depth: the drain/remap protocol keeps dead cores out of
  // every table, so this reroute should never fire — but a dead target
  // would be a guaranteed drop, and least_loaded_of skips down cores.
  if (down_[target] != 0) target = least_loaded_of(service, view);

  // The dispatch touches the core, so it is no longer reclaimable surplus.
  allocator_->unmark_surplus(target);
  surplus_since_[target] = -1;
  return target;
}

std::vector<std::uint64_t> LapsScheduler::aggressive_snapshot() const {
  return afd_->aggressive_flows();
}

std::map<std::string, double> LapsScheduler::extra_stats() const {
  const AfdStats& afd_stats = afd_->stats();
  TimeNs parked = parked_total_ns_;
  for (CoreId c = 0; c < static_cast<CoreId>(parked_.size()); ++c) {
    if (parked_[c]) parked += last_now_ - parked_since_[c];
  }
  std::map<std::string, double> stats = {
      {"aggressive_migrations", static_cast<double>(aggressive_migrations_)},
      {"core_requests", static_cast<double>(core_requests_)},
      {"core_requests_denied", static_cast<double>(core_requests_denied_)},
      {"core_transfers", static_cast<double>(allocator_->transfers())},
      {"stale_pins_dropped", static_cast<double>(stale_pins_dropped_)},
      {"afd_promotions", static_cast<double>(afd_stats.promotions)},
      {"afd_afc_hits", static_cast<double>(afd_stats.afc_hits)},
  };
  if (config_.power_gating) {
    stats["parked_core_us"] = to_us(parked);
    stats["sleep_events"] = static_cast<double>(sleep_events_);
    stats["wake_events"] = static_cast<double>(wake_events_);
  }
  // Added only when a fault actually hit, so fault-free runs keep their
  // byte-identical artifacts (golden determinism suite).
  if (cores_down_events_ + cores_up_events_ > 0) {
    stats["laps_cores_down_events"] = static_cast<double>(cores_down_events_);
    stats["laps_cores_up_events"] = static_cast<double>(cores_up_events_);
    stats["laps_unreplaced_buckets"] =
        static_cast<double>(fault_unreplaced_buckets_);
  }
  return stats;
}

}  // namespace laps
