#include "core/laps.h"

#include <stdexcept>

namespace laps {

LapsScheduler::LapsScheduler(LapsConfig config)
    : config_(config), power_(config.power()) {
  if (config_.num_services == 0) {
    throw std::invalid_argument("LapsScheduler: num_services == 0");
  }
}

void LapsScheduler::attach(std::size_t num_cores) {
  allocator_ = std::make_unique<CoreAllocator>(
      num_cores, config_.num_services, config_.min_cores_per_service);
  detector_ = std::make_unique<AggressiveDetector>(config_.afd);
  pinners_.clear();
  for (std::size_t s = 0; s < config_.num_services; ++s) {
    // Round-robin the service's cores over entries_per_core virtual
    // buckets each, so per-core load skew from linear hashing's split
    // structure averages out (see LapsConfig::entries_per_core).
    const auto& owned = allocator_->cores_of(s);
    std::vector<CoreId> buckets;
    buckets.reserve(owned.size() * config_.entries_per_core);
    for (std::size_t rep = 0; rep < config_.entries_per_core; ++rep) {
      for (CoreId core : owned) buckets.push_back(core);
    }
    pinners_.emplace_back(std::move(buckets), config_.migration_table_capacity);
  }
  aggressive_migrations_ = 0;
  core_requests_ = 0;
  core_requests_denied_ = 0;
  live_.reset(num_cores);
  cores_down_events_ = 0;
  cores_up_events_ = 0;
  fault_unreplaced_buckets_ = 0;

  power_.attach(num_cores, config_.num_services);
  last_now_ = 0;
}

void LapsScheduler::add_core_buckets(std::size_t service, CoreId core) {
  pinners_[service].add_core(core, config_.entries_per_core);
}

bool LapsScheduler::wake_core(CoreId core, TimeNs now) {
  if (!power_.wake(core, now)) return false;
  emit(SchedEvent::Kind::kWake, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(allocator_->owner(core)));
  return true;
}

void LapsScheduler::park_core(std::size_t service, CoreId core, TimeNs now) {
  // Park: the core leaves the routing tables but stays owned, so waking
  // it later needs no context switch (its I-cache still holds the
  // owner's program).
  pinners_[service].scrub_core(core);
  power_.park(core, now);
  emit(SchedEvent::Kind::kPark, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(service));
}

void LapsScheduler::update_surplus_marks(const NpuView& view) {
  const TimeNs now = view.now();
  const auto cores = view.cores();
  for (CoreId c = 0; c < static_cast<CoreId>(cores.size()); ++c) {
    const CoreView& v = cores[c];
    if (v.idle_since >= 0 && now - v.idle_since >= config_.idle_th) {
      allocator_->mark_surplus(c, v.idle_since + config_.idle_th);
      power_.note_surplus(c, v.idle_since + config_.idle_th);
    }
  }
}

CoreId LapsScheduler::least_loaded_of(std::size_t service,
                                      const NpuView& view) const {
  // Parked cores are powered down and must not receive migrated flows;
  // with power gating at least min_cores stay unparked, so a candidate
  // always exists.
  const auto& owned = allocator_->cores_of(service);
  CoreId best = owned.front();
  bool have = false;
  std::uint32_t best_load = 0;
  for (CoreId core : owned) {
    if (power_.parked(core) || live_.is_down(core)) continue;
    const std::uint32_t load = view.load(core);
    if (!have || load < best_load) {
      have = true;
      best_load = load;
      best = core;
    }
  }
  return best;
}

bool LapsScheduler::acquire_core(std::size_t service, bool emergency) {
  // Power gating: reclaim the service's own parked cores first — the
  // paper's Sec. III-D "unmarked and removed from the list of surplus
  // cores without incurring the overhead of context switch".
  if (power_.enabled()) {
    for (CoreId core : allocator_->cores_of(service)) {
      if (!power_.parked(core) || live_.is_down(core)) continue;
      wake_core(core, last_now_);
      power_.clear_surplus(core);
      allocator_->unmark_surplus(core);
      add_core_buckets(service, core);
      emit(SchedEvent::Kind::kCoreGrant, static_cast<std::int32_t>(core),
           static_cast<std::int32_t>(service));
      return true;
    }
  }
  auto granted = allocator_->grant_core(service);
  // Emergency (dead-core replacement) only: no surplus donor exists, so
  // take a live core from the richest service — a mere overload request
  // never reaches this and never steals a busy core.
  if (!granted && emergency) granted = allocator_->grant_any(service);
  if (!granted) return false;
  const CoreId core = *granted;
  wake_core(core, last_now_);
  power_.clear_surplus(core);
  // Scrub the donor's routing state: its buckets leave the list one by one
  // (each removal shifts later buckets, but the donor is lightly loaded —
  // Sec. III-D accepts this) and any migration pins to the departed core
  // are dropped.
  for (std::size_t s = 0; s < config_.num_services; ++s) {
    if (s == service) continue;
    pinners_[s].scrub_core(core);
  }
  add_core_buckets(service, core);
  emit(SchedEvent::Kind::kCoreGrant, static_cast<std::int32_t>(core),
       static_cast<std::int32_t>(service));
  return true;
}

bool LapsScheduler::request_core(std::size_t service) {
  ++core_requests_;
  if (acquire_core(service, /*emergency=*/false)) return true;
  ++core_requests_denied_;
  emit(SchedEvent::Kind::kCoreDenied, -1, static_cast<std::int32_t>(service));
  return false;
}

void LapsScheduler::notify_core_down(CoreId core, const NpuView& view) {
  if (allocator_ == nullptr || core >= live_.size() || live_.is_down(core)) {
    return;
  }
  live_.mark_down(core);
  ++cores_down_events_;
  last_now_ = view.now();
  power_.on_core_down(core, last_now_);
  allocator_->set_offline(core);

  const std::size_t service = allocator_->owner(core);
  // Pins to the dead core are dead routes; drop them (their flows fall
  // back to the hash path, re-migrating later if still aggressive).
  pinners_[service].drop_core_pins(core);
  // Drain the dead core's buckets. remove_core refuses the service's last
  // bucket, at which point a replacement must arrive *before* the drain
  // can finish — acquire one (own parked core, surplus donor, or the
  // emergency grant_any). If even that fails the dead bucket stays and the
  // engine's dead-route drop accounts the loss.
  MapTable& table = pinners_[service].map_table();
  while (table.contains(core)) {
    if (table.remove_core(core)) continue;
    if (acquire_core(service, /*emergency=*/true)) continue;
    ++fault_unreplaced_buckets_;
    emit(SchedEvent::Kind::kCoreDenied, static_cast<std::int32_t>(core),
         static_cast<std::int32_t>(service));
    break;
  }
}

void LapsScheduler::notify_core_up(CoreId core, const NpuView& view) {
  if (allocator_ == nullptr || core >= live_.size() || !live_.is_down(core)) {
    return;
  }
  live_.mark_up(core);
  ++cores_up_events_;
  last_now_ = view.now();
  allocator_->set_online(core);
  power_.clear_surplus(core);
  // Rejoin the owner's map table; incremental hashing moves only the
  // recovered buckets' flows, so reintegration is gradual, not a reshuffle.
  add_core_buckets(allocator_->owner(core), core);
}

CoreId LapsScheduler::schedule(const SimPacket& pkt, const NpuView& view) {
  const std::size_t service = service_index(pkt.service);
  const std::uint64_t key = pkt.flow_key();

  // The AFD observes every packet in the background (Sec. III-G: not on the
  // critical path; sampling is handled inside per Fig. 8c). Promotion
  // detection costs a stats comparison, so it runs only while a sink is
  // listening.
  if (detector_->observe(key, /*detect_promotion=*/sink_ != nullptr)) {
    emit(SchedEvent::Kind::kAfdPromotion, -1,
         static_cast<std::int32_t>(service), key);
  }
  last_now_ = view.now();
  update_surplus_marks(view);
  power_.update_parking(last_now_, *this);

  FlowPinner& pinner = pinners_[service];
  // Step 1: migration-table override. A pin whose core left the service is
  // stale (can happen if remove_core_entries raced a reallocation) — drop
  // it and fall through to the hash path.
  CoreId target = 0;
  bool pinned = false;
  if (const auto pin = pinner.pinned(key)) {
    if (allocator_->owner(*pin) == service && !live_.is_down(*pin)) {
      target = *pin;
      pinned = true;
    } else {
      pinner.drop_stale(key);
    }
  }
  // Step 2: the service's map table via incremental hashing.
  if (!pinned) {
    target = pinner.hash_core(pkt.tuple.crc16());
  }

  // Power gating: wake a parked core before queues overflow (wake-ahead),
  // and consolidate onto fewer cores when a whole window shows slack.
  if (power_.enabled()) {
    power_.update_consolidation(service, target, view, *this);
    const std::uint32_t watermark = config_.wake_watermark
                                        ? config_.wake_watermark
                                        : config_.high_thresh / 2;
    if (view.cores()[target].queue_len >= watermark) {
      for (CoreId core : allocator_->cores_of(service)) {
        if (!power_.parked(core)) continue;
        wake_core(core, last_now_);
        power_.clear_surplus(core);
        allocator_->unmark_surplus(core);
        add_core_buckets(service, core);
        // Exponential backoff: every wake doubles the consolidation pause
        // (capped), so a load level that keeps defeating parking converges
        // to a stable, unparked configuration instead of cycling map-table
        // churn forever.
        power_.note_wake_backoff(service, last_now_);
        if (!pinned) {
          target = pinner.hash_core(pkt.tuple.crc16());
        }
        break;
      }
    }
    // Consolidation may have just parked this packet's target (its buckets
    // are gone, but the lookup above preceded the park): re-route.
    if (power_.parked(target)) {
      target = pinned ? least_loaded_of(service, view)
                      : pinner.hash_core(pkt.tuple.crc16());
    }
  }

  // Step 3/4: Listing 1 — load imbalance handling.
  if (view.cores()[target].queue_len >= config_.high_thresh) {
    const CoreId minq = least_loaded_of(service, view);
    if (view.cores()[minq].queue_len < config_.high_thresh) {
      if (!pinned && detector_->is_aggressive(key)) {
        pinner.pin(key, minq);
        detector_->invalidate(key);
        ++aggressive_migrations_;
        emit(SchedEvent::Kind::kAggressiveMigration,
             static_cast<std::int32_t>(minq),
             static_cast<std::int32_t>(service), key);
        target = minq;
      }
    } else {
      // Every core of this service is overloaded: the allocation is
      // insufficient — request one more core and re-hash this packet so it
      // can land on the (idle) newcomer.
      if (request_core(service)) {
        if (!pinned) {
          target = pinner.hash_core(pkt.tuple.crc16());
        }
      }
    }
  }

  // Defense in depth: the drain/remap protocol keeps dead cores out of
  // every table, so this reroute should never fire — but a dead target
  // would be a guaranteed drop, and least_loaded_of skips down cores.
  if (live_.is_down(target)) target = least_loaded_of(service, view);

  // The dispatch touches the core, so it is no longer reclaimable surplus.
  allocator_->unmark_surplus(target);
  power_.clear_surplus(target);
  return target;
}

std::vector<std::uint64_t> LapsScheduler::aggressive_snapshot() const {
  return detector_->snapshot();
}

SchedTelemetry LapsScheduler::telemetry_sample() const {
  SchedTelemetry t;
  // detector_/allocator_ are built at attach(); a pre-attach sample (the
  // probe's run-begin field-discovery pass) reports empty mechanisms, not
  // N/A — the fields exist for this policy, they are just still zero.
  t.afc_occupancy =
      detector_ ? static_cast<std::int64_t>(detector_->afd().afc_size()) : 0;
  t.afd_hits =
      detector_ ? static_cast<std::int64_t>(detector_->stats().afc_hits) : 0;
  t.afd_evictions =
      detector_ ? static_cast<std::int64_t>(detector_->stats().demotions) : 0;
  std::int64_t pinned = 0;
  for (const FlowPinner& pinner : pinners_) {
    pinned += static_cast<std::int64_t>(pinner.migration_table().size());
  }
  t.pinned_flows = pinned;
  if (config_.power_gating) {
    t.parked_cores = static_cast<std::int64_t>(power_.parked_count());
    t.wake_strikes = static_cast<std::int64_t>(power_.wake_strikes_total());
  }
  t.core_transitions = static_cast<std::int64_t>(live_.transitions());
  return t;
}

std::map<std::string, double> LapsScheduler::extra_stats() const {
  const AfdStats& afd_stats = detector_->stats();
  std::uint64_t stale = 0;
  for (const FlowPinner& pinner : pinners_) {
    stale += pinner.stale_pins_dropped();
  }
  std::map<std::string, double> stats = {
      {"aggressive_migrations", static_cast<double>(aggressive_migrations_)},
      {"core_requests", static_cast<double>(core_requests_)},
      {"core_requests_denied", static_cast<double>(core_requests_denied_)},
      {"core_transfers", static_cast<double>(allocator_->transfers())},
      {"stale_pins_dropped", static_cast<double>(stale)},
      {"afd_promotions", static_cast<double>(afd_stats.promotions)},
      {"afd_afc_hits", static_cast<double>(afd_stats.afc_hits)},
  };
  power_.append_stats(stats, last_now_);
  // Added only when a fault actually hit, so fault-free runs keep their
  // byte-identical artifacts (golden determinism suite).
  if (cores_down_events_ + cores_up_events_ > 0) {
    stats["laps_cores_down_events"] = static_cast<double>(cores_down_events_);
    stats["laps_cores_up_events"] = static_cast<double>(cores_up_events_);
    stats["laps_unreplaced_buckets"] =
        static_cast<double>(fault_unreplaced_buckets_);
  }
  return stats;
}

}  // namespace laps
