#pragma once

#include <memory>
#include <vector>

#include "cache/afd.h"
#include "core/aggressive_detector.h"
#include "core/core_allocator.h"
#include "core/flow_pinner.h"
#include "core/live_core_set.h"
#include "core/power_manager.h"
#include "sim/scheduler.h"

namespace laps {

/// Tunables of the Locality-Aware Packet Scheduler.
struct LapsConfig {
  /// Number of services sharing the NPU (the paper's multi-service router
  /// has 4; the Fig. 9 experiment uses 1). Packets' ServicePath is reduced
  /// modulo this count.
  std::size_t num_services = 4;
  /// Queue occupancy at which a core counts as overloaded — Listing 1's
  /// load-imbalance condition and its `high_thresh` (default: 3/4 of the
  /// 32-descriptor queue).
  std::uint32_t high_thresh = 24;
  /// Idle time after which a core is marked surplus (Sec. III-D idle_th).
  /// The paper leaves the value open; 5 us (ten IP-forwarding service
  /// times) is long enough that busy cores are never marked, yet short
  /// enough that a lightly loaded service exposes donor cores while its
  /// per-core arrival gaps are still only microseconds.
  TimeNs idle_th = from_us(5.0);
  /// Migration-table capacity (hardware CAM/SRAM size). Must comfortably
  /// exceed the number of flows pinned over a run: when live pins are
  /// evicted, their flows bounce back to the hash path and re-migrate,
  /// inflating reordering (measured: 8x worse OOO at 128 entries under the
  /// paper's threshold-only promotion rule, which pins thousands of flows
  /// in sustained overload; the default AFC-min guard pins few enough that
  /// capacity is rarely binding — see abl_laps_sensitivity).
  std::size_t migration_table_capacity = 1024;
  /// Every service keeps at least this many cores.
  std::size_t min_cores_per_service = 1;
  /// Power gating (extension; paper Sec. I cites traffic-aware power
  /// management [20],[29] as a motivation for dynamic core allocation):
  /// a core that has been surplus for `sleep_after` is *parked* — removed
  /// from its service's map table and powered down — until its owner needs
  /// it back or another service claims it. Parked core-time is reported in
  /// extra_stats() so benches can translate it to energy.
  bool power_gating = false;
  TimeNs sleep_after = from_us(50.0);
  /// Wake-ahead watermark: when a packet's target queue reaches this depth
  /// and the service has parked cores, one is woken immediately — capacity
  /// returns *before* queues overflow instead of waiting for the Listing-1
  /// "all cores overloaded" signal. 0 = high_thresh / 2.
  std::uint32_t wake_watermark = 16;
  /// Consolidation: every `consolidate_window` packets of a service, the
  /// core whose *own* maximum queue depth over the window stayed below
  /// `consolidate_watermark` is parked (traffic folds onto the rest). Pure
  /// idleness almost never parks anything above ~20% load because hashing
  /// keeps every core trickling, and a global-max criterion is blinded by
  /// one elephant-hot core; the per-core window maximum finds the cold
  /// cores regardless (Iqbal & John, ANCS'12 follow the same principle).
  std::uint64_t consolidate_window = 4'096;
  std::uint32_t consolidate_watermark = 3;
  /// After any wake in a service, consolidation in that service pauses for
  /// this long. A wake is evidence the last park was premature; without
  /// the backoff, park/wake cycles churn the map table (and its FM
  /// penalties cost more energy than the parking saves).
  TimeNs consolidate_backoff = from_us(2'000.0);
  /// Map-table entries per core. With a single entry per core, linear
  /// hashing leaves unsplit buckets carrying twice the traffic of split
  /// ones whenever b is not a power of two — a structural 2x per-core skew
  /// that no amount of elephant migration can remove. Spreading each core
  /// over several smaller buckets (round-robin) averages that skew away;
  /// 8 keeps the residual under ~12% while the table stays tiny.
  std::size_t entries_per_core = 8;
  /// Aggressive Flow Detector configuration; afd.afc_entries is the paper's
  /// "top K" knob swept in Fig. 9. The scheduler defaults the AFC-min
  /// promotion guard ON (see make_default_afd below): migrating a false
  /// positive costs real FM penalties and reordering, so the integrated
  /// detector is tuned stricter than the standalone one.
  AfdConfig afd = make_default_afd();

  static AfdConfig make_default_afd() {
    AfdConfig cfg;
    cfg.require_beat_afc_min = true;
    return cfg;
  }

  /// The power-gating slice of this config, for the PowerManager mechanism.
  PowerConfig power() const {
    PowerConfig cfg;
    cfg.enabled = power_gating;
    cfg.sleep_after = sleep_after;
    cfg.consolidate_window = consolidate_window;
    cfg.consolidate_watermark = consolidate_watermark;
    cfg.consolidate_backoff = consolidate_backoff;
    cfg.min_unparked = min_cores_per_service;
    return cfg;
  }
};

/// LAPS — the paper's Locality-Aware Packet Scheduler (Sec. III, Fig. 3).
///
/// Decision path per packet (Sec. III-E):
///   1. migration-table hit -> use the pinned core;
///   2. otherwise CRC16(5-tuple) into the packet's *service* map table
///      (incremental hashing, so core grants/releases barely disturb flows);
///   3. under load imbalance, a flow that hits in the AFC is migrated to the
///      service's least-loaded core and pinned in the migration table
///      (Listing 1);
///   4. if every core of the service is overloaded, request one more core —
///      the allocator grants the longest-surplus core from another service.
///
/// Because each service owns its cores exclusively, a core's small I-cache
/// only ever holds one program (until a reallocation), which is where the
/// Fig. 7b cold-cache advantage comes from.
///
/// Since the policy/mechanism split, this class is a *policy*: the ordering
/// decisions above, composed from reusable mechanisms — a CoreAllocator
/// (surplus protocol), an AggressiveDetector (AFD), one FlowPinner per
/// service (map + migration tables), a PowerManager (park/wake timing), and
/// a LiveCoreSet (fault liveness). The per-packet order of operations is
/// bit-identical to the pre-split monolith (tests/scheduler_equiv_test).
class LapsScheduler final : public Scheduler, private PowerHost {
 public:
  explicit LapsScheduler(LapsConfig config = {});

  void attach(std::size_t num_cores) override;

  CoreId schedule(const SimPacket& pkt, const NpuView& view) override;

  std::string name() const override { return "LAPS"; }

  std::map<std::string, double> extra_stats() const override;

  /// Observability: core grants/denials, AFD promotions, aggressive-flow
  /// migrations, and park/wake transitions are emitted through the sink as
  /// they happen (the extra_stats() totals only say how many, not when).
  void set_event_sink(SchedEventSink* sink) override { sink_ = sink; }

  /// Live AFC contents, most-frequent first — the Fig. 8 methodology run
  /// *inside* a simulation: accuracy probes score this snapshot against
  /// exact per-flow counts at every epoch. The detector's snapshot is a
  /// read-only hardware-style lookup, so sampling never perturbs it.
  std::vector<std::uint64_t> aggressive_snapshot() const override;

  /// Current mechanism occupancies for the telemetry layer: AFC size and
  /// hit/eviction totals, pinned flows summed over services, power-gating
  /// state (when enabled), and LiveCoreSet churn. Safe pre-attach (all
  /// zeros / N/A) — the TelemetryProbe samples once at run begin to learn
  /// which gauges this policy exports.
  SchedTelemetry telemetry_sample() const override;

  /// Graceful degradation on core failure (drain/remap protocol, see
  /// DESIGN.md): the dead core is taken offline in the allocator, its
  /// migration pins are dropped, and its map-table buckets are drained.
  /// When the dead core held the service's *last* bucket, a replacement is
  /// acquired first (own parked core, then a surplus donor, then the
  /// emergency grant_any), so the service keeps routable capacity.
  void notify_core_down(CoreId core, const NpuView& view) override;

  /// Recovery: the core rejoins the allocator and its owner's map table
  /// (incremental hashing pulls flows back gradually; no flood of
  /// migrations).
  void notify_core_up(CoreId core, const NpuView& view) override;

  // Introspection for tests.
  const CoreAllocator& allocator() const { return *allocator_; }
  const MapTable& map_table(std::size_t service) const {
    return pinners_.at(service).map_table();
  }
  const MigrationTable& migration_table(std::size_t service) const {
    return pinners_.at(service).migration_table();
  }
  const Afd& afd() const { return detector_->afd(); }
  const LapsConfig& config() const { return config_; }

 private:
  std::size_t service_index(ServicePath path) const {
    return static_cast<std::size_t>(path) % config_.num_services;
  }

  // PowerHost — the mechanism's view of this policy.
  std::size_t owner_of(CoreId core) const override {
    return allocator_->owner(core);
  }
  const std::vector<CoreId>& cores_of(std::size_t service) const override {
    return allocator_->cores_of(service);
  }
  bool core_down(CoreId core) const override { return live_.is_down(core); }
  /// Parks `core` of `service` (removes its buckets and pins). The caller
  /// guarantees eligibility.
  void park_core(std::size_t service, CoreId core, TimeNs now) override;

  /// Lazily advances the surplus timers: marks every core that has been
  /// idle past idle_th (Sec. III-D). Called once per arrival; core counts
  /// are small so the scan is trivial next to the simulated work.
  void update_surplus_marks(const NpuView& view);

  /// Least-loaded core among those owned by `service`.
  CoreId least_loaded_of(std::size_t service, const NpuView& view) const;

  /// Listing 1's request_core(): try to grow `service` by one core; updates
  /// the victim's map/migration tables. With power gating, the service's
  /// own parked cores are reclaimed first (no context switch needed, as
  /// Sec. III-D intends). Returns true on success.
  bool request_core(std::size_t service);

  /// The grant machinery behind request_core: wake an own parked core,
  /// else take a surplus donor core. `emergency` (core-failure replacement
  /// only) additionally falls back to CoreAllocator::grant_any — normal
  /// overload never steals a busy core. Returns true and emits kCoreGrant
  /// on success; the caller reports denial.
  bool acquire_core(std::size_t service, bool emergency);

  /// Wakes a parked core, accounting its sleep span. Returns true if the
  /// core was parked.
  bool wake_core(CoreId core, TimeNs now);
  /// Adds `core`'s virtual buckets to `service`'s map table.
  void add_core_buckets(std::size_t service, CoreId core);

  /// Emits a scheduler-internal event when a sink is installed.
  void emit(SchedEvent::Kind kind, std::int32_t core, std::int32_t service,
            std::uint64_t flow_key = 0) {
    if (sink_ == nullptr) return;
    SchedEvent event;
    event.kind = kind;
    event.core = core;
    event.service = service;
    event.flow_key = flow_key;
    sink_->sched_event(event);
  }

  LapsConfig config_;
  SchedEventSink* sink_ = nullptr;
  std::unique_ptr<CoreAllocator> allocator_;
  std::unique_ptr<AggressiveDetector> detector_;
  std::vector<FlowPinner> pinners_;  // one per service
  PowerManager power_;
  LiveCoreSet live_;
  TimeNs last_now_ = 0;

  // Counters for extra_stats().
  std::uint64_t aggressive_migrations_ = 0;
  std::uint64_t core_requests_ = 0;
  std::uint64_t core_requests_denied_ = 0;
  // Fault counters; the fault_* extra_stats keys appear only when a fault
  // was actually seen, so fault-free artifacts stay byte-identical.
  std::uint64_t cores_down_events_ = 0;
  std::uint64_t cores_up_events_ = 0;
  std::uint64_t fault_unreplaced_buckets_ = 0;
};

}  // namespace laps
