#include "core/live_core_set.h"

namespace laps {

std::size_t LiveCoreSet::live_count() const {
  std::size_t live = 0;
  for (std::uint8_t d : down_) live += d == 0;
  return live;
}

std::vector<CoreId> LiveCoreSet::live_cores() const {
  std::vector<CoreId> live;
  live.reserve(down_.size());
  for (std::size_t c = 0; c < down_.size(); ++c) {
    if (down_[c] == 0) live.push_back(static_cast<CoreId>(c));
  }
  return live;
}

}  // namespace laps
