#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.h"

namespace laps {

/// Core-liveness mechanism shared by every scheduler's fault handling
/// (notify_core_down/up): a byte-per-core down map plus the derived live
/// list used for rehashing.
///
/// Before the policy/mechanism split, StaticHash, AFS, FCFS, and LAPS each
/// hand-rolled the same `std::vector<std::uint8_t> down_` with the same
/// bounds checks; this class is that bitmap, extracted once. Reads are a
/// single inline byte load, so schedulers that consult liveness per packet
/// (FCFS's scan, AFS's shift loop) pay exactly what the hand-rolled vector
/// cost.
class LiveCoreSet {
 public:
  LiveCoreSet() = default;
  explicit LiveCoreSet(std::size_t num_cores) { reset(num_cores); }

  /// Sizes the set to `num_cores`, all live (every scheduler's attach()).
  /// Keeps the lifetime transition count: attach-time resets don't erase
  /// fault history from telemetry.
  void reset(std::size_t num_cores) { down_.assign(num_cores, 0); }

  /// Marks a core down. Returns true when this call changed its state
  /// (in range and previously live) — the signal rehashing schedulers use
  /// to rebuild exactly once per transition.
  bool mark_down(CoreId core) {
    if (core >= down_.size() || down_[core] != 0) return false;
    down_[core] = 1;
    ++transitions_;
    return true;
  }

  /// Marks a core live again. Returns true when this call changed its
  /// state (in range and previously down).
  bool mark_up(CoreId core) {
    if (core >= down_.size() || down_[core] == 0) return false;
    down_[core] = 0;
    ++transitions_;
    return true;
  }

  /// Lifetime count of actual state flips (a mark_down/mark_up that
  /// returned true). The telemetry meter for how much fault churn this
  /// scheduler absorbed.
  std::uint64_t transitions() const { return transitions_; }

  /// True while `core` is failed. Out-of-range cores read as down: a core
  /// id the scheduler was never attached with cannot be routed to.
  bool is_down(CoreId core) const {
    return core >= down_.size() || down_[core] != 0;
  }

  bool is_live(CoreId core) const { return !is_down(core); }

  std::size_t size() const { return down_.size(); }

  /// Number of live cores.
  std::size_t live_count() const;

  /// Live core ids in ascending order — the rehash domain. Empty when
  /// every core is down (rehashing schedulers then keep their last table;
  /// the engine accounts the drops).
  std::vector<CoreId> live_cores() const;

 private:
  std::vector<std::uint8_t> down_;
  std::uint64_t transitions_ = 0;
};

}  // namespace laps
