#include "core/map_table.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace laps {

MapTable::MapTable(std::vector<CoreId> initial_cores)
    : buckets_(std::move(initial_cores)) {
  if (buckets_.empty()) {
    throw std::invalid_argument("MapTable: needs at least one core");
  }
  recompute_base();
}

void MapTable::recompute_base() {
  m_ = std::bit_floor(buckets_.size());
}

void MapTable::add_core(CoreId core) {
  buckets_.push_back(core);
  recompute_base();
}

bool MapTable::remove_core(CoreId core) {
  if (buckets_.size() <= 1) return false;
  const auto it = std::find(buckets_.begin(), buckets_.end(), core);
  if (it == buckets_.end()) return false;
  buckets_.erase(it);
  recompute_base();
  return true;
}

bool MapTable::contains(CoreId core) const {
  return std::find(buckets_.begin(), buckets_.end(), core) != buckets_.end();
}

}  // namespace laps
