#pragma once

#include <cstdint>
#include <vector>

#include "sim/scheduler.h"

namespace laps {

/// Per-service map table with *incremental hashing* (paper Sec. III-C).
///
/// A service owns an ordered bucket list of core ids. Bucket selection uses
/// linear hashing: with `b` buckets in use and `m` the largest power of two
/// <= b,
///
///     h(k) = k % 2m   if (k % m) <  b - m     (split buckets)
///          = k % m    otherwise               (unsplit buckets)
///
/// which is exactly the paper's h1/h2 pair: growing from b to b+1 splits a
/// single bucket (only the flows that hashed to bucket b-m move, half of
/// them to the new bucket b), and every other flow keeps its core. When b
/// reaches 2m the modulus doubles — the paper's "h2(k) = CRC16(k) % 4m"
/// step. Shrinking reverses a split the same way.
///
/// This is what lets LAPS reassign cores between services with minimal flow
/// disruption, instead of the full remap a plain `% b` would cause.
class MapTable {
 public:
  /// Starts with the given cores, one bucket each. Must be non-empty.
  explicit MapTable(std::vector<CoreId> initial_cores);

  /// Core for a 16-bit flow hash (the CRC16 of the 5-tuple).
  CoreId core_for(std::uint16_t hash) const {
    return buckets_[bucket_index(hash)];
  }

  /// Bucket index for a hash — exposed for the incremental-hashing tests
  /// and the disruption ablation.
  std::size_t bucket_index(std::uint16_t hash) const {
    const std::size_t h1 = hash % m_;
    if (h1 < buckets_.size() - m_) return hash % (2 * m_);
    return h1;
  }

  /// Appends a newly granted core as bucket b (one split). O(1).
  void add_core(CoreId core);

  /// Removes the bucket holding `core` ("other core IDs will be shifted to
  /// take the place of this ID", Sec. III-D) and decrements b. Returns false
  /// if the core is not in the table or it is the last remaining bucket.
  bool remove_core(CoreId core);

  /// Number of buckets currently in use (the paper's `b`).
  std::size_t size() const { return buckets_.size(); }

  /// Current linear-hashing base (the paper's `m`).
  std::size_t base() const { return m_; }

  /// The bucket list, index -> core.
  const std::vector<CoreId>& buckets() const { return buckets_; }

  /// True if `core` appears in the bucket list.
  bool contains(CoreId core) const;

 private:
  void recompute_base();

  std::vector<CoreId> buckets_;
  std::size_t m_ = 1;
};

}  // namespace laps
