#include "core/migration_table.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

MigrationTable::MigrationTable(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("MigrationTable: capacity 0");
  map_.reserve(capacity * 2);
  order_.reserve(capacity);
}

std::optional<CoreId> MigrationTable::lookup(std::uint64_t flow_key) const {
  const auto it = map_.find(flow_key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void MigrationTable::add(std::uint64_t flow_key, CoreId core) {
  const auto it = map_.find(flow_key);
  if (it != map_.end()) {
    it->second = core;
    // Refresh position: treat re-pin as newest.
    order_.erase(std::find(order_.begin(), order_.end(), flow_key));
    order_.push_back(flow_key);
    return;
  }
  if (map_.size() == capacity_) {
    map_.erase(order_.front());
    order_.erase(order_.begin());
  }
  map_.emplace(flow_key, core);
  order_.push_back(flow_key);
}

bool MigrationTable::erase(std::uint64_t flow_key) {
  const auto it = map_.find(flow_key);
  if (it == map_.end()) return false;
  map_.erase(it);
  order_.erase(std::find(order_.begin(), order_.end(), flow_key));
  return true;
}

std::size_t MigrationTable::remove_core_entries(CoreId core) {
  std::size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    const auto map_it = map_.find(*it);
    if (map_it != map_.end() && map_it->second == core) {
      map_.erase(map_it);
      it = order_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void MigrationTable::clear() {
  map_.clear();
  order_.clear();
}

}  // namespace laps
