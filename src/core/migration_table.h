#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/scheduler.h"

namespace laps {

/// The migration table of paper Fig. 3: flow-id -> core overrides that take
/// priority over the hash path ("the scheduler gives priority to the output
/// of migration table over the default hash table").
///
/// Fixed capacity like the hardware CAM it models; when full, the oldest
/// pin is evicted and that flow falls back to its hash bucket (a single
/// extra migration — harmless, and it bounds state). Lookups are O(1);
/// insert/erase maintain insertion order for FIFO eviction.
class MigrationTable {
 public:
  explicit MigrationTable(std::size_t capacity);

  /// Pinned core for a flow, if any.
  std::optional<CoreId> lookup(std::uint64_t flow_key) const;

  /// Pins `flow_key` to `core` (moves it to newest position if already
  /// pinned). Evicts the oldest pin when full.
  void add(std::uint64_t flow_key, CoreId core);

  /// Unpins a flow; returns true if it was pinned.
  bool erase(std::uint64_t flow_key);

  /// Drops every pin that targets `core` — used when a core is reassigned
  /// to another service. Returns the number removed.
  std::size_t remove_core_entries(CoreId core);

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear();

  /// Pinned flows in eviction order (oldest first); for tests.
  std::vector<std::uint64_t> keys_in_order() const { return order_; }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, CoreId> map_;
  std::vector<std::uint64_t> order_;  // insertion order, oldest first
};

}  // namespace laps
