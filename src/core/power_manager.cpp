#include "core/power_manager.h"

#include <algorithm>

namespace laps {

void PowerManager::attach(std::size_t num_cores, std::size_t num_services) {
  parked_.assign(num_cores, false);
  surplus_since_.assign(num_cores, -1);
  parked_since_.assign(num_cores, 0);
  no_park_until_.assign(num_cores, 0);
  window_packets_.assign(num_services, 0);
  window_core_max_.assign(num_cores, 0);
  no_consolidate_until_.assign(num_services, 0);
  wake_strikes_.assign(num_services, 0);
  slack_streak_.assign(num_services, 0);
  parked_total_ns_ = 0;
  sleep_events_ = 0;
  wake_events_ = 0;
}

void PowerManager::park(CoreId core, TimeNs now) {
  parked_[core] = true;
  parked_since_[core] = now;
  ++sleep_events_;
}

bool PowerManager::wake(CoreId core, TimeNs now) {
  if (!parked_[core]) return false;
  parked_[core] = false;
  parked_total_ns_ += now - parked_since_[core];
  // Post-wake hysteresis: a core that was just needed is likely to be
  // needed again; without this, moderate load makes cores thrash through
  // hundreds of sleep/wake cycles (each one churns the map table).
  no_park_until_[core] = now + 10 * config_.sleep_after;
  ++wake_events_;
  return true;
}

void PowerManager::on_core_down(CoreId core, TimeNs now) {
  if (config_.enabled && parked_[core]) {
    // Close the sleep span without wake semantics — the core did not wake,
    // it died.
    parked_[core] = false;
    parked_total_ns_ += now - parked_since_[core];
  }
  surplus_since_[core] = -1;
}

void PowerManager::update_parking(TimeNs now, PowerHost& host) {
  if (!config_.enabled) return;
  for (CoreId c = 0; c < static_cast<CoreId>(parked_.size()); ++c) {
    if (parked_[c] || host.core_down(c) || surplus_since_[c] < 0) continue;
    if (now - surplus_since_[c] < config_.sleep_after) continue;
    if (now < no_park_until_[c]) continue;
    const std::size_t owner = host.owner_of(c);
    // The owner must keep at least min_unparked powered, live cores.
    std::size_t unparked = 0;
    for (CoreId other : host.cores_of(owner)) {
      unparked += !parked_[other] && !host.core_down(other);
    }
    if (unparked <= config_.min_unparked) continue;
    host.park_core(owner, c, now);
  }
}

void PowerManager::update_consolidation(std::size_t service, CoreId target,
                                        const NpuView& view, PowerHost& host) {
  // Record this dispatch in the target core's window maximum. The target
  // is always owned by `service`, so per-core maxima partition cleanly.
  const std::uint32_t depth = view.cores()[target].queue_len;
  if (depth > window_core_max_[target]) window_core_max_[target] = depth;
  if (++window_packets_[service] < config_.consolidate_window) {
    return;
  }
  window_packets_[service] = 0;

  // Window end: park the coldest core — the one whose own queue never
  // reached the watermark all window (cores that received nothing have a
  // window max of 0 and are the first to fold).
  const TimeNs now = view.now();
  std::size_t unparked = 0;
  CoreId victim = 0;
  bool have = false;
  std::uint32_t victim_max = 0;
  for (CoreId core : host.cores_of(service)) {
    if (parked_[core] || host.core_down(core)) {
      window_core_max_[core] = 0;
      continue;
    }
    ++unparked;
    const std::uint32_t core_max = window_core_max_[core];
    window_core_max_[core] = 0;
    if (now < no_park_until_[core]) continue;
    if (!have || core_max < victim_max) {
      have = true;
      victim_max = core_max;
      victim = core;
    }
  }
  // Require the slack to persist for two consecutive windows before
  // parking: one quiet window at moderate load is common, and a premature
  // park costs a wake plus map-table churn.
  if (have && victim_max < config_.consolidate_watermark) {
    ++slack_streak_[service];
  } else {
    slack_streak_[service] = 0;
  }
  if (slack_streak_[service] >= 2 && unparked > config_.min_unparked &&
      now >= no_consolidate_until_[service]) {
    host.park_core(service, victim, now);
    slack_streak_[service] = 0;
  }
}

void PowerManager::note_wake_backoff(std::size_t service, TimeNs now) {
  const std::uint32_t strikes = std::min(wake_strikes_[service]++, 6u);
  no_consolidate_until_[service] =
      now + (config_.consolidate_backoff << strikes);
}

TimeNs PowerManager::parked_total(TimeNs now) const {
  TimeNs parked = parked_total_ns_;
  for (CoreId c = 0; c < static_cast<CoreId>(parked_.size()); ++c) {
    if (parked_[c]) parked += now - parked_since_[c];
  }
  return parked;
}

void PowerManager::append_stats(std::map<std::string, double>& stats,
                                TimeNs now) const {
  if (!config_.enabled) return;
  stats["parked_core_us"] = to_us(parked_total(now));
  stats["sleep_events"] = static_cast<double>(sleep_events_);
  stats["wake_events"] = static_cast<double>(wake_events_);
}

}  // namespace laps
