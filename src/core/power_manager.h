#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace laps {

/// Power-gating tunables (extracted from LapsConfig so non-LAPS policies —
/// e.g. AFS+power — can gate cores with the same semantics).
struct PowerConfig {
  /// Master switch; when false every PowerManager entry point early-returns
  /// and parked() is always false.
  bool enabled = false;
  /// A core surplus for this long is parked.
  TimeNs sleep_after = from_us(50.0);
  /// Every `consolidate_window` packets of a service, the core whose *own*
  /// window-max queue depth stayed below `consolidate_watermark` is parked.
  std::uint64_t consolidate_window = 4'096;
  std::uint32_t consolidate_watermark = 3;
  /// Post-wake consolidation pause (doubled per wake, capped at << 6).
  TimeNs consolidate_backoff = from_us(2'000.0);
  /// Every service keeps at least this many unparked live cores.
  std::size_t min_unparked = 1;
};

/// The callbacks PowerManager needs from its owning policy: who owns which
/// core, which cores are dead, and how to actually park one (parking is a
/// policy action — it scrubs routing tables and emits events — so the
/// mechanism delegates it and only keeps the timing/eligibility state).
/// All calls happen inside the scheduler's own dispatch, never re-entrantly.
class PowerHost {
 public:
  virtual ~PowerHost() = default;
  virtual std::size_t owner_of(CoreId core) const = 0;
  virtual const std::vector<CoreId>& cores_of(std::size_t service) const = 0;
  virtual bool core_down(CoreId core) const = 0;
  /// Performs the park: scrub `core` from `service`'s routing state, then
  /// call PowerManager::park(core, now), then emit whatever events the
  /// policy reports.
  virtual void park_core(std::size_t service, CoreId core, TimeNs now) = 0;
};

/// Core power-gating mechanism: all the park/wake timing state that was
/// embedded in LapsScheduler — surplus timers, sleep spans, post-wake
/// hysteresis, per-service consolidation windows with slack streaks and
/// exponential wake backoff — behind a policy-neutral interface.
///
/// The split: PowerManager decides *which core* should park or wake and
/// keeps every timer consistent; the PowerHost (the policy) executes the
/// transition on its routing tables. All eligibility rules are preserved
/// bit-for-bit from the pre-split LAPS implementation:
///   - park after `sleep_after` of continuous surplus, unless inside the
///     post-wake `no_park_until` hysteresis window (10 * sleep_after);
///   - never below `min_unparked` live unparked cores per service;
///   - consolidation parks the window-coldest core only after two
///     consecutive slack windows, and backs off exponentially after wakes.
class PowerManager {
 public:
  explicit PowerManager(const PowerConfig& config) : config_(config) {}

  /// Resets all state for a run. Arrays are sized even when disabled so
  /// parked()/surplus reads stay valid on the fast path.
  void attach(std::size_t num_cores, std::size_t num_services);

  bool enabled() const { return config_.enabled; }
  const PowerConfig& config() const { return config_; }
  bool parked(CoreId core) const { return parked_[core]; }

  // --- surplus timers ------------------------------------------------------
  /// Records when `core` became surplus (first caller wins; cleared by
  /// clear_surplus). `since` is the instant the idle threshold elapsed.
  void note_surplus(CoreId core, TimeNs since) {
    if (surplus_since_[core] < 0) surplus_since_[core] = since;
  }
  /// The core was dispatched to, granted, woken, or died: stop counting.
  void clear_surplus(CoreId core) { surplus_since_[core] = -1; }

  // --- park/wake transitions ----------------------------------------------
  /// Marks `core` parked at `now` (called by the host from park_core after
  /// it scrubbed routing state).
  void park(CoreId core, TimeNs now);
  /// Wakes `core` if parked: closes its sleep span, arms the post-wake
  /// hysteresis, counts the wake. Returns true if the core was parked.
  /// The *host* emits the wake event (it knows the owning service).
  bool wake(CoreId core, TimeNs now);
  /// A parked core died: close its sleep span without wake semantics, and
  /// clear its surplus timer.
  void on_core_down(CoreId core, TimeNs now);

  // --- periodic policies ---------------------------------------------------
  /// Parks every eligible surplus core (idle-timeout parking). No-op when
  /// disabled.
  void update_parking(TimeNs now, PowerHost& host);
  /// Window-based consolidation bookkeeping; called per dispatch with the
  /// packet's target core. No-op outside window boundaries.
  void update_consolidation(std::size_t service, CoreId target,
                            const NpuView& view, PowerHost& host);
  /// A wake-ahead fired in `service`: double its consolidation backoff
  /// (capped), so load that keeps defeating parking converges to a stable
  /// unparked configuration instead of churning.
  void note_wake_backoff(std::size_t service, TimeNs now);

  // --- reporting -----------------------------------------------------------
  /// Total parked core-time including spans still open at `now`.
  TimeNs parked_total(TimeNs now) const;
  std::uint64_t sleep_events() const { return sleep_events_; }
  std::uint64_t wake_events() const { return wake_events_; }

  /// Cores parked right now (telemetry gauge; O(num_cores) scan, called at
  /// epoch cadence, not per packet).
  std::size_t parked_count() const {
    std::size_t n = 0;
    for (const bool p : parked_) n += p;
    return n;
  }

  /// Current wake-hysteresis strikes summed across services (telemetry
  /// gauge for how hard the backoff doubling is leaning on wakes).
  std::uint64_t wake_strikes_total() const {
    std::uint64_t n = 0;
    for (const std::uint32_t s : wake_strikes_) n += s;
    return n;
  }
  /// Adds the power keys (parked_core_us, sleep_events, wake_events) to a
  /// stats map; only when enabled, so gating-off artifacts stay identical.
  void append_stats(std::map<std::string, double>& stats, TimeNs now) const;

 private:
  PowerConfig config_;
  std::vector<bool> parked_;
  std::vector<TimeNs> surplus_since_;  // -1 = not marked
  std::vector<TimeNs> parked_since_;
  std::vector<TimeNs> no_park_until_;  // post-wake hysteresis deadline
  // Per-service consolidation windows; per-core window-max queue depths
  // (cores belong to exactly one service, so one global array suffices).
  std::vector<std::uint64_t> window_packets_;
  std::vector<std::uint32_t> window_core_max_;
  std::vector<TimeNs> no_consolidate_until_;  // per service, set on wake
  std::vector<std::uint32_t> wake_strikes_;   // per service, backoff doubling
  std::vector<std::uint32_t> slack_streak_;   // consecutive slack windows
  TimeNs parked_total_ns_ = 0;
  std::uint64_t sleep_events_ = 0;
  std::uint64_t wake_events_ = 0;
};

}  // namespace laps
