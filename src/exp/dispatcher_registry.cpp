#include "exp/dispatcher_registry.h"

#include <sstream>

#include "cluster/dispatchers.h"
#include "exp/spec_lang.h"

namespace laps {
namespace {

using ParsedSpec = spec::ParsedSpec;
using SpecPrinter = spec::SpecPrinter;

ParsedSpec parse_spec(const std::string& s) {
  return spec::parse_spec<DispatcherSpecError>(s, "dispatcher");
}

class Params : public spec::Params<DispatcherSpecError> {
 public:
  Params(std::string dispatcher, spec::ParamMap params)
      : spec::Params<DispatcherSpecError>("dispatcher",
                                         std::move(dispatcher),
                                         std::move(params)) {}
};

// Per-dispatcher parse helpers: one parse shared by the factory and the
// canonicalizer, so the two cannot disagree about a spec's meaning.

std::uint32_t parse_pass(Params& p) {
  const std::uint32_t shard = p.get_u32("shard", 0);
  p.finish();
  return shard;
}

std::size_t parse_fdir(Params& p) {
  const std::size_t slots = p.get_size("slots", 4096);
  if (slots == 0) {
    throw DispatcherSpecError(
        "dispatcher 'fdir': parameter 'slots' must be positive");
  }
  p.finish();
  return slots;
}

struct AffinityParams {
  std::uint64_t th = 32;
  bool drain = true;
};

AffinityParams parse_affinity(Params& p) {
  AffinityParams cfg;
  cfg.th = p.get_u64("th", cfg.th);
  cfg.drain = p.get_bool("drain", cfg.drain);
  p.finish();
  return cfg;
}

std::uint64_t parse_load(Params& p) {
  const std::uint64_t th = p.get_u64("th", 32);
  p.finish();
  return th;
}

struct Entry {
  const char* name;
  const char* params;  // help text: parameter list (or "-")
  std::unique_ptr<Dispatcher> (*make)(Params&);
  std::string (*canon)(Params&);
};

const Entry kRegistry[] = {
    {"pass", "shard",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       return std::make_unique<PassDispatcher>(parse_pass(p));
     },
     [](Params& p) -> std::string {
       SpecPrinter out("pass");
       out.add_u32("shard", parse_pass(p), 0);
       return out.str();
     }},
    {"rr", "-",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       p.finish();
       return std::make_unique<RoundRobinDispatcher>();
     },
     [](Params& p) -> std::string {
       p.finish();
       return "rr";
     }},
    {"rss", "-",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       p.finish();
       return std::make_unique<RssDispatcher>();
     },
     [](Params& p) -> std::string {
       p.finish();
       return "rss";
     }},
    {"fdir", "slots",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       return std::make_unique<FlowDirectorDispatcher>(parse_fdir(p));
     },
     [](Params& p) -> std::string {
       SpecPrinter out("fdir");
       out.add_size("slots", parse_fdir(p), 4096);
       return out.str();
     }},
    {"affinity", "th, drain",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       const AffinityParams c = parse_affinity(p);
       return std::make_unique<AffinityDispatcher>(c.th, c.drain);
     },
     [](Params& p) -> std::string {
       const AffinityParams c = parse_affinity(p);
       const AffinityParams d;
       SpecPrinter out("affinity");
       out.add_u64("th", c.th, d.th);
       out.add_bool("drain", c.drain, d.drain);
       return out.str();
     }},
    {"load", "th",
     [](Params& p) -> std::unique_ptr<Dispatcher> {
       return std::make_unique<LeastLoadedDispatcher>(parse_load(p));
     },
     [](Params& p) -> std::string {
       SpecPrinter out("load");
       out.add_u64("th", parse_load(p), 32);
       return out.str();
     }},
};

const Entry& find_entry(const std::string& name, const std::string& spec) {
  for (const Entry& entry : kRegistry) {
    if (name == entry.name) return entry;
  }
  std::ostringstream msg;
  msg << "unknown dispatcher '" << name << "' in spec '" << spec
      << "'; valid dispatchers:";
  for (const Entry& entry : kRegistry) msg << ' ' << entry.name;
  throw DispatcherSpecError(msg.str());
}

}  // namespace

std::unique_ptr<Dispatcher> make_dispatcher(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  const Entry& entry = find_entry(parsed.name, spec);
  Params params(parsed.name, std::move(parsed.params));
  return entry.make(params);
}

std::string canonical_dispatcher_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  const Entry& entry = find_entry(parsed.name, spec);
  Params params(parsed.name, std::move(parsed.params));
  return entry.canon(params);
}

std::vector<std::string> dispatcher_names() {
  std::vector<std::string> names;
  for (const Entry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

std::string dispatcher_spec_help() {
  std::ostringstream out;
  out << "dispatcher specs: name[:key=value,...]\n";
  for (const Entry& entry : kRegistry) {
    Params probe(entry.name, {});
    const auto instance = entry.make(probe);
    out << "  " << entry.name << " (" << instance->name()
        << "): " << entry.params << "\n";
  }
  return out.str();
}

DispatcherSpec make_dispatcher_spec(const std::string& spec,
                                    std::string display) {
  // Parse eagerly so a bad spec fails at table-build time, not mid-grid.
  const std::string canonical = canonical_dispatcher_spec(spec);
  if (display.empty()) display = make_dispatcher(spec)->name();
  return DispatcherSpec{
      std::move(display),
      [canonical]() { return make_dispatcher(canonical); },
  };
}

std::vector<DispatcherSpec> parse_dispatcher_list(const std::string& list) {
  std::vector<DispatcherSpec> specs;
  if (list.empty()) return specs;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t semi = list.find(';', pos);
    if (semi == std::string::npos) semi = list.size();
    const std::string spec = list.substr(pos, semi - pos);
    if (spec.empty()) {
      throw DispatcherSpecError(
          "empty dispatcher spec in list '" + list +
          "' (specs are separated by ';', e.g. 'rss;fdir:slots=512')");
    }
    specs.push_back(make_dispatcher_spec(spec));
    pos = semi + 1;
  }
  return specs;
}

}  // namespace laps
