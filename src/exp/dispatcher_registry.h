#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"

namespace laps {

/// Thrown for any malformed or unknown `--dispatch` spec. Same fail-fast
/// contract as SchedulerSpecError: the message names the offending token
/// and lists what *would* have been valid.
class DispatcherSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// String-spec dispatcher registry — the factory behind the `--dispatch`
/// flag and the cluster bench grids. Speaks the same grammar as the
/// scheduler registry (the machinery is literally shared: exp/spec_lang.h):
///
///     spec  := name [ ':' param ( ',' param )* ]
///     param := key '=' value
///
/// Registered names (see dispatcher_spec_help() for parameter sets):
///   pass     — everything to one shard (`shard=K`); the shards=1
///              identity front end
///   rr       — packet-level round robin (reorder-maximizing baseline)
///   rss      — Toeplitz-hash receive-side scaling (flows never move)
///   fdir     — Flow Director signature table (`slots=4096`): collisions
///              evict and re-insert on the least-loaded shard
///   affinity — A-TFN-style flow affinity (`th=32,drain=1`): migrate an
///              overloaded flow only when it has nothing in flight
///   load     — least-loaded with immediate migration (`th=32`)
std::unique_ptr<Dispatcher> make_dispatcher(const std::string& spec);

/// The canonical form of a spec: only non-default keys, fixed order.
/// Canonical specs are fixed points (canonical(canonical(s)) ==
/// canonical(s)) and re-parse to the identical configuration — fuzzed in
/// tests/registry_test.cpp alongside the scheduler specs.
std::string canonical_dispatcher_spec(const std::string& spec);

/// All registered dispatcher names, in help order.
std::vector<std::string> dispatcher_names();

/// Multi-line human-readable catalog: one line per dispatcher with its
/// display name and parameter set.
std::string dispatcher_spec_help();

/// A named dispatcher factory for grid tables: `display` is the row label
/// (empty derives it from the instance's name()); `make` yields a fresh
/// instance per run.
struct DispatcherSpec {
  std::string display;
  std::function<std::unique_ptr<Dispatcher>()> make;
};

/// Wraps a spec as a DispatcherSpec, parsing eagerly so a bad spec fails
/// at table-build time.
DispatcherSpec make_dispatcher_spec(const std::string& spec,
                                    std::string display = "");

/// Parses a semicolon-separated spec list: `rss;fdir:slots=512;affinity`.
/// Empty segments are rejected; an empty list string yields an empty
/// vector.
std::vector<DispatcherSpec> parse_dispatcher_list(const std::string& list);

}  // namespace laps
