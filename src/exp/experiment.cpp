#include "exp/experiment.h"

#include <csignal>
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/journal.h"
#include "exp/watchdog.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace laps {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------------ stop signals --

/// The signal that asked the grid to stop; 0 = none. Written only from the
/// handler, read by workers between jobs.
std::atomic<int> g_stop_signal{0};

void stop_handler(int sig) {
  g_stop_signal.store(sig, std::memory_order_relaxed);
}

/// Installs SIGINT/SIGTERM handlers for the lifetime of one run() and
/// restores whatever was there before. Deliberately scoped: a bench that
/// never asked for signal handling (no journal) keeps the default
/// die-immediately behavior.
class SignalGuard {
 public:
  explicit SignalGuard(bool install) : installed_(install) {
    if (!installed_) return;
    g_stop_signal.store(0, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = stop_handler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, &old_int_);
    sigaction(SIGTERM, &sa, &old_term_);
  }

  ~SignalGuard() {
    if (!installed_) return;
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
  }

  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  int signal() const {
    return installed_ ? g_stop_signal.load(std::memory_order_relaxed) : 0;
  }

 private:
  bool installed_;
  struct sigaction old_int_ = {};
  struct sigaction old_term_ = {};
};

// ------------------------------------------------------------------- chaos --

double unit_draw(Rng& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

/// Wraps one attempt's job body with the chaos injector. The draw is a pure
/// function of (chaos seed, job fingerprint, attempt), so a chaos run is
/// reproducible and each retry of the same cell re-rolls the dice.
std::function<SimReport()> with_chaos(const std::function<SimReport()>& job,
                                      const RunnerPolicy::Chaos& chaos,
                                      std::uint64_t fingerprint,
                                      std::size_t attempt) {
  if (!chaos.enabled) return job;
  return [job, chaos, fingerprint, attempt]() -> SimReport {
    Rng rng(mix64(mix64(chaos.seed ^ fingerprint) +
                  static_cast<std::uint64_t>(attempt)));
    const double u = unit_draw(rng);
    if (u < chaos.fail_prob) {
      throw TransientError("chaos: injected transient fault (draw " +
                           std::to_string(u) + ")");
    }
    if (u < chaos.fail_prob + chaos.hang_prob) {
      // Hang until the watchdog cancels us (checked every millisecond);
      // check_cancelled throws JobCancelled, classified as a timeout.
      for (;;) {
        JobWatchdog::check_cancelled();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return job();
  };
}

bool is_transient(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const TransientError&) {
    return true;
  } catch (...) {
    return false;
  }
}

std::string error_message(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

std::uint64_t ExperimentPlan::derive_seed(std::uint64_t plan_seed,
                                          std::uint64_t stream) {
  // Same construction as Rng::stream: SplitMix64 over decorrelated inputs.
  return mix64(mix64(plan_seed) ^ mix64(stream + 0x9E3779B97F4A7C15ULL));
}

std::vector<std::uint64_t> ExperimentPlan::replicate_seeds(
    std::size_t n) const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(derive_seed(plan_seed_, i));
  }
  return seeds;
}

void ExperimentPlan::add(std::string scenario, std::string scheduler,
                         std::uint64_t seed, std::function<SimReport()> run) {
  if (!run) throw std::invalid_argument("ExperimentPlan::add: null job");
  jobs_.push_back(ExperimentJob{std::move(scenario), std::move(scheduler),
                                seed, std::move(run)});
}

void ExperimentPlan::add_grid(const std::vector<std::string>& scenarios,
                              const std::vector<SchedulerSpec>& schedulers,
                              const std::vector<std::uint64_t>& seeds,
                              ScenarioBuilder build, JobRunner runner) {
  if (!build) throw std::invalid_argument("add_grid: null scenario builder");
  for (const SchedulerSpec& spec : schedulers) {
    if (!spec.make) {
      throw std::invalid_argument("add_grid: scheduler '" + spec.name +
                                  "' has no factory");
    }
  }
  for (const std::string& scenario : scenarios) {
    for (const SchedulerSpec& spec : schedulers) {
      for (std::uint64_t seed : seeds) {
        // Capture by value: the closure must be self-contained so it can run
        // on any worker thread after this frame is gone.
        auto make = spec.make;
        add(scenario, spec.name, seed,
            [scenario, make, seed, build, runner]() -> SimReport {
              const ScenarioConfig cfg = build(scenario, seed);
              auto scheduler = make();
              if (runner) return runner(cfg, *scheduler);
              return run_scenario(cfg, *scheduler);
            });
      }
    }
  }
}

ParallelRunner::ParallelRunner(std::size_t jobs, RunnerPolicy policy)
    : jobs_(ThreadPool::resolve(jobs)), policy_(std::move(policy)) {
  if (policy_.chaos.enabled && policy_.chaos.hang_prob > 0 &&
      policy_.job_timeout <= 0) {
    throw std::invalid_argument(
        "ParallelRunner: chaos hang injection requires a job timeout "
        "(nothing else would ever unblock a hung attempt)");
  }
  if (policy_.resume && policy_.journal_path.empty()) {
    throw std::invalid_argument("ParallelRunner: resume requires a journal");
  }
}

std::vector<JobResult> ParallelRunner::run(const ExperimentPlan& plan) {
  stats_ = RunnerStats{};
  stop_signal_ = 0;
  const std::size_t total = plan.size();
  stats_.jobs_used = total <= 1 ? std::min<std::size_t>(1, total)
                                : std::min(jobs_, total);
  const auto t0 = std::chrono::steady_clock::now();

  // Journal + per-cell fingerprints. Opening the journal validates (or
  // writes) the header before any job runs, so a stale journal fails fast.
  std::optional<ExperimentJournal> journal;
  if (!policy_.journal_path.empty()) {
    ExperimentJournal::Config cfg;
    cfg.path = policy_.journal_path;
    cfg.plan_seed = plan.plan_seed();
    cfg.salt = policy_.journal_salt;
    cfg.num_jobs = total;
    journal.emplace(std::move(cfg), policy_.resume);
  }
  std::vector<std::uint64_t> fingerprints(total);
  for (std::size_t i = 0; i < total; ++i) {
    fingerprints[i] = job_fingerprint(plan.plan_seed(), policy_.journal_salt,
                                      i, plan.jobs()[i]);
  }

  // Results are pre-sized and slot-indexed: each cell is written by exactly
  // one worker (or restored here), so no result lock is needed.
  std::vector<JobResult> results(total);
  std::vector<char> completed(total, 0);
  for (std::size_t i = 0; i < total; ++i) {
    const ExperimentJob& job = plan.jobs()[i];
    results[i].index = i;
    results[i].scenario = job.scenario;
    results[i].scheduler = job.scheduler;
    results[i].seed = job.seed;
    if (journal && policy_.resume) {
      if (const SimReport* r = journal->restore(i, fingerprints[i])) {
        results[i].report = *r;
        results[i].from_journal = true;
        completed[i] = 1;
        ++stats_.restored;
      }
    }
  }
  if (stats_.restored > 0) {
    std::fprintf(stderr, "resumed %zu/%zu cell(s) from journal %s\n",
                 stats_.restored, total, journal->path().c_str());
  }

  // Grid telemetry: ids are registered up front (registration must precede
  // the workers' first local_shard() call, which freezes the set); each
  // worker then publishes into its own shard with no cross-thread traffic.
  // Attempt threads spawned by the watchdog never touch the registry —
  // publication happens on the persistent worker after the attempt ends.
  telemetry::CounterId c_jobs, c_offered, c_delivered, c_dropped, c_busy_us;
  telemetry::CounterId c_timeouts, c_retries, c_failures;
  if (metrics_ != nullptr) {
    c_jobs = metrics_->counter("exp.jobs_completed");
    c_offered = metrics_->counter("exp.packets_offered");
    c_delivered = metrics_->counter("exp.packets_delivered");
    c_dropped = metrics_->counter("exp.packets_dropped");
    c_busy_us = metrics_->counter("exp.worker_busy_us");
    c_timeouts = metrics_->counter("exp.job_timeouts");
    c_retries = metrics_->counter("exp.job_retries");
    c_failures = metrics_->counter("exp.job_failures");
  }

  std::optional<JobWatchdog> watchdog;
  if (policy_.job_timeout > 0) {
    watchdog.emplace(std::chrono::nanoseconds(policy_.job_timeout));
  }
  SignalGuard signals(policy_.handle_signals);
  auto stop_requested = [&] { return signals.signal() != 0; };

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{stats_.restored};
  std::mutex stats_mutex;  // workers fold failure/retry tallies under this

  auto run_cell = [&](std::size_t i) {
    const ExperimentJob& job = plan.jobs()[i];
    JobResult& out = results[i];
    const auto j0 = std::chrono::steady_clock::now();
    std::size_t cell_timeouts = 0;
    std::size_t cell_retries = 0;
    for (std::size_t attempt = 0;; ++attempt) {
      const AttemptOutcome outcome = run_job_attempt(
          with_chaos(job.run, policy_.chaos, fingerprints[i], attempt),
          watchdog ? &*watchdog : nullptr);
      out.error.reset();
      if (outcome.ok) {
        out.report = outcome.report;
        // Normalize labels so artifacts key on the plan's names even when a
        // scheduler self-reports differently (e.g. parameterized variants).
        out.report.scenario = job.scenario;
        out.report.scheduler = job.scheduler;
        break;
      }
      bool transient = false;
      if (outcome.timed_out) {
        ++cell_timeouts;
        transient = true;
        out.error = JobError{"timeout",
                             "watchdog cancelled the attempt" +
                                 std::string(outcome.abandoned
                                                 ? " (thread abandoned)"
                                                 : ""),
                             attempt + 1};
      } else {
        transient = is_transient(outcome.error);
        out.error = JobError{"exception", error_message(outcome.error),
                             attempt + 1};
      }
      if (!transient || attempt >= policy_.job_retries || stop_requested()) {
        break;  // permanent failure for this cell; error stays engaged
      }
      // Exponential backoff, capped, interruptible by a stop signal.
      ++cell_retries;
      TimeNs delay = policy_.retry_backoff;
      for (std::size_t d = 0; d < attempt && delay < 5 * kSecond; ++d) {
        delay *= 2;
      }
      delay = std::min<TimeNs>(delay, 5 * kSecond);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::nanoseconds(delay);
      while (std::chrono::steady_clock::now() < deadline &&
             !stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    out.wall_seconds = seconds_since(j0);
    completed[i] = 1;
    if (out.ok() && journal) {
      journal->record(i, fingerprints[i], out.report);
    }
    if (metrics_ != nullptr) {
      telemetry::MetricsRegistry::Shard& shard = metrics_->local_shard();
      if (out.ok()) {
        shard.add(c_jobs);
        shard.add(c_offered, out.report.offered);
        shard.add(c_delivered, out.report.delivered);
        shard.add(c_dropped, out.report.dropped);
      } else {
        shard.add(c_failures);
      }
      shard.add(c_busy_us, static_cast<std::uint64_t>(out.wall_seconds * 1e6));
      if (cell_timeouts > 0) shard.add(c_timeouts, cell_timeouts);
      if (cell_retries > 0) shard.add(c_retries, cell_retries);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats_.jobs_timed_out += cell_timeouts;
      stats_.retries += cell_retries;
      if (!out.ok()) ++stats_.jobs_failed;
    }
    const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (out.ok()) {
      std::fprintf(stderr, "[%zu/%zu] %s/%s seed=%llu (%.2fs)\n", n, total,
                   job.scenario.c_str(), job.scheduler.c_str(),
                   static_cast<unsigned long long>(job.seed),
                   out.wall_seconds);
    } else {
      std::fprintf(stderr, "[%zu/%zu] %s/%s seed=%llu FAILED (%s: %s)\n", n,
                   total, job.scenario.c_str(), job.scheduler.c_str(),
                   static_cast<unsigned long long>(job.seed),
                   out.error->kind.c_str(), out.error->message.c_str());
    }
  };

  auto worker = [&] {
    for (;;) {
      if (stop_requested()) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      if (completed[i]) continue;  // restored from the journal
      run_cell(i);
    }
  };

  if (stats_.jobs_used <= 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(stats_.jobs_used);
    for (std::size_t w = 0; w < stats_.jobs_used; ++w) {
      workers.emplace_back(worker);
    }
    for (std::thread& w : workers) w.join();
  }

  stop_signal_ = signals.signal();
  if (stop_signal_ != 0) {
    // Mark the cells that never ran; their default reports must not be
    // mistaken for results. Journaled cells keep their records — that is
    // exactly what --resume continues from.
    for (std::size_t i = 0; i < total; ++i) {
      if (completed[i]) continue;
      results[i].error = JobError{"interrupted",
                                  "stopped by signal before this cell ran", 0};
      ++stats_.interrupted;
    }
    std::fprintf(stderr,
                 "stopped by signal %d: %zu cell(s) finished, %zu pending%s\n",
                 stop_signal_, total - stats_.interrupted, stats_.interrupted,
                 journal ? " (journaled; rerun with --resume to continue)"
                         : "");
  }

  stats_.wall_seconds = seconds_since(t0);
  for (const JobResult& r : results) stats_.job_seconds += r.wall_seconds;
  if (total > 1 && stop_signal_ == 0) {
    std::fprintf(stderr,
                 "ran %zu jobs on %zu thread(s): %.2fs wall, %.2fs cpu "
                 "(speedup %.2fx)%s\n",
                 total - stats_.restored, stats_.jobs_used,
                 stats_.wall_seconds, stats_.job_seconds, stats_.speedup(),
                 stats_.jobs_failed > 0 ? " [FAILURES]" : "");
  }
  return results;
}

}  // namespace laps
