#include "exp/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace laps {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::uint64_t ExperimentPlan::derive_seed(std::uint64_t plan_seed,
                                          std::uint64_t stream) {
  // Same construction as Rng::stream: SplitMix64 over decorrelated inputs.
  return mix64(mix64(plan_seed) ^ mix64(stream + 0x9E3779B97F4A7C15ULL));
}

std::vector<std::uint64_t> ExperimentPlan::replicate_seeds(
    std::size_t n) const {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    seeds.push_back(derive_seed(plan_seed_, i));
  }
  return seeds;
}

void ExperimentPlan::add(std::string scenario, std::string scheduler,
                         std::uint64_t seed, std::function<SimReport()> run) {
  if (!run) throw std::invalid_argument("ExperimentPlan::add: null job");
  jobs_.push_back(ExperimentJob{std::move(scenario), std::move(scheduler),
                                seed, std::move(run)});
}

void ExperimentPlan::add_grid(const std::vector<std::string>& scenarios,
                              const std::vector<SchedulerSpec>& schedulers,
                              const std::vector<std::uint64_t>& seeds,
                              ScenarioBuilder build, JobRunner runner) {
  if (!build) throw std::invalid_argument("add_grid: null scenario builder");
  for (const SchedulerSpec& spec : schedulers) {
    if (!spec.make) {
      throw std::invalid_argument("add_grid: scheduler '" + spec.name +
                                  "' has no factory");
    }
  }
  for (const std::string& scenario : scenarios) {
    for (const SchedulerSpec& spec : schedulers) {
      for (std::uint64_t seed : seeds) {
        // Capture by value: the closure must be self-contained so it can run
        // on any worker thread after this frame is gone.
        auto make = spec.make;
        add(scenario, spec.name, seed,
            [scenario, make, seed, build, runner]() -> SimReport {
              const ScenarioConfig cfg = build(scenario, seed);
              auto scheduler = make();
              if (runner) return runner(cfg, *scheduler);
              return run_scenario(cfg, *scheduler);
            });
      }
    }
  }
}

ParallelRunner::ParallelRunner(std::size_t jobs)
    : jobs_(ThreadPool::resolve(jobs)) {}

std::vector<JobResult> ParallelRunner::run(const ExperimentPlan& plan) {
  stats_ = RunnerStats{};
  stats_.jobs_used = plan.size() <= 1 ? std::min<std::size_t>(1, plan.size())
                                      : std::min(jobs_, plan.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> done{0};
  const std::size_t total = plan.size();

  // Grid telemetry: ids are registered up front (registration must precede
  // the workers' first local_shard() call, which freezes the set); each
  // worker then publishes into its own shard with no cross-thread traffic.
  telemetry::CounterId c_jobs, c_offered, c_delivered, c_dropped, c_busy_us;
  if (metrics_ != nullptr) {
    c_jobs = metrics_->counter("exp.jobs_completed");
    c_offered = metrics_->counter("exp.packets_offered");
    c_delivered = metrics_->counter("exp.packets_delivered");
    c_dropped = metrics_->counter("exp.packets_dropped");
    c_busy_us = metrics_->counter("exp.worker_busy_us");
  }

  std::vector<JobResult> results = parallel_index_map(
      jobs_, total, [&](std::size_t i) -> JobResult {
        const ExperimentJob& job = plan.jobs()[i];
        JobResult out;
        out.index = i;
        out.scenario = job.scenario;
        out.scheduler = job.scheduler;
        out.seed = job.seed;
        const auto j0 = std::chrono::steady_clock::now();
        out.report = job.run();
        out.wall_seconds = seconds_since(j0);
        // Normalize labels so artifacts key on the plan's names even when a
        // scheduler self-reports differently (e.g. parameterized variants).
        out.report.scenario = job.scenario;
        out.report.scheduler = job.scheduler;
        if (metrics_ != nullptr) {
          telemetry::MetricsRegistry::Shard& shard = metrics_->local_shard();
          shard.add(c_jobs);
          shard.add(c_offered, out.report.offered);
          shard.add(c_delivered, out.report.delivered);
          shard.add(c_dropped, out.report.dropped);
          shard.add(c_busy_us,
                    static_cast<std::uint64_t>(out.wall_seconds * 1e6));
        }
        const std::size_t n = done.fetch_add(1, std::memory_order_relaxed) + 1;
        std::fprintf(stderr, "[%zu/%zu] %s/%s seed=%llu (%.2fs)\n", n, total,
                     job.scenario.c_str(), job.scheduler.c_str(),
                     static_cast<unsigned long long>(job.seed),
                     out.wall_seconds);
        return out;
      });

  stats_.wall_seconds = seconds_since(t0);
  for (const JobResult& r : results) stats_.job_seconds += r.wall_seconds;
  if (total > 1) {
    std::fprintf(stderr,
                 "ran %zu jobs on %zu thread(s): %.2fs wall, %.2fs cpu "
                 "(speedup %.2fx)\n",
                 total, stats_.jobs_used, stats_.wall_seconds,
                 stats_.job_seconds, stats_.speedup());
  }
  return results;
}

}  // namespace laps
