#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace laps::telemetry {
class MetricsRegistry;
}

namespace laps {

/// A named scheduler recipe. The factory is called once per job, on the
/// worker thread, so each job owns a fresh scheduler instance — schedulers
/// are stateful and must never be shared across concurrent runs.
struct SchedulerSpec {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> make;
};

/// One independent unit of work: build config + scheduler, run, report.
struct ExperimentJob {
  std::string scenario;
  std::string scheduler;
  std::uint64_t seed = 0;
  std::function<SimReport()> run;
};

/// Result of one job, in plan order.
struct JobResult {
  std::size_t index = 0;
  std::string scenario;
  std::string scheduler;
  std::uint64_t seed = 0;
  SimReport report;
  double wall_seconds = 0.0;  ///< per-job wall clock (not in JSON artifacts)
};

/// An ordered list of independent simulation jobs.
///
/// The plan, not the runner, owns randomness: every job's seed is derived
/// deterministically from `plan_seed` and the job's position in the grid, so
/// results depend only on the plan — never on thread count or completion
/// order.
class ExperimentPlan {
 public:
  explicit ExperimentPlan(std::uint64_t plan_seed = 2013)
      : plan_seed_(plan_seed) {}

  std::uint64_t plan_seed() const { return plan_seed_; }

  /// Independent seed for sub-stream `stream` of `plan_seed`.
  static std::uint64_t derive_seed(std::uint64_t plan_seed,
                                   std::uint64_t stream);

  /// `n` replication seeds: derive_seed(plan_seed, 0..n-1).
  std::vector<std::uint64_t> replicate_seeds(std::size_t n) const;

  /// Adds one job. `run` must be self-contained (capture by value) and
  /// callable from any thread.
  void add(std::string scenario, std::string scheduler, std::uint64_t seed,
           std::function<SimReport()> run);

  /// Builds `scenario_id` into a ScenarioConfig for one (seed) replication.
  using ScenarioBuilder =
      std::function<ScenarioConfig(const std::string& scenario_id,
                                   std::uint64_t seed)>;

  /// Executes one built job. The default (empty) runner is run_scenario;
  /// benches that expose observability flags pass a wrapper around
  /// run_observed instead. Must be callable from any worker thread.
  using JobRunner =
      std::function<SimReport(const ScenarioConfig&, Scheduler&)>;

  /// Expands the full scenario x scheduler x seed grid, scenario-major (the
  /// traversal order of the serial bench loops, so tables read the same).
  /// Each job builds its own config and scheduler at run time.
  void add_grid(const std::vector<std::string>& scenarios,
                const std::vector<SchedulerSpec>& schedulers,
                const std::vector<std::uint64_t>& seeds,
                ScenarioBuilder build, JobRunner runner = {});

  const std::vector<ExperimentJob>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

 private:
  std::uint64_t plan_seed_;
  std::vector<ExperimentJob> jobs_;
};

/// Aggregate timing of one runner invocation (stderr-only; never part of
/// JSON artifacts, which must be byte-identical across --jobs values).
struct RunnerStats {
  double wall_seconds = 0.0;  ///< end-to-end wall clock of run()
  double job_seconds = 0.0;   ///< sum of per-job wall clocks
  std::size_t jobs_used = 0;  ///< worker threads actually used
  double speedup() const {
    return wall_seconds > 0 ? job_seconds / wall_seconds : 0.0;
  }
};

/// Executes a plan on a work-stealing thread pool and returns results in
/// plan order.
///
/// Determinism contract: for a fixed plan, the returned reports are
/// identical whatever `jobs` is — each job is a self-contained closure with
/// its own config, scheduler, and derived seed; nothing about scheduling
/// order can leak into a SimReport. Only RunnerStats and per-job wall
/// clocks vary across thread counts.
class ParallelRunner {
 public:
  /// `jobs` = worker threads; 0 = hardware concurrency; 1 = run inline.
  explicit ParallelRunner(std::size_t jobs = 1);

  /// Runs every job; reports progress on stderr as jobs finish.
  std::vector<JobResult> run(const ExperimentPlan& plan);

  /// Optional live telemetry: when set, every worker publishes exp.* grid
  /// counters (jobs completed, packets offered/delivered/dropped, busy
  /// micros) into its own registry shard as jobs finish, so a concurrent
  /// snapshot_counters() watches grid throughput and worker utilization
  /// live. The registry must outlive run(); null (the default) costs
  /// nothing.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  const RunnerStats& stats() const { return stats_; }
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t jobs_;
  RunnerStats stats_;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace laps
