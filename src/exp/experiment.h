#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.h"

namespace laps::telemetry {
class MetricsRegistry;
}

namespace laps {

/// A named scheduler recipe. The factory is called once per job, on the
/// worker thread, so each job owns a fresh scheduler instance — schedulers
/// are stateful and must never be shared across concurrent runs.
struct SchedulerSpec {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> make;
};

/// One independent unit of work: build config + scheduler, run, report.
struct ExperimentJob {
  std::string scenario;
  std::string scheduler;
  std::uint64_t seed = 0;
  std::function<SimReport()> run;
};

/// Why a grid cell has no (trustworthy) report. A failed cell is contained:
/// the rest of the grid still runs, the artifact still gets written, and
/// the harness exit code turns nonzero with the failed cells listed.
struct JobError {
  /// "exception" (the job threw), "timeout" (watchdog fired on every
  /// attempt), or "interrupted" (a stop signal arrived before the cell ran).
  std::string kind;
  std::string message;
  std::size_t attempts = 0;  ///< attempts actually made (0 for interrupted)
};

/// Result of one job, in plan order.
struct JobResult {
  std::size_t index = 0;
  std::string scenario;
  std::string scheduler;
  std::uint64_t seed = 0;
  SimReport report;
  double wall_seconds = 0.0;  ///< per-job wall clock (not in JSON artifacts)
  /// Engaged when the cell failed permanently; `report` is then
  /// default-constructed and must not feed tables.
  std::optional<JobError> error;
  bool from_journal = false;  ///< restored from a --resume journal, not run

  bool ok() const { return !error.has_value(); }
};

/// Resilience policy for a runner: crash containment is always on; the
/// watchdog, retries, journal, signal handling, and chaos injection are
/// opt-in. Defaults reproduce the historical runner exactly (minus
/// exception propagation — a throwing job now fails its cell instead of
/// aborting the grid).
struct RunnerPolicy {
  /// Per-attempt wall-clock budget; 0 disables the watchdog. With a budget,
  /// each attempt runs on its own thread so a runaway simulation can be
  /// abandoned; see exp/watchdog.h.
  TimeNs job_timeout = 0;
  /// Extra attempts for transient failures (TransientError or a watchdog
  /// timeout). Deterministic failures are never retried.
  std::size_t job_retries = 0;
  /// First retry delay; doubles per retry, capped at 5 s. Interruptible by
  /// a stop signal.
  TimeNs retry_backoff = 10 * kMillisecond;
  /// Completion journal path; empty = no journal. See exp/journal.h.
  std::string journal_path;
  /// With a journal: replay already-journaled cells instead of rerunning
  /// them. The replayed reports are bit-identical to a fresh run's.
  bool resume = false;
  /// Folded into every job fingerprint; the harness hashes in the options
  /// that change job output (event-queue override, fault spec) so a journal
  /// from a differently-configured run never resumes silently.
  std::uint64_t journal_salt = 0;
  /// Install SIGINT/SIGTERM handlers for the duration of run(): on signal,
  /// workers finish (journal) their current cell and stop claiming new
  /// ones. The harness enables this whenever a journal is configured.
  bool handle_signals = false;

  /// Seeded fault injection against the *runner* (not the simulation):
  /// before an attempt runs its job, a per-(seed, fingerprint, attempt)
  /// draw may throw TransientError or hang until the watchdog fires. This
  /// is how the resilience machinery itself is soaked in CI.
  struct Chaos {
    bool enabled = false;
    std::uint64_t seed = 0;
    double fail_prob = 0.0;  ///< P(attempt throws TransientError)
    double hang_prob = 0.0;  ///< P(attempt hangs); requires job_timeout > 0
  } chaos;
};

/// An ordered list of independent simulation jobs.
///
/// The plan, not the runner, owns randomness: every job's seed is derived
/// deterministically from `plan_seed` and the job's position in the grid, so
/// results depend only on the plan — never on thread count or completion
/// order.
class ExperimentPlan {
 public:
  explicit ExperimentPlan(std::uint64_t plan_seed = 2013)
      : plan_seed_(plan_seed) {}

  std::uint64_t plan_seed() const { return plan_seed_; }

  /// Independent seed for sub-stream `stream` of `plan_seed`.
  static std::uint64_t derive_seed(std::uint64_t plan_seed,
                                   std::uint64_t stream);

  /// `n` replication seeds: derive_seed(plan_seed, 0..n-1).
  std::vector<std::uint64_t> replicate_seeds(std::size_t n) const;

  /// Adds one job. `run` must be self-contained (capture by value) and
  /// callable from any thread.
  void add(std::string scenario, std::string scheduler, std::uint64_t seed,
           std::function<SimReport()> run);

  /// Builds `scenario_id` into a ScenarioConfig for one (seed) replication.
  using ScenarioBuilder =
      std::function<ScenarioConfig(const std::string& scenario_id,
                                   std::uint64_t seed)>;

  /// Executes one built job. The default (empty) runner is run_scenario;
  /// benches that expose observability flags pass a wrapper around
  /// run_observed instead. Must be callable from any worker thread.
  using JobRunner =
      std::function<SimReport(const ScenarioConfig&, Scheduler&)>;

  /// Expands the full scenario x scheduler x seed grid, scenario-major (the
  /// traversal order of the serial bench loops, so tables read the same).
  /// Each job builds its own config and scheduler at run time.
  void add_grid(const std::vector<std::string>& scenarios,
                const std::vector<SchedulerSpec>& schedulers,
                const std::vector<std::uint64_t>& seeds,
                ScenarioBuilder build, JobRunner runner = {});

  const std::vector<ExperimentJob>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

 private:
  std::uint64_t plan_seed_;
  std::vector<ExperimentJob> jobs_;
};

/// Aggregate timing of one runner invocation (stderr-only; never part of
/// JSON artifacts, which must be byte-identical across --jobs values).
struct RunnerStats {
  double wall_seconds = 0.0;  ///< end-to-end wall clock of run()
  double job_seconds = 0.0;   ///< sum of per-job wall clocks
  std::size_t jobs_used = 0;  ///< worker threads actually used
  std::size_t jobs_failed = 0;     ///< cells with a permanent JobError
  std::size_t jobs_timed_out = 0;  ///< attempts the watchdog cancelled
  std::size_t retries = 0;         ///< extra attempts after transient failures
  std::size_t restored = 0;        ///< cells replayed from the journal
  std::size_t interrupted = 0;     ///< cells never run (stop signal)
  double speedup() const {
    return wall_seconds > 0 ? job_seconds / wall_seconds : 0.0;
  }
};

/// Executes a plan on a work-stealing thread pool and returns results in
/// plan order.
///
/// Determinism contract: for a fixed plan, the returned reports are
/// identical whatever `jobs` is — each job is a self-contained closure with
/// its own config, scheduler, and derived seed; nothing about scheduling
/// order can leak into a SimReport. Only RunnerStats and per-job wall
/// clocks vary across thread counts.
class ParallelRunner {
 public:
  /// `jobs` = worker threads; 0 = hardware concurrency; 1 = run inline.
  /// `policy` adds the resilience layer (watchdog, retries, journal,
  /// signals, chaos); the default policy matches the historical runner.
  explicit ParallelRunner(std::size_t jobs = 1, RunnerPolicy policy = {});

  /// Runs every job; reports progress on stderr as jobs finish.
  ///
  /// Containment contract: a throwing job never propagates out of run().
  /// The exception is captured as the cell's JobError, every other cell
  /// still runs, and callers decide the exit code from the results (see
  /// harness grid_exit_code). Only plan/setup errors (bad policy, corrupt
  /// journal) throw.
  std::vector<JobResult> run(const ExperimentPlan& plan);

  /// Nonzero when a handled SIGINT/SIGTERM stopped the previous run()
  /// early: the signal number. The harness maps it to exit code 128+sig.
  int stop_signal() const { return stop_signal_; }

  const RunnerPolicy& policy() const { return policy_; }

  /// Optional live telemetry: when set, every worker publishes exp.* grid
  /// counters (jobs completed, packets offered/delivered/dropped, busy
  /// micros) into its own registry shard as jobs finish, so a concurrent
  /// snapshot_counters() watches grid throughput and worker utilization
  /// live. The registry must outlive run(); null (the default) costs
  /// nothing.
  void set_metrics(telemetry::MetricsRegistry* metrics) { metrics_ = metrics; }

  const RunnerStats& stats() const { return stats_; }
  std::size_t jobs() const { return jobs_; }

 private:
  std::size_t jobs_;
  RunnerPolicy policy_;
  RunnerStats stats_;
  int stop_signal_ = 0;
  telemetry::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace laps
