#include "exp/harness.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "sim/probes.h"
#include "sim/report_json.h"
#include "util/thread_pool.h"

namespace laps {

HarnessOptions parse_harness_flags(Flags& flags) {
  HarnessOptions opts;
  const std::int64_t jobs = flags.get_int("jobs", 1);
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
  opts.jobs = ThreadPool::resolve(static_cast<std::size_t>(jobs));
  opts.json_path = flags.get_string("json", "");
  opts.timeseries_path = flags.get_string("timeseries", "");
  opts.timeseries_window_us =
      flags.get_double("timeseries-window-us", opts.timeseries_window_us);
  if (opts.timeseries_window_us <= 0) {
    throw std::invalid_argument("--timeseries-window-us must be > 0");
  }
  opts.trace_path = flags.get_string("trace-out", "");
  return opts;
}

namespace {

/// "out.json" + (T1, LAPS, 42) -> "out.T1.LAPS.42.json"; label characters
/// that would break filenames are replaced with '_'.
std::string per_run_path(const std::string& stem, const std::string& scenario,
                         const std::string& scheduler, std::uint64_t seed) {
  std::string labels = scenario + "." + scheduler + "." + std::to_string(seed);
  for (char& c : labels) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  const std::size_t slash = stem.find_last_of('/');
  const std::size_t dot = stem.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return stem + "." + labels;
  }
  return stem.substr(0, dot) + "." + labels + stem.substr(dot);
}

}  // namespace

SimReport run_observed(const ScenarioConfig& config, Scheduler& scheduler,
                       const HarnessOptions& opts) {
  if (opts.timeseries_path.empty() && opts.trace_path.empty()) {
    return run_scenario(config, scheduler);
  }
  const TimeNs window = from_us(opts.timeseries_window_us);
  std::optional<TimeSeriesProbe> series;
  std::optional<ChromeTraceProbe> trace;
  ProbeSet extra;
  TimeNs epoch_ns = 0;
  if (!opts.timeseries_path.empty()) {
    series.emplace(window);
    extra.add(&*series);
    epoch_ns = window;  // queue-depth windows need periodic CoreView epochs
  }
  if (!opts.trace_path.empty()) {
    trace.emplace();
    extra.add(&*trace);
  }
  // Probes attach before the run so the scheduler name reflects the instance
  // actually used (grid jobs construct schedulers per job).
  SimReport report = run_scenario(config, scheduler, extra, epoch_ns);
  if (series) {
    const std::string path = per_run_path(opts.timeseries_path, config.name,
                                          scheduler.name(), config.seed);
    series->write(path);
    std::fprintf(stderr, "wrote time series: %s\n", path.c_str());
  }
  if (trace) {
    const std::string path = per_run_path(opts.trace_path, config.name,
                                          scheduler.name(), config.seed);
    trace->write(path);
    std::fprintf(stderr, "wrote chrome trace: %s\n", path.c_str());
  }
  return report;
}

ExperimentPlan::JobRunner observed_runner(const HarnessOptions& opts) {
  if (opts.timeseries_path.empty() && opts.trace_path.empty()) return {};
  return [opts](const ScenarioConfig& config, Scheduler& scheduler) {
    return run_observed(config, scheduler, opts);
  };
}

int guarded_main(int argc, char** argv, int (*body)(Flags&)) {
  const char* program = argc > 0 ? argv[0] : "laps";
  try {
    Flags flags(argc, argv);
    return body(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
    return 1;
  }
}

std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", tool);
  w.key("reports");
  w.begin_array();
  for (const JobResult& r : results) {
    w.begin_object();
    w.field("scenario", r.scenario);
    w.field("scheduler", r.scheduler);
    w.field("seed", r.seed);
    w.key("report");
    write_report_json(w, r.report);
    w.end_object();
  }
  w.end_array();
  w.key("tables");
  w.begin_array();
  for (const ArtifactTable& t : tables) {
    if (t.table == nullptr) {
      throw std::invalid_argument("artifact_json: null table '" + t.title +
                                  "'");
    }
    w.begin_object();
    w.field("title", t.title);
    w.key("headers");
    w.begin_array();
    for (const std::string& h : t.table->headers()) w.value(h);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : t.table->data()) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables) {
  if (path.empty()) return;
  const std::string doc = artifact_json(tool, results, tables);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open JSON artifact path: " + path);
  }
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing JSON artifact: " + path);
  }
  std::fprintf(stderr, "wrote JSON artifact: %s (%zu bytes)\n", path.c_str(),
               doc.size());
}

}  // namespace laps
