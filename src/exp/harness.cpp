#include "exp/harness.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <optional>
#include <stdexcept>

#include "exp/dispatcher_registry.h"
#include "exp/scheduler_registry.h"
#include "sim/afd_accuracy.h"
#include "sim/fault.h"
#include "sim/flight_recorder.h"
#include "sim/flow_audit.h"
#include "sim/probes.h"
#include "sim/report_json.h"
#include "telemetry/export.h"
#include "telemetry/probe.h"
#include "util/crc.h"
#include "util/duration.h"
#include "util/fileio.h"
#include "util/thread_pool.h"

namespace laps {

HarnessOptions parse_harness_flags(Flags& flags) {
  HarnessOptions opts;
  const std::int64_t jobs = flags.get_int("jobs", 1);
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
  opts.jobs = ThreadPool::resolve(static_cast<std::size_t>(jobs));
  opts.json_path = flags.get_string("json", "");
  opts.timeseries_path = flags.get_string("timeseries", "");
  opts.timeseries_window_us =
      flags.get_double("timeseries-window-us", opts.timeseries_window_us);
  if (opts.timeseries_window_us <= 0) {
    throw std::invalid_argument("--timeseries-window-us must be > 0");
  }
  opts.trace_path = flags.get_string("trace-out", "");

  opts.flow_audit_path = flags.get_string("flow-audit", "");
  const std::int64_t audit_top = flags.get_int("flow-audit-top", 16);
  if (audit_top < 1) throw std::invalid_argument("--flow-audit-top must be >= 1");
  opts.flow_audit_top = static_cast<std::size_t>(audit_top);
  const std::int64_t audit_rows = flags.get_int("flow-audit-rows", 256);
  if (audit_rows < 0) {
    throw std::invalid_argument("--flow-audit-rows must be >= 0");
  }
  opts.flow_audit_rows = static_cast<std::size_t>(audit_rows);

  opts.afd_accuracy_path = flags.get_string("afd-accuracy", "");
  const std::int64_t acc_k = flags.get_int("afd-accuracy-k", 16);
  if (acc_k < 1) throw std::invalid_argument("--afd-accuracy-k must be >= 1");
  opts.afd_accuracy_k = static_cast<std::size_t>(acc_k);
  opts.afd_accuracy_window_us =
      flags.get_double("afd-accuracy-window-us", opts.afd_accuracy_window_us);
  if (opts.afd_accuracy_window_us <= 0) {
    throw std::invalid_argument("--afd-accuracy-window-us must be > 0");
  }

  opts.flight_path = flags.get_string("flight-recorder", "");
  const std::int64_t flight_cap = flags.get_int("flight-capacity", 4096);
  if (flight_cap < 1) {
    throw std::invalid_argument("--flight-capacity must be >= 1");
  }
  opts.flight_capacity = static_cast<std::size_t>(flight_cap);
  const std::int64_t storm = flags.get_int("flight-drop-storm", 64);
  if (storm < 0) throw std::invalid_argument("--flight-drop-storm must be >= 0");
  opts.flight_drop_storm = static_cast<std::uint64_t>(storm);
  const std::int64_t spike = flags.get_int("flight-ooo-spike", 256);
  if (spike < 0) throw std::invalid_argument("--flight-ooo-spike must be >= 0");
  opts.flight_ooo_spike = static_cast<std::uint64_t>(spike);
  opts.flight_window_us =
      flags.get_double("flight-window-us", opts.flight_window_us);
  if (opts.flight_window_us <= 0) {
    throw std::invalid_argument("--flight-window-us must be > 0");
  }
  opts.flight_dump = flags.get_bool("flight-dump", false);
  if (opts.flight_dump && opts.flight_path.empty()) {
    throw std::invalid_argument(
        "--flight-dump requires --flight-recorder=PATH");
  }

  // Bare --telemetry keeps the default interval; --telemetry=250us etc. go
  // through the shared duration grammar (util::parse_duration), so the
  // registry's "idle_th=5us" literals work here unchanged. Either output
  // flag implies --telemetry.
  if (flags.has("telemetry")) {
    opts.telemetry = true;
    const std::string interval = flags.get_string("telemetry", "");
    if (!interval.empty()) {
      opts.telemetry_interval = util::parse_duration("--telemetry", interval);
      if (opts.telemetry_interval <= 0) {
        throw std::invalid_argument("--telemetry interval must be > 0");
      }
    }
  }
  opts.telemetry_out = flags.get_string("telemetry-out", "");
  opts.telemetry_prom = flags.get_string("telemetry-prom", "");
  if (!opts.telemetry_out.empty() || !opts.telemetry_prom.empty()) {
    opts.telemetry = true;
  }

  opts.faults_spec = flags.get_string("faults", "");
  if (!opts.faults_spec.empty()) {
    opts.faults =
        std::make_shared<const FaultPlan>(parse_fault_plan(opts.faults_spec));
  }
  opts.fault_timeline_path = flags.get_string("fault-timeline", "");
  if (!opts.fault_timeline_path.empty() && opts.faults == nullptr) {
    throw std::invalid_argument("--fault-timeline requires --faults=SPEC");
  }
  const std::string queue_spec = flags.get_string("event-queue", "");
  if (!queue_spec.empty()) {
    opts.event_queue = parse_event_queue_kind(queue_spec);
  }
  opts.scheduler_list = flags.get_string("scheduler", "");
  if (!opts.scheduler_list.empty()) {
    // Parsed here so a typo fails before any grid starts running; the
    // registry's errors name the offending token and list valid choices.
    opts.schedulers = parse_scheduler_list(opts.scheduler_list);
  }

  const std::int64_t shards = flags.get_int("shards", 1);
  if (shards < 1) throw std::invalid_argument("--shards must be >= 1");
  opts.shards = static_cast<std::size_t>(shards);
  const std::string dispatch = flags.get_string("dispatch", "");
  if (!dispatch.empty()) {
    // Eager validation, same fail-fast contract as --scheduler; kept raw
    // (cluster binaries split the semicolon list themselves).
    parse_dispatcher_list(dispatch);
    opts.dispatch_spec = dispatch;
  }
  const std::string sync = flags.get_string("cluster-sync", "");
  if (!sync.empty()) {
    opts.cluster_sync = util::parse_duration("--cluster-sync", sync);
    if (opts.cluster_sync <= 0) {
      throw std::invalid_argument("--cluster-sync must be > 0");
    }
  }

  const std::string timeout = flags.get_string("job-timeout", "");
  if (!timeout.empty()) {
    opts.job_timeout = util::parse_duration("--job-timeout", timeout);
    if (opts.job_timeout <= 0) {
      throw std::invalid_argument("--job-timeout must be > 0");
    }
  }
  const std::int64_t retries = flags.get_int("job-retries", 0);
  if (retries < 0) throw std::invalid_argument("--job-retries must be >= 0");
  opts.job_retries = static_cast<std::size_t>(retries);
  opts.journal_path = flags.get_string("journal", "");
  opts.resume = flags.get_bool("resume", false);
  if (opts.resume && opts.journal_path.empty()) {
    throw std::invalid_argument("--resume requires --journal=PATH");
  }
  if (flags.has("runner-chaos")) {
    opts.runner_chaos = true;
    const std::string seed = flags.get_string("runner-chaos", "");
    if (!seed.empty()) {
      opts.runner_chaos_seed = static_cast<std::uint64_t>(
          flags.get_int("runner-chaos", 0));
    }
  }
  opts.runner_chaos_fail =
      flags.get_double("runner-chaos-fail", opts.runner_chaos_fail);
  opts.runner_chaos_hang =
      flags.get_double("runner-chaos-hang", opts.runner_chaos_hang);
  if (opts.runner_chaos_fail < 0 || opts.runner_chaos_fail > 1 ||
      opts.runner_chaos_hang < 0 || opts.runner_chaos_hang > 1) {
    throw std::invalid_argument(
        "--runner-chaos-fail/--runner-chaos-hang must be in [0, 1]");
  }
  if (opts.runner_chaos && opts.runner_chaos_hang > 0 &&
      opts.job_timeout <= 0) {
    throw std::invalid_argument(
        "--runner-chaos-hang requires --job-timeout (a hung attempt would "
        "never be cancelled)");
  }
  return opts;
}

ParallelRunner make_runner(const HarnessOptions& opts) {
  RunnerPolicy policy;
  policy.job_timeout = opts.job_timeout;
  policy.job_retries = opts.job_retries;
  policy.journal_path = opts.journal_path;
  policy.resume = opts.resume;
  // Salt the journal with every harness option that changes what a job
  // computes: resuming under a different event queue or fault plan must
  // invalidate the journal, not silently mix results.
  auto fold = [](std::uint64_t h, const std::string& s) {
    for (const char c : s) {
      h = mix64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    return mix64(h ^ s.size());
  };
  std::uint64_t salt = fold(0x1A95'0001, opts.faults_spec);
  salt = fold(salt, opts.event_queue.has_value()
                        ? std::to_string(static_cast<int>(*opts.event_queue))
                        : std::string());
  salt = fold(salt, std::to_string(opts.shards));
  salt = fold(salt, opts.dispatch_spec);
  salt = fold(salt, std::to_string(opts.cluster_sync));
  policy.journal_salt = salt;
  policy.handle_signals = !opts.journal_path.empty();
  if (opts.runner_chaos) {
    policy.chaos.enabled = true;
    policy.chaos.seed = opts.runner_chaos_seed;
    policy.chaos.fail_prob = opts.runner_chaos_fail;
    policy.chaos.hang_prob = opts.runner_chaos_hang;
  }
  return ParallelRunner(opts.jobs, std::move(policy));
}

int grid_abort_code(const ParallelRunner& runner) {
  return runner.stop_signal() != 0 ? 128 + runner.stop_signal() : 0;
}

int grid_exit_code(const ParallelRunner& runner,
                   const std::vector<JobResult>& results) {
  std::size_t failed = 0;
  for (const JobResult& r : results) {
    if (r.ok()) continue;
    ++failed;
    std::fprintf(stderr,
                 "FAILED cell %zu: %s/%s seed=%llu: %s: %s (%zu attempt%s)\n",
                 r.index, r.scenario.c_str(), r.scheduler.c_str(),
                 static_cast<unsigned long long>(r.seed), r.error->kind.c_str(),
                 r.error->message.c_str(), r.error->attempts,
                 r.error->attempts == 1 ? "" : "s");
  }
  if (failed > 0) {
    std::fprintf(stderr, "%zu of %zu grid cell(s) failed\n", failed,
                 results.size());
    return 1;
  }
  (void)runner;
  return 0;
}

std::vector<SchedulerSpec> schedulers_or(const HarnessOptions& opts,
                                         std::vector<SchedulerSpec> defaults) {
  return opts.schedulers.empty() ? std::move(defaults) : opts.schedulers;
}

namespace {

/// "out.json" + (T1, LAPS, 42) -> "out.T1.LAPS.42.json"; label characters
/// that would break filenames are replaced with '_'.
std::string per_run_path(const std::string& stem, const std::string& scenario,
                         const std::string& scheduler, std::uint64_t seed) {
  std::string labels = scenario + "." + scheduler + "." + std::to_string(seed);
  for (char& c : labels) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  const std::size_t slash = stem.find_last_of('/');
  const std::size_t dot = stem.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return stem + "." + labels;
  }
  return stem.substr(0, dot) + "." + labels + stem.substr(dot);
}

}  // namespace

namespace {

bool any_probe_configured(const HarnessOptions& opts) {
  return !opts.timeseries_path.empty() || !opts.trace_path.empty() ||
         !opts.flow_audit_path.empty() || !opts.afd_accuracy_path.empty() ||
         !opts.flight_path.empty() || opts.telemetry;
}

}  // namespace

SimReport run_observed(const ScenarioConfig& config, Scheduler& scheduler,
                       const HarnessOptions& opts) {
  // A --faults plan on the command line applies to every scenario in the
  // grid that does not already carry its own plan; --event-queue overrides
  // every scenario's queue selection.
  ScenarioConfig overridden_config;
  const ScenarioConfig* effective = &config;
  const bool apply_faults = opts.faults != nullptr && config.faults == nullptr;
  const bool apply_queue =
      opts.event_queue.has_value() && *opts.event_queue != config.event_queue;
  if (apply_faults || apply_queue) {
    overridden_config = config;
    if (apply_faults) overridden_config.faults = opts.faults;
    if (apply_queue) overridden_config.event_queue = *opts.event_queue;
    effective = &overridden_config;
  }
  if (!any_probe_configured(opts) && opts.fault_timeline_path.empty()) {
    return run_scenario(*effective, scheduler);
  }
  std::optional<TimeSeriesProbe> series;
  std::optional<ChromeTraceProbe> trace;
  std::optional<FlowAuditProbe> audit;
  std::optional<AfdAccuracyProbe> accuracy;
  std::optional<FlightRecorderProbe> flight;
  std::optional<FaultProbe> fault_probe;
  std::optional<telemetry::TelemetryProbe> telem;
  ProbeSet extra;
  TimeNs epoch_ns = 0;
  if (!opts.timeseries_path.empty()) {
    series.emplace(from_us(opts.timeseries_window_us));
    extra.add(&*series);
    epoch_ns = series->window_ns();  // queue-depth sampling needs epochs
  }
  if (!opts.trace_path.empty()) {
    trace.emplace();
    extra.add(&*trace);
  }
  if (!opts.flow_audit_path.empty()) {
    FlowAuditProbe::Options audit_opts;
    audit_opts.top_k = opts.flow_audit_top;
    audit_opts.max_rows = opts.flow_audit_rows;
    audit.emplace(audit_opts);
    extra.add(&*audit);
  }
  if (!opts.afd_accuracy_path.empty()) {
    accuracy.emplace(scheduler, opts.afd_accuracy_k);
    extra.add(&*accuracy);
    // The engine has a single epoch cadence; when a time series is also
    // requested its window drives the epochs and the accuracy probe
    // samples at that rate instead of its own flag.
    if (epoch_ns == 0) epoch_ns = from_us(opts.afd_accuracy_window_us);
  }
  if (!opts.flight_path.empty()) {
    FlightRecorderConfig flight_cfg;
    flight_cfg.capacity = opts.flight_capacity;
    flight_cfg.drop_storm = opts.flight_drop_storm;
    flight_cfg.ooo_spike = opts.flight_ooo_spike;
    flight_cfg.window_ns = from_us(opts.flight_window_us);
    flight_cfg.always_dump = opts.flight_dump;
    flight.emplace(flight_cfg);
    extra.add(&*flight);
  }
  if (!opts.fault_timeline_path.empty() && effective->faults != nullptr) {
    fault_probe.emplace();
    extra.add(&*fault_probe);
  }
  if (opts.telemetry) {
    telemetry::TelemetryConfig telem_cfg;
    telem_cfg.interval = opts.telemetry_interval;
    // When a trace is also requested, merge counter tracks (queue depth,
    // occupancies, drop/migration totals) into its timeline.
    telem.emplace(telem_cfg, &scheduler, trace ? &*trace : nullptr);
    extra.add(&*telem);
    // The engine has one epoch cadence; an earlier probe's window wins and
    // snapshots then ride that cadence (the probe snapshots on the first
    // epoch sample at/after each interval boundary).
    if (epoch_ns == 0) epoch_ns = opts.telemetry_interval;
  }
  // Probes attach before the run so the scheduler name reflects the instance
  // actually used (grid jobs construct schedulers per job).
  SimReport report = run_scenario(*effective, scheduler, extra, epoch_ns);
  if (series) {
    const std::string path = per_run_path(opts.timeseries_path, config.name,
                                          scheduler.name(), config.seed);
    series->write(path);
    std::fprintf(stderr, "wrote time series: %s\n", path.c_str());
  }
  if (trace) {
    const std::string path = per_run_path(opts.trace_path, config.name,
                                          scheduler.name(), config.seed);
    trace->write(path);
    std::fprintf(stderr, "wrote chrome trace: %s\n", path.c_str());
  }
  if (audit) {
    const std::string path = per_run_path(opts.flow_audit_path, config.name,
                                          scheduler.name(), config.seed);
    audit->write(path);
    std::fprintf(stderr, "wrote flow audit: %s (%zu flows, %zu rows)\n",
                 path.c_str(), audit->table().size(),
                 opts.flow_audit_rows == 0
                     ? audit->table().size()
                     : std::min(opts.flow_audit_rows, audit->table().size()));
  }
  if (accuracy) {
    const std::string path = per_run_path(opts.afd_accuracy_path, config.name,
                                          scheduler.name(), config.seed);
    accuracy->write(path);
    std::fprintf(stderr, "wrote AFD accuracy series: %s (%zu samples)\n",
                 path.c_str(), accuracy->samples().size());
  }
  if (flight && flight->should_dump()) {
    const std::string path = per_run_path(opts.flight_path, config.name,
                                          scheduler.name(), config.seed);
    flight->write(path);
    std::fprintf(stderr, "wrote flight recording: %s (%zu events%s%s)\n",
                 path.c_str(), flight->num_events(),
                 flight->triggered() ? ", trigger: " : "",
                 flight->triggered() ? flight->trigger_reason().c_str() : "");
  }
  if (fault_probe) {
    const std::string path =
        per_run_path(opts.fault_timeline_path, config.name, scheduler.name(),
                     config.seed);
    fault_probe->write(path);
    std::fprintf(stderr, "wrote fault timeline: %s (%zu events)\n",
                 path.c_str(), fault_probe->timeline().size());
  }
  if (telem) {
    if (!opts.telemetry_out.empty()) {
      const std::string path = per_run_path(opts.telemetry_out, config.name,
                                            scheduler.name(), config.seed);
      telemetry::write_telemetry_jsonl(path, *telem);
      std::fprintf(stderr, "wrote telemetry stream: %s (%llu snapshots)\n",
                   path.c_str(),
                   static_cast<unsigned long long>(
                       telem->final_snapshot().seq + 1));
    }
    if (!opts.telemetry_prom.empty()) {
      const std::string path = per_run_path(opts.telemetry_prom, config.name,
                                            scheduler.name(), config.seed);
      telemetry::write_telemetry_prometheus(path, *telem);
      std::fprintf(stderr, "wrote telemetry exposition: %s\n", path.c_str());
    }
  }
  return report;
}

ExperimentPlan::JobRunner observed_runner(const HarnessOptions& opts) {
  if (!any_probe_configured(opts) && opts.faults == nullptr &&
      !opts.event_queue.has_value()) {
    return {};
  }
  return [opts](const ScenarioConfig& config, Scheduler& scheduler) {
    return run_observed(config, scheduler, opts);
  };
}

int guarded_main(int argc, char** argv, int (*body)(Flags&)) {
  const char* program = argc > 0 ? argv[0] : "laps";
  try {
    Flags flags(argc, argv);
    return body(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
    return 1;
  }
}

std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", tool);
  w.key("reports");
  w.begin_array();
  for (const JobResult& r : results) {
    w.begin_object();
    w.field("scenario", r.scenario);
    w.field("scheduler", r.scheduler);
    w.field("seed", r.seed);
    // Failed cells carry their error instead of fake zeros masquerading as
    // results; the field is absent on success, so fault-free artifacts are
    // byte-identical to the pre-resilience format.
    if (!r.ok()) {
      w.key("error");
      w.begin_object();
      w.field("kind", r.error->kind);
      w.field("message", r.error->message);
      w.field("attempts", static_cast<std::uint64_t>(r.error->attempts));
      w.end_object();
    }
    w.key("report");
    write_report_json(w, r.report);
    w.end_object();
  }
  w.end_array();
  w.key("tables");
  w.begin_array();
  for (const ArtifactTable& t : tables) {
    if (t.table == nullptr) {
      throw std::invalid_argument("artifact_json: null table '" + t.title +
                                  "'");
    }
    w.begin_object();
    w.field("title", t.title);
    w.key("headers");
    w.begin_array();
    for (const std::string& h : t.table->headers()) w.value(h);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : t.table->data()) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables) {
  if (path.empty()) return;
  const std::string doc = artifact_json(tool, results, tables);
  util::write_file_atomic(path, doc, "JSON artifact");
  std::fprintf(stderr, "wrote JSON artifact: %s (%zu bytes)\n", path.c_str(),
               doc.size());
}

}  // namespace laps
