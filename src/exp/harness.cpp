#include "exp/harness.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "sim/report_json.h"
#include "util/thread_pool.h"

namespace laps {

HarnessOptions parse_harness_flags(Flags& flags) {
  HarnessOptions opts;
  const std::int64_t jobs = flags.get_int("jobs", 1);
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
  opts.jobs = ThreadPool::resolve(static_cast<std::size_t>(jobs));
  opts.json_path = flags.get_string("json", "");
  return opts;
}

int guarded_main(int argc, char** argv, int (*body)(Flags&)) {
  const char* program = argc > 0 ? argv[0] : "laps";
  try {
    Flags flags(argc, argv);
    return body(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: error: %s\n", program, e.what());
    return 1;
  }
}

std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", tool);
  w.key("reports");
  w.begin_array();
  for (const JobResult& r : results) {
    w.begin_object();
    w.field("scenario", r.scenario);
    w.field("scheduler", r.scheduler);
    w.field("seed", r.seed);
    w.key("report");
    write_report_json(w, r.report);
    w.end_object();
  }
  w.end_array();
  w.key("tables");
  w.begin_array();
  for (const ArtifactTable& t : tables) {
    if (t.table == nullptr) {
      throw std::invalid_argument("artifact_json: null table '" + t.title +
                                  "'");
    }
    w.begin_object();
    w.field("title", t.title);
    w.key("headers");
    w.begin_array();
    for (const std::string& h : t.table->headers()) w.value(h);
    w.end_array();
    w.key("rows");
    w.begin_array();
    for (const auto& row : t.table->data()) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables) {
  if (path.empty()) return;
  const std::string doc = artifact_json(tool, results, tables);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open JSON artifact path: " + path);
  }
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("failed writing JSON artifact: " + path);
  }
  std::fprintf(stderr, "wrote JSON artifact: %s (%zu bytes)\n", path.c_str(),
               doc.size());
}

}  // namespace laps
