#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/tableio.h"

namespace laps {

/// Common experiment-binary options parsed from the shared flags.
struct HarnessOptions {
  std::size_t jobs = 1;   ///< worker threads (0 was resolved to h/w conc.)
  std::string json_path;  ///< empty = no JSON artifact
};

/// Consumes the flags every experiment binary shares:
///   --jobs=N   worker threads (default 1; 0 = hardware concurrency)
///   --json=P   write a laps-bench-v1 JSON artifact to path P
/// Call before flags.finish().
HarnessOptions parse_harness_flags(Flags& flags);

/// Runs `body`, converting exceptions (unknown flags, bad arguments, failed
/// calibration) into an error on stderr and a nonzero exit code instead of
/// std::terminate. Every bench/example main() delegates here.
int guarded_main(int argc, char** argv, int (*body)(Flags&));

/// A titled table included in a JSON artifact.
struct ArtifactTable {
  std::string title;
  const Table* table = nullptr;
};

/// Serializes results + tables as a `laps-bench-v1` artifact:
///   {"schema":"laps-bench-v1","tool":...,"reports":[{scenario, scheduler,
///    seed, report:{...}}],"tables":[{title, headers, rows}]}
/// Contains only simulation results — no wall clocks, host info, or thread
/// counts — so the bytes are identical for any --jobs value.
std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables = {});

/// Writes `artifact_json(...)` to `path` (no-op when `path` is empty).
/// Throws std::runtime_error if the file cannot be written.
void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables = {});

}  // namespace laps
