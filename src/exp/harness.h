#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/tableio.h"

namespace laps {

/// Common experiment-binary options parsed from the shared flags.
struct HarnessOptions {
  std::size_t jobs = 1;   ///< worker threads (0 was resolved to h/w conc.)
  std::string json_path;  ///< empty = no JSON artifact
  /// Per-run observability probes (SimEngine tentpole). Paths are stems:
  /// each simulation run writes <stem>.<scenario>.<scheduler>.<seed><ext>.
  std::string timeseries_path;         ///< empty = no TimeSeriesProbe
  double timeseries_window_us = 100.0; ///< window/epoch width
  std::string trace_path;              ///< empty = no ChromeTraceProbe
  // Flow-audit observability (see sim/flow_audit.h, sim/afd_accuracy.h,
  // sim/flight_recorder.h).
  std::string flow_audit_path;         ///< empty = no FlowAuditProbe
  std::size_t flow_audit_top = 16;     ///< attribution k
  std::size_t flow_audit_rows = 256;   ///< per-flow rows in artifact; 0 = all
  std::string afd_accuracy_path;       ///< empty = no AfdAccuracyProbe
  std::size_t afd_accuracy_k = 16;     ///< ground-truth top-k
  double afd_accuracy_window_us = 100.0;  ///< sampling epoch width
  std::string flight_path;             ///< empty = no FlightRecorderProbe
  std::size_t flight_capacity = 4096;  ///< event-ring size
  std::uint64_t flight_drop_storm = 64;    ///< drops/window trigger; 0 = off
  std::uint64_t flight_ooo_spike = 256;    ///< OOO/window trigger; 0 = off
  double flight_window_us = 100.0;     ///< anomaly-counting window
  bool flight_dump = false;            ///< dump even without an anomaly
  // Live telemetry (src/telemetry): epoch-cadence metric snapshots.
  bool telemetry = false;              ///< --telemetry[=interval] given (or
                                       ///< implied by an output path below)
  TimeNs telemetry_interval = 100 * kMicrosecond;  ///< snapshot cadence
  std::string telemetry_out;           ///< JSONL stream stem; empty = none
  std::string telemetry_prom;          ///< Prometheus exposition stem
  // Fault injection (sim/fault.h).
  std::string faults_spec;             ///< raw --faults grammar, for display
  std::shared_ptr<const FaultPlan> faults;  ///< parsed plan; null = none
  std::string fault_timeline_path;     ///< empty = no FaultProbe artifact
  /// --event-queue=wheel|heap override; unset leaves each scenario's own
  /// ScenarioConfig::event_queue (the wheel default) untouched.
  std::optional<EventQueueKind> event_queue;
  /// Raw --scheduler value (semicolon-separated registry specs), for
  /// display; empty = flag not given.
  std::string scheduler_list;
  /// Parsed --scheduler specs. Empty = the binary's built-in scheduler
  /// table; see schedulers_or().
  std::vector<SchedulerSpec> schedulers;
  // Cluster mode (src/cluster): shard the engine behind a front-end
  // dispatcher. shards=1 with the default pass dispatcher is proven
  // byte-identical to the single-engine path.
  std::size_t shards = 1;          ///< --shards=N SimEngine shards
  std::string dispatch_spec;       ///< raw --dispatch spec list (validated
                                   ///< eagerly); empty = flag not given and
                                   ///< the binary's defaults apply
  TimeNs cluster_sync = 100 * kMicrosecond;  ///< sync-window width
  // Resilience (see exp/experiment.h RunnerPolicy, exp/journal.h,
  // exp/watchdog.h).
  TimeNs job_timeout = 0;        ///< per-attempt watchdog budget; 0 = off
  std::size_t job_retries = 0;   ///< extra attempts for transient failures
  std::string journal_path;      ///< completion journal; empty = none
  bool resume = false;           ///< replay journaled cells (--resume)
  bool runner_chaos = false;     ///< --runner-chaos given
  std::uint64_t runner_chaos_seed = 0;
  double runner_chaos_fail = 0.05;  ///< P(attempt throws TransientError)
  double runner_chaos_hang = 0.0;   ///< P(attempt hangs until watchdog)
};

/// Consumes the flags every experiment binary shares:
///   --jobs=N                  worker threads (default 1; 0 = hardware conc.)
///   --json=P                  write a laps-bench-v1 JSON artifact to P
///   --timeseries=P            per-run windowed time-series JSON (stem P)
///   --timeseries-window-us=N  series window width (default 100 us)
///   --trace-out=P             per-run chrome://tracing JSON (stem P)
///   --flow-audit=P            per-run per-flow audit JSON (stem P)
///   --flow-audit-top=K        attribution top-k (default 16)
///   --flow-audit-rows=N       per-flow rows in the artifact (0 = all)
///   --afd-accuracy=P          per-run online AFD accuracy series (stem P)
///   --afd-accuracy-k=K        ground-truth top-k (default 16)
///   --afd-accuracy-window-us=N  sampling interval (default 100 us)
///   --flight-recorder=P       per-run flight-recorder dump (stem P);
///                             written only on anomaly or --flight-dump
///   --flight-capacity=N       event-ring size (default 4096)
///   --flight-drop-storm=N     drops/window that trigger a dump (0 = off)
///   --flight-ooo-spike=N      OOO/window that trigger a dump (0 = off)
///   --flight-window-us=N      anomaly window width (default 100 us)
///   --flight-dump             dump the ring even without an anomaly
///   --telemetry[=D]           live telemetry snapshots every D of simulated
///                             time (util::parse_duration suffixes: "250us",
///                             "2ms", bare = ns; default 100us). Implied by
///                             the two output flags below.
///   --telemetry-out=P         per-run streaming JSONL (stem P), one
///                             snapshot per line, final totals last
///   --telemetry-prom=P        per-run Prometheus text exposition (stem P)
///   --faults=SPEC             fault schedule (parse_fault_plan grammar,
///                             e.g. "down:3@10ms;up:3@30ms")
///   --fault-timeline=P        per-run fault timeline + recovery metrics
///                             (stem P); requires --faults
///   --event-queue=K           completion-queue implementation: wheel
///                             (default) or heap (the differential oracle)
///   --scheduler=LIST          semicolon-separated scheduler registry specs
///                             (e.g. "fcfs;laps:afc=64,idle_th=5us,power=1")
///                             replacing the binary's built-in table; an
///                             unknown name or parameter fails fast listing
///                             the valid ones (exp/scheduler_registry.h)
///   --shards=N                cluster mode: N independent SimEngine shards
///                             behind a front-end dispatcher (default 1)
///   --dispatch=LIST           semicolon-separated dispatcher registry
///                             specs (e.g. "rss;fdir:slots=4096;affinity"),
///                             validated eagerly with the same fail-fast
///                             errors as --scheduler
///                             (exp/dispatcher_registry.h)
///   --cluster-sync=D          cluster sync-window width (parse_duration:
///                             "100us", "1ms"; default 100us)
///   --job-timeout=D           per-attempt watchdog budget (parse_duration:
///                             "30s", "500ms"); a cell whose attempt exceeds
///                             it is cancelled (and retried if budget left)
///   --job-retries=N           extra attempts for transient failures
///                             (TransientError or watchdog timeouts)
///   --journal=P               durable completion journal: one fsync'd
///                             record per finished cell, so an interrupted
///                             grid (SIGINT/SIGTERM/SIGKILL) can continue
///   --resume                  with --journal: replay already-journaled
///                             cells; final artifacts are byte-identical to
///                             an uninterrupted run
///   --runner-chaos[=SEED]     seeded fault injection against the runner
///                             itself (random transient throws/hangs per
///                             attempt) — soaks the resilience machinery
///   --runner-chaos-fail=P     chaos: P(attempt throws) (default 0.05)
///   --runner-chaos-hang=P     chaos: P(attempt hangs until the watchdog
///                             fires); requires --job-timeout
/// Call before flags.finish().
HarnessOptions parse_harness_flags(Flags& flags);

/// Builds the runner for a harness-configured grid: worker count from
/// --jobs plus a RunnerPolicy carrying the watchdog/retry/journal/chaos
/// flags. The journal salt hashes every option that changes job output
/// (event-queue override, fault spec) so a journal recorded under different
/// options refuses to resume. Signal handling is enabled exactly when a
/// journal is configured.
ParallelRunner make_runner(const HarnessOptions& opts);

/// Nonzero (128 + signal) when the previous run() was stopped by a handled
/// signal — the main should write no tables/artifacts and exit with this.
int grid_abort_code(const ParallelRunner& runner);

/// Final exit code for a completed grid: 0 when every cell succeeded, 1
/// otherwise — after printing one stderr line per failed cell (scenario,
/// scheduler, seed, error kind, message, attempts).
int grid_exit_code(const ParallelRunner& runner,
                   const std::vector<JobResult>& results);

/// The schedulers a grid should run: the --scheduler specs when given,
/// otherwise the binary's built-in `defaults` table. Every bench/example
/// main routes its scheduler table through this, which is what makes the
/// registry the single entry point for scheduler selection.
std::vector<SchedulerSpec> schedulers_or(const HarnessOptions& opts,
                                         std::vector<SchedulerSpec> defaults);

/// Runs one scenario through the SimEngine with whatever observability
/// probes `opts` configures attached (none configured = plain
/// run_scenario, zero probe overhead). Artifact filenames are derived from
/// the configured stem plus (config.name, scheduler.name(), config.seed),
/// so concurrent grid jobs write distinct files. Safe to call from any
/// worker thread.
SimReport run_observed(const ScenarioConfig& config, Scheduler& scheduler,
                       const HarnessOptions& opts);

/// `run_observed` packaged for ExperimentPlan::add_grid. Returns an empty
/// runner when `opts` configures no probes, so unobserved grids keep the
/// plain run_scenario fast path.
ExperimentPlan::JobRunner observed_runner(const HarnessOptions& opts);

/// Runs `body`, converting exceptions (unknown flags, bad arguments, failed
/// calibration) into an error on stderr and a nonzero exit code instead of
/// std::terminate. Every bench/example main() delegates here.
int guarded_main(int argc, char** argv, int (*body)(Flags&));

/// A titled table included in a JSON artifact.
struct ArtifactTable {
  std::string title;
  const Table* table = nullptr;
};

/// Serializes results + tables as a `laps-bench-v1` artifact:
///   {"schema":"laps-bench-v1","tool":...,"reports":[{scenario, scheduler,
///    seed, report:{...}}],"tables":[{title, headers, rows}]}
/// Contains only simulation results — no wall clocks, host info, or thread
/// counts — so the bytes are identical for any --jobs value.
std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables = {});

/// Writes `artifact_json(...)` to `path` (no-op when `path` is empty).
/// Throws std::runtime_error if the file cannot be written.
void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables = {});

}  // namespace laps
