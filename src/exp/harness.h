#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/tableio.h"

namespace laps {

/// Common experiment-binary options parsed from the shared flags.
struct HarnessOptions {
  std::size_t jobs = 1;   ///< worker threads (0 was resolved to h/w conc.)
  std::string json_path;  ///< empty = no JSON artifact
  /// Per-run observability probes (SimEngine tentpole). Paths are stems:
  /// each simulation run writes <stem>.<scenario>.<scheduler>.<seed><ext>.
  std::string timeseries_path;         ///< empty = no TimeSeriesProbe
  double timeseries_window_us = 100.0; ///< window/epoch width
  std::string trace_path;              ///< empty = no ChromeTraceProbe
};

/// Consumes the flags every experiment binary shares:
///   --jobs=N                  worker threads (default 1; 0 = hardware conc.)
///   --json=P                  write a laps-bench-v1 JSON artifact to P
///   --timeseries=P            per-run windowed time-series JSON (stem P)
///   --timeseries-window-us=N  series window width (default 100 us)
///   --trace-out=P             per-run chrome://tracing JSON (stem P)
/// Call before flags.finish().
HarnessOptions parse_harness_flags(Flags& flags);

/// Runs one scenario through the SimEngine with whatever observability
/// probes `opts` configures attached (none configured = plain
/// run_scenario, zero probe overhead). Artifact filenames are derived from
/// the configured stem plus (config.name, scheduler.name(), config.seed),
/// so concurrent grid jobs write distinct files. Safe to call from any
/// worker thread.
SimReport run_observed(const ScenarioConfig& config, Scheduler& scheduler,
                       const HarnessOptions& opts);

/// `run_observed` packaged for ExperimentPlan::add_grid. Returns an empty
/// runner when `opts` configures no probes, so unobserved grids keep the
/// plain run_scenario fast path.
ExperimentPlan::JobRunner observed_runner(const HarnessOptions& opts);

/// Runs `body`, converting exceptions (unknown flags, bad arguments, failed
/// calibration) into an error on stderr and a nonzero exit code instead of
/// std::terminate. Every bench/example main() delegates here.
int guarded_main(int argc, char** argv, int (*body)(Flags&));

/// A titled table included in a JSON artifact.
struct ArtifactTable {
  std::string title;
  const Table* table = nullptr;
};

/// Serializes results + tables as a `laps-bench-v1` artifact:
///   {"schema":"laps-bench-v1","tool":...,"reports":[{scenario, scheduler,
///    seed, report:{...}}],"tables":[{title, headers, rows}]}
/// Contains only simulation results — no wall clocks, host info, or thread
/// counts — so the bytes are identical for any --jobs value.
std::string artifact_json(const std::string& tool,
                          const std::vector<JobResult>& results,
                          const std::vector<ArtifactTable>& tables = {});

/// Writes `artifact_json(...)` to `path` (no-op when `path` is empty).
/// Throws std::runtime_error if the file cannot be written.
void write_json_artifact(const std::string& path, const std::string& tool,
                         const std::vector<JobResult>& results,
                         const std::vector<ArtifactTable>& tables = {});

}  // namespace laps
