#include "exp/journal.h"

#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "exp/experiment.h"
#include "util/crc.h"
#include "util/fileio.h"

namespace laps {

namespace {

// ---------------------------------------------------------------- encoding --

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

/// Bounds-checked reader over a decoded payload; any overrun means the
/// payload was damaged in a way the line CRC did not catch (or the record
/// was produced by an incompatible build), so it throws JournalError.
class Reader {
 public:
  Reader(const std::string& data, const std::string& path, std::size_t line)
      : data_(data), path_(path), line_(line) {}

  std::uint64_t u64() {
    if (pos_ + 8 > data_.size()) fail("payload truncated");
    std::uint64_t v = 0;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    if (n > data_.size() - pos_) fail("payload truncated");
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  void expect_end() const {
    if (pos_ != data_.size()) fail("payload has trailing bytes");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw JournalError(path_, line_, why);
  }

 private:
  const std::string& data_;
  const std::string& path_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------- hex --

constexpr char kHex[] = "0123456789abcdef";

std::string to_hex(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out += kHex[b >> 4];
    out += kHex[b & 0xF];
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::string hex_field(std::size_t width, std::uint64_t v) {
  std::string out(width, '0');
  for (std::size_t i = width; i-- > 0 && v != 0; v >>= 4) {
    out[i] = kHex[v & 0xF];
  }
  return out;
}

std::uint32_t line_crc(const std::string& prefix) {
  return crc32_ieee(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(prefix.data()), prefix.size()));
}

// ----------------------------------------------------------- line splitting --

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    std::size_t space = line.find(' ', start);
    if (space == std::string::npos) space = line.size();
    out.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return out;
}

bool parse_hex_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 16) return false;
  out = 0;
  for (const char c : s) {
    const int n = hex_nibble(c);
    if (n < 0) return false;
    out = (out << 4) | static_cast<std::uint64_t>(n);
  }
  return true;
}

bool parse_dec_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s.size() > 19) return false;
  out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

// -------------------------------------------------------------------- error --

JournalError::JournalError(const std::string& path, std::size_t line,
                           const std::string& reason)
    : std::runtime_error("journal " + path + ":" + std::to_string(line) +
                         ": " + reason),
      path_(path),
      line_(line),
      reason_(reason) {}

// -------------------------------------------------------------- fingerprint --

std::uint64_t job_fingerprint(std::uint64_t plan_seed, std::uint64_t salt,
                              std::size_t index, const ExperimentJob& job) {
  auto hash_str = [](const std::string& s) {
    return static_cast<std::uint64_t>(crc32_ieee(std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(s.data()), s.size()))) |
           (static_cast<std::uint64_t>(s.size()) << 32);
  };
  std::uint64_t h = mix64(plan_seed);
  h = mix64(h ^ salt);
  h = mix64(h ^ static_cast<std::uint64_t>(index));
  h = mix64(h ^ hash_str(job.scenario));
  h = mix64(h ^ hash_str(job.scheduler));
  h = mix64(h ^ job.seed);
  return h;
}

// --------------------------------------------------------- report round-trip --

std::string encode_report(const SimReport& r) {
  std::string out;
  put_string(out, r.scenario);
  put_string(out, r.scheduler);
  put_i64(out, r.sim_time);
  put_u64(out, r.offered);
  for (const std::uint64_t v : r.offered_by_service) put_u64(out, v);
  put_u64(out, r.dropped);
  for (const std::uint64_t v : r.dropped_by_service) put_u64(out, v);
  put_u64(out, r.delivered);
  put_u64(out, r.in_flight_at_end);
  put_u64(out, r.out_of_order);
  put_u64(out, r.flow_migrations);
  put_u64(out, r.fm_penalties);
  put_u64(out, r.cold_cache_events);
  put_double(out, r.mean_core_utilization);
  // Histogram exact state: count/sum/max plus the occupied buckets.
  put_u64(out, r.latency_ns.count());
  put_i64(out, r.latency_ns.sum());
  put_i64(out, r.latency_ns.max());
  const std::vector<Histogram::Bucket> buckets = r.latency_ns.buckets();
  put_u64(out, buckets.size());
  for (const Histogram::Bucket& b : buckets) {
    put_i64(out, b.upper_bound);
    put_u64(out, b.count);
  }
  put_u64(out, r.extra.size());
  for (const auto& [key, value] : r.extra) {  // std::map: sorted, stable
    put_string(out, key);
    put_double(out, value);
  }
  return out;
}

SimReport decode_report(const std::string& payload, const std::string& path,
                        std::size_t line) {
  Reader in(payload, path, line);
  SimReport r;
  r.scenario = in.str();
  r.scheduler = in.str();
  r.sim_time = in.i64();
  r.offered = in.u64();
  for (std::uint64_t& v : r.offered_by_service) v = in.u64();
  r.dropped = in.u64();
  for (std::uint64_t& v : r.dropped_by_service) v = in.u64();
  r.delivered = in.u64();
  r.in_flight_at_end = in.u64();
  r.out_of_order = in.u64();
  r.flow_migrations = in.u64();
  r.fm_penalties = in.u64();
  r.cold_cache_events = in.u64();
  r.mean_core_utilization = in.f64();
  const std::uint64_t count = in.u64();
  const std::int64_t sum = in.i64();
  const std::int64_t max = in.i64();
  const std::uint64_t nbuckets = in.u64();
  if (nbuckets > payload.size()) in.fail("bucket count implausible");
  std::vector<Histogram::Bucket> buckets;
  buckets.reserve(nbuckets);
  for (std::uint64_t i = 0; i < nbuckets; ++i) {
    Histogram::Bucket b;
    b.upper_bound = in.i64();
    b.count = in.u64();
    buckets.push_back(b);
  }
  try {
    r.latency_ns = Histogram::restore(buckets, count, sum, max);
  } catch (const std::invalid_argument& e) {
    in.fail(e.what());
  }
  const std::uint64_t nextra = in.u64();
  if (nextra > payload.size()) in.fail("extra count implausible");
  for (std::uint64_t i = 0; i < nextra; ++i) {
    std::string key = in.str();
    const double value = in.f64();
    r.extra.emplace(std::move(key), value);
  }
  in.expect_end();
  return r;
}

// ------------------------------------------------------------------ journal --

std::string ExperimentJournal::header_line() const {
  std::string line = "laps-journal-v1 " + hex_field(16, config_.plan_seed) +
                     " " + std::to_string(config_.num_jobs) + " " +
                     hex_field(16, config_.salt);
  line += " " + hex_field(8, line_crc(line));
  return line;
}

ExperimentJournal::ExperimentJournal(Config config, bool resume)
    : config_(std::move(config)) {
  if (config_.path.empty()) {
    throw std::invalid_argument("ExperimentJournal: empty path");
  }
  std::string content;
  if (resume && util::read_file_if_exists(config_.path, content)) {
    std::size_t lineno = 0;
    std::size_t start = 0;
    bool saw_header = false;
    while (start < content.size()) {
      ++lineno;
      std::size_t end = content.find('\n', start);
      const bool torn = end == std::string::npos;
      if (torn) end = content.size();
      const std::string line = content.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;

      // Validate the line CRC first. A bad CRC on the final (possibly torn)
      // line means the process died mid-append: drop it and rerun that job.
      // A bad CRC anywhere else is real corruption — refuse to resume.
      const std::size_t crc_at = line.find_last_of(' ');
      std::uint64_t stored_crc = 0;
      const bool crc_ok =
          crc_at != std::string::npos &&
          parse_hex_u64(line.substr(crc_at + 1), stored_crc) &&
          line.size() - crc_at - 1 == 8 &&
          stored_crc == line_crc(line.substr(0, crc_at));
      const bool final_line = start > content.size();
      if (!crc_ok) {
        if (final_line) break;  // torn tail: tolerated
        throw JournalError(config_.path, lineno, "bad record checksum");
      }

      const std::vector<std::string> fields = split_fields(line);
      if (!saw_header) {
        if (line != header_line()) {
          throw JournalError(
              config_.path, lineno,
              "header does not match this plan (different plan seed, grid "
              "size, or runner options); delete the journal or rerun "
              "without --resume");
        }
        saw_header = true;
        continue;
      }
      if (fields.size() != 5 || fields[0] != "J1") {
        throw JournalError(config_.path, lineno, "malformed record");
      }
      std::uint64_t fingerprint = 0;
      std::uint64_t index = 0;
      if (!parse_hex_u64(fields[1], fingerprint) ||
          !parse_dec_u64(fields[2], index) || index >= config_.num_jobs) {
        throw JournalError(config_.path, lineno, "malformed record");
      }
      const std::string& hex = fields[3];
      if (hex.size() % 2 != 0) {
        throw JournalError(config_.path, lineno, "odd payload length");
      }
      std::string payload;
      payload.reserve(hex.size() / 2);
      for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_nibble(hex[i]);
        const int lo = hex_nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
          throw JournalError(config_.path, lineno, "bad payload hex");
        }
        payload += static_cast<char>((hi << 4) | lo);
      }
      Entry entry;
      entry.fingerprint = fingerprint;
      entry.report = decode_report(payload, config_.path, lineno);
      entry.line = line;
      entries_[static_cast<std::size_t>(index)] = std::move(entry);
    }
    if (!entries_.empty() && !saw_header) {
      throw JournalError(config_.path, 1, "missing header");
    }
  }
  // Write the (possibly pruned) journal back so the on-disk state always
  // starts from a valid header — also creates the file on a fresh run.
  std::lock_guard<std::mutex> lock(mutex_);
  rewrite_locked();
}

const SimReport* ExperimentJournal::restore(std::size_t index,
                                            std::uint64_t fingerprint) const {
  const auto it = entries_.find(index);
  if (it == entries_.end() || it->second.fingerprint != fingerprint) {
    return nullptr;
  }
  return &it->second.report;
}

void ExperimentJournal::record(std::size_t index, std::uint64_t fingerprint,
                               const SimReport& report) {
  std::string line = "J1 " + hex_field(16, fingerprint) + " " +
                     std::to_string(index) + " " +
                     to_hex(encode_report(report));
  line += " " + hex_field(8, line_crc(line));

  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.report = report;
  entry.line = std::move(line);
  entries_[index] = std::move(entry);
  rewrite_locked();
}

void ExperimentJournal::rewrite_locked() {
  // The whole journal is rewritten per append, through the durable
  // tmp+fsync+rename path. Grids are at most a few hundred cells, so the
  // O(records^2) bytes are trivia next to the simulations themselves, and
  // in exchange the on-disk file is *always* a complete, checksummed
  // document — a reader can never observe a half-appended state.
  std::string content = header_line() + "\n";
  for (const auto& [index, entry] : entries_) {
    content += entry.line;
    content += "\n";
  }
  util::write_file_atomic(config_.path, content, "experiment journal",
                          /*durable=*/true);
}

}  // namespace laps
