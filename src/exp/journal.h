#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "sim/report.h"

namespace laps {

struct ExperimentJob;

/// Typed error for a journal file that cannot be trusted: wrong schema,
/// header that does not match the plan being resumed, or a corrupt record
/// (bad CRC, bad payload). Carries the file and the line number where
/// parsing stopped so the message pinpoints the damage.
class JournalError : public std::runtime_error {
 public:
  JournalError(const std::string& path, std::size_t line,
               const std::string& reason);

  const std::string& path() const { return path_; }
  std::size_t line() const { return line_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::size_t line_;
  std::string reason_;
};

/// Stable identity of one grid cell. Mixes the plan seed, a salt covering
/// every runner-level option that changes job output (event-queue override,
/// fault spec — see make_runner), the cell's position, its scenario and
/// scheduler names, and its derived seed. A resumed journal only replays a
/// record when the fingerprint matches, so editing the grid, the scheduler
/// list, or the plan seed invalidates exactly the cells that changed.
std::uint64_t job_fingerprint(std::uint64_t plan_seed, std::uint64_t salt,
                              std::size_t index, const ExperimentJob& job);

/// Append-only completion journal for a grid run (`laps-journal-v1`).
///
/// One record per completed job, keyed by (index, fingerprint), holding the
/// job's full SimReport in an exact binary encoding: integers verbatim,
/// doubles as IEEE-754 bit patterns, the latency histogram as its occupied
/// buckets plus exact count/sum/max (restored via Histogram::restore). A
/// report read back from the journal therefore serializes to byte-identical
/// JSON — the property the resume differential test asserts.
///
/// Durability: every append rewrites the journal through
/// util::write_file_atomic with durable=true (fsync'd tmp + rename + parent
/// directory fsync), so after `record` returns the record survives SIGKILL
/// and power loss, and a reader never sees a half-written file. Each line
/// additionally carries a CRC32 so a truncated or hand-damaged final line
/// is detected: a torn last line is dropped (the job simply reruns), while
/// corruption anywhere earlier throws JournalError rather than silently
/// resuming from bad state.
///
/// File format (one record per line, all numbers lowercase hex):
///   laps-journal-v1 <plan_seed:016x> <njobs> <salt:016x> <crc32:08x>
///   J1 <fingerprint:016x> <index> <payload-hex> <crc32:08x>
/// The header CRC covers the header prefix; each record CRC covers the
/// record prefix. The payload is the binary SimReport encoding, hex-dumped.
class ExperimentJournal {
 public:
  struct Config {
    std::string path;
    std::uint64_t plan_seed = 0;
    std::uint64_t salt = 0;
    std::size_t num_jobs = 0;
  };

  /// Opens the journal. With `resume` false any existing file is replaced
  /// by a fresh header; with `resume` true an existing file is parsed and
  /// its records become available through `restore` — a header that does
  /// not match `config` (different plan seed, grid size, or salt) throws
  /// JournalError, as does any corrupt non-final record. A missing file
  /// under `resume` starts an empty journal (resume of a run that never
  /// completed a job).
  ExperimentJournal(Config config, bool resume);

  /// The journaled report for cell `index`, or nullptr if the cell has no
  /// record or its fingerprint does not match (stale journal entry).
  const SimReport* restore(std::size_t index, std::uint64_t fingerprint) const;

  /// Durably appends the record for cell `index`. Thread-safe; returns only
  /// once the bytes are fsync'd, so a crash immediately after never loses
  /// the record. Throws util::IoError if the journal cannot be written.
  void record(std::size_t index, std::uint64_t fingerprint,
              const SimReport& report);

  /// Records loaded from disk at open (0 unless resuming).
  std::size_t loaded() const { return entries_.size(); }

  const std::string& path() const { return config_.path; }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    SimReport report;
    std::string line;  ///< serialized record, kept for rewrites
  };

  std::string header_line() const;
  void rewrite_locked();

  Config config_;
  std::map<std::size_t, Entry> entries_;
  std::mutex mutex_;
};

/// Exact binary encoding of a SimReport (the journal payload). Exposed for
/// the round-trip tests: decode(encode(r)) must reproduce `r` so that
/// report JSON serialization is byte-identical.
std::string encode_report(const SimReport& report);
SimReport decode_report(const std::string& payload, const std::string& path,
                        std::size_t line);

}  // namespace laps
