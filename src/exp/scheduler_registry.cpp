#include "exp/scheduler_registry.h"

#include <sstream>

#include "baselines/adaptive_hash.h"
#include "baselines/afs.h"
#include "baselines/batch.h"
#include "baselines/fcfs.h"
#include "baselines/hybrids.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "exp/spec_lang.h"

namespace laps {
namespace {

// The grammar machinery (spec parsing, typed parameter accessors, the
// canonical printer) is shared with the dispatcher registry — see
// exp/spec_lang.h. These aliases bind it to this registry's error type and
// "scheduler" message prefix; the error text is byte-identical to the
// pre-hoist registry (asserted by registry_test).

using ParsedSpec = spec::ParsedSpec;
using SpecPrinter = spec::SpecPrinter;

ParsedSpec parse_spec(const std::string& s) {
  return spec::parse_spec<SchedulerSpecError>(s, "scheduler");
}

class Params : public spec::Params<SchedulerSpecError> {
 public:
  Params(std::string scheduler, spec::ParamMap params)
      : spec::Params<SchedulerSpecError>("scheduler", std::move(scheduler),
                                        std::move(params)) {}
};

// --------------------------------------------- per-scheduler config logic
//
// Each scheduler contributes a parse (Params -> config struct) used by both
// the factory and the canonicalizer, so the two can never disagree about a
// spec's meaning.

std::size_t parse_plain(Params& p) {  // fcfs, batch-less schedulers
  p.finish();
  return 0;
}

std::size_t parse_hash(Params& p) {
  const std::size_t buckets = p.get_size("buckets", 0);
  p.finish();
  return buckets;
}

struct AfsParams {
  std::uint32_t high_th = 24;
  std::size_t buckets = 0;
  std::uint64_t cooldown = 2048;
};

AfsParams parse_afs(Params& p) {
  AfsParams cfg;
  cfg.high_th = p.get_u32("high_th", cfg.high_th);
  cfg.buckets = p.get_size("buckets", cfg.buckets);
  cfg.cooldown = p.get_u64("cooldown", cfg.cooldown);
  p.finish();
  return cfg;
}

AdaptiveHashScheduler::Options parse_adaptive(Params& p) {
  AdaptiveHashScheduler::Options cfg;
  cfg.period = p.get_u64("period", cfg.period);
  cfg.slack = p.get_double("slack", cfg.slack);
  cfg.max_moves_per_period = p.get_size("moves", cfg.max_moves_per_period);
  cfg.num_buckets = p.get_size("buckets", cfg.num_buckets);
  return cfg;  // caller finishes (adaptive-afd layers more keys on top)
}

void canon_adaptive(SpecPrinter& out, const AdaptiveHashScheduler::Options& c,
                    const AdaptiveHashScheduler::Options& d) {
  out.add_u64("period", c.period, d.period);
  out.add_double("slack", c.slack, d.slack);
  out.add_size("moves", c.max_moves_per_period, d.max_moves_per_period);
  out.add_size("buckets", c.num_buckets, d.num_buckets);
}

void parse_afd(Params& p, AfdConfig& cfg) {
  cfg.afc_entries = p.get_size("afc", cfg.afc_entries);
  cfg.annex_entries = p.get_size("annex", cfg.annex_entries);
  cfg.promote_threshold = p.get_u64("promote", cfg.promote_threshold);
  cfg.sample_probability = p.get_double("sample", cfg.sample_probability);
  cfg.aging_period = p.get_u64("aging", cfg.aging_period);
  cfg.require_beat_afc_min = p.get_bool("beat_min", cfg.require_beat_afc_min);
}

void canon_afd(SpecPrinter& out, const AfdConfig& c, const AfdConfig& d) {
  out.add_size("afc", c.afc_entries, d.afc_entries);
  out.add_size("annex", c.annex_entries, d.annex_entries);
  out.add_u64("promote", c.promote_threshold, d.promote_threshold);
  out.add_double("sample", c.sample_probability, d.sample_probability);
  out.add_u64("aging", c.aging_period, d.aging_period);
  out.add_bool("beat_min", c.require_beat_afc_min, d.require_beat_afc_min);
}

CombinedAdaptiveScheduler::CombinedOptions parse_adaptive_afd(Params& p) {
  CombinedAdaptiveScheduler::CombinedOptions cfg;
  cfg.adaptive = parse_adaptive(p);
  parse_afd(p, cfg.afd);
  cfg.high_thresh = p.get_u32("high_th", cfg.high_thresh);
  cfg.migration_table_capacity =
      p.get_size("pins", cfg.migration_table_capacity);
  p.finish();
  return cfg;
}

struct OracleParams {
  std::size_t k = 16;
  std::uint32_t high_th = 24;
  std::uint64_t refresh = 8192;
  std::size_t buckets = 0;
};

OracleParams parse_oracle(Params& p) {
  OracleParams cfg;
  cfg.k = p.get_size("k", cfg.k);
  cfg.high_th = p.get_u32("high_th", cfg.high_th);
  cfg.refresh = p.get_u64("refresh", cfg.refresh);
  cfg.buckets = p.get_size("buckets", cfg.buckets);
  p.finish();
  return cfg;
}

std::uint32_t parse_batch(Params& p) {
  const std::uint32_t batch = p.get_u32("batch", 32);
  p.finish();
  return batch;
}

LapsConfig parse_laps(Params& p) {
  LapsConfig cfg;
  cfg.num_services = p.get_size("services", cfg.num_services);
  cfg.high_thresh = p.get_u32("high_th", cfg.high_thresh);
  cfg.idle_th = p.get_duration("idle_th", cfg.idle_th);
  cfg.migration_table_capacity =
      p.get_size("pins", cfg.migration_table_capacity);
  cfg.min_cores_per_service =
      p.get_size("min_cores", cfg.min_cores_per_service);
  cfg.power_gating = p.get_bool("power", cfg.power_gating);
  cfg.sleep_after = p.get_duration("sleep_after", cfg.sleep_after);
  cfg.wake_watermark = p.get_u32("wake_wm", cfg.wake_watermark);
  cfg.consolidate_window =
      p.get_u64("consolidate_window", cfg.consolidate_window);
  cfg.consolidate_watermark =
      p.get_u32("consolidate_wm", cfg.consolidate_watermark);
  cfg.consolidate_backoff =
      p.get_duration("consolidate_backoff", cfg.consolidate_backoff);
  cfg.entries_per_core = p.get_size("entries", cfg.entries_per_core);
  parse_afd(p, cfg.afd);
  p.finish();
  return cfg;
}

std::string canon_laps(const LapsConfig& c) {
  const LapsConfig d;
  SpecPrinter out("laps");
  out.add_size("services", c.num_services, d.num_services);
  out.add_u32("high_th", c.high_thresh, d.high_thresh);
  out.add_duration("idle_th", c.idle_th, d.idle_th);
  out.add_size("pins", c.migration_table_capacity,
               d.migration_table_capacity);
  out.add_size("min_cores", c.min_cores_per_service, d.min_cores_per_service);
  out.add_bool("power", c.power_gating, d.power_gating);
  out.add_duration("sleep_after", c.sleep_after, d.sleep_after);
  out.add_u32("wake_wm", c.wake_watermark, d.wake_watermark);
  out.add_u64("consolidate_window", c.consolidate_window,
              d.consolidate_window);
  out.add_u32("consolidate_wm", c.consolidate_watermark,
              d.consolidate_watermark);
  out.add_duration("consolidate_backoff", c.consolidate_backoff,
                   d.consolidate_backoff);
  out.add_size("entries", c.entries_per_core, d.entries_per_core);
  canon_afd(out, c.afd, d.afd);
  return out.str();
}

HashMigrateScheduler::Options parse_hash_migrate(Params& p) {
  HashMigrateScheduler::Options cfg;
  cfg.num_buckets = p.get_size("buckets", cfg.num_buckets);
  parse_afd(p, cfg.afd);
  cfg.high_thresh = p.get_u32("high_th", cfg.high_thresh);
  cfg.migration_table_capacity =
      p.get_size("pins", cfg.migration_table_capacity);
  p.finish();
  return cfg;
}

AfsPowerScheduler::Options parse_afs_power(Params& p) {
  AfsPowerScheduler::Options cfg;
  cfg.high_thresh = p.get_u32("high_th", cfg.high_thresh);
  cfg.num_buckets = p.get_size("buckets", cfg.num_buckets);
  cfg.shift_cooldown = p.get_u64("cooldown", cfg.shift_cooldown);
  cfg.idle_th = p.get_duration("idle_th", cfg.idle_th);
  cfg.wake_watermark = p.get_u32("wake_wm", cfg.wake_watermark);
  cfg.power.sleep_after = p.get_duration("sleep_after", cfg.power.sleep_after);
  cfg.power.consolidate_window =
      p.get_u64("consolidate_window", cfg.power.consolidate_window);
  cfg.power.consolidate_watermark =
      p.get_u32("consolidate_wm", cfg.power.consolidate_watermark);
  cfg.power.consolidate_backoff =
      p.get_duration("consolidate_backoff", cfg.power.consolidate_backoff);
  cfg.power.min_unparked = p.get_size("min_unparked", cfg.power.min_unparked);
  p.finish();
  return cfg;
}

// ---------------------------------------------------------------- registry

struct Entry {
  const char* name;
  const char* params;  // help text: parameter list (or "-")
  std::unique_ptr<Scheduler> (*make)(Params&);
  std::string (*canon)(Params&);
};

const Entry kRegistry[] = {
    {"fcfs", "-",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       parse_plain(p);
       return std::make_unique<FcfsScheduler>();
     },
     [](Params& p) -> std::string {
       parse_plain(p);
       return "fcfs";
     }},
    {"hash", "buckets",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<StaticHashScheduler>(parse_hash(p));
     },
     [](Params& p) -> std::string {
       SpecPrinter out("hash");
       out.add_size("buckets", parse_hash(p), 0);
       return out.str();
     }},
    {"afs", "high_th, buckets, cooldown",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       const AfsParams c = parse_afs(p);
       return std::make_unique<AfsScheduler>(c.high_th, c.buckets,
                                             c.cooldown);
     },
     [](Params& p) -> std::string {
       const AfsParams c = parse_afs(p);
       const AfsParams d;
       SpecPrinter out("afs");
       out.add_u32("high_th", c.high_th, d.high_th);
       out.add_size("buckets", c.buckets, d.buckets);
       out.add_u64("cooldown", c.cooldown, d.cooldown);
       return out.str();
     }},
    {"adaptive", "period, slack, moves, buckets",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       const auto c = parse_adaptive(p);
       p.finish();
       return std::make_unique<AdaptiveHashScheduler>(c);
     },
     [](Params& p) -> std::string {
       const auto c = parse_adaptive(p);
       p.finish();
       SpecPrinter out("adaptive");
       canon_adaptive(out, c, AdaptiveHashScheduler::Options{});
       return out.str();
     }},
    {"adaptive-afd",
     "period, slack, moves, buckets, afc, annex, promote, sample, aging, "
     "beat_min, high_th, pins",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<CombinedAdaptiveScheduler>(
           parse_adaptive_afd(p));
     },
     [](Params& p) -> std::string {
       const auto c = parse_adaptive_afd(p);
       const CombinedAdaptiveScheduler::CombinedOptions d;
       SpecPrinter out("adaptive-afd");
       canon_adaptive(out, c.adaptive, d.adaptive);
       canon_afd(out, c.afd, d.afd);
       out.add_u32("high_th", c.high_thresh, d.high_thresh);
       out.add_size("pins", c.migration_table_capacity,
                    d.migration_table_capacity);
       return out.str();
     }},
    {"batch", "batch",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<BatchScheduler>(parse_batch(p));
     },
     [](Params& p) -> std::string {
       SpecPrinter out("batch");
       out.add_u32("batch", parse_batch(p), 32);
       return out.str();
     }},
    {"oracle", "k, high_th, refresh, buckets",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       const OracleParams c = parse_oracle(p);
       return std::make_unique<OracleTopKScheduler>(c.k, c.high_th, c.refresh,
                                                    c.buckets);
     },
     [](Params& p) -> std::string {
       const OracleParams c = parse_oracle(p);
       const OracleParams d;
       SpecPrinter out("oracle");
       out.add_size("k", c.k, d.k);
       out.add_u32("high_th", c.high_th, d.high_th);
       out.add_u64("refresh", c.refresh, d.refresh);
       out.add_size("buckets", c.buckets, d.buckets);
       return out.str();
     }},
    {"laps",
     "services, high_th, idle_th, pins, min_cores, power, sleep_after, "
     "wake_wm, consolidate_window, consolidate_wm, consolidate_backoff, "
     "entries, afc, annex, promote, sample, aging, beat_min",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<LapsScheduler>(parse_laps(p));
     },
     [](Params& p) -> std::string { return canon_laps(parse_laps(p)); }},
    {"hash-migrate",
     "buckets, afc, annex, promote, sample, aging, beat_min, high_th, pins",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<HashMigrateScheduler>(parse_hash_migrate(p));
     },
     [](Params& p) -> std::string {
       const auto c = parse_hash_migrate(p);
       const HashMigrateScheduler::Options d;
       SpecPrinter out("hash-migrate");
       out.add_size("buckets", c.num_buckets, d.num_buckets);
       canon_afd(out, c.afd, d.afd);
       out.add_u32("high_th", c.high_thresh, d.high_thresh);
       out.add_size("pins", c.migration_table_capacity,
                    d.migration_table_capacity);
       return out.str();
     }},
    {"afs-power",
     "high_th, buckets, cooldown, idle_th, wake_wm, sleep_after, "
     "consolidate_window, consolidate_wm, consolidate_backoff, min_unparked",
     [](Params& p) -> std::unique_ptr<Scheduler> {
       return std::make_unique<AfsPowerScheduler>(parse_afs_power(p));
     },
     [](Params& p) -> std::string {
       const auto c = parse_afs_power(p);
       const AfsPowerScheduler::Options d;
       SpecPrinter out("afs-power");
       out.add_u32("high_th", c.high_thresh, d.high_thresh);
       out.add_size("buckets", c.num_buckets, d.num_buckets);
       out.add_u64("cooldown", c.shift_cooldown, d.shift_cooldown);
       out.add_duration("idle_th", c.idle_th, d.idle_th);
       out.add_u32("wake_wm", c.wake_watermark, d.wake_watermark);
       out.add_duration("sleep_after", c.power.sleep_after,
                        d.power.sleep_after);
       out.add_u64("consolidate_window", c.power.consolidate_window,
                   d.power.consolidate_window);
       out.add_u32("consolidate_wm", c.power.consolidate_watermark,
                   d.power.consolidate_watermark);
       out.add_duration("consolidate_backoff", c.power.consolidate_backoff,
                        d.power.consolidate_backoff);
       out.add_size("min_unparked", c.power.min_unparked,
                    d.power.min_unparked);
       return out.str();
     }},
};

const Entry& find_entry(const std::string& name, const std::string& spec) {
  for (const Entry& entry : kRegistry) {
    if (name == entry.name) return entry;
  }
  std::ostringstream msg;
  msg << "unknown scheduler '" << name << "' in spec '" << spec
      << "'; valid schedulers:";
  for (const Entry& entry : kRegistry) msg << ' ' << entry.name;
  throw SchedulerSpecError(msg.str());
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  const Entry& entry = find_entry(parsed.name, spec);
  Params params(parsed.name, std::move(parsed.params));
  return entry.make(params);
}

std::string canonical_scheduler_spec(const std::string& spec) {
  ParsedSpec parsed = parse_spec(spec);
  const Entry& entry = find_entry(parsed.name, spec);
  Params params(parsed.name, std::move(parsed.params));
  return entry.canon(params);
}

std::vector<std::string> scheduler_names() {
  std::vector<std::string> names;
  for (const Entry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

std::string scheduler_spec_help() {
  std::ostringstream out;
  out << "scheduler specs: name[:key=value,...]  (durations take ns/us/ms/s "
         "suffixes)\n";
  for (const Entry& entry : kRegistry) {
    // A throwaway instance supplies the display name shown in tables.
    Params probe(entry.name, {});
    const auto instance = entry.make(probe);
    out << "  " << entry.name << " (" << instance->name()
        << "): " << entry.params << "\n";
  }
  return out.str();
}

SchedulerSpec make_scheduler_spec(const std::string& spec,
                                  std::string display) {
  // Parse eagerly so a bad spec fails at table-build time, not mid-grid on
  // a worker thread.
  const std::string canonical = canonical_scheduler_spec(spec);
  if (display.empty()) display = make_scheduler(spec)->name();
  return SchedulerSpec{
      std::move(display),
      [canonical]() { return make_scheduler(canonical); },
  };
}

std::vector<SchedulerSpec> parse_scheduler_list(const std::string& list) {
  std::vector<SchedulerSpec> specs;
  if (list.empty()) return specs;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t semi = list.find(';', pos);
    if (semi == std::string::npos) semi = list.size();
    const std::string spec = list.substr(pos, semi - pos);
    if (spec.empty()) {
      throw SchedulerSpecError(
          "empty scheduler spec in list '" + list +
          "' (specs are separated by ';', e.g. 'fcfs;laps:afc=64')");
    }
    specs.push_back(make_scheduler_spec(spec));
    pos = semi + 1;
  }
  return specs;
}

}  // namespace laps
