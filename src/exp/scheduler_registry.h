#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "sim/scheduler.h"

namespace laps {

/// Thrown for any malformed or unknown `--scheduler` spec. The message
/// always names the offending token and lists what *would* have been valid
/// (scheduler names, or the scheduler's parameter set), so a typo on the
/// command line fails fast with the fix in the error text.
class SchedulerSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// String-spec scheduler registry — the single factory behind every
/// `--scheduler` flag, bench table, and example main.
///
/// Grammar:
///
///     spec  := name [ ':' param ( ',' param )* ]
///     param := key '=' value
///
/// e.g. `laps:afc=64,idle_th=5us,power=1`. Values are integers, decimals,
/// booleans (1/0/true/false/on/off/yes/no), or durations with an optional
/// ns/us/ms/s suffix (bare duration numbers are nanoseconds). Unknown
/// scheduler names, unknown keys, duplicate keys, and unparseable values
/// all throw SchedulerSpecError.
///
/// Registered names (see scheduler_spec_help() for the parameter sets):
///   fcfs, hash, afs, adaptive, adaptive-afd, batch, oracle, laps,
///   hash-migrate, afs-power
std::unique_ptr<Scheduler> make_scheduler(const std::string& spec);

/// The canonical form of a spec: same scheduler, parameters re-derived from
/// the parsed configuration — only non-default keys, in a fixed order, with
/// durations normalized to `<n>ns`. Canonical specs are fixed points:
/// canonical(canonical(s)) == canonical(s), and parsing a canonical spec
/// reconstructs the identical configuration (round-trip property, fuzzed in
/// tests/registry_test.cpp).
std::string canonical_scheduler_spec(const std::string& spec);

/// All registered scheduler names, in help order.
std::vector<std::string> scheduler_names();

/// Multi-line human-readable catalog: one line per scheduler with its
/// display name and parameter set. Embedded in --help and error messages.
std::string scheduler_spec_help();

/// Wraps a spec as an experiment SchedulerSpec. `display` overrides the
/// table/artifact name; empty derives it from the instance's name() (so
/// registry-built grids keep the exact display names the hand-written
/// lambda tables produced). The factory re-parses per call, giving every
/// job a fresh scheduler instance.
SchedulerSpec make_scheduler_spec(const std::string& spec,
                                  std::string display = "");

/// Parses a semicolon-separated spec list (semicolons, because parameter
/// lists contain commas): `fcfs;laps:afc=64;afs`. Empty segments are
/// rejected; an empty list string yields an empty vector.
std::vector<SchedulerSpec> parse_scheduler_list(const std::string& list);

}  // namespace laps
