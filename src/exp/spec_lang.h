#pragma once

// Shared grammar machinery behind the string-spec registries: the scheduler
// registry (--scheduler, exp/scheduler_registry.h) and the dispatcher
// registry (--dispatch, exp/dispatcher_registry.h). Both speak the same
// `name[:key=value,...]` grammar with the same fail-fast error contract
// (unknown names/parameters rejected listing the valid set) and the same
// canonical form (non-default parameters in declaration order, durations in
// ns, shortest round-trip doubles). Hoisting the parser, the typed
// parameter accessors, and the canonical printer here keeps the registries
// structurally incapable of diverging on grammar or error style.
//
// Everything error-throwing is templated on the registry's exception type
// and takes the registry's `kind` word ("scheduler", "dispatcher") so the
// messages read exactly as each registry's callers expect — the scheduler
// registry's errors stayed byte-identical through the hoist (asserted by
// registry_test).

#include <charconv>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/duration.h"
#include "util/time.h"

namespace laps::spec {

using ParamMap = std::map<std::string, std::string>;

struct ParsedSpec {
  std::string name;
  ParamMap params;
};

/// Splits `name[:key=value,...]` into name + parameter map. Throws Error on
/// an empty name, a malformed `key=value` token, or a duplicate key.
template <typename Error>
ParsedSpec parse_spec(const std::string& spec, const char* kind) {
  ParsedSpec out;
  const std::size_t colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) {
    throw Error("empty " + std::string(kind) + " name in spec '" + spec +
                "'");
  }
  if (colon == std::string::npos) return out;

  const std::string rest = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    std::size_t comma = rest.find(',', pos);
    if (comma == std::string::npos) comma = rest.size();
    const std::string token = rest.substr(pos, comma - pos);
    const std::size_t eq = token.find('=');
    if (token.empty() || eq == 0 || eq == std::string::npos) {
      throw Error("malformed parameter '" + token + "' in spec '" + spec +
                  "' (expected key=value)");
    }
    const std::string key = token.substr(0, eq);
    if (!out.params.emplace(key, token.substr(eq + 1)).second) {
      throw Error("duplicate parameter '" + key + "' in spec '" + spec +
                  "'");
    }
    pos = comma + 1;
  }
  return out;
}

template <typename Error>
std::uint64_t parse_u64(const char* kind, const std::string& name,
                        const std::string& key, const std::string& value) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw Error(std::string(kind) + " '" + name + "': parameter '" + key +
                "' wants a non-negative integer, got '" + value + "'");
  }
  return parsed;
}

template <typename Error>
double parse_double(const char* kind, const std::string& name,
                    const std::string& key, const std::string& value) {
  double parsed = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw Error(std::string(kind) + " '" + name + "': parameter '" + key +
                "' wants a number, got '" + value + "'");
  }
  return parsed;
}

template <typename Error>
bool parse_bool(const char* kind, const std::string& name,
                const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    return false;
  }
  throw Error(std::string(kind) + " '" + name + "': parameter '" + key +
              "' wants a boolean (1/0/true/false), got '" + value + "'");
}

template <typename Error>
TimeNs parse_duration(const char* kind, const std::string& name,
                      const std::string& key, const std::string& value) {
  // The suffix grammar lives in util::parse_duration (shared with the
  // harness --telemetry flag); only the exception type is ours.
  try {
    return util::parse_duration(
        std::string(kind) + " '" + name + "': parameter '" + key + "'",
        value);
  } catch (const std::invalid_argument& e) {
    throw Error(e.what());
  }
}

/// Typed accessors over a parsed parameter map. Every key the entry
/// understands is consumed by a getter; finish() then rejects leftovers,
/// listing the full valid set — the fail-fast contract for typos.
template <typename Error>
class Params {
 public:
  Params(const char* kind, std::string name, ParamMap params)
      : kind_(kind), name_(std::move(name)), params_(std::move(params)) {}

  std::uint64_t get_u64(const char* key, std::uint64_t def) {
    const std::string* v = consume(key);
    return v ? parse_u64<Error>(kind_, name_, key, *v) : def;
  }
  std::size_t get_size(const char* key, std::size_t def) {
    return static_cast<std::size_t>(get_u64(key, def));
  }
  std::uint32_t get_u32(const char* key, std::uint32_t def) {
    return static_cast<std::uint32_t>(get_u64(key, def));
  }
  double get_double(const char* key, double def) {
    const std::string* v = consume(key);
    return v ? parse_double<Error>(kind_, name_, key, *v) : def;
  }
  bool get_bool(const char* key, bool def) {
    const std::string* v = consume(key);
    return v ? parse_bool<Error>(kind_, name_, key, *v) : def;
  }
  TimeNs get_duration(const char* key, TimeNs def) {
    const std::string* v = consume(key);
    return v ? parse_duration<Error>(kind_, name_, key, *v) : def;
  }

  /// Rejects any parameter no getter asked for.
  void finish() const {
    for (const auto& [key, value] : params_) {
      if (known_.count(key) != 0) continue;
      std::ostringstream msg;
      msg << kind_ << " '" << name_ << "': unknown parameter '" << key
          << "'; valid parameters:";
      if (known_.empty()) {
        msg << " (none)";
      } else {
        for (const std::string& k : known_) msg << ' ' << k;
      }
      throw Error(msg.str());
    }
  }

 private:
  const std::string* consume(const char* key) {
    known_.insert(key);
    const auto it = params_.find(key);
    return it == params_.end() ? nullptr : &it->second;
  }

  const char* kind_;
  std::string name_;
  ParamMap params_;
  std::set<std::string> known_;  // ordered, so error text is stable
};

/// Accumulates non-default `key=value` pairs in declaration order.
class SpecPrinter {
 public:
  explicit SpecPrinter(std::string name) : out_(std::move(name)) {}

  void add_u64(const char* key, std::uint64_t value, std::uint64_t def) {
    if (value != def) add(key, std::to_string(value));
  }
  void add_size(const char* key, std::size_t value, std::size_t def) {
    add_u64(key, value, def);
  }
  void add_u32(const char* key, std::uint32_t value, std::uint32_t def) {
    add_u64(key, value, def);
  }
  void add_double(const char* key, double value, double def) {
    if (value != def) add(key, format_double(value));
  }
  void add_bool(const char* key, bool value, bool def) {
    if (value != def) add(key, value ? "1" : "0");
  }
  void add_duration(const char* key, TimeNs value, TimeNs def) {
    if (value != def) add(key, std::to_string(value) + "ns");
  }

  std::string str() const { return out_; }

 private:
  static std::string format_double(double value) {
    // Shortest round-trip representation, so canonical specs re-parse to
    // the bit-identical double.
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    return ec == std::errc{} ? std::string(buf, ptr) : std::to_string(value);
  }

  void add(const char* key, const std::string& value) {
    out_ += first_ ? ':' : ',';
    first_ = false;
    out_ += key;
    out_ += '=';
    out_ += value;
  }

  std::string out_;
  bool first_ = true;
};

}  // namespace laps::spec
