#include "exp/trace_store.h"

#include <stdexcept>
#include <utility>

#include "trace/synthetic.h"

namespace laps {

SharedTraceBacking::SharedTraceBacking(
    std::function<std::shared_ptr<TraceSource>()> factory,
    std::size_t max_shared)
    : factory_(std::move(factory)), max_shared_(max_shared) {
  if (!factory_) {
    throw std::invalid_argument("SharedTraceBacking: null factory");
  }
  source_ = factory_();
  if (!source_) {
    throw std::invalid_argument("SharedTraceBacking: factory returned null");
  }
  name_ = source_->name();
  flow_count_hint_ = source_->flow_count_hint();
  has_mix_ = source_->size_mix(mix_sizes_, mix_weights_);
  chunks_.resize((max_shared_ + kChunk - 1) / kChunk);
}

bool SharedTraceBacking::size_mix(std::vector<std::uint16_t>& sizes,
                                  std::vector<double>& weights) const {
  if (!has_mix_) return false;
  sizes = mix_sizes_;
  weights = mix_weights_;
  return true;
}

SharedTraceBacking::Fetch SharedTraceBacking::fetch(std::size_t index,
                                                    PacketRecord& out) {
  if (index >= max_shared_) return Fetch::kOverflow;
  // Fast path: already published. committed_ (acquire) pairs with the
  // release store below, making the chunk contents visible.
  if (index < committed_.load(std::memory_order_acquire)) {
    if (index >= end_at_.load(std::memory_order_acquire)) return Fetch::kEnd;
    out = at(index);
    return Fetch::kRecord;
  }
  if (index >= end_at_.load(std::memory_order_acquire)) return Fetch::kEnd;

  std::lock_guard<std::mutex> lock(extend_mutex_);
  // Re-check under the lock: another thread may have materialized past us.
  while (index >= committed_.load(std::memory_order_relaxed)) {
    if (index >= end_at_.load(std::memory_order_relaxed)) return Fetch::kEnd;
    if (error_) std::rethrow_exception(error_);
    const std::size_t pos = committed_.load(std::memory_order_relaxed);
    auto& slot = chunks_[pos / kChunk];
    if (!slot) {
      slot = std::make_unique<std::vector<PacketRecord>>();
      slot->reserve(kChunk);
    }
    std::optional<PacketRecord> rec;
    try {
      rec = source_->next();
    } catch (...) {
      error_ = std::current_exception();
      std::rethrow_exception(error_);
    }
    if (!rec) {
      end_at_.store(pos, std::memory_order_release);
      return Fetch::kEnd;
    }
    slot->push_back(*rec);
    committed_.store(pos + 1, std::memory_order_release);
  }
  if (index >= end_at_.load(std::memory_order_relaxed)) return Fetch::kEnd;
  out = at(index);
  return Fetch::kRecord;
}

std::optional<PacketRecord> SharedTraceCursor::next() {
  if (!overflow_) {
    PacketRecord rec;
    switch (backing_->fetch(pos_, rec)) {
      case SharedTraceBacking::Fetch::kRecord:
        ++pos_;
        return rec;
      case SharedTraceBacking::Fetch::kEnd:
        return std::nullopt;
      case SharedTraceBacking::Fetch::kOverflow:
        // Fast-forward a private replay past the shared prefix, once.
        overflow_ = backing_->make_private();
        overflow_ended_ = false;
        for (std::size_t i = 0; i < pos_; ++i) {
          if (!overflow_->next()) {
            overflow_ended_ = true;
            break;
          }
        }
        break;
    }
  }
  if (overflow_ended_) return std::nullopt;
  auto rec = overflow_->next();
  if (!rec) {
    overflow_ended_ = true;
    return std::nullopt;
  }
  ++pos_;
  return rec;
}

void SharedTraceCursor::reset() {
  pos_ = 0;
  overflow_.reset();
  overflow_ended_ = false;
}

TraceStore::TraceStore(std::size_t max_shared_records)
    : max_shared_(max_shared_records) {}

void TraceStore::register_trace(
    const std::string& name,
    std::function<std::shared_ptr<TraceSource>()> factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  registered_[name] = std::move(factory);
  backings_.erase(name);
}

std::shared_ptr<SharedTraceBacking> TraceStore::backing_for(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = backings_.find(name);
  if (it != backings_.end()) return it->second;

  std::function<std::shared_ptr<TraceSource>()> factory;
  if (auto reg = registered_.find(name); reg != registered_.end()) {
    factory = reg->second;
  } else {
    factory = [name]() -> std::shared_ptr<TraceSource> {
      return make_trace(name);  // throws std::out_of_range for unknown names
    };
  }
  auto backing =
      std::make_shared<SharedTraceBacking>(std::move(factory), max_shared_);
  backings_.emplace(name, backing);
  return backing;
}

std::shared_ptr<TraceSource> TraceStore::open(const std::string& name) {
  return std::make_shared<SharedTraceCursor>(backing_for(name));
}

std::function<std::shared_ptr<TraceSource>(const std::string&)>
TraceStore::factory() {
  return [this](const std::string& name) { return open(name); };
}

std::size_t TraceStore::materialized(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = backings_.find(name);
  return it == backings_.end() ? 0 : it->second->materialized();
}

}  // namespace laps
