#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/packet_record.h"

namespace laps {

/// Shared, immutable, lazily-materialized prefix of one trace.
///
/// Parallel experiment jobs replay the same named traces; regenerating a
/// synthetic stream (or re-reading a capture) per job wastes CPU and, worse
/// for determinism auditing, hides whether two jobs really saw the same
/// packets. A SharedTraceBacking materializes the underlying source once,
/// in order, into append-only fixed-size chunks; records are immutable the
/// moment they are published, so any number of cursors can read them
/// concurrently without locks.
///
/// Memory is bounded by `max_shared` records. A cursor that reads past the
/// bound switches to a private replay of the underlying source (identical
/// bytes, deterministic), paying a one-time fast-forward — so paper-scale
/// `--seconds=60` sweeps stay correct without materializing billions of
/// records.
class SharedTraceBacking {
 public:
  /// Result of asking for record `index` of the shared prefix.
  enum class Fetch {
    kRecord,    ///< `out` filled
    kEnd,       ///< the underlying source ended before `index`
    kOverflow,  ///< `index` is beyond the sharing bound
  };

  SharedTraceBacking(std::function<std::shared_ptr<TraceSource>()> factory,
                     std::size_t max_shared);

  /// Fetches record `index`, materializing up to it if necessary.
  /// Thread-safe; the record sequence is independent of caller interleaving
  /// because extension is serialized and append-only.
  ///
  /// If the underlying source ever throws (e.g. PcapError from a capture
  /// truncated mid-run), the error is STICKY: every later fetch that needs
  /// unmaterialized records rethrows the same exception instead of retrying
  /// the source — a second read of a dead FILE* reports 0 bytes, which
  /// would otherwise launder file corruption into a clean end-of-trace.
  /// Records published before the error stay readable.
  Fetch fetch(std::size_t index, PacketRecord& out);

  /// Fresh private instance of the underlying source (for cursor overflow).
  std::shared_ptr<TraceSource> make_private() const { return factory_(); }

  std::size_t max_shared() const { return max_shared_; }
  /// Records materialized so far (observability / tests).
  std::size_t materialized() const {
    return committed_.load(std::memory_order_acquire);
  }

  // Metadata forwarded from the underlying source (captured at creation).
  const std::string& name() const { return name_; }
  std::size_t flow_count_hint() const { return flow_count_hint_; }
  bool size_mix(std::vector<std::uint16_t>& sizes,
                std::vector<double>& weights) const;

 private:
  static constexpr std::size_t kChunk = 1 << 15;  // records per chunk

  const PacketRecord& at(std::size_t index) const {
    return (*chunks_[index / kChunk])[index % kChunk];
  }

  std::function<std::shared_ptr<TraceSource>()> factory_;
  std::size_t max_shared_;

  std::mutex extend_mutex_;                   // serializes materialization
  std::shared_ptr<TraceSource> source_;       // generation cursor (guarded)
  /// Chunk pointer slots are preallocated so readers never observe a
  /// reallocation; a chunk's records are fully written before `committed_`
  /// publishes them (release/acquire pairing).
  std::vector<std::unique_ptr<std::vector<PacketRecord>>> chunks_;
  std::atomic<std::size_t> committed_{0};
  std::atomic<std::size_t> end_at_{SIZE_MAX};  // EOF position, if ever hit
  std::exception_ptr error_;                   // sticky source error (guarded)

  std::string name_;
  std::size_t flow_count_hint_ = 0;
  bool has_mix_ = false;
  std::vector<std::uint16_t> mix_sizes_;
  std::vector<double> mix_weights_;
};

/// TraceSource view over a SharedTraceBacking: each cursor has its own
/// position; all cursors share the materialized records.
class SharedTraceCursor final : public TraceSource {
 public:
  explicit SharedTraceCursor(std::shared_ptr<SharedTraceBacking> backing)
      : backing_(std::move(backing)) {}

  std::optional<PacketRecord> next() override;
  void reset() override;
  std::size_t flow_count_hint() const override {
    return backing_->flow_count_hint();
  }
  std::string name() const override { return backing_->name(); }
  bool size_mix(std::vector<std::uint16_t>& sizes,
                std::vector<double>& weights) const override {
    return backing_->size_mix(sizes, weights);
  }

 private:
  std::shared_ptr<SharedTraceBacking> backing_;
  std::size_t pos_ = 0;
  /// Private continuation once pos_ crosses the sharing bound; recreated
  /// (and fast-forwarded) lazily after reset().
  std::shared_ptr<TraceSource> overflow_;
  bool overflow_ended_ = false;
};

/// Registry of shared trace backings, keyed by trace name. One store is
/// shared by every job of an experiment plan; opening the same name twice
/// returns independent cursors over the same immutable records.
class TraceStore {
 public:
  /// Default sharing bound per trace: 2M records (~50 MB) covers every
  /// default bench horizon; longer runs spill to private replay.
  static constexpr std::size_t kDefaultMaxShared = std::size_t{1} << 21;

  explicit TraceStore(std::size_t max_shared_records = kDefaultMaxShared);

  /// Cursor over the named trace (synthetic registry names, or any name
  /// previously registered with `register_trace`).
  std::shared_ptr<TraceSource> open(const std::string& name);

  /// Adds a custom source factory under `name` (tests, pcap files).
  void register_trace(const std::string& name,
                      std::function<std::shared_ptr<TraceSource>()> factory);

  /// Adapter for ScenarioOptions::trace_factory.
  std::function<std::shared_ptr<TraceSource>(const std::string&)> factory();

  /// Records materialized for `name` so far (0 if never opened).
  std::size_t materialized(const std::string& name) const;

 private:
  std::shared_ptr<SharedTraceBacking> backing_for(const std::string& name);

  std::size_t max_shared_;
  mutable std::mutex mutex_;
  std::map<std::string, std::function<std::shared_ptr<TraceSource>()>>
      registered_;
  std::map<std::string, std::shared_ptr<SharedTraceBacking>> backings_;
};

}  // namespace laps
