#include "exp/watchdog.h"

#include <algorithm>
#include <utility>

namespace laps {

namespace {

/// The active attempt's cancellation flag, visible to everything running
/// beneath the job body on this thread. Null outside an attempt.
thread_local const std::atomic<bool>* t_cancel_flag = nullptr;

}  // namespace

JobWatchdog::CancelScope::CancelScope(const std::atomic<bool>* flag)
    : previous_(t_cancel_flag) {
  t_cancel_flag = flag;
}

JobWatchdog::CancelScope::~CancelScope() { t_cancel_flag = previous_; }

void JobWatchdog::check_cancelled() {
  if (t_cancel_flag != nullptr &&
      t_cancel_flag->load(std::memory_order_relaxed)) {
    throw JobCancelled();
  }
}

JobWatchdog::JobWatchdog(std::chrono::nanoseconds timeout)
    : timeout_(timeout) {
  if (timeout <= std::chrono::nanoseconds::zero()) {
    throw std::invalid_argument("JobWatchdog: timeout must be positive");
  }
  // Scan at timeout/8 so overshoot stays near 12%, clamped into [1ms,
  // 250ms] so tiny timeouts don't spin and huge ones still shut down fast.
  const auto eighth =
      std::chrono::duration_cast<std::chrono::milliseconds>(timeout / 8);
  scan_period_ = std::clamp(eighth, std::chrono::milliseconds(1),
                            std::chrono::milliseconds(250));
  monitor_ = std::thread([this] { monitor(); });
}

JobWatchdog::~JobWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  monitor_.join();
}

std::shared_ptr<JobWatchdog::Ticket> JobWatchdog::watch() {
  auto ticket = std::make_shared<Ticket>();
  ticket->deadline = std::chrono::steady_clock::now() + timeout_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tickets_.push_back(ticket);
  }
  cv_.notify_all();
  return ticket;
}

void JobWatchdog::release(const std::shared_ptr<Ticket>& ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  tickets_.erase(std::remove(tickets_.begin(), tickets_.end(), ticket),
                 tickets_.end());
}

void JobWatchdog::monitor() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    const auto now = std::chrono::steady_clock::now();
    for (const std::shared_ptr<Ticket>& ticket : tickets_) {
      if (now >= ticket->deadline &&
          !ticket->cancelled.load(std::memory_order_relaxed)) {
        ticket->cancelled.store(true, std::memory_order_relaxed);
        // Wake the worker blocked in run_job_attempt; lock order is safe
        // because workers never hold the watchdog mutex while waiting.
        std::lock_guard<std::mutex> ticket_lock(ticket->mutex);
        ticket->cv.notify_all();
      }
    }
    cv_.wait_for(lock, scan_period_);
  }
}

AttemptOutcome run_job_attempt(const std::function<SimReport()>& job,
                               JobWatchdog* watchdog) {
  AttemptOutcome out;
  if (watchdog == nullptr) {
    try {
      out.report = job();
      out.ok = true;
    } catch (const JobCancelled&) {
      out.timed_out = true;  // a stale flag from an enclosing scope
    } catch (...) {
      out.error = std::current_exception();
    }
    return out;
  }

  // Everything the attempt thread touches after detachment must be owned by
  // this shared state (including its own copy of the job closure): an
  // abandoned thread may wake long after the worker has moved on to the
  // next grid cell, or even after run() returned.
  struct Shared {
    std::shared_ptr<JobWatchdog::Ticket> ticket;
    std::function<SimReport()> job;
    SimReport report;
    std::exception_ptr error;
    bool cancelled_seen = false;
  };
  auto shared = std::make_shared<Shared>();
  shared->ticket = watchdog->watch();
  shared->job = job;

  std::thread attempt([shared] {
    JobWatchdog::CancelScope scope(&shared->ticket->cancelled);
    SimReport report;
    std::exception_ptr error;
    bool cancelled = false;
    try {
      report = shared->job();
    } catch (const JobCancelled&) {
      cancelled = true;
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(shared->ticket->mutex);
    shared->report = std::move(report);
    shared->error = error;
    shared->cancelled_seen = cancelled;
    shared->ticket->finished = true;
    shared->ticket->cv.notify_all();
  });

  JobWatchdog::Ticket& ticket = *shared->ticket;
  bool finished = false;
  {
    std::unique_lock<std::mutex> lock(ticket.mutex);
    ticket.cv.wait(lock, [&] {
      return ticket.finished || ticket.cancelled.load(std::memory_order_relaxed);
    });
    if (!ticket.finished) {
      // Cancelled: grant one timeout's worth of grace for a cooperative
      // unwind (or for a result that was milliseconds away).
      ticket.cv.wait_for(lock, watchdog->timeout(),
                         [&] { return ticket.finished; });
    }
    finished = ticket.finished;
  }
  watchdog->release(shared->ticket);

  if (!finished) {
    // Runaway job: abandon the thread. `shared` keeps the closure and the
    // result slots alive for whenever (if ever) it completes.
    attempt.detach();
    out.timed_out = true;
    out.abandoned = true;
    return out;
  }
  attempt.join();
  if (shared->cancelled_seen) {
    out.timed_out = true;
  } else if (shared->error != nullptr) {
    out.error = shared->error;
  } else {
    // Includes finishes inside the grace window after a cancellation: the
    // result is complete and — by the determinism contract — identical to
    // an un-delayed run's, so take it rather than discard finished work.
    out.ok = true;
    out.report = std::move(shared->report);
  }
  return out;
}

}  // namespace laps
