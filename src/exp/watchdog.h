#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/report.h"
#include "util/time.h"

namespace laps {

/// A failure the runner should retry: the job itself believes a rerun can
/// succeed (injected chaos faults, resource exhaustion that may clear).
/// Anything else thrown by a job is contained but fails the cell
/// immediately — retrying a deterministic bug wastes the grid's time.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown out of a job that observed its watchdog cancellation flag (via
/// JobWatchdog::check_cancelled). Counted as a timeout, not an error type
/// of its own: cooperative and abandoned cancellations must classify the
/// same way or retry behavior would depend on how politely a job dies.
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled() : std::runtime_error("job cancelled by watchdog") {}
};

/// Watchdog for grid job attempts. Each attempt registers a ticket carrying
/// its deadline; a single monitor thread scans tickets and, past the
/// deadline, sets the ticket's cancellation flag and wakes the waiting
/// worker. Cancellation is cooperative-first: the attempt thread sees the
/// flag through check_cancelled() (wired into the chaos hang injector, and
/// available to any job body) and unwinds with JobCancelled. Attempts that
/// never poll are *abandoned* after a grace period — the worker detaches
/// the attempt thread and moves on; the attempt's closure and result slots
/// are shared_ptr-owned so the zombie's eventual writes land in memory
/// nothing else reads.
class JobWatchdog {
 public:
  struct Ticket {
    std::mutex mutex;
    std::condition_variable cv;
    bool finished = false;  ///< attempt ran to completion (ok or thrown)
    std::atomic<bool> cancelled{false};
    std::chrono::steady_clock::time_point deadline;
  };

  /// `timeout` is the per-attempt wall-clock budget; must be positive.
  explicit JobWatchdog(std::chrono::nanoseconds timeout);
  ~JobWatchdog();

  JobWatchdog(const JobWatchdog&) = delete;
  JobWatchdog& operator=(const JobWatchdog&) = delete;

  /// Registers a new attempt starting now. The returned ticket stays valid
  /// until release()d.
  std::shared_ptr<Ticket> watch();

  /// Unregisters a ticket (attempt finished, or was abandoned).
  void release(const std::shared_ptr<Ticket>& ticket);

  std::chrono::nanoseconds timeout() const { return timeout_; }

  /// Throws JobCancelled if the calling thread's current attempt has been
  /// cancelled. No-op on threads without an active attempt, so probes and
  /// scenario code may call it unconditionally.
  static void check_cancelled();

  /// RAII binding of a ticket's cancellation flag to the calling (attempt)
  /// thread, making check_cancelled() work from anywhere beneath the job.
  class CancelScope {
   public:
    explicit CancelScope(const std::atomic<bool>* flag);
    ~CancelScope();

   private:
    const std::atomic<bool>* previous_;
  };

 private:
  void monitor();

  std::chrono::nanoseconds timeout_;
  std::chrono::milliseconds scan_period_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::vector<std::shared_ptr<Ticket>> tickets_;
  std::thread monitor_;
};

/// Outcome of one watched attempt.
struct AttemptOutcome {
  bool ok = false;
  bool timed_out = false;          ///< watchdog fired (cooperative or not)
  bool abandoned = false;          ///< attempt thread was detached
  std::exception_ptr error;        ///< set when the job threw (not timeout)
  SimReport report;                ///< valid only when ok
};

/// Runs `job` once under `watchdog` (null = no timeout, run inline). With a
/// watchdog, the job runs on its own thread; if the deadline passes, the
/// cancellation flag is raised and the worker waits one more scan period of
/// grace for a cooperative unwind before detaching the thread. A job that
/// finishes within the grace window still counts as a success — the work is
/// done; killing it on a technicality would waste it.
AttemptOutcome run_job_attempt(const std::function<SimReport()>& job,
                               JobWatchdog* watchdog);

}  // namespace laps
