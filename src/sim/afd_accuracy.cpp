#include "sim/afd_accuracy.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/fileio.h"
#include "util/json_writer.h"

namespace laps {

AfdAccuracyProbe::AfdAccuracyProbe(const Scheduler& scheduler, std::size_t k)
    : scheduler_(&scheduler), k_(k) {
  if (k == 0) throw std::invalid_argument("AfdAccuracyProbe: k must be >= 1");
}

void AfdAccuracyProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  truth_.reset();
  samples_.clear();
}

void AfdAccuracyProbe::on_arrival(TimeNs, const SimPacket& pkt) {
  truth_.access(pkt.flow_key());
}

void AfdAccuracyProbe::on_epoch(TimeNs now, std::span<const CoreView>) {
  sample_now(now);
}

void AfdAccuracyProbe::on_run_end(const RunEnd& end) {
  // Always close with a sample at the drain end: short runs (or runs
  // without epochs) still report final accuracy, and the last row scores
  // the AFC against the full run's ground truth — the offline fig8 number.
  sample_now(end.end);
}

void AfdAccuracyProbe::sample_now(TimeNs now) {
  Sample s;
  s.t = now;
  s.distinct_flows = truth_.distinct();
  if (s.distinct_flows == 0) {
    samples_.push_back(s);
    return;
  }

  const std::vector<std::uint64_t> claimed = scheduler_->aggressive_snapshot();
  const std::vector<std::uint64_t> top = truth_.top_k(k_);
  const std::unordered_set<std::uint64_t> top_set(top.begin(), top.end());

  s.claimed = claimed.size();
  std::uint64_t claimed_mass = 0;
  for (const std::uint64_t key : claimed) {
    if (top_set.count(key)) {
      ++s.true_positives;
      claimed_mass += truth_.count(key);
    } else {
      ++s.false_positives;
    }
  }
  std::uint64_t top_mass = 0;
  for (const std::uint64_t key : top) top_mass += truth_.count(key);

  // Denominator is min(k, distinct): with fewer flows than k in existence a
  // perfect detector must still score recall 1.0, not distinct/k.
  const std::size_t denom = std::min(k_, s.distinct_flows);
  if (s.claimed > 0) {
    s.precision = static_cast<double>(s.true_positives) /
                  static_cast<double>(s.claimed);
  }
  if (denom > 0) {
    s.recall = static_cast<double>(s.true_positives) /
               static_cast<double>(denom);
  }
  if (top_mass > 0) {
    s.weighted_recall = static_cast<double>(claimed_mass) /
                        static_cast<double>(top_mass);
  }
  samples_.push_back(s);
}

std::string AfdAccuracyProbe::to_json() const {
  // Same envelope as exp/harness artifact_json (schema laps-bench-v1).
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", "afd_accuracy");
  w.field("scenario", info_.scenario);
  w.field("scheduler", info_.scheduler);
  w.field("k", static_cast<std::uint64_t>(k_));
  w.key("reports");
  w.begin_array();
  w.end_array();
  w.key("tables");
  w.begin_array();
  w.begin_object();
  w.field("title", "afd_accuracy");
  static const char* const kHeaders[] = {
      "t_us",      "claimed", "true_pos",        "false_pos",
      "precision", "recall",  "weighted_recall", "distinct_flows"};
  w.key("headers");
  w.begin_array();
  for (const char* h : kHeaders) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (const Sample& s : samples_) {
    w.begin_array();
    w.value(to_us(s.t));
    w.value(static_cast<std::uint64_t>(s.claimed));
    w.value(static_cast<std::uint64_t>(s.true_positives));
    w.value(static_cast<std::uint64_t>(s.false_positives));
    w.value(s.precision);
    w.value(s.recall);
    w.value(s.weighted_recall);
    w.value(static_cast<std::uint64_t>(s.distinct_flows));
    w.end_array();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void AfdAccuracyProbe::write(const std::string& path) const {
  util::write_file_atomic(path, to_json(), "afd-accuracy artifact");
}

}  // namespace laps
