#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/topk.h"
#include "sim/probe.h"

namespace laps {

/// Online AFD accuracy: scores the scheduler's live aggressive-flow set
/// (Scheduler::aggressive_snapshot — the AFC contents for LAPS) against
/// exact per-flow packet counts at every epoch boundary, streaming the
/// Fig. 8 methodology through a running simulation instead of an offline
/// key replay.
///
/// Per sample: precision (1 − the paper's false-positive ratio), recall
/// against the exact top-k at that instant, and weighted recall (packet
/// mass of the claimed ∩ true top-k over the packet mass of the true
/// top-k — misses on rank-16 mice cost less than misses on rank-1
/// elephants). A final sample is always taken at run end, so short runs
/// without epochs still produce one row.
///
/// Requires SimEngineConfig::epoch_ns > 0 for the time series (the harness
/// sets it from the accuracy window flag). The snapshot call is read-only
/// by contract, so sampling never perturbs the detector under test.
class AfdAccuracyProbe final : public SimProbe {
 public:
  /// `scheduler` must outlive the probe. `k` is the ground-truth top-k the
  /// claims are scored against (the paper fixes 16, the AFC size).
  AfdAccuracyProbe(const Scheduler& scheduler, std::size_t k = 16);

  void on_run_begin(const RunInfo& info) override;
  void on_arrival(TimeNs now, const SimPacket& pkt) override;
  void on_epoch(TimeNs now, std::span<const CoreView> cores) override;
  void on_run_end(const RunEnd& end) override;

  /// One accuracy measurement at simulated time `t`.
  struct Sample {
    TimeNs t = 0;
    std::size_t claimed = 0;          ///< flows the scheduler called aggressive
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    std::size_t distinct_flows = 0;   ///< flows seen so far (truth size)
    double precision = 0.0;           ///< TP / claimed (1 − FPR); 0 if none
    double recall = 0.0;              ///< TP / min(k, distinct)
    double weighted_recall = 0.0;     ///< packet-mass recall over true top-k
  };

  std::size_t k() const { return k_; }
  const std::vector<Sample>& samples() const { return samples_; }
  const ExactTopK& truth() const { return truth_; }

  /// Full laps-bench-v1 document (one table titled "afd_accuracy").
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  void sample_now(TimeNs now);

  const Scheduler* scheduler_;
  std::size_t k_;
  RunInfo info_;
  ExactTopK truth_;
  std::vector<Sample> samples_;
};

}  // namespace laps
