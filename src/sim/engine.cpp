#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

void FlowBlock::grow(std::size_t need) {
  if (need > cap_) {
    const std::size_t new_cap = std::max<std::size_t>(
        64, std::bit_ceil(need));
    // The all-zeros record is the default (core lanes store id + 1), so
    // value-init is the entire initialization.
    std::vector<Record> next(new_cap);
    std::copy(block_.begin(),
              block_.begin() + static_cast<std::ptrdiff_t>(size_),
              next.begin());
    block_ = std::move(next);
    cap_ = new_cap;
  }
  size_ = need;
}

SimEngine::SimEngine(SimEngineConfig config, Scheduler& scheduler,
                     ProbeSet probes)
    : config_(config), scheduler_(scheduler), probes_(probes) {
  if (config_.num_cores == 0) {
    throw std::invalid_argument("SimEngine: 0 cores");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("SimEngine: 0 queue capacity");
  }
  cores_.reserve(config_.num_cores);
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    cores_.emplace_back(config_.queue_capacity);
  }
  views_.resize(config_.num_cores);
  for (CoreView& v : views_) v.idle_since = 0;  // all idle at t = 0
}

void SimEngine::sched_event(const SchedEvent& event) {
  for_probes([&](SimProbe& p) { p.on_sched_event(now_, event); });
}

void SimEngine::emit_epochs_until(TimeNs t) {
  // Emit one epoch per crossed boundary, carrying the queue state as of
  // the boundary instant (no event fires inside (now_, boundary], so the
  // current views ARE the boundary state).
  while (next_epoch_ <= t) {
    const TimeNs boundary = next_epoch_;
    next_epoch_ += config_.epoch_ns;
    for_probes([&](SimProbe& p) {
      p.on_epoch(boundary, {views_.data(), views_.size()});
    });
  }
}

void SimEngine::run(ArrivalStream& arrivals, const std::string& scenario) {
  RunInfo info;
  info.scenario = scenario;
  info.scheduler = scheduler_.name();
  info.num_cores = config_.num_cores;
  info.queue_capacity = config_.queue_capacity;
  info.restore_order = config_.restore_order;
  for_probes([&](SimProbe& p) { p.on_run_begin(info); });

  scheduler_.set_event_sink(probes_.empty() ? nullptr : this);
  scheduler_.attach(config_.num_cores);

  // Pre-size the flow block when the generator knows its population.
  flows_.ensure(arrivals.total_flows() > 0
                    ? static_cast<std::uint32_t>(arrivals.total_flows() - 1)
                    : 0);

  const bool epochs = config_.epoch_ns > 0 && !probes_.empty();
  next_epoch_ = config_.epoch_ns;

  auto arrival = arrivals.next();
  TimeNs horizon = 0;
  // Flow records are a random access into a block that outgrows the cache
  // for realistic trace populations; start fetching the next arrival's
  // record while earlier events are still being processed.
  if (arrival && arrival->gflow < flows_.size()) {
    __builtin_prefetch(&flows_.at(arrival->gflow), 1);
  }

  while (arrival || !completions_.empty()) {
    // Completions at the same tick run before arrivals: the freed queue
    // slot is visible to a simultaneously arriving packet, matching
    // hardware where dequeue happens early in the cycle.
    if (arrival &&
        (completions_.empty() || arrival->time < completions_.top_time())) {
      if (epochs) emit_epochs_until(arrival->time);
      now_ = arrival->time;
      horizon = now_;
      SimPacket pkt;
      pkt.arrival = arrival->time;
      pkt.tuple = arrival->record.tuple;
      pkt.gflow = arrival->gflow;
      pkt.size_bytes = arrival->record.size_bytes;
      pkt.service = arrival->service;
      handle_arrival(pkt);
      arrival = arrivals.next();
      if (arrival && arrival->gflow < flows_.size()) {
        __builtin_prefetch(&flows_.at(arrival->gflow), 1);
      }
    } else {
      const Completion c = completions_.pop();
      if (epochs) emit_epochs_until(c.time);
      now_ = c.time;
      handle_completion(c.core);
    }
  }

  TimeNs busy_total = 0;
  for (const CoreState& core : cores_) busy_total += core.busy_total;

  RunEnd end;
  end.horizon = horizon;
  end.end = now_ > horizon ? now_ : horizon;
  end.busy_total = busy_total;
  end.extra = scheduler_.extra_stats();
  if (config_.restore_order) {
    end.extra["rob_max_occupancy"] =
        static_cast<double>(rob_.max_occupancy());
    end.extra["rob_buffered_packets"] =
        static_cast<double>(rob_.buffered_total());
    end.extra["rob_mean_held_us"] =
        rob_.buffered_total() > 0
            ? to_us(rob_.total_held_ns()) /
                  static_cast<double>(rob_.buffered_total())
            : 0.0;
    end.extra["rob_released_packets"] =
        static_cast<double>(rob_.released_total());
    end.extra["rob_stranded_packets"] =
        static_cast<double>(rob_.occupancy());
  }
  for_probes([&](SimProbe& p) { p.on_run_end(end); });
  scheduler_.set_event_sink(nullptr);
}

void SimEngine::handle_arrival(SimPacket pkt) {
  flows_.ensure(pkt.gflow);
  pkt.seq = flows_.ingress_seq(pkt.gflow)++;

  for_probes([&](SimProbe& p) { p.on_arrival(now_, pkt); });

  const CoreId target = scheduler_.schedule(pkt, *this);
  if (target >= cores_.size()) {
    throw std::logic_error("scheduler returned invalid core id");
  }

  CoreState& core = cores_[target];
  CoreView& view = views_[target];
  if (view.queue_len >= config_.queue_capacity) {
    for_probes([&](SimProbe& p) { p.on_drop(now_, pkt, target); });
    if (config_.restore_order) {
      // The egress buffer must not wait for a packet that will never
      // complete; the drop may release held successors.
      rob_.on_drop(pkt.gflow, pkt.seq, now_);
    }
    return;
  }

  // Flow-migration accounting at dispatch (Fig. 9c counts migrations, i.e.
  // consecutive packets of a flow sent to different cores). 0 = no
  // previous core (the lane stores core id + 1).
  std::uint32_t& prev = flows_.last_assigned_plus1(pkt.gflow);
  const bool migrated = prev != 0 && prev != target + 1;
  prev = target + 1;
  for_probes([&](SimProbe& p) { p.on_dispatch(now_, pkt, target, migrated); });

  core.queue.push_back(pkt);
  ++view.queue_len;
  view.idle_since = -1;
  if (!view.busy) start_service(target);
}

void SimEngine::start_service(CoreId core_id) {
  CoreState& core = cores_[core_id];
  CoreView& view = views_[core_id];
  if (core.queue.empty()) throw std::logic_error("start_service: empty queue");

  core.in_service = core.queue.front();
  core.queue.pop_front();
  --view.queue_len;

  const SimPacket& pkt = core.in_service;
  std::uint32_t& last_proc = flows_.last_proc_plus1(pkt.gflow);
  const bool migrated = last_proc != 0 && last_proc != core_id + 1;
  const bool cold =
      core.last_service >= 0 &&
      core.last_service != static_cast<std::int32_t>(pkt.service);
  last_proc = core_id + 1;
  core.last_service = static_cast<std::int32_t>(pkt.service);
  view.busy = true;

  const TimeNs delay =
      config_.delay.packet_delay(pkt.service, pkt.size_bytes, migrated, cold);
  core.busy_total += delay;
  completions_.push(Completion{now_ + delay, core_id});
  for_probes([&](SimProbe& p) {
    p.on_service_start(now_, pkt, core_id, delay, migrated, cold);
  });
}

void SimEngine::handle_completion(CoreId core_id) {
  CoreState& core = cores_[core_id];
  CoreView& view = views_[core_id];
  const SimPacket& pkt = core.in_service;

  std::uint32_t new_ooo = 0;
  if (config_.restore_order) {
    // The wire sees the ReorderBuffer's output, which is ordered by
    // construction; still run the detector over released packets so a
    // buffer bug would surface as nonzero out_of_order.
    for (const ReorderBuffer::Released& rel :
         rob_.on_complete(pkt.gflow, pkt.seq, now_)) {
      std::uint32_t& hi = flows_.egress_hi(rel.gflow);
      if (rel.seq + 1 < hi) {
        ++new_ooo;
      } else {
        hi = rel.seq + 1;
      }
    }
  } else {
    // Out-of-order detection: a departure below the per-flow high-water
    // mark means a later-arriving packet of the same flow already left.
    std::uint32_t& hi = flows_.egress_hi(pkt.gflow);
    if (pkt.seq + 1 < hi) {
      ++new_ooo;
    } else {
      hi = pkt.seq + 1;
    }
  }
  for_probes([&](SimProbe& p) {
    p.on_departure(now_, pkt, core_id, new_ooo);
  });

  view.busy = false;
  if (!core.queue.empty()) {
    start_service(core_id);
  } else {
    view.idle_since = now_;
  }
}

}  // namespace laps
