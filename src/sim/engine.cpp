#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/fault.h"

namespace laps {

void FlowBlock::grow(std::size_t need) {
  if (need > cap_) {
    const std::size_t new_cap = std::max<std::size_t>(
        64, std::bit_ceil(need));
    // The all-zeros record is the default (core lanes store id + 1), so
    // value-init is the entire initialization.
    std::vector<Record> next(new_cap);
    std::copy(block_.begin(),
              block_.begin() + static_cast<std::ptrdiff_t>(size_),
              next.begin());
    block_ = std::move(next);
    cap_ = new_cap;
  }
  size_ = need;
}

SimEngine::SimEngine(SimEngineConfig config, Scheduler& scheduler,
                     ProbeSet probes)
    : config_(config), scheduler_(scheduler), probes_(probes) {
  if (config_.num_cores == 0) {
    throw std::invalid_argument("SimEngine: 0 cores");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("SimEngine: 0 queue capacity");
  }
  cores_.reserve(config_.num_cores);
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    cores_.emplace_back(config_.queue_capacity);
  }
  views_.resize(config_.num_cores);
  for (CoreView& v : views_) v.idle_since = 0;  // all idle at t = 0
  completions_.select(config_.event_queue);

  if (config_.faults != nullptr && !config_.faults->empty()) {
    config_.faults->validate(config_.num_cores);
    faults_on_ = true;
    down_.assign(config_.num_cores, 0);
    slow_.assign(config_.num_cores, 1.0);
    stall_until_.assign(config_.num_cores, 0);
    resume_pending_.assign(config_.num_cores, 0);
  }
}

void SimEngine::sched_event(const SchedEvent& event) {
  for_probes([&](SimProbe& p) { p.on_sched_event(now_, event); });
}

void SimEngine::emit_epochs_until(TimeNs t) {
  // Emit one epoch per crossed boundary, carrying the queue state as of
  // the boundary instant (no event fires inside (now_, boundary], so the
  // current views ARE the boundary state).
  while (next_epoch_ <= t) {
    const TimeNs boundary = next_epoch_;
    next_epoch_ += config_.epoch_ns;
    for_probes([&](SimProbe& p) {
      p.on_epoch(boundary, {views_.data(), views_.size()});
    });
    emit_engine_sample(boundary);
  }
}

void SimEngine::emit_engine_sample(TimeNs t) {
  EngineSample sample;
  sample.completions = completions_handled_;
  sample.wheel_cascades = completions_.cascades();
  sample.flows = flows_.size();
  sample.rob_occupancy =
      config_.restore_order ? static_cast<std::uint64_t>(rob_.occupancy()) : 0;
  std::uint32_t live = static_cast<std::uint32_t>(config_.num_cores);
  if (faults_on_) {
    live = 0;
    for (const std::uint8_t d : down_) live += (d == 0);
  }
  sample.live_cores = live;
  for_probes([&](SimProbe& p) { p.on_engine_sample(t, sample); });
}

void SimEngine::run(ArrivalStream& arrivals, const std::string& scenario) {
  begin_run(scenario, arrivals.total_flows());

  auto arrival = arrivals.next();
  // Flow records are a random access into a block that outgrows the cache
  // for realistic trace populations; start fetching the next arrival's
  // record while earlier events are still being processed.
  if (arrival && arrival->gflow < flows_.size()) {
    __builtin_prefetch(&flows_.at(arrival->gflow), 1);
  }
  while (arrival) {
    feed(*arrival);
    arrival = arrivals.next();
    if (arrival && arrival->gflow < flows_.size()) {
      __builtin_prefetch(&flows_.at(arrival->gflow), 1);
    }
  }
  finish_run();
}

void SimEngine::begin_run(const std::string& scenario,
                          std::size_t total_flows) {
  RunInfo info;
  info.scenario = scenario;
  info.scheduler = scheduler_.name();
  info.num_cores = config_.num_cores;
  info.queue_capacity = config_.queue_capacity;
  info.restore_order = config_.restore_order;
  for_probes([&](SimProbe& p) { p.on_run_begin(info); });

  scheduler_.set_event_sink(probes_.empty() ? nullptr : this);
  scheduler_.attach(config_.num_cores);

  // Pre-size the flow block when the generator knows its population.
  flows_.ensure(total_flows > 0 ? static_cast<std::uint32_t>(total_flows - 1)
                                : 0);

  epochs_on_ = config_.epoch_ns > 0 && !probes_.empty();
  next_epoch_ = config_.epoch_ns;
  fault_next_ = 0;
  horizon_ = 0;
}

void SimEngine::apply_due_faults(TimeNs limit) {
  const std::vector<FaultEvent>& events = config_.faults->events;
  while (fault_next_ < events.size() && events[fault_next_].time <= limit) {
    apply_fault(events[fault_next_++], /*advance=*/true);
  }
}

void SimEngine::pop_completion() {
  const Completion c = completions_.pop();
  if (faults_on_) {
    if (c.resume) {
      // Stall expiry: advance the clock and retry the core.
      if (epochs_on_) emit_epochs_until(c.time);
      now_ = c.time;
      resume_pending_[c.core] = 0;
      maybe_resume(c.core);
      return;
    }
    if (c.gen != cores_[c.core].gen) return;  // flushed; clock frozen
  }
  if (epochs_on_) emit_epochs_until(c.time);
  now_ = c.time;
  ++completions_handled_;
  handle_completion(c.core);
}

void SimEngine::feed(const GeneratedPacket& arrival) {
  for (;;) {
    // Fault events execute first at their tick: a core_down at t flushes
    // before a completion or arrival at the same t runs, so the scheduler
    // sees the post-fault topology for the simultaneous packet.
    if (faults_on_ && fault_next_ < config_.faults->events.size()) {
      TimeNs next_t = arrival.time;
      if (!completions_.empty()) {
        next_t = std::min(next_t, completions_.top_time());
      }
      apply_due_faults(next_t);
    }
    // Completions at the same tick run before arrivals: the freed queue
    // slot is visible to a simultaneously arriving packet, matching
    // hardware where dequeue happens early in the cycle.
    if (!completions_.empty() && completions_.top_time() <= arrival.time) {
      pop_completion();
      continue;
    }
    break;
  }
  if (epochs_on_) emit_epochs_until(arrival.time);
  now_ = arrival.time;
  horizon_ = now_;
  SimPacket pkt;
  pkt.arrival = arrival.time;
  pkt.tuple = arrival.record.tuple;
  pkt.gflow = arrival.gflow;
  pkt.cluster_seq = arrival.cluster_seq;
  pkt.size_bytes = arrival.record.size_bytes;
  pkt.service = arrival.service;
  handle_arrival(pkt);
}

void SimEngine::advance_to(TimeNs t) {
  while (!completions_.empty() && completions_.top_time() <= t) {
    if (faults_on_) {
      apply_due_faults(completions_.top_time());
      // Defensive: faults never push completions, but re-check the bound.
      if (completions_.empty() || completions_.top_time() > t) break;
    }
    pop_completion();
  }
}

void SimEngine::finish_run() {
  while (!completions_.empty()) {
    if (faults_on_) {
      apply_due_faults(completions_.top_time());
      if (completions_.empty()) break;  // faults flushed the rest
    }
    pop_completion();
  }

  // Events scheduled past the drain point still apply (e.g. a trailing
  // core_up that balances an earlier down), with the clock frozen at the
  // drain time: they can no longer affect any packet.
  if (faults_on_) {
    const std::vector<FaultEvent>& events = config_.faults->events;
    while (fault_next_ < events.size()) {
      apply_fault(events[fault_next_++], /*advance=*/false);
    }
  }

  TimeNs busy_total = 0;
  for (const CoreState& core : cores_) busy_total += core.busy_total;

  RunEnd end;
  end.horizon = horizon_;
  end.end = now_ > horizon_ ? now_ : horizon_;
  end.busy_total = busy_total;
  end.extra = scheduler_.extra_stats();
  if (faults_on_) {
    end.extra["fault_events"] = static_cast<double>(fault_events_applied_);
    end.extra["fault_flush_drops"] =
        static_cast<double>(fault_flush_drops_);
    end.extra["fault_dead_route_drops"] =
        static_cast<double>(fault_dead_route_drops_);
    double down_now = 0;
    for (const std::uint8_t d : down_) down_now += d;
    end.extra["fault_cores_down_at_end"] = down_now;
  }
  if (config_.restore_order) {
    end.extra["rob_max_occupancy"] =
        static_cast<double>(rob_.max_occupancy());
    end.extra["rob_buffered_packets"] =
        static_cast<double>(rob_.buffered_total());
    end.extra["rob_mean_held_us"] =
        rob_.buffered_total() > 0
            ? to_us(rob_.total_held_ns()) /
                  static_cast<double>(rob_.buffered_total())
            : 0.0;
    end.extra["rob_released_packets"] =
        static_cast<double>(rob_.released_total());
    end.extra["rob_stranded_packets"] =
        static_cast<double>(rob_.occupancy());
  }
  if (!probes_.empty()) emit_engine_sample(end.end);
  for_probes([&](SimProbe& p) { p.on_run_end(end); });
  scheduler_.set_event_sink(nullptr);
}

void SimEngine::handle_arrival(SimPacket pkt) {
  flows_.ensure(pkt.gflow);
  pkt.seq = flows_.ingress_seq(pkt.gflow)++;

  for_probes([&](SimProbe& p) { p.on_arrival(now_, pkt); });

  const CoreId target = scheduler_.schedule(pkt, *this);
  if (target >= cores_.size()) {
    throw std::logic_error("scheduler returned invalid core id");
  }

  // A dead core accepts nothing: the packet is lost at the Frame Manager,
  // never enqueued (the no-packet-to-a-dead-core invariant). Schedulers
  // that honor notify_core_down never hit this; the counter exposes the
  // ones that do not.
  if (faults_on_ && down_[target] != 0) {
    ++fault_dead_route_drops_;
    for_probes([&](SimProbe& p) { p.on_drop(now_, pkt, target); });
    if (config_.restore_order) rob_.on_drop(pkt.gflow, pkt.seq, now_);
    return;
  }

  CoreState& core = cores_[target];
  CoreView& view = views_[target];
  if (view.queue_len >= config_.queue_capacity) {
    for_probes([&](SimProbe& p) { p.on_drop(now_, pkt, target); });
    if (config_.restore_order) {
      // The egress buffer must not wait for a packet that will never
      // complete; the drop may release held successors.
      rob_.on_drop(pkt.gflow, pkt.seq, now_);
    }
    return;
  }

  // Flow-migration accounting at dispatch (Fig. 9c counts migrations, i.e.
  // consecutive packets of a flow sent to different cores). 0 = no
  // previous core (the lane stores core id + 1).
  std::uint32_t& prev = flows_.last_assigned_plus1(pkt.gflow);
  const bool migrated = prev != 0 && prev != target + 1;
  prev = target + 1;
  for_probes([&](SimProbe& p) { p.on_dispatch(now_, pkt, target, migrated); });

  core.queue.push_back(pkt);
  ++view.queue_len;
  view.idle_since = -1;
  if (!view.busy) start_service(target);
}

void SimEngine::start_service(CoreId core_id) {
  CoreState& core = cores_[core_id];
  CoreView& view = views_[core_id];
  if (core.queue.empty()) throw std::logic_error("start_service: empty queue");

  // A stalled core keeps its queue (visible backpressure) but starts no
  // service until the stall expires; one wake-up per core at a time.
  if (faults_on_ && now_ < stall_until_[core_id]) {
    if (resume_pending_[core_id] == 0) {
      resume_pending_[core_id] = 1;
      completions_.push(
          Completion{stall_until_[core_id], core_id, 0, /*resume=*/true});
    }
    return;
  }

  core.in_service = core.queue.front();
  core.queue.pop_front();
  --view.queue_len;

  const SimPacket& pkt = core.in_service;
  std::uint32_t& last_proc = flows_.last_proc_plus1(pkt.gflow);
  const bool migrated = last_proc != 0 && last_proc != core_id + 1;
  const bool cold =
      core.last_service >= 0 &&
      core.last_service != static_cast<std::int32_t>(pkt.service);
  last_proc = core_id + 1;
  core.last_service = static_cast<std::int32_t>(pkt.service);
  view.busy = true;

  TimeNs delay =
      config_.delay.packet_delay(pkt.service, pkt.size_bytes, migrated, cold);
  if (faults_on_ && slow_[core_id] != 1.0) {
    delay = std::max<TimeNs>(
        1, static_cast<TimeNs>(static_cast<double>(delay) * slow_[core_id] +
                               0.5));
  }
  core.busy_total += delay;
  core.service_end = now_ + delay;
  completions_.push(Completion{core.service_end, core_id, core.gen, false});
  for_probes([&](SimProbe& p) {
    p.on_service_start(now_, pkt, core_id, delay, migrated, cold);
  });
}

void SimEngine::handle_completion(CoreId core_id) {
  CoreState& core = cores_[core_id];
  CoreView& view = views_[core_id];
  const SimPacket& pkt = core.in_service;

  std::uint32_t new_ooo = 0;
  if (config_.restore_order) {
    // The wire sees the ReorderBuffer's output, which is ordered by
    // construction; still run the detector over released packets so a
    // buffer bug would surface as nonzero out_of_order.
    for (const ReorderBuffer::Released& rel :
         rob_.on_complete(pkt.gflow, pkt.seq, now_)) {
      std::uint32_t& hi = flows_.egress_hi(rel.gflow);
      if (rel.seq + 1 < hi) {
        ++new_ooo;
      } else {
        hi = rel.seq + 1;
      }
    }
  } else {
    // Out-of-order detection: a departure below the per-flow high-water
    // mark means a later-arriving packet of the same flow already left.
    std::uint32_t& hi = flows_.egress_hi(pkt.gflow);
    if (pkt.seq + 1 < hi) {
      ++new_ooo;
    } else {
      hi = pkt.seq + 1;
    }
  }
  for_probes([&](SimProbe& p) {
    p.on_departure(now_, pkt, core_id, new_ooo);
  });

  view.busy = false;
  if (!core.queue.empty()) {
    start_service(core_id);
  } else {
    view.idle_since = now_;
  }
}

std::uint32_t SimEngine::flush_core(CoreId core_id) {
  CoreState& core = cores_[core_id];
  CoreView& view = views_[core_id];
  std::uint32_t flushed = 0;
  if (view.busy) {
    // The pending completion cannot be removed from the heap; bumping the
    // generation makes it stale. The unserved remainder of the packet's
    // service span never ran, so it comes back out of busy_total.
    ++core.gen;
    core.busy_total -= core.service_end - now_;
    for_probes([&](SimProbe& p) { p.on_drop(now_, core.in_service, core_id); });
    if (config_.restore_order) {
      rob_.on_drop(core.in_service.gflow, core.in_service.seq, now_);
    }
    ++flushed;
  }
  while (!core.queue.empty()) {
    const SimPacket pkt = core.queue.front();
    core.queue.pop_front();
    for_probes([&](SimProbe& p) { p.on_drop(now_, pkt, core_id); });
    if (config_.restore_order) rob_.on_drop(pkt.gflow, pkt.seq, now_);
    ++flushed;
  }
  // Down cores read as empty, not-busy and never idle-claimable, so
  // idle-timer schedulers cannot surplus-mark them.
  view = CoreView{};  // idle_since defaults to -1
  fault_flush_drops_ += flushed;
  return flushed;
}

void SimEngine::maybe_resume(CoreId core_id) {
  // start_service re-checks the stall window, so an extended stall simply
  // re-arms the wake-up.
  if (down_[core_id] == 0 && !views_[core_id].busy &&
      !cores_[core_id].queue.empty()) {
    start_service(core_id);
  }
}

void SimEngine::apply_fault(const FaultEvent& event, bool advance) {
  if (advance) {
    if (epochs_on_) emit_epochs_until(event.time);
    now_ = event.time;
  }
  std::uint32_t flushed = 0;
  SchedEvent::Kind kind = SchedEvent::Kind::kTrafficFault;
  switch (event.kind) {
    case FaultKind::kCoreDown: {
      kind = SchedEvent::Kind::kCoreDown;
      const auto core = static_cast<CoreId>(event.core);
      if (down_[core] == 0) {  // idempotent: double-down is a no-op
        flushed = flush_core(core);
        down_[core] = 1;
        scheduler_.notify_core_down(core, *this);
      }
      break;
    }
    case FaultKind::kCoreUp: {
      kind = SchedEvent::Kind::kCoreUp;
      const auto core = static_cast<CoreId>(event.core);
      if (down_[core] != 0) {
        down_[core] = 0;
        views_[core].idle_since = now_;  // rejoins the pool idle
        scheduler_.notify_core_up(core, *this);
      }
      break;
    }
    case FaultKind::kCoreSlowdown:
      kind = SchedEvent::Kind::kCoreSlowdown;
      slow_[static_cast<std::size_t>(event.core)] = event.factor;
      break;
    case FaultKind::kCoreStall: {
      kind = SchedEvent::Kind::kCoreStall;
      const auto core = static_cast<std::size_t>(event.core);
      stall_until_[core] =
          std::max(stall_until_[core], event.time + event.duration);
      break;
    }
    case FaultKind::kCollisionBurst:
    case FaultKind::kFlashCrowd:
      // Realized by FaultTrafficStream; executed here only as a timeline
      // marker so probes can correlate load spikes with the schedule.
      break;
  }
  ++fault_events_applied_;
  if (!probes_.empty()) {
    SchedEvent se;
    se.kind = kind;
    se.core = event.is_core_event() ? event.core : -1;
    // Stamped with the event's own time: trailing events apply with the
    // simulation clock frozen at the drain point.
    for_probes([&](SimProbe& p) {
      p.on_sched_event(event.time, se);
      p.on_fault(event.time, event, flushed);
    });
  }
}

}  // namespace laps
