#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/event_heap.h"
#include "sim/packet.h"
#include "sim/timing_wheel.h"
#include "sim/probe.h"
#include "sim/reorder_buffer.h"
#include "sim/ring_queue.h"
#include "sim/scheduler.h"
#include "traffic/generator.h"
#include "traffic/workload.h"

namespace laps {

struct FaultPlan;  // sim/fault.h

/// Static configuration of the simulation kernel (paper Sec. II and IV-C:
/// Frame Manager feeding per-core input queues of 32 descriptors).
struct SimEngineConfig {
  std::size_t num_cores = 16;
  std::uint32_t queue_capacity = 32;
  DelayModel delay;
  /// If true, completions pass through an egress ReorderBuffer that
  /// restores per-flow order (the Shi et al. [35] alternative). The wire
  /// output is then perfectly ordered (`out_of_order` counts released
  /// packets, i.e. 0) and the buffer's cost shows up in the report's
  /// `rob_*` extra fields.
  bool restore_order = false;
  /// When positive, probes receive on_epoch at every multiple of this
  /// simulated-time interval (queue-depth sampling for time series).
  /// Epochs never alter the simulated physics.
  TimeNs epoch_ns = 0;
  /// Optional fault schedule (must outlive the engine; events sorted —
  /// validated against num_cores at construction). Core events execute as
  /// first-class simulation events; traffic events are markers here (the
  /// arrival stream realizes them, see FaultTrafficStream). Null or empty:
  /// the fault machinery costs one predicted branch per event
  /// (pay-for-what-you-use, gated by perf_kernel's bare-engine row).
  const FaultPlan* faults = nullptr;
  /// Which completion-queue implementation drives the event loop. The
  /// hierarchical TimingWheel is the default; the binary EventHeap is kept
  /// as the differential oracle (--event-queue=heap). Both implement the
  /// same (time, insertion-sequence) ordering, so runs are bit-identical
  /// either way — asserted by the differential property suite.
  EventQueueKind event_queue = EventQueueKind::kWheel;
};

/// Per-flow simulator state packed into a single block: four 4-byte lanes
/// (ingress seq, egress high-water, last assigned core, last processing
/// core) in one contiguous allocation, indexed by the dense global flow id.
/// The lanes of one flow are *interleaved* — a 16-byte record per flow —
/// because the kernel touches three of the four on every packet: with flow
/// populations in the hundreds of thousands the state does not fit in L2,
/// and one cache line per flow beats the three or four that per-lane arrays
/// (the seed Npu's layout) cost.
class FlowBlock {
 public:
  /// One flow's record. alignas(16) keeps records from straddling cache
  /// lines (4 records per 64-byte line, exactly), so the packet lifecycle
  /// pays at most one miss for all four lanes. Core lanes hold core id +
  /// 1, with 0 meaning "no previous core": the empty record is all-zeros,
  /// so growing the block is a zero-fill plus one memcpy — no scalar
  /// initialization pass over multi-megabyte flow populations.
  struct alignas(16) Record {
    std::uint32_t ingress_seq = 0;
    std::uint32_t egress_hi = 0;
    std::uint32_t last_assigned_plus1 = 0;
    std::uint32_t last_proc_plus1 = 0;
  };

  std::size_t size() const { return size_; }

  /// Grows (geometrically) so `gflow` is a valid index. New entries start
  /// as seq 0 / high-water 0 / no previous core.
  void ensure(std::uint32_t gflow) {
    if (gflow < size_) return;
    grow(static_cast<std::size_t>(gflow) + 1);
  }

  Record& at(std::uint32_t f) { return block_[f]; }
  const Record& at(std::uint32_t f) const { return block_[f]; }

  std::uint32_t& ingress_seq(std::uint32_t f) { return block_[f].ingress_seq; }
  std::uint32_t& egress_hi(std::uint32_t f) { return block_[f].egress_hi; }
  std::uint32_t& last_assigned_plus1(std::uint32_t f) {
    return block_[f].last_assigned_plus1;
  }
  std::uint32_t& last_proc_plus1(std::uint32_t f) {
    return block_[f].last_proc_plus1;
  }

 private:
  void grow(std::size_t need);

  std::vector<Record> block_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// The simulation kernel: a flat, allocation-free discrete-event loop over
/// ring-buffer core queues, with all measurement externalized to SimProbe
/// hooks (see probe.h).
///
/// Physics are identical to the seed Npu (same event ordering, same Eq. 3
/// delay charging, same drop/reorder accounting) — the golden determinism
/// suite asserts byte-identical reports. What changed is structure:
///
///  - per-core input queues are fixed-capacity RingQueues (no deque chunk
///    allocation on the fast path);
///  - per-flow state lives in one FlowBlock struct-of-arrays allocation;
///  - simulator-private per-core state (in-service packet, busy time,
///    I-cache service) is hard-separated from the scheduler-observable
///    CoreView, so schedulers structurally cannot read it;
///  - nothing is measured inline: probes observe arrivals, dispatches,
///    drops, service spans, departures, epochs, and scheduler-internal
///    events. With no probes attached the kernel does no reporting work at
///    all (the perf_kernel baseline).
///
/// Per arriving packet: the scheduler under test picks a core; if that
/// core's input queue is full the packet is dropped (Sec. IV-C2), otherwise
/// it is enqueued. Cores serve their queue FIFO, one packet at a time, with
/// the per-packet delay of Eq. 3. After the generator horizon, queued
/// packets are drained to completion, so offered == delivered + dropped
/// holds exactly for every run. One engine instance runs once.
class SimEngine final : public NpuView, public SchedEventSink {
 public:
  SimEngine(SimEngineConfig config, Scheduler& scheduler,
            ProbeSet probes = {});

  /// Runs the full simulation. `scenario` is a label passed to probes.
  /// Results are whatever the attached probes collected (e.g.
  /// ReportProbe::report()).
  void run(ArrivalStream& arrivals, const std::string& scenario);

  // --- Stepping interface -------------------------------------------------
  // run() is exactly begin_run + feed(one call per arrival, nondecreasing
  // times) + finish_run; the golden determinism suites prove the
  // decomposition bit-identical. External drivers (the cluster fabric in
  // src/cluster) use it to interleave several engines on one merged clock:
  // feed a batch of arrivals, then advance_to(t) to settle every completion
  // (and due fault) up to the sync barrier. One engine instance still runs
  // exactly once.

  /// Opens a run: probes' on_run_begin, scheduler attach, flow-block
  /// pre-size. `total_flows` is the stream's population hint (0 = unknown).
  void begin_run(const std::string& scenario, std::size_t total_flows);
  /// Processes one arrival, first settling every completion and fault due
  /// strictly before (or tied with) it — identical ordering to run()'s
  /// loop. Arrival times must be nondecreasing across calls.
  void feed(const GeneratedPacket& arrival);
  /// Settles all completions with time <= t. Fault events stay lazy
  /// (applied only when a completion at or after them runs), exactly as
  /// run() would with a future arrival pending: a fault due in the settled
  /// window but after the last completion is applied by the next
  /// feed()/finish_run(), preserving the trailing-fault frozen-clock rule
  /// when the stream ends instead.
  void advance_to(TimeNs t);
  /// Drains remaining completions, applies trailing faults with the clock
  /// frozen, and emits the RunEnd epilogue to probes.
  void finish_run();
  /// Starts fetching `gflow`'s flow record — the same hide-the-miss hint
  /// run()'s own loop issues one arrival ahead; batch feeders (the cluster
  /// shard tasks) call it so the stepping path keeps run()'s memory-level
  /// parallelism. Purely advisory: no effect on results.
  void prefetch_flow(std::uint32_t gflow) const {
    if (gflow < flows_.size()) __builtin_prefetch(&flows_.at(gflow), 1);
  }

  // NpuView (what the scheduler is allowed to observe):
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {views_.data(), views_.size()};
  }
  std::uint32_t queue_capacity() const override {
    return config_.queue_capacity;
  }

  // SchedEventSink: timestamps scheduler-internal events with the
  // simulated clock and fans them out to the probes.
  void sched_event(const SchedEvent& event) override;

 private:
  /// Simulator-private per-core state. Schedulers never see this struct;
  /// they get the CoreView span only.
  struct CoreState {
    explicit CoreState(std::uint32_t queue_capacity)
        : queue(queue_capacity) {}
    RingQueue<SimPacket> queue;
    SimPacket in_service;
    TimeNs busy_total = 0;
    TimeNs service_end = 0;          ///< when the in-service packet completes
    std::int32_t last_service = -1;  ///< I-cache contents (CC_penalty)
    /// Bumped by a core_down flush so the flushed packet's pending
    /// completion is recognized as stale when it pops (events in the heap
    /// cannot be cancelled).
    std::uint32_t gen = 0;
  };

  struct Completion {
    TimeNs time;
    CoreId core;
    std::uint32_t gen = 0;
    /// A stall-expiry wake-up, not a packet completion: re-attempt
    /// start_service on `core` (gen is ignored).
    bool resume = false;
  };

  /// Runtime-switchable completion queue: one predictable branch per
  /// operation selects the TimingWheel (the default) or the retained
  /// EventHeap oracle, so one engine binary replays any scenario through
  /// either implementation (--event-queue=heap|wheel) and the differential
  /// suite can assert the physics are bit-identical.
  class CompletionQueue {
   public:
    void select(EventQueueKind kind) { kind_ = kind; }
    bool empty() const {
      return kind_ == EventQueueKind::kWheel ? wheel_.empty() : heap_.empty();
    }
    // Non-const: the wheel's peek lazily normalizes stale slots (it never
    // moves the wheel position — see TimingWheel docs).
    TimeNs top_time() {
      return kind_ == EventQueueKind::kWheel ? wheel_.top_time()
                                             : heap_.top_time();
    }
    void push(const Completion& c) {
      if (kind_ == EventQueueKind::kWheel) {
        wheel_.push(c);
      } else {
        heap_.push(c);
      }
    }
    Completion pop() {
      return kind_ == EventQueueKind::kWheel ? wheel_.pop() : heap_.pop();
    }
    /// Cascade count for telemetry (the wheel's amortized-work meter; the
    /// heap has no equivalent and reports 0).
    std::uint64_t cascades() const {
      return kind_ == EventQueueKind::kWheel ? wheel_.cascades() : 0;
    }

   private:
    EventQueueKind kind_ = EventQueueKind::kWheel;
    TimingWheel<Completion> wheel_;
    EventHeap<Completion> heap_;
  };

  void handle_arrival(SimPacket pkt);
  void handle_completion(CoreId core);
  /// Applies every not-yet-applied fault event with time <= limit,
  /// advancing the clock to each. Callers gate on faults_on_.
  void apply_due_faults(TimeNs limit);
  /// Pops and executes one completion (stall resume, stale-generation
  /// skip, or packet completion) — the body of run()'s completion branch.
  void pop_completion();
  void start_service(CoreId core);
  void emit_epochs_until(TimeNs t);
  /// Fans out on_engine_sample with current engine-internal state. Called
  /// per epoch boundary and once before on_run_end; probes-attached only.
  void emit_engine_sample(TimeNs t);
  /// Applies one fault event. `advance` moves the clock to event.time
  /// (epochs included); trailing events after drain apply frozen.
  void apply_fault(const FaultEvent& event, bool advance);
  /// Drops the queue and in-service packet of a failing core; returns the
  /// number of packets flushed.
  std::uint32_t flush_core(CoreId core);
  /// Restarts service after a stall expiry if the core can run.
  void maybe_resume(CoreId core);

  template <typename Fn>
  void for_probes(Fn&& fn) {
    for (SimProbe* probe : probes_.probes()) fn(*probe);
  }

  SimEngineConfig config_;
  Scheduler& scheduler_;
  ProbeSet probes_;
  TimeNs now_ = 0;
  TimeNs next_epoch_ = 0;
  std::vector<CoreState> cores_;
  std::vector<CoreView> views_;
  CompletionQueue completions_;
  std::uint64_t completions_handled_ = 0;  ///< for EngineSample telemetry
  FlowBlock flows_;
  ReorderBuffer rob_;  // used only when config_.restore_order

  // Fault state, sized only when config_.faults is a non-empty plan.
  bool faults_on_ = false;
  bool epochs_on_ = false;
  std::vector<std::uint8_t> down_;        ///< core currently failed
  std::vector<double> slow_;              ///< service-time multiplier (1.0)
  std::vector<TimeNs> stall_until_;       ///< no new service before this
  std::vector<std::uint8_t> resume_pending_;  ///< stall wake-up in heap
  std::uint64_t fault_events_applied_ = 0;
  std::uint64_t fault_flush_drops_ = 0;
  std::uint64_t fault_dead_route_drops_ = 0;

  // Stepping-run state (begin_run .. finish_run).
  std::size_t fault_next_ = 0;  ///< next unapplied config_.faults event
  TimeNs horizon_ = 0;          ///< last arrival time (RunEnd.horizon)
};

}  // namespace laps
