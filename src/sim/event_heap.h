#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/time.h"

namespace laps {

/// Binary min-heap event queue for discrete-event simulation.
///
/// Events are ordered by (time, insertion sequence): two events at the same
/// tick pop in the order they were scheduled — the FIFO invariant. This
/// makes simulations fully deterministic (std::priority_queue alone does
/// not guarantee a stable order for ties) and is the ordering contract the
/// TimingWheel replicates, so the differential suite can demand
/// bit-identical runs from either queue. `Ev` must expose a public
/// `TimeNs time` member.
///
/// The simulator's working set is tiny (one pending arrival plus one
/// completion per busy core), so a flat binary heap beats fancier calendar
/// queues on locality.
template <typename Ev>
class EventHeap {
 public:
  /// Schedules an event. O(log n).
  void push(Ev event) {
    heap_.push_back(Node{event.time, next_seq_++, std::move(event)});
    sift_up(heap_.size() - 1);
  }

  /// Earliest event. Heap must not be empty.
  const Ev& top() const {
    if (heap_.empty()) throw std::logic_error("EventHeap: top on empty");
    return heap_.front().event;
  }

  /// Time of the earliest event. Heap must not be empty.
  TimeNs top_time() const {
    if (heap_.empty()) throw std::logic_error("EventHeap: top_time on empty");
    return heap_.front().time;
  }

  /// Removes and returns the earliest event. O(log n).
  Ev pop() {
    if (heap_.empty()) throw std::logic_error("EventHeap: pop on empty");
    Ev out = std::move(heap_.front().event);
    // Guard the single-node case: moving back() onto front() would be a
    // self-move-assignment, which may leave the node in a valueless state
    // before pop_back() destroys it (UB for some Ev payloads).
    if (heap_.size() > 1) heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Empties the heap and resets the insertion sequence, so a cleared heap
  /// replays a schedule bit-identically to a fresh one. (Without the seq
  /// reset, same-tick ties after a clear would still order correctly among
  /// themselves, but any serialization of the counter — or a differential
  /// run against a fresh queue — would diverge.)
  void clear() {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  struct Node {
    TimeNs time;
    std::uint64_t seq;
    Ev event;

    bool before(const Node& other) const {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].before(heap_[parent])) return;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t first = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].before(heap_[first])) first = l;
      if (r < n && heap_[r].before(heap_[first])) first = r;
      if (first == i) return;
      std::swap(heap_[i], heap_[first]);
      i = first;
    }
  }

  std::vector<Node> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace laps
