#include "sim/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/fileio.h"
#include "util/json_writer.h"
#include "util/rng.h"

namespace laps {

namespace {

/// Largest unit that divides `t` exactly, so specs read naturally
/// ("10ms", not "10000000ns") and round-trip bit-exactly.
std::string format_time(TimeNs t) {
  if (t != 0 && t % kSecond == 0) return std::to_string(t / kSecond) + "s";
  if (t != 0 && t % kMillisecond == 0) {
    return std::to_string(t / kMillisecond) + "ms";
  }
  if (t != 0 && t % kMicrosecond == 0) {
    return std::to_string(t / kMicrosecond) + "us";
  }
  return std::to_string(t) + "ns";
}

/// Trims a compact double ("2", "1.5") without trailing zeros.
std::string format_double(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  std::string s = std::to_string(v);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

[[noreturn]] void bad_spec(const std::string& component,
                           const std::string& why) {
  throw std::invalid_argument("parse_fault_plan: " + why + " in '" +
                              component + "'");
}

/// "10ms" -> ticks. Accepts ns/us/ms/s suffixes and fractional numbers.
TimeNs parse_time(const std::string& text, const std::string& component) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(component, "bad time '" + text + "'");
  }
  const std::string unit = text.substr(pos);
  double scale = 0.0;
  if (unit == "ns") scale = 1.0;
  else if (unit == "us") scale = static_cast<double>(kMicrosecond);
  else if (unit == "ms") scale = static_cast<double>(kMillisecond);
  else if (unit == "s") scale = static_cast<double>(kSecond);
  else bad_spec(component, "time '" + text + "' needs a ns/us/ms/s suffix");
  if (value < 0) bad_spec(component, "negative time '" + text + "'");
  return static_cast<TimeNs>(value * scale + 0.5);
}

double parse_double(const std::string& text, const std::string& component,
                    const char* what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    bad_spec(component, std::string("bad ") + what + " '" + text + "'");
  }
  if (pos != text.size()) {
    bad_spec(component, std::string("bad ") + what + " '" + text + "'");
  }
  return value;
}

std::int32_t parse_core(const std::string& text,
                        const std::string& component) {
  const double v = parse_double(text, component, "core id");
  if (v < 0 || v != std::floor(v) || v > 1e6) {
    bad_spec(component, "bad core id '" + text + "'");
  }
  return static_cast<std::int32_t>(v);
}

/// "TIME+DUR" -> pair; DUR required iff `need_duration`.
void parse_time_span(const std::string& text, const std::string& component,
                     bool need_duration, TimeNs& time, TimeNs& duration) {
  const std::size_t plus = text.find('+');
  if (plus == std::string::npos) {
    if (need_duration) bad_spec(component, "expected TIME+DURATION");
    time = parse_time(text, component);
    duration = 0;
    return;
  }
  time = parse_time(text.substr(0, plus), component);
  duration = parse_time(text.substr(plus + 1), component);
  if (duration <= 0) bad_spec(component, "duration must be positive");
}

/// "rate=2,flows=16" (either order) for traffic events.
void parse_traffic_args(const std::string& text, const std::string& component,
                        FaultEvent& ev) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string kv = text.substr(start, comma - start);
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) bad_spec(component, "expected key=value");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "rate") {
      ev.rate_mpps = parse_double(value, component, "rate");
      if (ev.rate_mpps <= 0) bad_spec(component, "rate must be positive");
    } else if (key == "flows") {
      const double f = parse_double(value, component, "flow count");
      if (f < 1 || f != std::floor(f) || f > 1e7) {
        bad_spec(component, "bad flow count '" + value + "'");
      }
      ev.flows = static_cast<std::uint32_t>(f);
    } else {
      bad_spec(component, "unknown key '" + key + "'");
    }
    start = comma + 1;
  }
  if (ev.rate_mpps <= 0) bad_spec(component, "missing rate=");
  if (ev.flows == 0) bad_spec(component, "missing flows=");
}

FaultEvent parse_component(const std::string& component) {
  FaultEvent ev;
  const std::size_t at = component.find('@');
  if (at == std::string::npos) bad_spec(component, "missing '@TIME'");
  const std::string head = component.substr(0, at);
  std::string tail = component.substr(at + 1);

  if (head.rfind("down:", 0) == 0 || head.rfind("up:", 0) == 0) {
    const bool down = head[0] == 'd';
    ev.kind = down ? FaultKind::kCoreDown : FaultKind::kCoreUp;
    ev.core = parse_core(head.substr(down ? 5 : 3), component);
    ev.time = parse_time(tail, component);
  } else if (head.rfind("slow:", 0) == 0) {
    ev.kind = FaultKind::kCoreSlowdown;
    const std::string body = head.substr(5);
    const std::size_t x = body.find('x');
    if (x == std::string::npos) bad_spec(component, "expected CORExFACTOR");
    ev.core = parse_core(body.substr(0, x), component);
    ev.factor = parse_double(body.substr(x + 1), component, "factor");
    if (ev.factor <= 0) bad_spec(component, "factor must be positive");
    ev.time = parse_time(tail, component);
  } else if (head.rfind("stall:", 0) == 0) {
    ev.kind = FaultKind::kCoreStall;
    ev.core = parse_core(head.substr(6), component);
    parse_time_span(tail, component, /*need_duration=*/true, ev.time,
                    ev.duration);
  } else if (head == "burst" || head == "crowd") {
    ev.kind = head == "burst" ? FaultKind::kCollisionBurst
                              : FaultKind::kFlashCrowd;
    const std::size_t colon = tail.find(':');
    if (colon == std::string::npos) {
      bad_spec(component, "expected TIME+DUR:rate=...,flows=...");
    }
    parse_time_span(tail.substr(0, colon), component, /*need_duration=*/true,
                    ev.time, ev.duration);
    parse_traffic_args(tail.substr(colon + 1), component, ev);
  } else {
    bad_spec(component, "unknown fault kind");
  }
  return ev;
}

}  // namespace

const char* FaultEvent::kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCoreDown: return "core_down";
    case FaultKind::kCoreUp: return "core_up";
    case FaultKind::kCoreSlowdown: return "core_slowdown";
    case FaultKind::kCoreStall: return "core_stall";
    case FaultKind::kCollisionBurst: return "collision_burst";
    case FaultKind::kFlashCrowd: return "flash_crowd";
  }
  return "unknown";
}

std::string FaultEvent::to_spec() const {
  switch (kind) {
    case FaultKind::kCoreDown:
      return "down:" + std::to_string(core) + "@" + format_time(time);
    case FaultKind::kCoreUp:
      return "up:" + std::to_string(core) + "@" + format_time(time);
    case FaultKind::kCoreSlowdown:
      return "slow:" + std::to_string(core) + "x" + format_double(factor) +
             "@" + format_time(time);
    case FaultKind::kCoreStall:
      return "stall:" + std::to_string(core) + "@" + format_time(time) + "+" +
             format_time(duration);
    case FaultKind::kCollisionBurst:
    case FaultKind::kFlashCrowd:
      return std::string(kind == FaultKind::kCollisionBurst ? "burst"
                                                            : "crowd") +
             "@" + format_time(time) + "+" + format_time(duration) +
             ":rate=" + format_double(rate_mpps) +
             ",flows=" + std::to_string(flows);
  }
  return "?";
}

void FaultPlan::sort_events() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

void FaultPlan::validate(std::size_t num_cores) const {
  TimeNs prev = 0;
  for (const FaultEvent& ev : events) {
    const std::string where = ev.to_spec();
    if (ev.time < 0) {
      throw std::invalid_argument("FaultPlan: negative time in " + where);
    }
    if (ev.time < prev) {
      throw std::invalid_argument("FaultPlan: events not sorted at " + where);
    }
    prev = ev.time;
    if (ev.is_core_event()) {
      if (ev.core < 0) {
        throw std::invalid_argument("FaultPlan: core event without core: " +
                                    where);
      }
      if (num_cores > 0 &&
          static_cast<std::size_t>(ev.core) >= num_cores) {
        throw std::invalid_argument(
            "FaultPlan: core " + std::to_string(ev.core) + " out of range (" +
            std::to_string(num_cores) + " cores): " + where);
      }
      if (ev.kind == FaultKind::kCoreSlowdown && ev.factor <= 0) {
        throw std::invalid_argument("FaultPlan: non-positive factor: " +
                                    where);
      }
      if (ev.kind == FaultKind::kCoreStall && ev.duration <= 0) {
        throw std::invalid_argument("FaultPlan: stall without duration: " +
                                    where);
      }
    } else {
      if (ev.duration <= 0 || ev.rate_mpps <= 0 || ev.flows == 0) {
        throw std::invalid_argument(
            "FaultPlan: traffic event needs duration, rate and flows: " +
            where);
      }
    }
  }
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultEvent& ev : events) {
    if (!out.empty()) out += ";";
    out += ev.to_spec();
  }
  return out;
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    std::string component = spec.substr(start, semi - start);
    start = semi + 1;
    // Trim surrounding whitespace; empty components (trailing ';') skip.
    while (!component.empty() && component.front() == ' ') {
      component.erase(component.begin());
    }
    while (!component.empty() && component.back() == ' ') component.pop_back();
    if (component.empty()) continue;
    plan.events.push_back(parse_component(component));
  }
  plan.sort_events();
  plan.validate();
  return plan;
}

FaultPlan random_fault_plan(std::uint64_t seed,
                            const RandomFaultParams& params) {
  if (params.num_cores == 0) {
    throw std::invalid_argument("random_fault_plan: 0 cores");
  }
  if (params.horizon <= 0) {
    throw std::invalid_argument("random_fault_plan: non-positive horizon");
  }
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(mix64(seed ^ 0x9E3779B97F4A7C15ull));
  const std::size_t cap = params.max_concurrent_down > 0
                              ? params.max_concurrent_down
                              : std::max<std::size_t>(1, params.num_cores / 4);
  // Events land inside [10%, 80%] of the horizon so recoveries and their
  // first re-dispatch still happen while traffic flows.
  const TimeNs lo = params.horizon / 10;
  const TimeNs hi = params.horizon * 8 / 10;
  const auto time_in = [&](TimeNs a, TimeNs b) {
    return a + static_cast<TimeNs>(rng.below(
                   static_cast<std::uint64_t>(std::max<TimeNs>(1, b - a))));
  };

  // Down/up pairs on distinct cores, capped for simultaneity: every down
  // recovers before the next one starts when the cap is 1; otherwise pairs
  // may overlap but never exceed `cap` cores at once (pairs are nested in
  // disjoint time slices per core).
  const std::size_t downs = 1 + rng.below(std::min<std::size_t>(cap, 3));
  std::vector<std::uint8_t> used(params.num_cores, 0);
  for (std::size_t i = 0; i < downs; ++i) {
    CoreId core = static_cast<CoreId>(rng.below(params.num_cores));
    for (std::size_t tries = 0; used[core] && tries < params.num_cores;
         ++tries) {
      core = static_cast<CoreId>((core + 1) % params.num_cores);
    }
    if (used[core]) break;
    used[core] = 1;
    const TimeNs down_at = time_in(lo, hi);
    const TimeNs up_at = time_in(down_at + params.horizon / 100,
                                 std::max(hi, down_at + params.horizon / 50));
    FaultEvent down;
    down.kind = FaultKind::kCoreDown;
    down.core = static_cast<std::int32_t>(core);
    down.time = down_at;
    plan.events.push_back(down);
    FaultEvent up = down;
    up.kind = FaultKind::kCoreUp;
    up.time = up_at;
    plan.events.push_back(up);
  }

  // One slowdown episode (factor 2-6x, then reset) on a core that never
  // goes down, when one exists.
  if (rng.chance(0.7)) {
    CoreId core = static_cast<CoreId>(rng.below(params.num_cores));
    for (std::size_t tries = 0; used[core] && tries < params.num_cores;
         ++tries) {
      core = static_cast<CoreId>((core + 1) % params.num_cores);
    }
    if (!used[core]) {
      const TimeNs at = time_in(lo, hi);
      FaultEvent slow;
      slow.kind = FaultKind::kCoreSlowdown;
      slow.core = static_cast<std::int32_t>(core);
      slow.factor = 2.0 + static_cast<double>(rng.below(5));
      slow.time = at;
      plan.events.push_back(slow);
      FaultEvent reset = slow;
      reset.factor = 1.0;
      reset.time = time_in(at, std::max(hi, at + params.horizon / 50));
      plan.events.push_back(reset);
      used[core] = 1;
    }
  }

  // One stall on yet another core.
  if (rng.chance(0.6)) {
    CoreId core = static_cast<CoreId>(rng.below(params.num_cores));
    for (std::size_t tries = 0; used[core] && tries < params.num_cores;
         ++tries) {
      core = static_cast<CoreId>((core + 1) % params.num_cores);
    }
    if (!used[core]) {
      FaultEvent stall;
      stall.kind = FaultKind::kCoreStall;
      stall.core = static_cast<std::int32_t>(core);
      stall.time = time_in(lo, hi);
      stall.duration = std::max<TimeNs>(kMicrosecond,
                                        time_in(0, params.horizon / 20));
      plan.events.push_back(stall);
    }
  }

  if (params.traffic_faults && rng.chance(0.8)) {
    FaultEvent traffic;
    traffic.kind = rng.chance(0.5) ? FaultKind::kCollisionBurst
                                   : FaultKind::kFlashCrowd;
    traffic.time = time_in(lo, hi);
    traffic.duration = std::max<TimeNs>(10 * kMicrosecond,
                                        time_in(0, params.horizon / 10));
    traffic.rate_mpps = 0.5 + rng.uniform() * 2.0;
    traffic.flows = traffic.kind == FaultKind::kCollisionBurst
                        ? 4 + static_cast<std::uint32_t>(rng.below(13))
                        : 64 + static_cast<std::uint32_t>(rng.below(960));
    plan.events.push_back(traffic);
  }

  plan.sort_events();
  plan.validate(params.num_cores);
  return plan;
}

// --------------------------------------------------- FaultTrafficStream ---

namespace {

FiveTuple random_tuple(Rng& rng) {
  FiveTuple t;
  t.src_ip = static_cast<std::uint32_t>(rng.next());
  t.dst_ip = static_cast<std::uint32_t>(rng.next());
  t.src_port = static_cast<std::uint16_t>(rng.below(65536));
  t.dst_port = static_cast<std::uint16_t>(rng.below(65536));
  t.protocol = rng.chance(0.8) ? 6 : 17;
  return t;
}

/// `count` tuples sharing one CRC16 value — the adversarial input that
/// defeats every CRC16-bucketed scheme (StaticHash, AFS buckets, the LAPS
/// map table): the whole flood lands in a single bucket. Brute force over
/// random tuples; ~65536 tries per collision, trivially fast offline.
std::vector<FiveTuple> collision_tuples(Rng& rng, std::uint32_t count) {
  std::vector<FiveTuple> out;
  out.reserve(count);
  out.push_back(random_tuple(rng));
  const std::uint16_t target = out.front().crc16();
  while (out.size() < count) {
    FiveTuple t = random_tuple(rng);
    if (t.crc16() == target) out.push_back(t);
  }
  return out;
}

}  // namespace

FaultTrafficStream::FaultTrafficStream(ArrivalStream& base,
                                       const FaultPlan& plan)
    : base_(base) {
  Rng rng(mix64(plan.seed ^ 0xD1B54A32D192ED03ull));
  for (const FaultEvent& ev : plan.events) {
    if (!ev.is_traffic_event()) continue;
    const double span_s = to_seconds(ev.duration);
    const std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(ev.rate_mpps * 1e6 * span_s + 0.5));
    const std::uint32_t nflows =
        std::min<std::uint32_t>(ev.flows, static_cast<std::uint32_t>(count));
    std::vector<FiveTuple> tuples;
    if (ev.kind == FaultKind::kCollisionBurst) {
      tuples = collision_tuples(rng, nflows);
    } else {
      tuples.reserve(nflows);
      for (std::uint32_t i = 0; i < nflows; ++i) {
        tuples.push_back(random_tuple(rng));
      }
    }
    const std::uint32_t flow_base =
        static_cast<std::uint32_t>(injected_flow_count_);
    for (std::size_t i = 0; i < count; ++i) {
      GeneratedPacket pkt;
      pkt.time = ev.time + static_cast<TimeNs>(
                               static_cast<double>(ev.duration) *
                                   static_cast<double>(i) /
                                   static_cast<double>(count) +
                               0.5);
      pkt.service = ServicePath::kIpForward;
      const std::uint32_t f = static_cast<std::uint32_t>(i % nflows);
      pkt.record.tuple = tuples[f];
      pkt.record.size_bytes = 64;
      // Odd ids: disjoint from the (even-remapped) base flows; see fault.h.
      pkt.gflow = 2 * (flow_base + f) + 1;
      pkt.record.flow_id = pkt.gflow;  // informational; gflow is used
      injected_.push_back(pkt);
    }
    injected_flow_count_ += nflows;
  }
  std::stable_sort(injected_.begin(), injected_.end(),
                   [](const GeneratedPacket& a, const GeneratedPacket& b) {
                     return a.time < b.time;
                   });
}

std::size_t FaultTrafficStream::total_flows() const {
  if (injected_.empty()) return base_.total_flows();
  // Pre-size hint only; the engine grows its flow block per arrival, so an
  // evolving (churned) base population stays correct.
  return 2 * std::max(base_.total_flows(), injected_flow_count_);
}

std::optional<GeneratedPacket> FaultTrafficStream::next() {
  if (injected_.empty()) return base_.next();  // core-event-only plan
  if (!base_primed_) {
    pending_base_ = base_.next();
    base_primed_ = true;
  }
  const bool have_injected = pos_ < injected_.size();
  if (pending_base_ &&
      (!have_injected || pending_base_->time <= injected_[pos_].time)) {
    GeneratedPacket out = *pending_base_;
    out.gflow *= 2;  // even ids; see fault.h
    pending_base_ = base_.next();
    return out;
  }
  if (have_injected) return injected_[pos_++];
  return std::nullopt;
}

// ------------------------------------------------------------ FaultProbe ---

void FaultProbe::on_run_begin(const RunInfo& info) {
  scenario_ = info.scenario;
  scheduler_ = info.scheduler;
  timeline_.clear();
  recoveries_.clear();
  open_.assign(info.num_cores, -1);
  waiting_.assign(info.num_cores, 0);
  awaiting_ = 0;
  flush_drops_ = 0;
}

void FaultProbe::on_fault(TimeNs now, const FaultEvent& event,
                          std::uint32_t flushed) {
  timeline_.push_back(TimelineRow{now, event, flushed});
  flush_drops_ += flushed;
  if (!event.is_core_event() || event.core < 0 ||
      static_cast<std::size_t>(event.core) >= open_.size()) {
    return;
  }
  const auto core = static_cast<std::size_t>(event.core);
  if (event.kind == FaultKind::kCoreDown && open_[core] < 0) {
    Recovery r;
    r.core = event.core;
    r.down_at = now;
    r.flushed = flushed;
    open_[core] = static_cast<std::int32_t>(recoveries_.size());
    recoveries_.push_back(r);
    if (waiting_[core]) {
      waiting_[core] = 0;
      --awaiting_;
    }
  } else if (event.kind == FaultKind::kCoreUp && open_[core] >= 0) {
    recoveries_[static_cast<std::size_t>(open_[core])].up_at = now;
    open_[core] = -1;
    if (!waiting_[core]) {
      waiting_[core] = 1;
      ++awaiting_;
    }
  }
}

void FaultProbe::on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                             bool migrated) {
  (void)pkt;
  (void)migrated;
  if (awaiting_ == 0) return;  // fast path: no recovery pending
  if (core >= waiting_.size() || !waiting_[core]) return;
  waiting_[core] = 0;
  --awaiting_;
  // Newest recovery of this core that has an up_at but no dispatch yet.
  for (auto it = recoveries_.rbegin(); it != recoveries_.rend(); ++it) {
    if (it->core == static_cast<std::int32_t>(core) && it->up_at >= 0 &&
        it->first_dispatch_after_up < 0) {
      it->first_dispatch_after_up = now;
      break;
    }
  }
}

std::string FaultProbe::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", "fault_probe");
  w.field("scenario", scenario_);
  w.field("scheduler", scheduler_);
  w.key("timeline");
  w.begin_array();
  for (const TimelineRow& row : timeline_) {
    w.begin_object();
    w.field("time_ns", row.time);
    w.field("kind", FaultEvent::kind_name(row.event.kind));
    w.field("spec", row.event.to_spec());
    if (row.event.is_core_event()) {
      w.field("core", static_cast<std::int64_t>(row.event.core));
    }
    w.field("flushed", static_cast<std::int64_t>(row.flushed));
    w.end_object();
  }
  w.end_array();
  w.key("recoveries");
  w.begin_array();
  for (const Recovery& r : recoveries_) {
    w.begin_object();
    w.field("core", static_cast<std::int64_t>(r.core));
    w.field("down_ns", r.down_at);
    w.field("up_ns", r.up_at);
    w.field("outage_us", r.up_at >= 0 ? to_us(r.outage_ns()) : -1.0);
    w.field("reintegrate_us",
            r.reintegrate_ns() >= 0 ? to_us(r.reintegrate_ns()) : -1.0);
    w.field("flushed", static_cast<std::int64_t>(r.flushed));
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.field("fault_events", static_cast<std::int64_t>(timeline_.size()));
  w.field("flush_drops", static_cast<std::int64_t>(flush_drops_));
  w.field("recoveries", static_cast<std::int64_t>(recoveries_.size()));
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

void FaultProbe::write(const std::string& path) const {
  util::write_file_atomic(path, to_json(), "fault timeline");
}

}  // namespace laps
