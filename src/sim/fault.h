#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/probe.h"
#include "sim/scheduler.h"
#include "traffic/generator.h"
#include "util/time.h"

namespace laps {

/// One kind of injected fault. Core-side kinds perturb the simulated NPU;
/// traffic-side kinds inject adversarial arrivals into the offered stream.
enum class FaultKind : std::uint8_t {
  kCoreDown,        ///< core fails: queue + in-service packet are flushed
  kCoreUp,          ///< failed core recovers and rejoins the pool
  kCoreSlowdown,    ///< every subsequent service on the core takes x factor
  kCoreStall,       ///< core stops starting new services for `duration`
  kCollisionBurst,  ///< flood of flows sharing one CRC16 hash value
  kFlashCrowd,      ///< flood of brand-new flows (fresh random tuples)
};

/// One entry of a fault schedule. Which fields are meaningful depends on
/// `kind`; unused fields keep their defaults so events compare and
/// serialize deterministically.
struct FaultEvent {
  TimeNs time = 0;              ///< simulated time the fault takes effect
  FaultKind kind = FaultKind::kCoreDown;
  std::int32_t core = -1;       ///< core events: the affected core
  double factor = 1.0;          ///< kCoreSlowdown: delay multiplier (1 = reset)
  TimeNs duration = 0;          ///< kCoreStall + traffic events: span
  double rate_mpps = 0.0;       ///< traffic events: injection rate
  std::uint32_t flows = 0;      ///< traffic events: distinct injected flows

  bool is_core_event() const {
    return kind == FaultKind::kCoreDown || kind == FaultKind::kCoreUp ||
           kind == FaultKind::kCoreSlowdown || kind == FaultKind::kCoreStall;
  }
  bool is_traffic_event() const { return !is_core_event(); }

  /// Short display label ("core_down", "collision_burst", ...).
  static const char* kind_name(FaultKind kind);

  /// One component of the --faults grammar (see parse_fault_plan);
  /// parse(to_spec()) reproduces the event exactly.
  std::string to_spec() const;
};

/// A deterministic, replayable schedule of fault events. The engine
/// executes core events as first-class simulation events in time order;
/// traffic events are materialized by FaultTrafficStream before the run.
/// `seed` drives every random choice of the traffic injection (tuples,
/// collision search), so the same plan always injects identical packets.
struct FaultPlan {
  std::vector<FaultEvent> events;  ///< sorted by time (stable)
  std::uint64_t seed = 1;

  bool empty() const { return events.empty(); }

  /// Stable-sorts events by time (same-time events keep insertion order).
  void sort_events();

  /// Throws std::invalid_argument when the plan is malformed: unsorted
  /// events, negative times, core events without a core id, traffic events
  /// without rate/flows/duration, or (when `num_cores` > 0) a core id
  /// outside [0, num_cores).
  void validate(std::size_t num_cores = 0) const;

  /// Canonical ';'-joined --faults grammar for the whole plan.
  std::string to_spec() const;
};

/// Parses the --faults grammar into a sorted plan. Components are separated
/// by ';' (surrounding spaces ignored); times and durations take a ns/us/
/// ms/s suffix:
///
///   down:CORE@TIME               core fails at TIME
///   up:CORE@TIME                 core recovers at TIME
///   slow:CORExFACTOR@TIME        services take FACTOR times as long
///   stall:CORE@TIME+DUR          core starts no new service for DUR
///   burst@TIME+DUR:rate=MPPS,flows=N    CRC16-collision flood
///   crowd@TIME+DUR:rate=MPPS,flows=N    flash crowd of new flows
///
/// Example: "down:3@10ms; up:3@30ms; burst@5ms+2ms:rate=2,flows=16".
/// Throws std::invalid_argument with the offending component on error.
FaultPlan parse_fault_plan(const std::string& spec);

/// Knobs for random_fault_plan.
struct RandomFaultParams {
  TimeNs horizon = from_us(10'000.0);  ///< events land in [10%, 80%] of this
  std::size_t num_cores = 16;
  /// Cap on simultaneously-down cores; 0 = max(1, num_cores / 4). The cap
  /// keeps every service reachable so chaos invariants (no packet routed
  /// to a dead core) stay checkable.
  std::size_t max_concurrent_down = 0;
  bool traffic_faults = true;  ///< include burst/crowd events
};

/// A randomized-but-seeded well-formed fault schedule: every down is paired
/// with a later up, slowdowns reset, stalls stay inside the horizon, and
/// concurrent downs respect the cap. Identical (seed, params) produce an
/// identical plan — the chaos harness replays schedules bit-exactly.
FaultPlan random_fault_plan(std::uint64_t seed,
                            const RandomFaultParams& params);

/// Wraps a base arrival stream, merging in the traffic-side fault events of
/// a plan: each burst/crowd is pre-materialized at construction (arrivals
/// evenly spaced over its span, cycling through its flow set) and merged by
/// time, base packets first on ties.
///
/// Injected flows must never share a gflow with a base flow, but churned
/// base traces assign dynamic ids as the run unfolds, so no id block above
/// the base population is safe to reserve up front. Instead, when the plan
/// injects traffic the id space is split by parity: base gflows are remapped
/// to 2*id and injected flows take 2*n+1. The flow block doubles for fault
/// runs with traffic events and is untouched otherwise (plans with only
/// core events pass base packets through unchanged).
class FaultTrafficStream final : public ArrivalStream {
 public:
  FaultTrafficStream(ArrivalStream& base, const FaultPlan& plan);

  std::optional<GeneratedPacket> next() override;
  std::size_t total_flows() const override;

  /// Packets this stream will inject over the whole run.
  std::size_t injected_packets() const { return injected_.size(); }
  /// Distinct flows among the injected packets.
  std::size_t injected_flows() const { return injected_flow_count_; }

 private:
  ArrivalStream& base_;
  std::vector<GeneratedPacket> injected_;  // time-sorted
  std::size_t pos_ = 0;
  std::optional<GeneratedPacket> pending_base_;
  bool base_primed_ = false;
  std::size_t injected_flow_count_ = 0;
};

/// Probe recording the fault timeline and per-outage recovery metrics into
/// a laps-bench-v1 style artifact:
///  * timeline: every executed fault event, with how many packets the
///    engine flushed for it;
///  * recoveries: per core_down, the outage span and the *reintegration
///    time* — how long after core_up the scheduler dispatched the first
///    packet back onto the recovered core (−1 if it never did).
class FaultProbe final : public SimProbe {
 public:
  struct TimelineRow {
    TimeNs time = 0;          ///< engine clock when the event executed
    FaultEvent event;
    std::uint32_t flushed = 0;  ///< packets dropped by a core_down flush
  };
  struct Recovery {
    std::int32_t core = -1;
    TimeNs down_at = 0;
    TimeNs up_at = -1;               ///< -1: still down at run end
    TimeNs first_dispatch_after_up = -1;  ///< -1: no packet after recovery
    std::uint32_t flushed = 0;

    TimeNs outage_ns() const { return up_at >= 0 ? up_at - down_at : -1; }
    TimeNs reintegrate_ns() const {
      return up_at >= 0 && first_dispatch_after_up >= 0
                 ? first_dispatch_after_up - up_at
                 : -1;
    }
  };

  void on_run_begin(const RunInfo& info) override;
  void on_fault(TimeNs now, const FaultEvent& event,
                std::uint32_t flushed) override;
  void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                   bool migrated) override;

  const std::vector<TimelineRow>& timeline() const { return timeline_; }
  const std::vector<Recovery>& recoveries() const { return recoveries_; }
  std::uint64_t flush_drops() const { return flush_drops_; }

  /// JSON document (schema laps-bench-v1, tool fault_probe) with the
  /// timeline, recoveries, and totals.
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string scenario_;
  std::string scheduler_;
  std::vector<TimelineRow> timeline_;
  std::vector<Recovery> recoveries_;
  std::vector<std::int32_t> open_;     // core -> open recovery index, -1
  std::vector<std::uint8_t> waiting_;  // core recovered, first dispatch due
  std::size_t awaiting_ = 0;           // fast-path gate for on_dispatch
  std::uint64_t flush_drops_ = 0;
};

}  // namespace laps
