#include "sim/flight_recorder.h"

#include <stdexcept>

#include "traffic/workload.h"
#include "util/fileio.h"
#include "util/json_writer.h"

namespace laps {

FlightRecorderProbe::FlightRecorderProbe(FlightRecorderConfig config)
    : config_(config) {
  if (config_.capacity == 0) {
    throw std::invalid_argument("FlightRecorder: capacity must be >= 1");
  }
  if (config_.window_ns <= 0) {
    throw std::invalid_argument("FlightRecorder: window must be positive");
  }
  ring_.resize(config_.capacity);
}

void FlightRecorderProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  head_ = 0;
  count_ = 0;
  frozen_ = false;
  post_trigger_left_ = 0;
  window_index_ = 0;
  window_drops_ = 0;
  window_ooo_ = 0;
  triggered_ = false;
  reason_.clear();
  trigger_time_ = 0;
}

void FlightRecorderProbe::push(const Event& e) {
  if (frozen_) return;
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
  if (triggered_ && post_trigger_left_ > 0 && --post_trigger_left_ == 0) {
    frozen_ = true;
  }
}

void FlightRecorderProbe::roll_window(TimeNs now) {
  const TimeNs index = now / config_.window_ns;
  if (index != window_index_) {
    window_index_ = index;
    window_drops_ = 0;
    window_ooo_ = 0;
  }
}

void FlightRecorderProbe::trip(const char* reason, TimeNs now) {
  if (triggered_) return;  // first anomaly wins; later ones change nothing
  triggered_ = true;
  reason_ = reason;
  trigger_time_ = now;
  post_trigger_left_ = ring_.size() / 2;
  if (post_trigger_left_ == 0) frozen_ = true;
}

void FlightRecorderProbe::on_drop(TimeNs now, const SimPacket& pkt,
                                  CoreId core) {
  roll_window(now);
  Event e;
  e.type = Type::kDrop;
  e.t = now;
  e.flow_key = pkt.flow_key();
  e.a = pkt.seq;
  e.tid = static_cast<std::uint16_t>(core);
  push(e);
  if (config_.drop_storm > 0 && ++window_drops_ >= config_.drop_storm) {
    trip("drop_storm", now);
  }
}

void FlightRecorderProbe::on_service_start(TimeNs now, const SimPacket& pkt,
                                           CoreId core, TimeNs delay,
                                           bool fm_penalty, bool cold_cache) {
  Event e;
  e.type = Type::kService;
  e.t = now;
  e.duration = delay;
  e.flow_key = pkt.flow_key();
  e.a = pkt.seq;
  e.tid = static_cast<std::uint16_t>(core);
  // flags: bit0 fm_penalty, bit1 cold_cache, bits 2+ the service id (the
  // span name at dump time); seq keeps all 32 bits of `a`.
  e.flags = static_cast<std::uint8_t>((fm_penalty ? 1 : 0) |
                                      (cold_cache ? 2 : 0) |
                                      (static_cast<unsigned>(pkt.service)
                                       << 2));
  push(e);
}

void FlightRecorderProbe::on_departure(TimeNs now, const SimPacket& pkt,
                                       CoreId core, std::uint32_t new_ooo) {
  if (new_ooo == 0) return;  // clean departures carry no anomaly signal
  roll_window(now);
  Event e;
  e.type = Type::kOoo;
  e.t = now;
  e.flow_key = pkt.flow_key();
  e.a = new_ooo;
  e.tid = static_cast<std::uint16_t>(core);
  push(e);
  if (config_.ooo_spike > 0 &&
      (window_ooo_ += new_ooo) >= config_.ooo_spike) {
    trip("ooo_spike", now);
  }
}

void FlightRecorderProbe::on_sched_event(TimeNs now, const SchedEvent& event) {
  Event e;
  e.type = Type::kSched;
  e.t = now;
  e.flow_key = event.flow_key;
  e.a = static_cast<std::uint32_t>(event.core + 1) |
        (static_cast<std::uint32_t>(event.service + 1) << 16);
  e.tid = static_cast<std::uint16_t>(info_.num_cores);  // scheduler row
  e.flags = static_cast<std::uint8_t>(event.kind);
  push(e);
}

std::size_t FlightRecorderProbe::num_events() const { return count_; }

std::string FlightRecorderProbe::to_json() const {
  // Same hand-assembled compact form as ChromeTraceProbe: one event per
  // line, names and labels escaped through JsonWriter::quote.
  std::string out;
  out.reserve(count_ * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  std::string title = info_.scenario + " / " + info_.scheduler +
                      " [flight recorder";
  if (triggered_) {
    title += ": " + reason_ + " @ " + std::to_string(to_us(trigger_time_)) +
             " us";
  }
  title += "]";
  append("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{"
         "\"name\":" +
         JsonWriter::quote(title) + "}}");
  for (std::size_t c = 0; c <= info_.num_cores; ++c) {
    const std::string label =
        c < info_.num_cores ? "core " + std::to_string(c) : "scheduler";
    append("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(c) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           JsonWriter::quote(label) + "}}");
  }
  if (triggered_) {
    // The anomaly itself, as an instant on the scheduler row.
    append("{\"ph\":\"i\",\"pid\":0,\"tid\":" +
           std::to_string(info_.num_cores) +
           ",\"ts\":" + std::to_string(to_us(trigger_time_)) +
           ",\"s\":\"g\",\"name\":" + JsonWriter::quote(reason_) + "}");
  }

  const std::size_t start = count_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < count_; ++i) {
    const Event& e = ring_[(start + i) % ring_.size()];
    std::string line = "{\"ph\":\"";
    std::string name;
    std::string args;
    switch (e.type) {
      case Type::kDrop:
        line += 'i';
        name = "drop";
        args = "{\"flow_key\":" + std::to_string(e.flow_key) +
               ",\"seq\":" + std::to_string(e.a) + "}";
        break;
      case Type::kService:
        line += 'X';
        name = service_name(static_cast<ServicePath>(e.flags >> 2));
        args = "{\"flow_key\":" + std::to_string(e.flow_key) +
               ",\"seq\":" + std::to_string(e.a);
        if (e.flags & 1) args += ",\"fm_penalty\":true";
        if (e.flags & 2) args += ",\"cold_cache\":true";
        args += "}";
        break;
      case Type::kOoo:
        line += 'i';
        name = "ooo";
        args = "{\"flow_key\":" + std::to_string(e.flow_key) +
               ",\"count\":" + std::to_string(e.a) + "}";
        break;
      case Type::kSched: {
        line += 'i';
        name = SchedEvent::kind_name(static_cast<SchedEvent::Kind>(e.flags));
        args = "{";
        const std::uint32_t core_plus1 = e.a & 0xffffu;
        const std::uint32_t service_plus1 = e.a >> 16;
        if (core_plus1 != 0) {
          args += "\"core\":" + std::to_string(core_plus1 - 1);
        }
        if (service_plus1 != 0) {
          if (args.size() > 1) args += ",";
          args += "\"service\":" + std::to_string(service_plus1 - 1);
        }
        if (e.flow_key != 0) {
          if (args.size() > 1) args += ",";
          args += "\"flow_key\":" + std::to_string(e.flow_key);
        }
        args += "}";
        break;
      }
    }
    line += "\",\"pid\":0,\"tid\":" + std::to_string(e.tid) +
            ",\"ts\":" + std::to_string(to_us(e.t));
    if (e.type == Type::kService) {
      line += ",\"dur\":" + std::to_string(to_us(e.duration));
    } else {
      line += ",\"s\":\"t\"";
    }
    line += ",\"name\":" + JsonWriter::quote(name);
    if (args != "{}") line += ",\"args\":" + args;
    line += "}";
    append(line);
  }
  out += "\n]}\n";
  return out;
}

void FlightRecorderProbe::write(const std::string& path) const {
  util::write_file_atomic(path, to_json(), "flight-recorder dump");
}

}  // namespace laps
