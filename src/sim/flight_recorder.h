#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/probe.h"

namespace laps {

/// Flight-recorder configuration. Thresholds are counted per fixed
/// simulated-time window; a window that reaches a threshold trips the
/// recorder (once per run, first trigger wins).
struct FlightRecorderConfig {
  /// Ring capacity in events. After a trigger the recorder keeps running
  /// for capacity/2 more events and then freezes, so the dump holds
  /// roughly half a ring of lead-up and half of aftermath.
  std::size_t capacity = 4096;
  /// Drops within one window that count as a drop storm. 0 disables.
  std::uint64_t drop_storm = 64;
  /// OOO departures within one window that count as an OOO spike.
  /// 0 disables.
  std::uint64_t ooo_spike = 256;
  /// Width of the anomaly-counting window.
  TimeNs window_ns = from_us(100.0);
  /// Dump even when no anomaly triggered (--flight-dump): turns the
  /// recorder into a cheap "last N events" trace of any run.
  bool always_dump = false;
};

/// Fixed-capacity ring of the most recent probe events, dumped as a Chrome
/// trace-event JSON on anomaly triggers — the postmortem value of a full
/// ChromeTraceProbe without its unbounded memory cost.
///
/// Recorded events (chosen for postmortem signal per byte): drops, service
/// spans (with FM/cold-cache penalty flags), OOO departures, and
/// scheduler-internal decisions. Clean departures and plain dispatches are
/// not recorded — they dominate event volume and say nothing about an
/// anomaly.
///
/// Triggers: a drop storm (>= drop_storm drops within one window) or an
/// OOO spike (>= ooo_spike OOO departures within one window). On trigger
/// the recorder notes the reason and time, records capacity/2 further
/// events, then freezes the ring, so the dump brackets the anomaly instead
/// of being overwritten by the aftermath.
class FlightRecorderProbe final : public SimProbe {
 public:
  explicit FlightRecorderProbe(FlightRecorderConfig config = {});

  void on_run_begin(const RunInfo& info) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_service_start(TimeNs now, const SimPacket& pkt, CoreId core,
                        TimeNs delay, bool fm_penalty,
                        bool cold_cache) override;
  void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                    std::uint32_t new_ooo) override;
  void on_sched_event(TimeNs now, const SchedEvent& event) override;

  bool triggered() const { return triggered_; }
  /// "drop_storm", "ooo_spike", or "" when nothing triggered.
  const std::string& trigger_reason() const { return reason_; }
  TimeNs trigger_time() const { return trigger_time_; }
  /// True when the harness should write the dump (triggered or
  /// always_dump).
  bool should_dump() const { return triggered_ || config_.always_dump; }

  /// Events currently held (<= capacity).
  std::size_t num_events() const;

  /// The {"traceEvents": [...]} document (oldest event first), with
  /// trigger metadata in the process name.
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  enum class Type : std::uint8_t { kDrop, kService, kOoo, kSched };

  /// One ring slot: 32 bytes, no heap — recording must stay cheap enough
  /// to leave on during long runs.
  struct Event {
    TimeNs t = 0;
    TimeNs duration = 0;         // service spans only
    std::uint64_t flow_key = 0;  // sched events: SchedEvent::flow_key
    std::uint32_t a = 0;         // seq | ooo count | sched core+1
    std::uint16_t tid = 0;       // core row, or the scheduler row
    std::uint8_t flags = 0;      // service: bit0 fm, bit1 cold; sched: kind
    Type type = Type::kDrop;
  };

  void push(const Event& e);
  void roll_window(TimeNs now);
  void trip(const char* reason, TimeNs now);

  FlightRecorderConfig config_;
  RunInfo info_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< events held (saturates at capacity)
  bool frozen_ = false;
  std::size_t post_trigger_left_ = 0;

  TimeNs window_index_ = 0;
  std::uint64_t window_drops_ = 0;
  std::uint64_t window_ooo_ = 0;

  bool triggered_ = false;
  std::string reason_;
  TimeNs trigger_time_ = 0;
};

}  // namespace laps
