#include "sim/flow_audit.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

#include "util/fileio.h"
#include "util/json_writer.h"

namespace laps {

namespace {

/// splitmix64 finalizer: flow keys are raw 5-tuple packs whose low bits
/// carry port structure; the mix spreads them over the whole table.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::size_t kInitialSlots = 1024;

}  // namespace

// ---------------------------------------------------------- FlowAuditTable ---

FlowAuditTable::FlowAuditTable()
    : slots_(kInitialSlots), stamp_(kInitialSlots, 0),
      mask_(kInitialSlots - 1) {}

std::size_t FlowAuditTable::latency_bucket(std::int64_t latency_ns) {
  if (latency_ns <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(latency_ns));
  if (width <= kLatencyShift) return 0;
  const std::size_t b = static_cast<std::size_t>(width - kLatencyShift);
  return std::min(b, kLatencyBuckets - 1);
}

std::int64_t FlowAuditTable::latency_bucket_bound(std::size_t b) {
  if (b + 1 >= kLatencyBuckets) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return std::int64_t{1} << (b + kLatencyShift);
}

std::size_t FlowAuditTable::find_or_insert_slot(std::uint64_t key) {
  // Grow before the probe so the insert below always finds a free slot
  // quickly (load factor stays under 7/8).
  if ((size_ + 1) * 8 > slots_.size() * 7) grow();
  std::size_t i = mix(key) & mask_;
  while (stamp_[i] == epoch_) {
    if (slots_[i].key == key) return i;
    i = (i + 1) & mask_;
  }
  stamp_[i] = epoch_;
  ++size_;
  slots_[i] = Entry{};  // lazy reset: the slot may hold a stale-epoch record
  slots_[i].key = key;
  return i;
}

const FlowAuditTable::Entry* FlowAuditTable::find(std::uint64_t key) const {
  std::size_t i = mix(key) & mask_;
  while (stamp_[i] == epoch_) {
    if (slots_[i].key == key) return &slots_[i];
    i = (i + 1) & mask_;
  }
  return nullptr;
}

void FlowAuditTable::prefetch_key(std::uint64_t key) const {
#if defined(__GNUC__) || defined(__clang__)
  const std::size_t i = mix(key) & mask_;
  __builtin_prefetch(&stamp_[i]);
  __builtin_prefetch(&slots_[i]);
#else
  (void)key;
#endif
}

void FlowAuditTable::prefetch_slot(std::size_t i) const {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&slots_[i]);
#else
  (void)i;
#endif
}

void FlowAuditTable::grow() {
  std::vector<Entry> old_slots = std::move(slots_);
  std::vector<std::uint32_t> old_stamp = std::move(stamp_);
  const std::uint32_t old_epoch = epoch_;
  const std::size_t new_cap = old_slots.size() * 2;
  slots_.assign(new_cap, Entry{});
  stamp_.assign(new_cap, 0);
  epoch_ = 1;
  mask_ = new_cap - 1;
  ++generation_;
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    if (old_stamp[i] != old_epoch) continue;
    std::size_t j = mix(old_slots[i].key) & mask_;
    while (stamp_[j] == epoch_) j = (j + 1) & mask_;
    stamp_[j] = epoch_;
    slots_[j] = old_slots[i];
  }
}

std::vector<FlowAuditTable::Entry> FlowAuditTable::entries() const {
  std::vector<Entry> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (stamp_[i] == epoch_) out.push_back(slots_[i]);
  }
  return out;
}

void FlowAuditTable::clear() {
  // Capacity is kept (a table that once grew to N flows is about to see a
  // similar population again) and nothing is zeroed: bumping the epoch
  // invalidates every stamp in O(1), and reclaimed slots are reset lazily
  // on insert. The wrap case is unreachable in practice (2^32 - 1 clears)
  // but handled: stamps are rewound to the never-current epoch 0.
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 0;
  }
  ++epoch_;
  size_ = 0;
  ++generation_;
}

// ---------------------------------------------------------- FlowAuditProbe ---

FlowAuditProbe::FlowAuditProbe() : FlowAuditProbe(Options{}) {}

FlowAuditProbe::FlowAuditProbe(Options options) : options_(options) {
  if (options_.top_k == 0) {
    throw std::invalid_argument("FlowAuditProbe: top_k must be >= 1");
  }
  // Deliberately uninitialized (make_unique would zero 32 MiB): untouched
  // pages stay virtual, and the cursor never reads ahead of itself.
  log_ = std::unique_ptr<Pending[]>(new Pending[kMaxPending]);
  cursor_ = log_.get();
  log_end_ = log_.get() + kMaxPending;
}

void FlowAuditProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  table_.clear();  // bumps the generation; the slot cache resyncs lazily
  cursor_ = log_.get();
}

void FlowAuditProbe::resync_memo() const {
  std::fill(slot_cache_.begin(), slot_cache_.end(), std::uint32_t{0});
  for (std::size_t i = 0; i < table_.capacity(); ++i) {
    if (!table_.live(i)) continue;
    const std::uint32_t g = table_.slot(i).gflow;
    if (g >= slot_cache_.size()) slot_cache_.resize(g + 1, 0);
    slot_cache_[g] = static_cast<std::uint32_t>(i) + 1;
  }
  cache_generation_ = table_.generation();
}

FlowAuditTable::Entry& FlowAuditProbe::entry_at(std::uint32_t gflow,
                                                std::uint64_t key) const {
  if (gflow >= slot_cache_.size()) {
    slot_cache_.resize(
        std::max<std::size_t>(gflow + 1, slot_cache_.size() * 2), 0);
  }
  std::uint32_t cached = slot_cache_[gflow];
  if (cached == 0) {
    const std::size_t s = table_.find_or_insert_slot(key);
    // The insert may have rehashed; every cached slot (for the *old*
    // generation) is then stale, but `s` is valid for the new one. The
    // memo must be rebuilt, not just dropped: later departures in the same
    // fold carry no key and can only resolve through it.
    if (cache_generation_ != table_.generation()) resync_memo();
    cached = static_cast<std::uint32_t>(s) + 1;
    slot_cache_[gflow] = cached;
    table_.slot(s).gflow = gflow;
  }
  return table_.slot(cached - 1);
}

void FlowAuditProbe::flush_pending() const {
#if defined(__SSE2__)
  // Drain the write-combining buffers of push()'s non-temporal stores
  // before reading the log back.
  _mm_sfence();
#endif
  const Pending* const log = log_.get();
  const std::size_t n = static_cast<std::size_t>(cursor_ - log);
  if (n == 0) return;
  if (cache_generation_ != table_.generation()) resync_memo();
  // Two-stage software pipeline over the log: the slot-memo line is
  // requested ~2x further ahead than the table line it gates, so by the
  // time an event is applied both its memo word and its Entry line are
  // (usually) already in flight. A rehash mid-fold invalidates the memo;
  // the prefetches after it are merely wasted, never wrong.
  constexpr std::size_t kMemoAhead = 32;
  constexpr std::size_t kSlotAhead = 16;
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kMemoAhead < n) {
      const std::uint32_t g = log[i + kMemoAhead].gflow;
      if (g < slot_cache_.size()) __builtin_prefetch(&slot_cache_[g]);
    }
    if (i + kSlotAhead < n) {
      const Pending& p = log[i + kSlotAhead];
      const std::uint32_t c =
          p.gflow < slot_cache_.size() ? slot_cache_[p.gflow] : 0;
      if (c != 0) {
        table_.prefetch_slot(c - 1);
      } else if ((p.tag & 7u) != kEvDeparture) {
        table_.prefetch_key(p.a);
      }
    }
#endif
    const Pending& p = log[i];
    const std::uint32_t type = p.tag & 7u;
    const std::uint32_t payload = p.tag >> 3;
    if (type == kEvDeparture) {
      const std::uint32_t c =
          p.gflow < slot_cache_.size() ? slot_cache_[p.gflow] : 0;
      if (c == 0) {
        // A departure's key is not logged; its dispatch must have seeded
        // the memo. gflow <-> key is 1:1 in every trace source, so this
        // only fires on a probe-ordering bug — fail loudly over
        // misattributing.
        throw std::logic_error(
            "FlowAuditProbe: departure for a flow that was never dispatched");
      }
      FlowAuditTable::Entry& e = table_.slot(c - 1);
      const auto latency = static_cast<std::int64_t>(p.a);
      ++e.delivered;
      e.out_of_order += payload;
      e.latency_sum += latency;
      if (latency > e.latency_max) e.latency_max = latency;
      ++e.latency_log2[FlowAuditTable::latency_bucket(latency)];
      continue;
    }
    FlowAuditTable::Entry& e = entry_at(p.gflow, p.a);
    switch (type) {
      case kEvDispatch:
        // One dispatch == one arrival that was not dropped; the migrated
        // flag rides in the payload bit.
        ++e.packets;
        e.migrations += payload;
        break;
      case kEvDrop:
        // One drop == one arrival that never reached a queue.
        ++e.packets;
        ++e.dropped;
        break;
      case kEvPenalty:
        if (payload & 1u) ++e.fm_penalties;
        if (payload & 2u) ++e.cold_cache;
        break;
      default:
        break;
    }
  }
  cursor_ = log_.get();
}

void FlowAuditProbe::on_drop(TimeNs, const SimPacket& pkt, CoreId) {
  push(pkt.flow_key(), pkt.gflow, kEvDrop);
}

void FlowAuditProbe::on_dispatch(TimeNs, const SimPacket& pkt, CoreId,
                                 bool migrated) {
  push(pkt.flow_key(), pkt.gflow,
       kEvDispatch | (migrated ? 1u << 3 : 0u));
}

void FlowAuditProbe::on_service_start(TimeNs, const SimPacket& pkt, CoreId,
                                      TimeNs, bool fm_penalty,
                                      bool cold_cache) {
  if (!fm_penalty && !cold_cache) return;
  const std::uint32_t flags =
      (fm_penalty ? 1u : 0u) | (cold_cache ? 2u : 0u);
  push(pkt.flow_key(), pkt.gflow, kEvPenalty | (flags << 3));
}

void FlowAuditProbe::on_departure(TimeNs now, const SimPacket& pkt, CoreId,
                                  std::uint32_t new_ooo) {
  // new_ooo is bounded by the packets in flight for one flow (total queue
  // occupancy at most), far below the 29 payload bits.
  push(static_cast<std::uint64_t>(now - pkt.arrival), pkt.gflow,
       kEvDeparture | (new_ooo << 3));
}

void FlowAuditProbe::on_run_end(const RunEnd&) {}

std::vector<FlowAuditTable::Entry> FlowAuditProbe::sorted_entries() const {
  flush_pending();
  std::vector<FlowAuditTable::Entry> out = table_.entries();
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.key < b.key;
  });
  return out;
}

FlowAuditSummary FlowAuditProbe::summary() const {
  flush_pending();
  FlowAuditSummary s;
  s.top_k = options_.top_k;
  std::vector<FlowAuditTable::Entry> entries = table_.entries();
  s.flows = entries.size();

  std::uint64_t packets_total = 0;
  std::uint64_t ooo_migrated = 0;
  for (const auto& e : entries) {
    packets_total += e.packets;
    s.ooo_total += e.out_of_order;
    if (e.migrations > 0) {
      ++s.migrated_flows;
      ooo_migrated += e.out_of_order;
    }
    if (e.out_of_order > 0) ++s.ooo_flows;
  }

  const std::size_t k = std::min(options_.top_k, entries.size());

  // Top-k by migration count (the flows the scheduler actually moved;
  // ties broken by OOO then key so the share is deterministic).
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(k),
                    entries.end(), [](const auto& a, const auto& b) {
                      if (a.migrations != b.migrations) {
                        return a.migrations > b.migrations;
                      }
                      if (a.out_of_order != b.out_of_order) {
                        return a.out_of_order > b.out_of_order;
                      }
                      return a.key < b.key;
                    });
  std::uint64_t ooo_topk = 0;
  for (std::size_t i = 0; i < k; ++i) ooo_topk += entries[i].out_of_order;

  // Top-k by packet count (heavy-hitter concentration).
  std::partial_sort(entries.begin(),
                    entries.begin() + static_cast<std::ptrdiff_t>(k),
                    entries.end(), [](const auto& a, const auto& b) {
                      if (a.packets != b.packets) return a.packets > b.packets;
                      return a.key < b.key;
                    });
  std::uint64_t packets_topk = 0;
  for (std::size_t i = 0; i < k; ++i) packets_topk += entries[i].packets;

  if (s.ooo_total > 0) {
    s.ooo_migrated_share = static_cast<double>(ooo_migrated) /
                           static_cast<double>(s.ooo_total);
    s.ooo_topk_migrated_share = static_cast<double>(ooo_topk) /
                                static_cast<double>(s.ooo_total);
  }
  if (packets_total > 0) {
    s.topk_packet_share = static_cast<double>(packets_topk) /
                          static_cast<double>(packets_total);
  }
  return s;
}

std::string FlowAuditProbe::to_json() const {
  const std::vector<FlowAuditTable::Entry> entries = sorted_entries();
  const std::size_t rows = options_.max_rows == 0
                               ? entries.size()
                               : std::min(options_.max_rows, entries.size());
  const FlowAuditSummary s = summary();

  // Same envelope as exp/harness artifact_json (schema laps-bench-v1):
  // existing artifact tooling parses the tables without special cases.
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", "flow_audit");
  w.field("scenario", info_.scenario);
  w.field("scheduler", info_.scheduler);
  // Row capping is explicit: the artifact says how many flows existed and
  // how many rows it kept, so "covered everything" is never assumed.
  w.field("flows_total", static_cast<std::uint64_t>(entries.size()));
  w.field("rows_emitted", static_cast<std::uint64_t>(rows));
  w.key("reports");
  w.begin_array();
  w.end_array();
  w.key("tables");
  w.begin_array();

  w.begin_object();
  w.field("title", "flow_audit_summary");
  static const char* const kSummaryHeaders[] = {
      "flows",      "migrated_flows",     "ooo_flows",
      "ooo_total",  "ooo_migrated_share", "ooo_topk_migrated_share",
      "top_k",      "topk_packet_share"};
  w.key("headers");
  w.begin_array();
  for (const char* h : kSummaryHeaders) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  w.begin_array();
  w.value(s.flows);
  w.value(s.migrated_flows);
  w.value(s.ooo_flows);
  w.value(s.ooo_total);
  w.value(s.ooo_migrated_share);
  w.value(s.ooo_topk_migrated_share);
  w.value(static_cast<std::uint64_t>(s.top_k));
  w.value(s.topk_packet_share);
  w.end_array();
  w.end_array();
  w.end_object();

  w.begin_object();
  w.field("title", "flow_audit");
  static const char* const kFlowHeaders[] = {
      "flow_key",   "packets",      "delivered",  "dropped",
      "migrations", "ooo",          "fm_penalties", "cold_cache",
      "lat_mean_ns", "lat_max_ns",  "lat_log2"};
  w.key("headers");
  w.begin_array();
  for (const char* h : kFlowHeaders) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (std::size_t i = 0; i < rows; ++i) {
    const FlowAuditTable::Entry& e = entries[i];
    w.begin_array();
    w.value(e.key);
    w.value(e.packets);
    w.value(e.delivered);
    w.value(e.dropped);
    w.value(e.migrations);
    w.value(e.out_of_order);
    w.value(e.fm_penalties);
    w.value(e.cold_cache);
    w.value(e.delivered > 0 ? static_cast<double>(e.latency_sum) /
                                  static_cast<double>(e.delivered)
                            : 0.0);
    w.value(static_cast<std::int64_t>(e.latency_max));
    // The per-flow latency histogram: count per power-of-two bucket
    // (see FlowAuditTable::latency_bucket_bound for the edges). Trailing
    // zero buckets are kept so every row has the same width.
    w.begin_array();
    for (const std::uint32_t c : e.latency_log2) w.value(c);
    w.end_array();
    w.end_array();
  }
  w.end_array();
  w.end_object();

  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void FlowAuditProbe::write(const std::string& path) const {
  util::write_file_atomic(path, to_json(), "flow-audit artifact");
}

}  // namespace laps
