#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "sim/probe.h"

namespace laps {

/// Flat open-addressed per-flow statistics table (linear probing, power-of-
/// two capacity, grown at 7/8 load). Keyed by the 64-bit flow key the
/// software structures use (FiveTuple::key64), not the dense gflow index, so
/// rows in the audit artifact are directly comparable with AFC contents,
/// migration-table pins, and offline trace analysis.
///
/// One Entry is a single contiguous record, and the whole table is two
/// allocations (slots + occupancy stamps) however many flows appear.
/// Occupancy is epoch-stamped: clear() bumps the epoch instead of zeroing
/// megabytes of slots, so reusing a grown table across runs is O(1).
class FlowAuditTable {
 public:
  /// Compact per-flow latency histogram: power-of-two buckets of the
  /// ingress->departure latency. Bucket 0 holds latencies below 512 ns
  /// (under the minimum service time, only possible for tiny delay models);
  /// bucket b >= 1 holds [2^(b+8), 2^(b+9)) ns; the last bucket is
  /// open-ended (~69 s and beyond never happens in practice).
  static constexpr std::size_t kLatencyBuckets = 28;
  static constexpr int kLatencyShift = 9;  ///< bucket 0 upper bound: 2^9 ns

  /// One flow's record. The counters live in the first 64 bytes (one cache
  /// line: every aggregation step touches exactly that line), the latency
  /// histogram in the lines after it (touched once per departure). Narrow
  /// u32 lanes for the rare counters keep the counter section in one line;
  /// 4G drops/migrations per *single flow* is beyond any simulated run, and
  /// run-level sums are accumulated in u64.
  struct alignas(64) Entry {
    std::uint64_t key = 0;            ///< 5-tuple flow key
    std::uint64_t packets = 0;        ///< arrivals presented to the scheduler
    std::uint64_t delivered = 0;      ///< completed processing
    std::int64_t latency_sum = 0;     ///< exact sum over delivered packets
    std::int64_t latency_max = 0;     ///< exact max
    std::uint32_t dropped = 0;        ///< lost to full input queues
    std::uint32_t migrations = 0;     ///< dispatches to a different core
    std::uint32_t out_of_order = 0;   ///< OOO departures charged to this flow
    std::uint32_t fm_penalties = 0;   ///< Eq. 3 FM_penalty charges
    std::uint32_t cold_cache = 0;     ///< Eq. 3 CC_penalty charges
    /// Dense engine flow index (set by FlowAuditProbe) — lets slot memos be
    /// rebuilt by scanning the table after a rehash.
    std::uint32_t gflow = 0;
    std::array<std::uint32_t, kLatencyBuckets> latency_log2{};
  };

  FlowAuditTable();

  /// Slot index for `key`, inserted empty on first touch. Slot indices are
  /// stable until the next rehash or clear — check generation() before
  /// reusing a cached index.
  std::size_t find_or_insert_slot(std::uint64_t key);

  /// The slot for `key`, inserted empty on first touch. The reference is
  /// invalidated by the next insert (growth may rehash).
  Entry& find_or_insert(std::uint64_t key) {
    return slots_[find_or_insert_slot(key)];
  }

  /// Direct slot access for indices from find_or_insert_slot.
  Entry& slot(std::size_t i) { return slots_[i]; }
  const Entry& slot(std::size_t i) const { return slots_[i]; }

  /// Slot count (for index-order scans; check live() per slot).
  std::size_t capacity() const { return slots_.size(); }
  /// Whether slot i holds a current-epoch record.
  bool live(std::size_t i) const { return stamp_[i] == epoch_; }

  /// The slot for `key`, or nullptr if the flow was never touched.
  const Entry* find(std::uint64_t key) const;

  /// Distinct flows in the table.
  std::size_t size() const { return size_; }

  /// Bumped whenever slot indices move (rehash or clear); callers caching
  /// slot indices must revalidate against this.
  std::uint64_t generation() const { return generation_; }

  /// Hints the prefetcher at the probe head for `key` (no-op off GCC/
  /// clang). Issue ~16 lookups ahead of the matching find_or_insert_slot
  /// so the slot line is in flight while other work retires.
  void prefetch_key(std::uint64_t key) const;
  /// Same for a known slot index (cache-hit path).
  void prefetch_slot(std::size_t i) const;

  /// Which latency bucket `latency_ns` falls into.
  static std::size_t latency_bucket(std::int64_t latency_ns);
  /// Exclusive upper bound of latency bucket `b` in ns (int64 max for the
  /// open-ended last bucket).
  static std::int64_t latency_bucket_bound(std::size_t b);

  /// All occupied entries, unordered (table order). For deterministic
  /// output, callers sort; see FlowAuditProbe::sorted_entries.
  std::vector<Entry> entries() const;

  void clear();

 private:
  void grow();

  std::vector<Entry> slots_;
  /// Slot i is live iff stamp_[i] == epoch_. Epoch 0 is never current, so
  /// fresh (zero) stamps read as empty; stale slots are lazily reset when
  /// reclaimed by find_or_insert_slot.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  std::uint64_t generation_ = 0;
};

/// Run-level attribution metrics derived from the per-flow table — the
/// paper's headline claim ("reordering is confined to the handful of
/// migrated aggressive flows") as numbers a dashboard can alert on.
struct FlowAuditSummary {
  std::uint64_t flows = 0;            ///< distinct flows observed
  std::uint64_t migrated_flows = 0;   ///< flows with >= 1 migration
  std::uint64_t ooo_flows = 0;        ///< flows with >= 1 OOO departure
  std::uint64_t ooo_total = 0;        ///< all OOO departures
  /// OOO departures of flows that migrated at least once / ooo_total.
  /// LAPS should keep this near 1.0 with few migrated flows; a hash
  /// scheduler reorders nothing, a naive balancer reorders everywhere.
  double ooo_migrated_share = 0.0;
  /// OOO departures absorbed by the top_k flows ranked by migration count
  /// / ooo_total — the single-number form of Fig. 9b/c: if the k = AFC-size
  /// most-migrated flows absorb ~all reordering, migration is surgical.
  double ooo_topk_migrated_share = 0.0;
  /// Packets of the top_k flows ranked by packet count / total packets
  /// (heavy-hitter concentration, the premise the AFD relies on).
  double topk_packet_share = 0.0;
  std::size_t top_k = 16;             ///< the k used for both shares
};

/// Exact per-flow accounting of a simulation run: packets, drops,
/// migrations, OOO departures, penalty charges, and a compact latency
/// histogram per flow, plus derived attribution metrics. Emits a
/// laps-bench-v1 artifact whose `flow_audit` table holds the top flows and
/// whose `flow_audit_summary` table holds the attribution numbers.
///
/// Totals across all flows sum exactly to the ReportProbe aggregates of the
/// same run (asserted by the golden-grid audit test), so per-flow rows can
/// be trusted as a decomposition of the run report, not a parallel
/// approximation.
///
/// Hot-path design: probe hooks only append fixed 16-byte records to a flat
/// preallocated log (one raw store and one pointer compare per event, no
/// random access), so the simulation loop pays nanoseconds per event
/// regardless of flow population. Arrivals are not logged at all: the
/// engine follows every arrival with exactly one drop or dispatch, so those
/// two records carry the per-flow packet count for free.
/// Aggregation into the open-addressed table is deferred to the first
/// accessor after the run (artifact-write time) — the same trick tracers
/// use to keep symbolization off the recorded path — with a bounded log:
/// past kMaxPending events the log is folded into the table mid-run, so
/// memory stays O(flows + kMaxPending) for arbitrarily long simulations.
/// The fold walks the log with software prefetch and a dense gflow -> slot
/// memo, so even the deferred cost is near memory bandwidth, not latency.
class FlowAuditProbe final : public SimProbe {
 public:
  struct Options {
    /// k for the attribution shares (default: the paper's AFC size).
    std::size_t top_k = 16;
    /// Per-flow rows emitted in the artifact, ranked by packet count
    /// (descending; ties by key). 0 = all flows. The artifact always
    /// records how many flows the table actually held, so capping is
    /// explicit, never silent.
    std::size_t max_rows = 256;
  };

  /// Events buffered before a mid-run fold into the table (32 MiB of log).
  /// Sized so runs up to ~2M probe events — including the perf_kernel
  /// default of 0.02 simulated seconds — never fold inside the simulation
  /// loop: the fold then happens once, at artifact-write time, where its
  /// memory-latency cost belongs. Longer runs amortize periodic folds.
  static constexpr std::size_t kMaxPending = std::size_t{1} << 21;

  FlowAuditProbe();  ///< default Options
  explicit FlowAuditProbe(Options options);

  void on_run_begin(const RunInfo& info) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                   bool migrated) override;
  void on_service_start(TimeNs now, const SimPacket& pkt, CoreId core,
                        TimeNs delay, bool fm_penalty,
                        bool cold_cache) override;
  void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                    std::uint32_t new_ooo) override;
  void on_run_end(const RunEnd& end) override;

  /// The aggregated table (folds any pending events first).
  const FlowAuditTable& table() const {
    flush_pending();
    return table_;
  }

  /// Occupied entries sorted by (packets desc, key asc) — the artifact row
  /// order, deterministic for identical runs.
  std::vector<FlowAuditTable::Entry> sorted_entries() const;

  /// Attribution metrics over the full table (never row-capped).
  FlowAuditSummary summary() const;

  /// Full laps-bench-v1 document (tables `flow_audit` +
  /// `flow_audit_summary`).
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  enum : std::uint32_t {
    kEvDispatch = 0,
    kEvDrop = 1,
    kEvPenalty = 2,
    kEvDeparture = 3,
  };

  /// One logged probe event: 16 bytes, append-only. `tag` packs the event
  /// type in the low 3 bits and the payload (dispatch migrated flag,
  /// penalty fm|cold flags, or departure new_ooo) in the rest. `a` is the
  /// flow key for dispatch-class events and the ingress->departure latency
  /// for departures — a departure never needs the key, because the flow's
  /// dispatch necessarily precedes it in the log and leaves its slot in
  /// the memo.
  struct alignas(16) Pending {
    std::uint64_t a;
    std::uint32_t gflow;
    std::uint32_t tag;
  };
  static_assert(sizeof(Pending) == 16, "Pending must stay a packed 16 bytes");

  /// The whole hot path: one 16-byte store plus one pointer compare. The
  /// log is preallocated (uninitialized — pages fault in as used), so there
  /// is no capacity bookkeeping per event the way a vector push would pay.
  /// On x86 the store is non-temporal: the log is written once and read
  /// once much later, so letting it through the cache would cost a
  /// read-for-ownership per line AND evict the simulation's working set —
  /// write-combining avoids both. flush_pending() fences before reading.
  void push(std::uint64_t a, std::uint32_t gflow, std::uint32_t tag) {
#if defined(__SSE2__)
    const __m128i v = _mm_set_epi64x(
        static_cast<long long>((static_cast<std::uint64_t>(tag) << 32) |
                               gflow),
        static_cast<long long>(a));
    _mm_stream_si128(reinterpret_cast<__m128i*>(cursor_), v);
    ++cursor_;
#else
    *cursor_++ = Pending{a, gflow, tag};
#endif
    if (cursor_ == log_end_) flush_pending();
  }

  /// Folds the pending log into the table. Idempotent; const because every
  /// read accessor triggers it (the log and table are mutable caches of the
  /// same information).
  void flush_pending() const;

  /// The flow's table entry, via the dense-gflow slot memo: all events for
  /// a flow after the first resolve its slot with one array index instead
  /// of a hash probe (the engine hands us the dense index for free).
  FlowAuditTable::Entry& entry_at(std::uint32_t gflow, std::uint64_t key) const;

  /// Rebuilds the gflow -> slot memo by scanning the table (called after a
  /// rehash or clear moved every slot).
  void resync_memo() const;

  Options options_;
  RunInfo info_;
  mutable FlowAuditTable table_;
  /// Fixed event log of kMaxPending records; cursor_ is the next write.
  mutable std::unique_ptr<Pending[]> log_;
  mutable Pending* cursor_ = nullptr;
  Pending* log_end_ = nullptr;
  /// gflow -> slot index + 1 (0 = unknown); valid for cache_generation_.
  mutable std::vector<std::uint32_t> slot_cache_;
  mutable std::uint64_t cache_generation_ = 0;
};

}  // namespace laps
