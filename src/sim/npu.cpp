#include "sim/npu.h"

#include <cstdio>
#include <stdexcept>

namespace laps {

Npu::Npu(NpuConfig config, Scheduler& scheduler)
    : config_(config), scheduler_(scheduler) {
  if (config_.num_cores == 0) throw std::invalid_argument("Npu: 0 cores");
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("Npu: 0 queue capacity");
  }
  cores_.resize(config_.num_cores);
  views_.resize(config_.num_cores);
  for (CoreView& v : views_) v.idle_since = 0;  // all idle at t = 0
}

void Npu::ensure_flow(std::uint32_t gflow) {
  if (gflow >= ingress_seq_.size()) {
    const std::size_t n = static_cast<std::size_t>(gflow) + 1;
    ingress_seq_.resize(n, 0);
    egress_hi_.resize(n, 0);
    last_assigned_core_.resize(n, -1);
    last_proc_core_.resize(n, -1);
  }
}

SimReport Npu::run(ArrivalStream& arrivals, const std::string& scenario) {
  SimReport report;
  report.scheduler = scheduler_.name();
  report.scenario = scenario;
  scheduler_.attach(config_.num_cores);

  // Pre-size per-flow arrays when the generator knows its population.
  ensure_flow(arrivals.total_flows() > 0
                  ? static_cast<std::uint32_t>(arrivals.total_flows() - 1)
                  : 0);

  auto arrival = arrivals.next();
  TimeNs horizon = 0;

  while (arrival || !completions_.empty()) {
    // Completions at the same tick run before arrivals: the freed queue
    // slot is visible to a simultaneously arriving packet, matching
    // hardware where dequeue happens early in the cycle.
    if (arrival &&
        (completions_.empty() || arrival->time < completions_.top_time())) {
      now_ = arrival->time;
      horizon = now_;
      SimPacket pkt;
      pkt.arrival = arrival->time;
      pkt.tuple = arrival->record.tuple;
      pkt.gflow = arrival->gflow;
      pkt.size_bytes = arrival->record.size_bytes;
      pkt.service = arrival->service;
      handle_arrival(pkt, report);
      arrival = arrivals.next();
    } else {
      const Completion c = completions_.pop();
      now_ = c.time;
      handle_completion(c.core, report);
    }
  }

  report.sim_time = horizon;
  TimeNs busy_total = 0;
  for (const Core& core : cores_) busy_total += core.busy_total;
  const TimeNs end = now_ > horizon ? now_ : horizon;
  report.mean_core_utilization =
      end > 0 ? static_cast<double>(busy_total) /
                    (static_cast<double>(end) *
                     static_cast<double>(config_.num_cores))
              : 0.0;
  report.extra = scheduler_.extra_stats();
  if (config_.restore_order) {
    report.extra["rob_max_occupancy"] =
        static_cast<double>(rob_.max_occupancy());
    report.extra["rob_buffered_packets"] =
        static_cast<double>(rob_.buffered_total());
    report.extra["rob_mean_held_us"] =
        rob_.buffered_total() > 0
            ? to_us(rob_.total_held_ns()) /
                  static_cast<double>(rob_.buffered_total())
            : 0.0;
    report.extra["rob_released_packets"] =
        static_cast<double>(rob_.released_total());
    report.extra["rob_stranded_packets"] =
        static_cast<double>(rob_.occupancy());
  }
  return report;
}

void Npu::handle_arrival(SimPacket pkt, SimReport& report) {
  ensure_flow(pkt.gflow);
  pkt.seq = ingress_seq_[pkt.gflow]++;

  ++report.offered;
  ++report.offered_by_service[static_cast<std::size_t>(pkt.service)];

  const CoreId target = scheduler_.schedule(pkt, *this);
  if (target >= cores_.size()) {
    throw std::logic_error("scheduler returned invalid core id");
  }

  Core& core = cores_[target];
  CoreView& view = views_[target];
  if (view.queue_len >= config_.queue_capacity) {
    ++report.dropped;
    ++report.dropped_by_service[static_cast<std::size_t>(pkt.service)];
    if (config_.restore_order) {
      // The egress buffer must not wait for a packet that will never
      // complete; the drop may release held successors.
      rob_.on_drop(pkt.gflow, pkt.seq, now_);
    }
    return;
  }

  // Flow-migration accounting at dispatch (Fig. 9c counts migrations, i.e.
  // consecutive packets of a flow sent to different cores).
  const std::int32_t prev = last_assigned_core_[pkt.gflow];
  if (prev >= 0 && static_cast<CoreId>(prev) != target) {
    ++report.flow_migrations;
  }
  last_assigned_core_[pkt.gflow] = static_cast<std::int32_t>(target);

  core.queue.push_back(pkt);
  ++view.queue_len;
  view.idle_since = -1;
  if (!view.busy) start_service(target, report);
}

void Npu::start_service(CoreId core_id, SimReport& report) {
  Core& core = cores_[core_id];
  CoreView& view = views_[core_id];
  if (core.queue.empty()) throw std::logic_error("start_service: empty queue");

  core.in_service = core.queue.front();
  core.queue.pop_front();
  --view.queue_len;

  const SimPacket& pkt = core.in_service;
  const bool migrated =
      last_proc_core_[pkt.gflow] >= 0 &&
      static_cast<CoreId>(last_proc_core_[pkt.gflow]) != core_id;
  const bool cold =
      core.last_service >= 0 &&
      core.last_service != static_cast<int>(pkt.service);
  if (migrated) ++report.fm_penalties;
  if (cold) ++report.cold_cache_events;
  last_proc_core_[pkt.gflow] = static_cast<std::int32_t>(core_id);
  core.last_service = static_cast<int>(pkt.service);
  view.busy = true;

  const TimeNs delay =
      config_.delay.packet_delay(pkt.service, pkt.size_bytes, migrated, cold);
  core.busy_total += delay;
  completions_.push(Completion{now_ + delay, core_id});
}

void Npu::handle_completion(CoreId core_id, SimReport& report) {
  Core& core = cores_[core_id];
  CoreView& view = views_[core_id];
  const SimPacket& pkt = core.in_service;

  ++report.delivered;
  report.latency_ns.record(now_ - pkt.arrival);

  if (config_.restore_order) {
    // The wire sees the ReorderBuffer's output, which is ordered by
    // construction; still run the detector over released packets so a
    // buffer bug would surface as nonzero out_of_order.
    for (const ReorderBuffer::Released& rel :
         rob_.on_complete(pkt.gflow, pkt.seq, now_)) {
      std::uint32_t& hi = egress_hi_[rel.gflow];
      if (rel.seq + 1 < hi) {
        ++report.out_of_order;
      } else {
        hi = rel.seq + 1;
      }
    }
  } else {
    // Out-of-order detection: a departure below the per-flow high-water
    // mark means a later-arriving packet of the same flow already left.
    std::uint32_t& hi = egress_hi_[pkt.gflow];
    if (pkt.seq + 1 < hi) {
      ++report.out_of_order;
    } else {
      hi = pkt.seq + 1;
    }
  }

  view.busy = false;
  if (!core.queue.empty()) {
    start_service(core_id, report);
  } else {
    view.idle_since = now_;
  }
}

}  // namespace laps
