#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "sim/event_heap.h"
#include "sim/packet.h"
#include "sim/reorder_buffer.h"
#include "sim/report.h"
#include "sim/scheduler.h"
#include "traffic/generator.h"
#include "traffic/workload.h"

namespace laps {

/// Static configuration of the simulated network processor (paper Sec. II
/// and IV-C: Frame Manager feeding per-core input queues of 32 descriptors).
struct NpuConfig {
  std::size_t num_cores = 16;
  std::uint32_t queue_capacity = 32;
  DelayModel delay;
  /// If true, completions pass through an egress ReorderBuffer that
  /// restores per-flow order (the Shi et al. [35] alternative). The wire
  /// output is then perfectly ordered (`out_of_order` counts released
  /// packets, i.e. 0) and the buffer's cost shows up in the report's
  /// `rob_*` extra fields.
  bool restore_order = false;
};

/// Discrete-event model of the NPU fast path (paper Fig. 6).
///
/// This is the seed (pre-SimEngine) kernel, retained verbatim as the
/// reference implementation: the golden determinism suite asserts that the
/// refactored SimEngine + ReportProbe pipeline reproduces this class's
/// SimReport byte-for-byte, and bench/perf_kernel measures the engine's
/// speedup against it. New code should use SimEngine (sim/engine.h) via
/// run_scenario(); do not grow this class.
///
/// Per arriving packet: the scheduler under test picks a core; if that
/// core's input queue is full the packet is dropped (Sec. IV-C2), otherwise
/// it is enqueued. Cores serve their queue FIFO, one packet at a time, with
/// the per-packet delay of Eq. 3: T_proc(service, size) plus FM_penalty when
/// the flow's previous packet ran on a different core, plus CC_penalty when
/// the previous packet on this core belonged to a different service.
/// Departures feed the out-of-order detector (a departure whose per-flow
/// ingress sequence number is below an already-departed one is counted OOO).
///
/// After the generator horizon, queued packets are drained to completion, so
/// `offered == delivered + dropped` holds exactly for every run.
class Npu final : public NpuView {
 public:
  Npu(NpuConfig config, Scheduler& scheduler);

  /// Runs the full simulation and returns the report. `scenario` is a label
  /// for the report only.
  SimReport run(ArrivalStream& arrivals, const std::string& scenario);

  // NpuView (what the scheduler is allowed to observe):
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {views_.data(), views_.size()};
  }
  std::uint32_t queue_capacity() const override {
    return config_.queue_capacity;
  }

 private:
  struct Core {
    std::deque<SimPacket> queue;
    SimPacket in_service;
    TimeNs busy_total = 0;
    /// Service of the most recently started packet (I-cache contents, for
    /// CC_penalty), or -1. Simulator-private: schedulers only ever see the
    /// CoreView span, which deliberately omits it.
    int last_service = -1;
  };

  struct Completion {
    TimeNs time;
    CoreId core;
  };

  void handle_arrival(SimPacket pkt, SimReport& report);
  void handle_completion(CoreId core, SimReport& report);
  void start_service(CoreId core, SimReport& report);
  void ensure_flow(std::uint32_t gflow);

  NpuConfig config_;
  Scheduler& scheduler_;
  TimeNs now_ = 0;
  std::vector<Core> cores_;
  std::vector<CoreView> views_;
  EventHeap<Completion> completions_;
  ReorderBuffer rob_;  // used only when config_.restore_order

  // Per-flow state, indexed by gflow (grown on demand).
  std::vector<std::uint32_t> ingress_seq_;
  std::vector<std::uint32_t> egress_hi_;        // max departed seq + 1
  std::vector<std::int32_t> last_assigned_core_;
  std::vector<std::int32_t> last_proc_core_;
};

}  // namespace laps
