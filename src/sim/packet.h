#pragma once

#include <cstdint>

#include "traffic/workload.h"
#include "util/flow.h"
#include "util/time.h"

namespace laps {

/// A packet descriptor inside the simulated network processor — the unit the
/// Frame Manager enqueues to a core (paper Sec. II). Carries exactly what
/// the scheduler hardware can see (header 5-tuple, size, service
/// classification) plus simulation bookkeeping (ids, timestamps).
struct SimPacket {
  TimeNs arrival = 0;           ///< ingress time at the scheduler
  FiveTuple tuple;              ///< header the scheduler hashes
  std::uint32_t gflow = 0;      ///< dense global flow index
  std::uint32_t seq = 0;        ///< per-flow ingress sequence number,
                                ///< assigned by THIS engine at feed — dense,
                                ///< which the ReorderBuffer depends on
  /// Cluster-global per-flow sequence stamped by the front-end dispatcher
  /// before the packet reached this NP (src/cluster) — NIC RX metadata the
  /// engine carries opaquely. 0 in single-engine runs.
  std::uint32_t cluster_seq = 0;
  std::uint16_t size_bytes = 64;
  ServicePath service = ServicePath::kIpForward;

  /// The flow key software structures (migration tables, statistics) use.
  std::uint64_t flow_key() const { return tuple.key64(); }
};

}  // namespace laps
