#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>

#include "sim/packet.h"
#include "sim/scheduler.h"
#include "util/time.h"

namespace laps {

struct FaultEvent;  // sim/fault.h

/// Static facts about one simulation run, delivered to every probe before
/// the first event.
struct RunInfo {
  std::string scenario;        ///< scenario label (report key)
  std::string scheduler;       ///< scheduler display name
  std::size_t num_cores = 0;
  std::uint32_t queue_capacity = 0;
  bool restore_order = false;  ///< egress ReorderBuffer enabled
};

/// End-of-run aggregates only the engine can compute, delivered to every
/// probe after the last event. Everything else a probe reports it must
/// accumulate itself from the per-event hooks.
struct RunEnd {
  TimeNs horizon = 0;     ///< time of the last generated arrival
  TimeNs end = 0;         ///< max(horizon, last event time) — drain included
  TimeNs busy_total = 0;  ///< summed busy time across all cores
  /// Scheduler extra_stats() merged with the engine's rob_* counters —
  /// exactly the `extra` map of the seed report format.
  std::map<std::string, double> extra;
};

/// Engine-internal state sampled at epoch boundaries for telemetry: the
/// counters and occupancies only the engine can see (its completion queue,
/// flow table, reorder buffer, fault bitmap). Delivered via
/// on_engine_sample alongside each on_epoch fan-out, plus once at run end,
/// so probes never reach into the engine.
struct EngineSample {
  std::uint64_t completions = 0;     ///< completion events handled so far
  std::uint64_t wheel_cascades = 0;  ///< timing-wheel cascades (0 on heap)
  std::uint64_t flows = 0;           ///< flow-table size (flows ever seen)
  std::uint64_t rob_occupancy = 0;   ///< reorder-buffer residents (0 if off)
  std::uint32_t live_cores = 0;      ///< cores not faulted down
};

/// Passive observer of the simulation fast path.
///
/// The engine invokes hooks in a fixed order per packet lifecycle:
///   on_arrival -> (on_drop | on_dispatch) -> on_service_start ->
///   on_departure
/// plus on_epoch at fixed simulated-time boundaries (when enabled),
/// on_sched_event for scheduler-internal decisions, and
/// on_run_begin/on_run_end bracketing the run. Hooks must not mutate
/// simulation state; every default is a no-op so probes override only what
/// they measure.
class SimProbe {
 public:
  virtual ~SimProbe() = default;

  virtual void on_run_begin(const RunInfo& info) { (void)info; }

  /// A packet was presented to the scheduler (before the dispatch
  /// decision). `pkt.seq` is already assigned.
  virtual void on_arrival(TimeNs now, const SimPacket& pkt) {
    (void)now;
    (void)pkt;
  }

  /// The scheduled core's queue was full; the packet is lost.
  virtual void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) {
    (void)now;
    (void)pkt;
    (void)core;
  }

  /// The packet was enqueued on `core`. `migrated` flags a flow whose
  /// previous packet was dispatched to a different core (the Fig. 9c
  /// flow-migration count).
  virtual void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                           bool migrated) {
    (void)now;
    (void)pkt;
    (void)core;
    (void)migrated;
  }

  /// `core` started processing `pkt`, which will occupy it for `delay`.
  /// `fm_penalty`/`cold_cache` flag the Eq. 3 penalty charges.
  virtual void on_service_start(TimeNs now, const SimPacket& pkt, CoreId core,
                                TimeNs delay, bool fm_penalty,
                                bool cold_cache) {
    (void)now;
    (void)pkt;
    (void)core;
    (void)delay;
    (void)fm_penalty;
    (void)cold_cache;
  }

  /// `pkt` finished processing on `core`. `new_ooo` is how many packets
  /// this departure counted as out-of-order (with order restoration one
  /// completion can release, and order-check, several buffered packets).
  virtual void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                            std::uint32_t new_ooo) {
    (void)now;
    (void)pkt;
    (void)core;
    (void)new_ooo;
  }

  /// Fixed simulated-time boundary (engine epoch_ns > 0). `cores` is the
  /// scheduler-observable per-core state at the boundary.
  virtual void on_epoch(TimeNs now, std::span<const CoreView> cores) {
    (void)now;
    (void)cores;
  }

  /// Engine-internal counters/occupancies, emitted right after the
  /// on_epoch fan-out at each boundary and once more just before
  /// on_run_end. Purely observational — fires only when probes are
  /// attached, so probe-free runs are untouched.
  virtual void on_engine_sample(TimeNs now, const EngineSample& sample) {
    (void)now;
    (void)sample;
  }

  /// A scheduler-internal decision, timestamped by the engine.
  virtual void on_sched_event(TimeNs now, const SchedEvent& event) {
    (void)now;
    (void)event;
  }

  /// A fault-plan event (sim/fault.h) was applied by the engine. `flushed`
  /// is how many packets a core_down flush dropped (0 for other kinds).
  /// Only fires for runs configured with a FaultPlan.
  virtual void on_fault(TimeNs now, const FaultEvent& event,
                        std::uint32_t flushed) {
    (void)now;
    (void)event;
    (void)flushed;
  }

  virtual void on_run_end(const RunEnd& end) { (void)end; }
};

/// A small, fixed-capacity set of non-owning probe pointers the engine fans
/// events out to. Empty by default: the null probe set is the engine's fast
/// path (one branch per hook site, no indirect calls).
class ProbeSet {
 public:
  static constexpr std::size_t kMaxProbes = 8;

  ProbeSet() = default;
  ProbeSet(std::initializer_list<SimProbe*> probes) {
    for (SimProbe* p : probes) add(p);
  }

  /// Adds a probe; null pointers are ignored so call sites can pass
  /// optionally-constructed probes unconditionally.
  void add(SimProbe* probe) {
    if (probe == nullptr) return;
    if (count_ == kMaxProbes) throw std::length_error("ProbeSet: full");
    probes_[count_++] = probe;
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  std::span<SimProbe* const> probes() const { return {probes_.data(), count_}; }

 private:
  std::array<SimProbe*, kMaxProbes> probes_{};
  std::size_t count_ = 0;
};

}  // namespace laps
