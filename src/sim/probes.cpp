#include "sim/probes.h"

#include <stdexcept>

#include "traffic/workload.h"
#include "util/fileio.h"
#include "util/json_writer.h"

namespace laps {

namespace {

void write_file(const std::string& path, const std::string& doc,
                const char* what) {
  util::write_file_atomic(path, doc, what);
}

}  // namespace

const char* SchedEvent::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCoreGrant: return "core_grant";
    case Kind::kCoreDenied: return "core_denied";
    case Kind::kAggressiveMigration: return "aggressive_migration";
    case Kind::kAfdPromotion: return "afd_promotion";
    case Kind::kPark: return "park";
    case Kind::kWake: return "wake";
    case Kind::kCoreDown: return "core_down";
    case Kind::kCoreUp: return "core_up";
    case Kind::kCoreSlowdown: return "core_slowdown";
    case Kind::kCoreStall: return "core_stall";
    case Kind::kTrafficFault: return "traffic_fault";
  }
  return "unknown";
}

// ------------------------------------------------------------ ReportProbe ---

void ReportProbe::on_run_begin(const RunInfo& info) {
  report_ = SimReport{};
  report_.scheduler = info.scheduler;
  report_.scenario = info.scenario;
  num_cores_ = info.num_cores;
}

void ReportProbe::on_arrival(TimeNs, const SimPacket& pkt) {
  ++report_.offered;
  ++report_.offered_by_service[static_cast<std::size_t>(pkt.service)];
}

void ReportProbe::on_drop(TimeNs, const SimPacket& pkt, CoreId) {
  ++report_.dropped;
  ++report_.dropped_by_service[static_cast<std::size_t>(pkt.service)];
}

void ReportProbe::on_dispatch(TimeNs, const SimPacket&, CoreId,
                              bool migrated) {
  if (migrated) ++report_.flow_migrations;
}

void ReportProbe::on_service_start(TimeNs, const SimPacket&, CoreId, TimeNs,
                                   bool fm_penalty, bool cold_cache) {
  if (fm_penalty) ++report_.fm_penalties;
  if (cold_cache) ++report_.cold_cache_events;
}

void ReportProbe::on_departure(TimeNs now, const SimPacket& pkt, CoreId,
                               std::uint32_t new_ooo) {
  ++report_.delivered;
  report_.latency_ns.record(now - pkt.arrival);
  report_.out_of_order += new_ooo;
}

void ReportProbe::on_run_end(const RunEnd& end) {
  report_.sim_time = end.horizon;
  // Identical arithmetic to the seed Npu::run epilogue, so the derived
  // double is bit-equal and the JSON bytes match.
  report_.mean_core_utilization =
      end.end > 0 ? static_cast<double>(end.busy_total) /
                        (static_cast<double>(end.end) *
                         static_cast<double>(num_cores_))
                  : 0.0;
  report_.extra = end.extra;
}

// -------------------------------------------------------- TimeSeriesProbe ---

TimeSeriesProbe::TimeSeriesProbe(TimeNs window_ns) : window_ns_(window_ns) {
  if (window_ns <= 0) {
    throw std::invalid_argument("TimeSeriesProbe: window must be positive");
  }
}

TimeSeriesProbe::Window& TimeSeriesProbe::window_at(TimeNs now) {
  const std::size_t index =
      static_cast<std::size_t>(now / window_ns_);
  if (index >= windows_.size()) windows_.resize(index + 1);
  return windows_[index];
}

void TimeSeriesProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  windows_.clear();
}

void TimeSeriesProbe::on_arrival(TimeNs now, const SimPacket&) {
  ++window_at(now).arrivals;
}

void TimeSeriesProbe::on_drop(TimeNs now, const SimPacket&, CoreId) {
  ++window_at(now).drops;
}

void TimeSeriesProbe::on_dispatch(TimeNs now, const SimPacket&, CoreId,
                                  bool migrated) {
  Window& w = window_at(now);
  ++w.dispatches;
  if (migrated) ++w.migrations;
}

void TimeSeriesProbe::on_departure(TimeNs now, const SimPacket&, CoreId,
                                   std::uint32_t new_ooo) {
  Window& w = window_at(now);
  ++w.departures;
  w.out_of_order += new_ooo;
}

void TimeSeriesProbe::on_epoch(TimeNs now, std::span<const CoreView> cores) {
  // The epoch at boundary time B carries the queue state just before B and
  // closes window [B - window, B).
  if (now < window_ns_ || cores.empty()) return;
  Window& w = windows_[static_cast<std::size_t>(now / window_ns_) - 1];
  std::uint64_t total = 0;
  std::uint32_t max = 0;
  for (const CoreView& v : cores) {
    total += v.queue_len;
    if (v.queue_len > max) max = v.queue_len;
  }
  w.queue_depth_mean =
      static_cast<double>(total) / static_cast<double>(cores.size());
  w.queue_depth_max = max;
}

void TimeSeriesProbe::on_sched_event(TimeNs now, const SchedEvent& event) {
  Window& w = window_at(now);
  switch (event.kind) {
    case SchedEvent::Kind::kCoreGrant: ++w.core_grants; break;
    case SchedEvent::Kind::kPark: ++w.parks; break;
    case SchedEvent::Kind::kWake: ++w.wakes; break;
    case SchedEvent::Kind::kAfdPromotion: ++w.afd_promotions; break;
    case SchedEvent::Kind::kCoreDenied:
    case SchedEvent::Kind::kAggressiveMigration:
      break;  // visible in the migrations column via on_dispatch
    case SchedEvent::Kind::kCoreDown:
    case SchedEvent::Kind::kCoreUp:
    case SchedEvent::Kind::kCoreSlowdown:
    case SchedEvent::Kind::kCoreStall:
    case SchedEvent::Kind::kTrafficFault:
      break;  // fault timelines live in the FaultProbe artifact
  }
}

void TimeSeriesProbe::on_run_end(const RunEnd& end) {
  // Materialize every window up to the drain end, so quiet tails are
  // explicit zero rows rather than missing ones.
  if (end.end > 0) window_at(end.end);
}

std::string TimeSeriesProbe::to_json() const {
  // Same envelope as exp/harness artifact_json (schema laps-bench-v1), with
  // the series as the single table: existing artifact tooling parses it.
  JsonWriter w;
  w.begin_object();
  w.field("schema", "laps-bench-v1");
  w.field("tool", "timeseries");
  w.field("scenario", info_.scenario);
  w.field("scheduler", info_.scheduler);
  w.field("window_us", to_us(window_ns_));
  w.key("reports");
  w.begin_array();
  w.end_array();
  w.key("tables");
  w.begin_array();
  w.begin_object();
  w.field("title", "timeseries");
  static const char* const kHeaders[] = {
      "t_us",       "arrivals",    "dispatches",  "drops",
      "departures", "migrations",  "ooo",         "qdepth_mean",
      "qdepth_max", "core_grants", "parks",       "wakes",
      "afd_promotions"};
  w.key("headers");
  w.begin_array();
  for (const char* h : kHeaders) w.value(h);
  w.end_array();
  w.key("rows");
  w.begin_array();
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& win = windows_[i];
    w.begin_array();
    w.value(to_us(static_cast<TimeNs>(i) * window_ns_));
    w.value(win.arrivals);
    w.value(win.dispatches);
    w.value(win.drops);
    w.value(win.departures);
    w.value(win.migrations);
    w.value(win.out_of_order);
    w.value(win.queue_depth_mean);
    w.value(win.queue_depth_max);
    w.value(win.core_grants);
    w.value(win.parks);
    w.value(win.wakes);
    w.value(win.afd_promotions);
    w.end_array();
  }
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void TimeSeriesProbe::write(const std::string& path) const {
  write_file(path, to_json(), "time-series artifact");
}

// ------------------------------------------------------- ChromeTraceProbe ---

void ChromeTraceProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  events_.clear();
}

void ChromeTraceProbe::on_drop(TimeNs now, const SimPacket& pkt,
                               CoreId core) {
  events_.push_back(Event{'i', now, 0, core, "drop",
                          "{\"flow\":" + std::to_string(pkt.gflow) +
                              ",\"seq\":" + std::to_string(pkt.seq) + "}"});
}

void ChromeTraceProbe::on_service_start(TimeNs now, const SimPacket& pkt,
                                        CoreId core, TimeNs delay,
                                        bool fm_penalty, bool cold_cache) {
  std::string args = "{\"flow\":" + std::to_string(pkt.gflow) +
                     ",\"seq\":" + std::to_string(pkt.seq);
  if (fm_penalty) args += ",\"fm_penalty\":true";
  if (cold_cache) args += ",\"cold_cache\":true";
  args += "}";
  events_.push_back(Event{'X', now, delay, core, service_name(pkt.service),
                          std::move(args)});
}

void ChromeTraceProbe::on_sched_event(TimeNs now, const SchedEvent& event) {
  std::string args = "{";
  if (event.core >= 0) args += "\"core\":" + std::to_string(event.core);
  if (event.service >= 0) {
    if (args.size() > 1) args += ",";
    args += "\"service\":" + std::to_string(event.service);
  }
  if (event.flow_key != 0) {
    if (args.size() > 1) args += ",";
    args += "\"flow_key\":" + std::to_string(event.flow_key);
  }
  args += "}";
  // Scheduler decisions render on a dedicated row below the core rows.
  events_.push_back(Event{'i', now, 0,
                          static_cast<std::uint32_t>(info_.num_cores),
                          SchedEvent::kind_name(event.kind),
                          std::move(args)});
}

std::string ChromeTraceProbe::to_json() const {
  // Hand-assembled (not JsonWriter) because trace viewers want the compact
  // one-event-per-line form, and args are pre-rendered fragments.
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto append = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  // Metadata: name the process and one row per core plus the scheduler row.
  append("{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{"
         "\"name\":" +
         JsonWriter::quote(info_.scenario + " / " + info_.scheduler) + "}}");
  for (std::size_t c = 0; c <= info_.num_cores; ++c) {
    const std::string label =
        c < info_.num_cores ? "core " + std::to_string(c) : "scheduler";
    append("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(c) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           JsonWriter::quote(label) + "}}");
  }
  for (const Event& e : events_) {
    std::string line = "{\"ph\":\"";
    line += e.phase;
    line += "\",\"pid\":0,\"tid\":" + std::to_string(e.tid) +
            ",\"ts\":" + std::to_string(to_us(e.start));
    if (e.phase == 'X') {
      line += ",\"dur\":" + std::to_string(to_us(e.duration));
    } else if (e.phase == 'i') {
      line += ",\"s\":\"t\"";  // instant scope; counters take neither field
    }
    line += ",\"name\":" + JsonWriter::quote(e.name);
    if (!e.args_json.empty()) line += ",\"args\":" + e.args_json;
    line += "}";
    append(line);
  }
  out += "\n]}\n";
  return out;
}

void ChromeTraceProbe::write(const std::string& path) const {
  write_file(path, to_json(), "chrome trace");
}

}  // namespace laps
