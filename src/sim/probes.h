#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/probe.h"
#include "sim/report.h"

namespace laps {

/// Rebuilds the seed `SimReport` from probe events — byte-identical (via
/// report_to_json) to what the monolithic Npu::run loop produced, which the
/// golden determinism suite asserts. This is the default probe behind
/// run_scenario(); everything downstream (benches, examples, JSON
/// artifacts) reads its report.
class ReportProbe final : public SimProbe {
 public:
  void on_run_begin(const RunInfo& info) override;
  void on_arrival(TimeNs now, const SimPacket& pkt) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                   bool migrated) override;
  void on_service_start(TimeNs now, const SimPacket& pkt, CoreId core,
                        TimeNs delay, bool fm_penalty,
                        bool cold_cache) override;
  void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                    std::uint32_t new_ooo) override;
  void on_run_end(const RunEnd& end) override;

  /// The assembled report; valid after on_run_end.
  const SimReport& report() const { return report_; }
  SimReport take_report() { return std::move(report_); }

 private:
  SimReport report_;
  std::size_t num_cores_ = 0;
};

/// Windowed time series of the signals the end-of-run totals hide: queue
/// depths, drops, migrations, and scheduler-internal events per fixed
/// simulated-time window. Serialized as a laps-bench-v1 artifact whose
/// single table has one row per window.
///
/// Pair it with SimEngineConfig::epoch_ns == window_ns so the engine
/// samples queue depths exactly at window boundaries.
class TimeSeriesProbe final : public SimProbe {
 public:
  explicit TimeSeriesProbe(TimeNs window_ns);

  void on_run_begin(const RunInfo& info) override;
  void on_arrival(TimeNs now, const SimPacket& pkt) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                   bool migrated) override;
  void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                    std::uint32_t new_ooo) override;
  void on_epoch(TimeNs now, std::span<const CoreView> cores) override;
  void on_sched_event(TimeNs now, const SchedEvent& event) override;
  void on_run_end(const RunEnd& end) override;

  TimeNs window_ns() const { return window_ns_; }
  std::size_t num_windows() const { return windows_.size(); }

  /// One aggregated window of the series.
  struct Window {
    std::uint64_t arrivals = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t drops = 0;
    std::uint64_t departures = 0;
    std::uint64_t migrations = 0;
    std::uint64_t out_of_order = 0;
    std::uint64_t core_grants = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakes = 0;
    std::uint64_t afd_promotions = 0;
    /// Queue-depth stats sampled at the window-closing epoch; -1 when the
    /// run ended before this window's boundary epoch fired.
    double queue_depth_mean = -1.0;
    std::uint32_t queue_depth_max = 0;
  };

  const std::vector<Window>& windows() const { return windows_; }

  /// Full laps-bench-v1 document (one table titled "timeseries").
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  Window& window_at(TimeNs now);

  TimeNs window_ns_;
  RunInfo info_;
  std::vector<Window> windows_;
};

/// Per-core service spans (plus drop and scheduler-event instants) in the
/// Chrome trace-event JSON format — load the output in chrome://tracing or
/// https://ui.perfetto.dev to see where migrations cluster and queues
/// saturate. Each simulated core is one "thread" row; scheduler-internal
/// events render on a dedicated row below the cores.
class ChromeTraceProbe final : public SimProbe {
 public:
  void on_run_begin(const RunInfo& info) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_service_start(TimeNs now, const SimPacket& pkt, CoreId core,
                        TimeNs delay, bool fm_penalty,
                        bool cold_cache) override;
  void on_sched_event(TimeNs now, const SchedEvent& event) override;

  std::size_t num_events() const { return events_.size(); }

  /// Appends a 'C' (counter) sample at `now`. `args_json` is the
  /// pre-rendered numeric args object, e.g. `{"depth":3,"max":7}` — each
  /// key renders as one counter track stacked with the event rows. Used by
  /// the TelemetryProbe to merge queue-depth/occupancy/rate tracks into
  /// the same timeline as the span events.
  void add_counter(TimeNs now, std::string name, std::string args_json) {
    events_.push_back(Event{'C', now, 0, static_cast<std::uint32_t>(0),
                            std::move(name), std::move(args_json)});
  }

  /// The {"traceEvents": [...]} document.
  std::string to_json() const;
  /// Writes to_json() to `path`. Throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    char phase = 'X';       // 'X' complete span, 'i' instant
    TimeNs start = 0;
    TimeNs duration = 0;    // spans only
    std::uint32_t tid = 0;  // core id, or the scheduler row
    std::string name;
    std::string args_json;  // pre-rendered "args" object, may be empty
  };

  RunInfo info_;
  std::vector<Event> events_;
};

}  // namespace laps
