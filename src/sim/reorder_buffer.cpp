#include "sim/reorder_buffer.h"

namespace laps {

void ReorderBuffer::ensure_flow(std::uint32_t gflow) {
  if (gflow >= expected_.size()) {
    expected_.resize(static_cast<std::size_t>(gflow) + 1, 0);
  }
}

void ReorderBuffer::drain(std::uint32_t gflow, TimeNs now,
                          std::vector<Released>& out) {
  const auto it = disorder_.find(gflow);
  if (it == disorder_.end()) return;
  Disorder& d = it->second;
  std::uint32_t& expected = expected_[gflow];
  while (true) {
    const auto pending_it = d.pending.find(expected);
    if (pending_it != d.pending.end()) {
      const TimeNs held = now - pending_it->second;
      out.push_back(Released{gflow, expected, held});
      total_held_ += held;
      ++released_total_;
      d.pending.erase(pending_it);
      --occupancy_;
      ++expected;
      continue;
    }
    if (d.dropped_ahead.erase(expected) > 0) {
      ++expected;
      continue;
    }
    break;
  }
  if (d.empty()) disorder_.erase(it);
}

std::vector<ReorderBuffer::Released> ReorderBuffer::on_complete(
    std::uint32_t gflow, std::uint32_t seq, TimeNs now) {
  ensure_flow(gflow);
  std::vector<Released> out;
  if (seq == expected_[gflow]) {
    out.push_back(Released{gflow, seq, 0});
    ++released_total_;
    ++expected_[gflow];
    drain(gflow, now, out);
  } else {
    // seq > expected: a predecessor is still in flight (or its drop has
    // not been reported yet) — hold this packet.
    Disorder& d = disorder_[gflow];
    d.pending.emplace(seq, now);
    ++occupancy_;
    ++buffered_total_;
    if (occupancy_ > max_occupancy_) max_occupancy_ = occupancy_;
  }
  return out;
}

std::vector<ReorderBuffer::Released> ReorderBuffer::on_drop(
    std::uint32_t gflow, std::uint32_t seq, TimeNs now) {
  ensure_flow(gflow);
  std::vector<Released> out;
  if (seq == expected_[gflow]) {
    ++expected_[gflow];
    drain(gflow, now, out);
  } else {
    disorder_[gflow].dropped_ahead.insert(seq);
  }
  return out;
}

}  // namespace laps
