#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace laps {

/// Egress reorder buffer — the *order restoration* alternative the paper
/// contrasts with its order-preserving design (Sec. VI, Shi et al. [35]):
/// packets may be processed on any core in any order, but are held at the
/// output until every earlier packet of their flow has departed (or is
/// known dropped). Restores perfect per-flow order at the cost of output
/// buffering and added latency — the overheads the paper argues against;
/// this class measures them.
///
/// Sequence numbers are per-flow, dense from 0 (the simulator's ingress
/// numbering). Every seq is eventually reported exactly once, either to
/// on_complete or to on_drop.
class ReorderBuffer {
 public:
  /// One packet released to the wire in restored order.
  struct Released {
    std::uint32_t gflow = 0;
    std::uint32_t seq = 0;
    TimeNs held_ns = 0;  ///< time spent waiting in the buffer
  };

  /// A packet of `gflow` with ingress sequence `seq` finished processing at
  /// `now`. Returns every packet this completion releases, in flow order
  /// (possibly none: the completed packet itself may be held).
  std::vector<Released> on_complete(std::uint32_t gflow, std::uint32_t seq,
                                    TimeNs now);

  /// `seq` of `gflow` was dropped at ingress and will never complete; the
  /// buffer must not wait for it. May release held packets behind the gap.
  std::vector<Released> on_drop(std::uint32_t gflow, std::uint32_t seq,
                                TimeNs now);

  /// Packets currently held.
  std::size_t occupancy() const { return occupancy_; }
  /// High-water mark of held packets — the paper's "considerable storage
  /// overheads".
  std::size_t max_occupancy() const { return max_occupancy_; }
  /// Total packets that had to be buffered (completed out of order).
  std::uint64_t buffered_total() const { return buffered_total_; }
  /// Sum of hold times across released packets.
  TimeNs total_held_ns() const { return total_held_; }
  /// Packets released so far.
  std::uint64_t released_total() const { return released_total_; }
  /// Flows currently holding disorder state (memory proxy).
  std::size_t disordered_flows() const { return disorder_.size(); }

 private:
  /// Out-of-order state for one flow; exists only while disorder does.
  struct Disorder {
    std::map<std::uint32_t, TimeNs> pending;          // completed early
    std::unordered_set<std::uint32_t> dropped_ahead;  // known-lost seqs

    bool empty() const { return pending.empty() && dropped_ahead.empty(); }
  };

  void ensure_flow(std::uint32_t gflow);
  void drain(std::uint32_t gflow, TimeNs now, std::vector<Released>& out);

  std::vector<std::uint32_t> expected_;  // next seq to release, per flow
  std::unordered_map<std::uint32_t, Disorder> disorder_;
  std::size_t occupancy_ = 0;
  std::size_t max_occupancy_ = 0;
  std::uint64_t buffered_total_ = 0;
  std::uint64_t released_total_ = 0;
  TimeNs total_held_ = 0;
};

}  // namespace laps
