#include "sim/report.h"

#include <cstdio>

namespace laps {

std::string SimReport::summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "[%s | %s] offered=%llu delivered=%llu dropped=%llu (%.3f%%) "
      "ooo=%llu (%.3f%%) migrations=%llu cold=%llu (%.1f%%) "
      "thru=%.3f Mpps util=%.1f%%",
      scenario.c_str(), scheduler.c_str(),
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(dropped), drop_ratio() * 100.0,
      static_cast<unsigned long long>(out_of_order), ooo_ratio() * 100.0,
      static_cast<unsigned long long>(flow_migrations),
      static_cast<unsigned long long>(cold_cache_events),
      cold_cache_ratio() * 100.0, throughput_mpps(),
      mean_core_utilization * 100.0);
  std::string out = buf;
  out += "\n  latency(ns): " + latency_ns.summary();
  if (!extra.empty()) {
    out += "\n  extra:";
    for (const auto& [key, value] : extra) {
      std::snprintf(buf, sizeof buf, " %s=%.0f", key.c_str(), value);
      out += buf;
    }
  }
  return out;
}

}  // namespace laps
