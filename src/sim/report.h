#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "traffic/workload.h"
#include "util/histogram.h"
#include "util/time.h"

namespace laps {

/// Aggregate results of one simulation run — everything the paper's
/// evaluation section reports, per scheduler and scenario.
struct SimReport {
  std::string scheduler;
  std::string scenario;
  TimeNs sim_time = 0;

  // --- Offered traffic -----------------------------------------------------
  std::uint64_t offered = 0;   ///< packets presented to the scheduler
  std::array<std::uint64_t, kNumServices> offered_by_service{};

  // --- Losses (Fig. 7a / 9a) ----------------------------------------------
  std::uint64_t dropped = 0;   ///< packets lost to full input queues
  std::array<std::uint64_t, kNumServices> dropped_by_service{};

  // --- Deliveries ----------------------------------------------------------
  std::uint64_t delivered = 0;       ///< packets that completed processing
  std::uint64_t in_flight_at_end = 0;///< still queued/in service at horizon

  // --- Packet order (Fig. 7c / 9b) ------------------------------------
  /// Departures whose per-flow ingress sequence number is lower than one
  /// that already departed — the paper's out-of-order metric.
  std::uint64_t out_of_order = 0;

  // --- Locality (Fig. 7b, 9c) ----------------------------------------------
  /// Dispatches that sent a flow to a different core than its previous
  /// packet (the flow-migration count of Fig. 9c; first packet of a flow
  /// does not count).
  std::uint64_t flow_migrations = 0;
  /// Packets that paid the FM_penalty (processed on a core that did not
  /// process the flow's previous packet).
  std::uint64_t fm_penalties = 0;
  /// Packets that paid the cold-I-cache penalty (previous packet on the
  /// core belonged to a different service) — Fig. 7b.
  std::uint64_t cold_cache_events = 0;

  // --- Latency -------------------------------------------------------------
  Histogram latency_ns;  ///< ingress -> departure per delivered packet

  // --- Utilization ---------------------------------------------------------
  double mean_core_utilization = 0.0;  ///< busy time / (cores * sim time)

  /// Scheduler-specific counters (from Scheduler::extra_stats).
  std::map<std::string, double> extra;

  // Derived ratios used across the figures. All guard against division by
  // zero so empty runs print cleanly.
  double drop_ratio() const {
    return offered ? static_cast<double>(dropped) / static_cast<double>(offered) : 0.0;
  }
  double ooo_ratio() const {
    return delivered ? static_cast<double>(out_of_order) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
  double cold_cache_ratio() const {
    return delivered ? static_cast<double>(cold_cache_events) /
                           static_cast<double>(delivered)
                     : 0.0;
  }
  double throughput_mpps() const {
    const double secs = to_seconds(sim_time);
    return secs > 0 ? static_cast<double>(delivered) / secs / 1e6 : 0.0;
  }

  /// Multi-line human-readable summary.
  std::string summary() const;
};

}  // namespace laps
