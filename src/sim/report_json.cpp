#include "sim/report_json.h"

namespace laps {

namespace {

void write_service_array(JsonWriter& w, const char* name,
                         const std::array<std::uint64_t, kNumServices>& a) {
  w.key(name);
  w.begin_array();
  for (const std::uint64_t v : a) w.value(v);
  w.end_array();
}

}  // namespace

void write_report_json(JsonWriter& w, const SimReport& r) {
  w.begin_object();
  w.field("scenario", r.scenario);
  w.field("scheduler", r.scheduler);
  w.field("sim_time_ns", static_cast<std::int64_t>(r.sim_time));

  w.field("offered", r.offered);
  write_service_array(w, "offered_by_service", r.offered_by_service);
  w.field("dropped", r.dropped);
  write_service_array(w, "dropped_by_service", r.dropped_by_service);
  w.field("delivered", r.delivered);
  w.field("in_flight_at_end", r.in_flight_at_end);

  w.field("out_of_order", r.out_of_order);
  w.field("flow_migrations", r.flow_migrations);
  w.field("fm_penalties", r.fm_penalties);
  w.field("cold_cache_events", r.cold_cache_events);

  w.field("drop_ratio", r.drop_ratio());
  w.field("ooo_ratio", r.ooo_ratio());
  w.field("cold_cache_ratio", r.cold_cache_ratio());
  w.field("throughput_mpps", r.throughput_mpps());
  w.field("mean_core_utilization", r.mean_core_utilization);

  w.key("latency_ns");
  w.begin_object();
  w.field("count", r.latency_ns.count());
  w.field("sum", static_cast<std::int64_t>(r.latency_ns.sum()));
  w.field("mean", r.latency_ns.mean());
  w.field("max", static_cast<std::int64_t>(r.latency_ns.max()));
  w.field("p50", static_cast<std::int64_t>(r.latency_ns.quantile(0.50)));
  w.field("p90", static_cast<std::int64_t>(r.latency_ns.quantile(0.90)));
  w.field("p99", static_cast<std::int64_t>(r.latency_ns.quantile(0.99)));
  w.field("p999", static_cast<std::int64_t>(r.latency_ns.quantile(0.999)));
  // The full distribution, not just summary quantiles: occupied buckets as
  // [upper_bound_ns, count] pairs in ascending value order. Lets artifact
  // consumers plot CDFs and diff latency shapes without rerunning.
  w.key("buckets");
  w.begin_array();
  for (const Histogram::Bucket& b : r.latency_ns.buckets()) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(b.upper_bound));
    w.value(b.count);
    w.end_array();
  }
  w.end_array();
  w.end_object();

  w.key("extra");
  w.begin_object();
  for (const auto& [key, value] : r.extra) {  // std::map: sorted, stable
    w.field(key, value);
  }
  w.end_object();
  w.end_object();
}

std::string report_to_json(const SimReport& report) {
  JsonWriter w;
  write_report_json(w, report);
  return w.str();
}

}  // namespace laps
