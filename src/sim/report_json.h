#pragma once

#include <string>

#include "sim/report.h"
#include "util/json_writer.h"

namespace laps {

/// Serializes `report` as one JSON object into an open writer (caller wraps
/// it in an array/document). Field order is fixed and every map is iterated
/// in sorted order, so serialization is byte-deterministic: two reports with
/// identical contents always produce identical bytes — the property the
/// parallel-engine determinism suite asserts on whole artifacts.
///
/// The object contains only simulation results (no wall-clock, host, or
/// thread-count information), so artifacts are comparable across machines
/// and across `--jobs` values.
void write_report_json(JsonWriter& writer, const SimReport& report);

/// `report` as a standalone pretty-printed JSON document.
std::string report_to_json(const SimReport& report);

}  // namespace laps
