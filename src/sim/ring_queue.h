#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace laps {

/// Fixed-capacity FIFO ring buffer — the SimEngine's per-core input queue.
///
/// The simulated hardware queue is 32 descriptors (paper Sec. IV-C); a
/// pre-sized ring keeps every enqueue/dequeue allocation-free and the whole
/// queue in two cache lines, where std::deque pays chunk indirection and
/// heap traffic. Capacity is fixed at construction and may be any positive
/// value (no power-of-two requirement); wraparound uses a compare-and-reset
/// instead of a modulo so non-power-of-two capacities stay division-free.
template <typename T>
class RingQueue {
 public:
  explicit RingQueue(std::uint32_t capacity) : slots_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingQueue: 0 capacity");
  }

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  std::uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == capacity(); }

  /// Appends a copy of `value`. The queue must not be full.
  void push_back(const T& value) {
    if (full()) throw std::logic_error("RingQueue: push on full");
    slots_[tail_] = value;
    tail_ = next(tail_);
    ++count_;
  }

  /// Oldest element. The queue must not be empty.
  const T& front() const {
    if (empty()) throw std::logic_error("RingQueue: front on empty");
    return slots_[head_];
  }

  /// Removes the oldest element. The queue must not be empty.
  void pop_front() {
    if (empty()) throw std::logic_error("RingQueue: pop on empty");
    head_ = next(head_);
    --count_;
  }

  void clear() {
    head_ = tail_ = 0;
    count_ = 0;
  }

 private:
  std::uint32_t next(std::uint32_t i) const {
    const std::uint32_t n = i + 1;
    return n == capacity() ? 0 : n;
  }

  std::vector<T> slots_;
  std::uint32_t head_ = 0;
  std::uint32_t tail_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace laps
