#include "sim/runner.h"

#include <stdexcept>

#include "sim/fault.h"
#include "sim/probes.h"

namespace laps {

namespace {

PacketGenerator make_generator(const ScenarioConfig& config) {
  if (config.services.empty()) {
    throw std::invalid_argument("run_scenario: no services");
  }
  for (const ServiceTraffic& s : config.services) {
    if (!s.trace) throw std::invalid_argument("run_scenario: null trace");
    s.trace->reset();
  }
  return PacketGenerator(config.services, config.seed, config.seconds);
}

}  // namespace

SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler) {
  return run_scenario(config, scheduler, ProbeSet{});
}

SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler,
                       const ProbeSet& extra_probes, TimeNs epoch_ns) {
  PacketGenerator generator = make_generator(config);
  SimEngineConfig engine_config;
  engine_config.num_cores = config.num_cores;
  engine_config.queue_capacity = config.queue_capacity;
  engine_config.delay = config.delay;
  engine_config.restore_order = config.restore_order;
  engine_config.epoch_ns = epoch_ns;
  engine_config.event_queue = config.event_queue;

  const bool faulted = config.faults != nullptr && !config.faults->empty();
  if (faulted) engine_config.faults = config.faults.get();

  ReportProbe report;
  ProbeSet probes;
  probes.add(&report);
  for (SimProbe* p : extra_probes.probes()) probes.add(p);

  SimEngine engine(engine_config, scheduler, probes);
  if (faulted) {
    FaultTrafficStream stream(generator, *config.faults);
    engine.run(stream, config.name);
  } else {
    engine.run(generator, config.name);
  }
  return report.take_report();
}

SimReport run_scenario_reference(const ScenarioConfig& config,
                                 Scheduler& scheduler) {
  if (config.faults != nullptr && !config.faults->empty()) {
    // The retained seed kernel predates fault injection and exists only as
    // a differential oracle for fault-free physics.
    throw std::invalid_argument(
        "run_scenario_reference: fault plans are not supported by the "
        "reference Npu kernel");
  }
  PacketGenerator generator = make_generator(config);
  NpuConfig npu_config;
  npu_config.num_cores = config.num_cores;
  npu_config.queue_capacity = config.queue_capacity;
  npu_config.delay = config.delay;
  npu_config.restore_order = config.restore_order;
  Npu npu(npu_config, scheduler);
  return npu.run(generator, config.name);
}

}  // namespace laps
