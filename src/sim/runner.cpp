#include "sim/runner.h"

#include <stdexcept>

namespace laps {

SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler) {
  if (config.services.empty()) {
    throw std::invalid_argument("run_scenario: no services");
  }
  for (const ServiceTraffic& s : config.services) {
    if (!s.trace) throw std::invalid_argument("run_scenario: null trace");
    s.trace->reset();
  }
  PacketGenerator generator(config.services, config.seed, config.seconds);
  NpuConfig npu_config;
  npu_config.num_cores = config.num_cores;
  npu_config.queue_capacity = config.queue_capacity;
  npu_config.delay = config.delay;
  npu_config.restore_order = config.restore_order;
  Npu npu(npu_config, scheduler);
  return npu.run(generator, config.name);
}

}  // namespace laps
