#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/npu.h"
#include "sim/report.h"
#include "sim/scheduler.h"
#include "traffic/generator.h"

namespace laps {

/// Everything needed to reproduce one simulation run: NPU shape, horizon,
/// seed, and per-service traffic. The bench binaries build these from the
/// paper's Tables IV-VI.
struct ScenarioConfig {
  std::string name = "scenario";
  std::size_t num_cores = 16;
  std::uint32_t queue_capacity = 32;
  double seconds = 1.0;
  std::uint64_t seed = 42;
  DelayModel delay;
  /// Route completions through an egress ReorderBuffer (order restoration
  /// instead of order preservation; see NpuConfig::restore_order).
  bool restore_order = false;
  std::vector<ServiceTraffic> services;
};

/// Builds the generator and NPU for `config`, runs `scheduler` through it,
/// and returns the report. Traces inside `config.services` are reset first
/// so the same ScenarioConfig can be reused across schedulers (the paper
/// compares FCFS/AFS/LAPS on identical traffic).
SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler);

}  // namespace laps
