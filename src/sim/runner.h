#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/npu.h"
#include "sim/probe.h"
#include "sim/report.h"
#include "sim/scheduler.h"
#include "traffic/generator.h"

namespace laps {

/// Everything needed to reproduce one simulation run: NPU shape, horizon,
/// seed, and per-service traffic. The bench binaries build these from the
/// paper's Tables IV-VI.
struct ScenarioConfig {
  std::string name = "scenario";
  std::size_t num_cores = 16;
  std::uint32_t queue_capacity = 32;
  double seconds = 1.0;
  std::uint64_t seed = 42;
  DelayModel delay;
  /// Route completions through an egress ReorderBuffer (order restoration
  /// instead of order preservation; see SimEngineConfig::restore_order).
  bool restore_order = false;
  /// Optional fault schedule (sim/fault.h): core events run inside the
  /// engine, traffic events are merged into the arrival stream via
  /// FaultTrafficStream. Null = fault-free (the default, zero overhead).
  /// shared_ptr so ScenarioConfig stays copyable into job closures.
  std::shared_ptr<const FaultPlan> faults;
  /// Completion-queue implementation (SimEngineConfig::event_queue): the
  /// TimingWheel default, or the EventHeap differential oracle.
  EventQueueKind event_queue = EventQueueKind::kWheel;
  std::vector<ServiceTraffic> services;
};

/// Builds the generator and SimEngine for `config`, runs `scheduler`
/// through it with a ReportProbe attached, and returns the report. Traces
/// inside `config.services` are reset first so the same ScenarioConfig can
/// be reused across schedulers (the paper compares FCFS/AFS/LAPS on
/// identical traffic).
SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler);

/// Like run_scenario, but fans events out to `extra_probes` (time series,
/// chrome traces, ...) alongside the ReportProbe. `epoch_ns` > 0 enables
/// on_epoch callbacks at that simulated-time interval (align it with a
/// TimeSeriesProbe's window).
SimReport run_scenario(const ScenarioConfig& config, Scheduler& scheduler,
                       const ProbeSet& extra_probes, TimeNs epoch_ns = 0);

/// Runs `config` through the retained seed kernel (Npu) instead of the
/// SimEngine. Exists for differential testing — the golden suite asserts
/// run_scenario and run_scenario_reference produce byte-identical report
/// JSON — and for the perf_kernel speedup baseline. Not for new callers.
SimReport run_scenario_reference(const ScenarioConfig& config,
                                 Scheduler& scheduler);

}  // namespace laps
