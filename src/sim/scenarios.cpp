#include "sim/scenarios.h"

#include <stdexcept>

#include "trace/synthetic.h"
#include "traffic/holt_winters.h"

namespace laps {

namespace {

std::shared_ptr<TraceSource> open_trace(const ScenarioOptions& options,
                                        const std::string& name) {
  return options.trace_factory ? options.trace_factory(name)
                               : make_trace(name);
}

}  // namespace

std::vector<std::string> table5_group(int group) {
  switch (group) {
    case 1: return {"caida1", "caida2", "caida3", "caida4"};
    case 2: return {"caida5", "caida6", "caida2", "caida3"};
    case 3: return {"auck1", "auck2", "auck3", "auck4"};
    case 4: return {"auck5", "auck6", "auck7", "auck8"};
    default: throw std::invalid_argument("table5_group: group must be 1..4");
  }
}

std::vector<std::string> paper_scenario_ids() {
  return {"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"};
}

ScenarioConfig make_paper_scenario(const std::string& id,
                                   const ScenarioOptions& options) {
  int index = 0;
  if (id.size() == 2 && id[0] == 'T' && id[1] >= '1' && id[1] <= '8') {
    index = id[1] - '0';
  } else {
    throw std::invalid_argument("make_paper_scenario: unknown id " + id);
  }
  // Table VI: T1-T4 = Set 1 x G1..G4; T5-T8 = Set 2 x G1..G4 (T8's G3 in
  // the paper is read as the obvious G4 typo; see header).
  const int set = index <= 4 ? 1 : 2;
  const int group = index <= 4 ? index : index - 4;

  ScenarioConfig cfg;
  cfg.name = id;
  cfg.num_cores = options.num_cores;
  cfg.seconds = options.seconds;
  cfg.seed = options.seed;

  const auto params = table4_params(set);
  const auto traces = table5_group(group);
  for (std::size_t s = 0; s < kNumServices; ++s) {
    ServiceTraffic traffic;
    traffic.path = static_cast<ServicePath>(s);
    traffic.rate = params[s];
    traffic.trace = open_trace(options, traces[s]);
    cfg.services.push_back(std::move(traffic));
  }
  const double target = set == 1 ? options.load_set1 : options.load_set2;
  cfg.services = scale_to_load(cfg.services, cfg.delay, cfg.num_cores,
                               cfg.seconds, target);
  return cfg;
}

ScenarioConfig make_single_service_scenario(const std::string& trace,
                                            const ScenarioOptions& options,
                                            double load) {
  ScenarioConfig cfg;
  cfg.name = trace;
  cfg.num_cores = options.num_cores;
  cfg.seconds = options.seconds;
  cfg.seed = options.seed;

  ServiceTraffic traffic;
  traffic.path = ServicePath::kIpForward;
  // Flat rate: Fig. 9 pins the input "slightly more than 100% of what this
  // configuration can achieve under ideal conditions".
  traffic.rate = HoltWintersParams{1.0, 0.0, 0.0, 60.0, 0.0};
  traffic.trace = open_trace(options, trace);
  cfg.services = {std::move(traffic)};
  cfg.services = scale_to_load(cfg.services, cfg.delay, cfg.num_cores,
                               cfg.seconds, load);
  return cfg;
}

}  // namespace laps
