#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "trace/packet_record.h"

namespace laps {

/// Options shared by the paper-scenario builders.
struct ScenarioOptions {
  double seconds = 1.0;     ///< simulated horizon (paper: 60 s)
  std::uint64_t seed = 42;
  std::size_t num_cores = 16;
  /// Optional override for how trace names become TraceSources; defaults to
  /// `make_trace(name)`. The parallel experiment engine installs a
  /// TraceStore factory here so concurrent jobs share one immutable
  /// materialization of each trace instead of regenerating it per job.
  std::function<std::shared_ptr<TraceSource>(const std::string&)>
      trace_factory;
  /// Calibrated mean offered load for Table IV Set 1 ("under-load": the
  /// aggregate rate is less than the ideal capacity of 16 cores").
  double load_set1 = 0.85;
  /// Calibrated mean offered load for Set 2 ("overload").
  double load_set2 = 1.15;
};

/// The four trace groups of paper Table V (trace names per service S1..S4).
std::vector<std::string> table5_group(int group);

/// Scenario ids of paper Table VI: "T1".."T8".
std::vector<std::string> paper_scenario_ids();

/// Builds the full 4-service scenario for a Table VI id ("T1".."T8"):
/// Holt-Winters parameter Set 1/2 (Table IV) crossed with trace group
/// G1..G4 (Table V), rates scaled so the aggregate load matches the
/// under/over-load calibration in `options` (see DESIGN.md: the paper's
/// absolute Mpps with our packet-size mixes would land both sets in deep
/// overload, so we pin the *regime*, which is what the figure contrasts).
///
/// Note: Table VI lists G3 for both T7 and T8; following the T1-T4 pattern
/// (and the obvious typo), T8 uses G4.
ScenarioConfig make_paper_scenario(const std::string& id,
                                   const ScenarioOptions& options);

/// Builds the Fig. 9 scenario: a single service (IP forwarding) across all
/// cores, fed by one trace at `load` times the ideal capacity (the paper
/// uses "slightly more than 100%", default 1.05).
ScenarioConfig make_single_service_scenario(const std::string& trace,
                                            const ScenarioOptions& options,
                                            double load = 1.05);

}  // namespace laps
