#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "sim/packet.h"
#include "util/time.h"

namespace laps {

/// A core id within the simulated NPU. Cores are numbered 0..n-1.
using CoreId = std::uint32_t;

/// Per-core state a hardware scheduler can observe: the input-queue
/// occupancy counters and idle timers the Frame Manager maintains.
struct CoreView {
  /// Packets waiting in the input queue (excluding the one in service).
  std::uint32_t queue_len = 0;
  /// True while the core is processing a packet.
  bool busy = false;
  /// Time the core became completely idle (empty queue, nothing in
  /// service); -1 while the core has work. Drives the paper's idle_th
  /// surplus-marking timer (Sec. III-D).
  TimeNs idle_since = -1;
  /// Service of the most recently started packet on this core, or -1 if
  /// none yet. The simulator uses it to charge CC_penalty; schedulers must
  /// NOT read it (a real FM does not know core I-cache contents) — it is
  /// here because CoreView doubles as the simulator's per-core record.
  int last_service = -1;
};

/// Read-only view of the NPU the scheduler consults per packet.
class NpuView {
 public:
  virtual ~NpuView() = default;

  /// Current simulation time.
  virtual TimeNs now() const = 0;

  /// Per-core observable state; size = core count.
  virtual std::span<const CoreView> cores() const = 0;

  /// Input-queue capacity (paper: 32 descriptors).
  virtual std::uint32_t queue_capacity() const = 0;

  /// Total load proxy for a core: queued packets plus the one in service.
  std::uint32_t load(CoreId core) const {
    const CoreView& v = cores()[core];
    return v.queue_len + (v.busy ? 1u : 0u);
  }
};

/// Packet scheduler interface — the decision logic in the Frame Manager
/// (paper Fig. 1/3). One call per arriving packet; the returned core's input
/// queue receives the descriptor (the simulator drops the packet if that
/// queue is full, per Sec. IV-C2).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before simulation with the core count.
  virtual void attach(std::size_t num_cores) = 0;

  /// Picks the target core for `pkt`. Must return a valid core id.
  virtual CoreId schedule(const SimPacket& pkt, const NpuView& view) = 0;

  /// Display name ("FCFS", "AFS", "LAPS", ...).
  virtual std::string name() const = 0;

  /// Scheduler-internal counters for reports (e.g. LAPS core
  /// reallocations, AFD promotions). Keys become report columns.
  virtual std::map<std::string, double> extra_stats() const { return {}; }
};

}  // namespace laps
