#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "sim/packet.h"
#include "util/time.h"

namespace laps {

/// A core id within the simulated NPU. Cores are numbered 0..n-1.
using CoreId = std::uint32_t;

/// Per-core state a hardware scheduler can observe: the input-queue
/// occupancy counters and idle timers the Frame Manager maintains.
///
/// This struct is the *entire* scheduler-observable surface. Anything the
/// simulator knows beyond it (in-service packet, I-cache contents, busy-time
/// accounting) lives in the engine's private per-core state, so no scheduler
/// can depend on simulator internals by construction.
struct CoreView {
  /// Packets waiting in the input queue (excluding the one in service).
  std::uint32_t queue_len = 0;
  /// True while the core is processing a packet.
  bool busy = false;
  /// Time the core became completely idle (empty queue, nothing in
  /// service); -1 while the core has work. Drives the paper's idle_th
  /// surplus-marking timer (Sec. III-D).
  TimeNs idle_since = -1;
};

/// Read-only view of the NPU the scheduler consults per packet.
class NpuView {
 public:
  virtual ~NpuView() = default;

  /// Current simulation time.
  virtual TimeNs now() const = 0;

  /// Per-core observable state; size = core count.
  virtual std::span<const CoreView> cores() const = 0;

  /// Input-queue capacity (paper: 32 descriptors).
  virtual std::uint32_t queue_capacity() const = 0;

  /// Total load proxy for a core: queued packets plus the one in service.
  std::uint32_t load(CoreId core) const {
    const CoreView& v = cores()[core];
    return v.queue_len + (v.busy ? 1u : 0u);
  }
};

/// One scheduler-internal decision, reported through the observability
/// sink so probes see *when* reallocations and migrations happen instead of
/// only end-of-run extra_stats() totals.
struct SchedEvent {
  enum class Kind : std::uint8_t {
    kCoreGrant,            ///< a core was reallocated to `service`
    kCoreDenied,           ///< a core request found no surplus donor
    kAggressiveMigration,  ///< an AFC-hit flow was pinned to a new core
    kAfdPromotion,         ///< a flow was promoted from annex cache to AFC
    kPark,                 ///< power gating put a core to sleep
    kWake,                 ///< a parked core was powered back up
    kCoreDown,             ///< fault injection took a core offline
    kCoreUp,               ///< fault injection brought a core back
    kCoreSlowdown,         ///< fault injection changed a core's speed
    kCoreStall,            ///< fault injection stalled a core
    kTrafficFault,         ///< adversarial traffic injection marker
  };

  Kind kind = Kind::kCoreGrant;
  std::int32_t core = -1;      ///< core involved, or -1 when not applicable
  std::int32_t service = -1;   ///< service involved, or -1
  std::uint64_t flow_key = 0;  ///< flow key for migrations/promotions, else 0

  /// Short display label ("core_grant", "park", ...).
  static const char* kind_name(Kind kind);
};

/// Receives scheduler-internal events. The simulation engine installs
/// itself as the sink before attach() and timestamps each event with the
/// simulated clock before fanning it out to the attached probes.
class SchedEventSink {
 public:
  virtual ~SchedEventSink() = default;
  virtual void sched_event(const SchedEvent& event) = 0;
};

/// Scheduler-internal occupancies and counters sampled for telemetry at
/// epoch cadence. Every field defaults to -1 = "not applicable to this
/// policy"; implementations fill only what their mechanisms track, and the
/// TelemetryProbe registers gauges only for fields that were >= 0 in the
/// run-begin sample (so FCFS runs don't export a parade of dead zeros).
struct SchedTelemetry {
  std::int64_t afc_occupancy = -1;     ///< live AFC entries (AFD cache)
  std::int64_t afd_hits = -1;          ///< AFC hits (detector fast path)
  std::int64_t afd_evictions = -1;     ///< AFC demotions (victims evicted)
  std::int64_t pinned_flows = -1;      ///< migration-table entries
  std::int64_t parked_cores = -1;      ///< cores power-gated right now
  std::int64_t wake_strikes = -1;      ///< wake-hysteresis strikes issued
  std::int64_t core_transitions = -1;  ///< LiveCoreSet up/down flips seen
};

/// Packet scheduler interface — the decision logic in the Frame Manager
/// (paper Fig. 1/3). One call per arriving packet; the returned core's input
/// queue receives the descriptor (the simulator drops the packet if that
/// queue is full, per Sec. IV-C2).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before simulation with the core count.
  virtual void attach(std::size_t num_cores) = 0;

  /// Picks the target core for `pkt`. Must return a valid core id.
  virtual CoreId schedule(const SimPacket& pkt, const NpuView& view) = 0;

  /// Display name ("FCFS", "AFS", "LAPS", ...).
  virtual std::string name() const = 0;

  /// Scheduler-internal counters for reports (e.g. LAPS core
  /// reallocations, AFD promotions). Keys become report columns.
  virtual std::map<std::string, double> extra_stats() const { return {}; }

  /// Installs (or clears, with nullptr) the observability sink. Called by
  /// the engine before attach(). Schedulers with internal decisions worth
  /// tracing (LAPS reallocations, park/wake) emit through it; the default
  /// ignores the sink, so simple baselines need no changes.
  virtual void set_event_sink(SchedEventSink* sink) { (void)sink; }

  /// Fault notification: `core` failed — its queue was flushed and the
  /// engine will drop anything scheduled to it until notify_core_up. Called
  /// by the engine at the fault's simulated time, before any further
  /// schedule() call. Implementations should stop targeting the core and
  /// remap state pinned to it; the default ignores faults (the engine still
  /// guarantees no packet is *enqueued* to a dead core by dropping).
  virtual void notify_core_down(CoreId core, const NpuView& view) {
    (void)core;
    (void)view;
  }

  /// Fault notification: a previously-failed `core` recovered and may be
  /// targeted again.
  virtual void notify_core_up(CoreId core, const NpuView& view) {
    (void)core;
    (void)view;
  }

  /// Introspection hook: the flows the scheduler currently classifies as
  /// aggressive, most-frequent first (the live AFC contents for LAPS).
  /// Probes sample this at epoch boundaries to score detector accuracy
  /// online against exact per-flow counts. Read-only — implementations
  /// must not perturb detector state. Schedulers without a detector
  /// return the default empty set.
  virtual std::vector<std::uint64_t> aggressive_snapshot() const {
    return {};
  }

  /// Telemetry sample: current mechanism occupancies/counters, -1 for
  /// fields the policy has no mechanism for (see SchedTelemetry). Sampled
  /// by the TelemetryProbe at epoch cadence; must be read-only and cheap
  /// (it runs a few thousand times per simulated second, not per packet).
  virtual SchedTelemetry telemetry_sample() const { return {}; }
};

}  // namespace laps
