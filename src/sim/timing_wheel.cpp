#include "sim/timing_wheel.h"

namespace laps {

const char* event_queue_kind_name(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kWheel: return "wheel";
    case EventQueueKind::kHeap: return "heap";
  }
  return "?";
}

EventQueueKind parse_event_queue_kind(const std::string& spec) {
  if (spec == "wheel") return EventQueueKind::kWheel;
  if (spec == "heap") return EventQueueKind::kHeap;
  throw std::invalid_argument("--event-queue: expected 'wheel' or 'heap', got '" +
                              spec + "'");
}

}  // namespace laps
