#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/time.h"

namespace laps {

/// Which completion-queue implementation a simulation uses. The hierarchical
/// TimingWheel is the default kernel queue; the binary EventHeap is retained
/// as the differential oracle behind `--event-queue=heap` (the same pattern
/// that kept the seed Npu around when SimEngine replaced it).
enum class EventQueueKind : std::uint8_t {
  kWheel,  ///< hierarchical timing wheel (O(1) amortized, the default)
  kHeap,   ///< binary EventHeap (O(log n), the differential oracle)
};

/// "wheel" / "heap".
const char* event_queue_kind_name(EventQueueKind kind);

/// Parses the --event-queue flag value ("wheel" or "heap"). Throws
/// std::invalid_argument on anything else, naming the offending value.
EventQueueKind parse_event_queue_kind(const std::string& spec);

/// Hierarchical timing-wheel event queue for discrete-event simulation.
///
/// Drop-in replacement for EventHeap<Ev> on the simulator's completion
/// path: same API, same ordering contract. Events are ordered by
/// (time, insertion sequence) — two events at the same tick pop in the
/// order they were scheduled (the FIFO invariant the differential suite
/// asserts bit-identically against the heap).
///
/// Structure (hashed hierarchical wheel with a wide near level; one tick =
/// 1 ns):
///
///  - Level 0 is 512 single-tick slots (kLevel0Bits = 9): slot index =
///    time & 511, so a level-0 slot holds only equal-time events. The width
///    is sized so a simulator's whole completion horizon (service latency
///    spread, ~100-200 ns) fits in the current 512-tick block and nearly
///    every push and pop stays on the level-0 fast path. Above it sit 9
///    levels of 64 slots (kSlotBits = 6): level k >= 1 buckets events by
///    the base-64 digit at bit 9 + 6(k-1), a span of 2^(9+6(k-1)) ticks per
///    slot, and level 9 reaches bit 62 — any representable TimeNs.
///  - Level-0 slots store their event *inline* (no node, no indirection):
///    a push in the current block is a bitmap OR plus one store into the
///    slot's cache line, and a pop reads it straight back. Only same-tick
///    ties overflow into a seq-sorted list of pooled nodes hanging off the
///    slot (the inline seat always holds the slot's lowest seq). Upper
///    levels are intrusive singly-linked lists of pooled nodes (index
///    freelist, no per-event allocation) appended at the tail and scanned
///    only when a slot becomes the minimum.
///  - An event is inserted at the level of its highest digit that differs
///    from the wheel's current position (one XOR + bit_width, no search).
///    Placing by differing digit — not by raw distance — means every event
///    at level k agrees with the position on all digits above k, so a slot
///    never mixes events from different wheel revolutions and, per level,
///    occupied slot indices never precede the current digit. Occupancy is
///    bitmapped (level 0: eight uint64 words — exactly one cache line;
///    upper levels: one uint64 each, plus a per-level summary mask), so
///    the earliest occupied slot is a countr_zero away.
///  - Digit-difference placement gives a total order across levels: after
///    stale slots are normalized (below), every event at level j is
///    strictly earlier than every event at level k > j, so the global
///    minimum lives in the first occupied slot of the *lowest* occupied
///    level. At level 0 its time is pure arithmetic — all level-0
///    residents share the position's 512-tick block, so the minimum's time
///    is (position & ~511) | slot, decided by the bitmap line alone.
///  - The minimum is memoized. A push can only improve it (compare +
///    overwrite); pop() refreshes it eagerly because the caller's next
///    move is almost always a peek. A pop at level 0 never crosses a
///    512-tick block boundary (the popped event shares the position's
///    block), so its refresh is a fused fast path: clear the bit, scan the
///    same bitmap line, done — no normalization check needed.
///  - Cascading happens only where it pays. (1) Stale slots: when a pop
///    advances the wheel into a multi-tick slot's span, that slot's
///    remaining events now agree with the position on their level's digit;
///    they are redistributed to strictly lower levels (no position change
///    needed) so the cross-level order above stays exact. Staleness can
///    only appear at levels whose digit changed since the last check, so
///    normalization remembers its last position and skips untouched
///    levels. (2) Long far slots: when the minimum sits at level k > 0 in
///    a slot holding more than kCascadeScanLimit events, pop()
///    redistributes the slot before extracting — otherwise each pop would
///    rescan the same long list. Short far slots are popped by direct
///    unlink with no cascade at all. Every event cascades at most once per
///    level either way, so push + pop stay O(1) amortized.
///
/// Clock contract: the wheel tracks the time of the last popped event and
/// rejects pushes behind it (a discrete-event simulator never schedules
/// into the past). `top()`/`top_time()` never move the wheel position —
/// only pop() commits an advance — so callers may interleave earlier
/// same-direction pushes between peeks, exactly as SimEngine does when an
/// arrival precedes the next completion. Times must be non-negative. Ev
/// must expose a `.time` member and be default-constructible (the inline
/// level-0 seats are value slots).
///
/// Cancellation is the engine's lazy generation-counter scheme: stale
/// events pop normally and the caller discards them on a gen mismatch, so
/// the wheel needs no remove() — identical to the heap's contract with the
/// fault engine.
template <typename Ev>
class TimingWheel {
 public:
  static constexpr int kLevel0Bits = 9;
  static constexpr std::size_t kLevel0Slots = std::size_t{1} << kLevel0Bits;
  static constexpr std::uint64_t kLevel0Mask = kLevel0Slots - 1;
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = 10;  // level 0 + 9 upper levels
  static constexpr std::size_t kCascadeScanLimit = 8;

  void push(Ev event) {
    const TimeNs t = event.time;
    if (t < 0) throw std::logic_error("TimingWheel: negative event time");
    if (size_ == 0 && t < cur_) {
      cur_ = t;
    } else if (t < cur_) {
      throw std::logic_error("TimingWheel: push into the past (t=" +
                             std::to_string(t) + " < cur=" +
                             std::to_string(cur_) + ")");
    }
    ++size_;
    // Level-0 fast path: same 512-tick block as the position -> the event
    // lives inline in its single-tick slot, no node allocation.
    const std::uint64_t diff =
        static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cur_);
    if (diff < kLevel0Slots) {
      const std::size_t slot = static_cast<std::size_t>(t) & kLevel0Mask;
      std::uint64_t& word = occ0_[slot >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (slot & 63);
      if ((word & bit) == 0) {
        word |= bit;
        Slot0& s = slots0_[slot];
        s.ev = std::move(event);
        s.seq = next_seq_++;
      } else {
        // Same-tick tie: a direct push always carries the largest seq so
        // far, so it appends to the slot's overflow list.
        const std::int32_t node = alloc_node(std::move(event));
        Slot0& s = slots0_[slot];
        if (s.tail == -1) {
          s.head = s.tail = node;
        } else {
          nodes_[s.tail].next = node;
          s.tail = node;
        }
      }
      if (cache_valid_ && t < cached_.time) {
        cached_.time = t;
        cached_.level = 0;
        cached_.slot = slot;
        cached_.node = -1;
        cached_.prev = -1;
        cached_.scan_len = 1;
      }
      return;
    }
    // Far push: diff >= 512 guarantees place() targets level >= 1 (it only
    // re-files into level 0 when called from cascade).
    const std::int32_t node = alloc_node(std::move(event));
    const Placement at = place(node, t);
    if (cache_valid_ && t < cached_.time) {
      cached_.time = t;
      cached_.level = at.level;
      cached_.slot = at.slot;
      cached_.node = node;
      cached_.prev = at.prev;
      cached_.scan_len = 1;
    }
  }

  const Ev& top() {
    if (!cache_valid_) locate_slow();
    if (cached_.level == 0) return slots0_[cached_.slot].ev;
    return nodes_[cached_.node].event;
  }

  TimeNs top_time() {
    if (!cache_valid_) locate_slow();
    return cached_.time;
  }

  Ev pop() {
    // A valid memo implies a non-empty wheel, so the hot path is gated on
    // one flag; locate_slow() throws on empty.
    if (!cache_valid_) locate_slow();
    while (cached_.level != 0 && cached_.scan_len > kCascadeScanLimit) {
      cascade(cached_.level, cached_.slot, /*advance=*/true);
      locate_slow();
    }
    if (cached_.level == 0) {
      // Level-0 fast path. The popped event shares the position's 512-tick
      // block, so this pop never crosses a block boundary: no slot can go
      // stale and the eager re-locate reduces to the already loaded
      // occupancy line.
      const std::size_t slot = cached_.slot;
      Slot0& s = slots0_[slot];
      Ev out = std::move(s.ev);
      cur_ = cached_.time;
      --size_;
      const std::int32_t h = s.head;
      if (h != -1) {  // promote the next same-tick tie into the inline seat
        s.ev = std::move(nodes_[h].event);
        s.seq = nodes_[h].seq;
        const std::int32_t nx = nodes_[h].next;
        s.head = nx;
        if (nx == -1) s.tail = -1;
        free_node(h);
        return out;
      }
      occ0_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
      std::size_t w = slot >> 6;
      while (w < occ0_.size() && occ0_[w] == 0) ++w;
      if (w < occ0_.size()) {
        const std::size_t nslot =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(occ0_[w]));
        cached_.slot = nslot;
        cached_.time = static_cast<TimeNs>(
            (static_cast<std::uint64_t>(cur_) & ~kLevel0Mask) |
            static_cast<std::uint64_t>(nslot));
        // The next pop reads this slot's inline seat; start pulling its
        // line now so the (cycling, cache-cold) access overlaps the
        // caller's work between completions.
        __builtin_prefetch(&slots0_[nslot], 1);
        return out;
      }
      cache_valid_ = false;
      if (size_ != 0) locate_slow();
      return out;
    }
    const std::int32_t node = cached_.node;
    unlink(cached_.level, cached_.slot, node, cached_.prev);
    cur_ = cached_.time;
    Ev out = std::move(nodes_[node].event);
    free_node(node);
    --size_;
    cache_valid_ = false;
    // Eager re-locate: the caller's next move is almost always a peek
    // (is the next completion before the next arrival?), and computing the
    // new minimum here lets it overlap the caller's independent work.
    if (size_ != 0) locate_slow();
    return out;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void clear() {
    occ0_.fill(0);
    slots0_.fill(Slot0{});
    for (int u = 0; u < kLevels - 1; ++u) {
      occ_[u] = 0;
      slots_[u].fill(Slot{});
    }
    level_mask_ = 0;
    nodes_.clear();
    free_head_ = -1;
    size_ = 0;
    cur_ = 0;
    norm_pos_ = 0;
    next_seq_ = 0;
    cascades_ = 0;
    cache_valid_ = false;
  }

  std::uint64_t cascades() const { return cascades_; }

 private:
  // A level-0 (single-tick) slot: the event with the slot's lowest seq
  // sits inline; same-tick ties overflow into a seq-sorted node list.
  struct alignas(32) Slot0 {
    Ev ev{};
    std::uint64_t seq = 0;
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  struct Slot {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  struct Node {
    Ev event;
    std::uint64_t seq = 0;
    std::int32_t next = -1;
  };

  struct Best {
    TimeNs time = 0;
    int level = 0;
    std::size_t slot = 0;
    std::int32_t node = -1;  // unused at level 0 (the seat is inline)
    std::int32_t prev = -1;
    std::size_t scan_len = 0;
  };

  static int shift_for(int level) {
    return kLevel0Bits + kSlotBits * (level - 1);
  }

  static int level_for(TimeNs t, TimeNs cur) {
    const std::uint64_t diff =
        static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cur);
    const int b = std::bit_width(diff);
    return b <= kLevel0Bits ? 0 : (b - kLevel0Bits - 1) / kSlotBits + 1;
  }

  static std::size_t slot_for(TimeNs t, int level) {
    if (level == 0) {
      return static_cast<std::size_t>(static_cast<std::uint64_t>(t) &
                                      kLevel0Mask);
    }
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(t) >> shift_for(level)) & kSlotMask);
  }

  std::size_t digit_of_cur(int level) const { return slot_for(cur_, level); }

  std::int32_t alloc_node(Ev&& event) {
    std::int32_t node;
    if (free_head_ != -1) {
      node = free_head_;
      free_head_ = nodes_[node].next;
      nodes_[node].event = std::move(event);
    } else {
      node = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{std::move(event), 0, -1});
    }
    nodes_[node].seq = next_seq_++;
    nodes_[node].next = -1;
    return node;
  }

  void free_node(std::int32_t node) {
    nodes_[node].next = free_head_;
    free_head_ = node;
  }

  struct Placement {
    int level;
    std::size_t slot;
    std::int32_t prev;
  };

  // Files an existing node at its proper (level, slot) for the current
  // position. Far pushes land at level >= 1; cascade() may re-file into
  // level 0, where the event moves into the inline seat (freeing the node)
  // or into the slot's seq-sorted overflow list. The returned prev is only
  // meaningful for upper levels (level-0 pops never unlink).
  Placement place(std::int32_t node, TimeNs t) {
    const int level = level_for(t, cur_);
    const std::size_t slot = slot_for(t, level);
    if (level == 0) {
      std::uint64_t& word = occ0_[slot >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (slot & 63);
      Slot0& s = slots0_[slot];
      if ((word & bit) == 0) {
        word |= bit;
        s.ev = std::move(nodes_[node].event);
        s.seq = nodes_[node].seq;
        free_node(node);
        return Placement{0, slot, -1};
      }
      if (nodes_[node].seq < s.seq) {
        // The cascaded event predates the inline resident: it takes the
        // inline seat and the resident is demoted to the overflow head
        // (its seq is still below every overflow seq).
        std::swap(s.ev, nodes_[node].event);
        std::swap(s.seq, nodes_[node].seq);
        nodes_[node].next = s.head;
        s.head = node;
        if (s.tail == -1) s.tail = node;
        return Placement{0, slot, -1};
      }
      std::int32_t prev = -1;
      std::int32_t at = s.head;
      while (at != -1 && nodes_[at].seq < nodes_[node].seq) {
        prev = at;
        at = nodes_[at].next;
      }
      nodes_[node].next = at;
      if (prev == -1) {
        s.head = node;
      } else {
        nodes_[prev].next = node;
      }
      if (at == -1) s.tail = node;
      return Placement{0, slot, -1};
    }
    const int u = level - 1;
    occ_[u] |= std::uint64_t{1} << slot;
    level_mask_ |= std::uint32_t{1} << level;
    Slot& s = slots_[u][slot];
    const std::int32_t prev = s.tail;
    if (prev == -1) {
      s.head = s.tail = node;
    } else {
      nodes_[prev].next = node;
      s.tail = node;
    }
    return Placement{level, slot, prev};
  }

  // Upper levels only: level-0 entries are popped inline, never unlinked.
  void unlink(int level, std::size_t slot, std::int32_t node,
              std::int32_t prev) {
    const int u = level - 1;
    Slot& s = slots_[u][slot];
    if (prev == -1) {
      s.head = nodes_[node].next;
    } else {
      nodes_[prev].next = nodes_[node].next;
    }
    if (s.tail == node) s.tail = prev;
    if (s.head == -1) {
      occ_[u] &= ~(std::uint64_t{1} << slot);
      if (occ_[u] == 0) level_mask_ &= ~(std::uint32_t{1} << level);
    }
  }

  void cascade(int level, std::size_t slot, bool advance) {
    const int u = level - 1;
    if (advance) {
      const int shift = shift_for(level);
      const TimeNs start = static_cast<TimeNs>(
          ((static_cast<std::uint64_t>(cur_) >> (shift + kSlotBits))
           << (shift + kSlotBits)) |
          (static_cast<std::uint64_t>(slot) << shift));
      if (start > cur_) cur_ = start;
    }
    std::int32_t node = slots_[u][slot].head;
    slots_[u][slot] = Slot{};
    occ_[u] &= ~(std::uint64_t{1} << slot);
    if (occ_[u] == 0) level_mask_ &= ~(std::uint32_t{1} << level);
    while (node != -1) {
      const std::int32_t next = nodes_[node].next;
      nodes_[node].next = -1;
      place(node, nodes_[node].event.time);
      node = next;
    }
    ++cascades_;
  }

  void normalize() {
    // Staleness can only appear at a level whose digit of the position
    // changed since the last normalization, so only recheck levels up to
    // the highest moved digit.
    const int moved = level_for(cur_, norm_pos_);
    std::uint32_t mask = level_mask_ & ((std::uint32_t{2} << moved) - 1);
    while (mask != 0) {
      const int level = std::countr_zero(mask);
      mask &= mask - 1;
      const auto slot =
          static_cast<std::size_t>(std::countr_zero(occ_[level - 1]));
      if (slot == digit_of_cur(level)) cascade(level, slot, /*advance=*/false);
    }
    norm_pos_ = cur_;
  }

  // Out-of-line minimum search, run only when the memo is invalid (fresh
  // or just-emptied wheel, upper-level pop, cascade). Keeping it cold keeps
  // the fast paths small. level_mask_ tracks upper levels only; level 0 is
  // decided by its occupancy line directly.
  [[gnu::noinline]] void locate_slow() {
    if (size_ == 0) throw std::logic_error("TimingWheel: top on empty");
    normalize();
    Best best;
    std::size_t w = (static_cast<std::size_t>(cur_) & kLevel0Mask) >> 6;
    while (w < occ0_.size() && occ0_[w] == 0) ++w;
    if (w < occ0_.size()) {
      // All level-0 residents share the position's 512-tick block (words
      // below the position's are empty), so the minimum's time is pure
      // arithmetic: one bitmap cache line decides it without touching the
      // slot.
      best.level = 0;
      best.slot =
          (w << 6) + static_cast<std::size_t>(std::countr_zero(occ0_[w]));
      best.time = static_cast<TimeNs>(
          (static_cast<std::uint64_t>(cur_) & ~kLevel0Mask) |
          static_cast<std::uint64_t>(best.slot));
      best.node = -1;
      best.prev = -1;
      best.scan_len = 1;
    } else {
      best.level = std::countr_zero(level_mask_);
      const int u = best.level - 1;
      best.slot = static_cast<std::size_t>(std::countr_zero(occ_[u]));
      std::int32_t node = slots_[u][best.slot].head;
      best.node = node;
      best.prev = -1;
      best.scan_len = 1;
      best.time = nodes_[node].event.time;
      std::uint64_t best_seq = nodes_[node].seq;
      std::int32_t prev = node;
      for (std::int32_t at = nodes_[node].next; at != -1;
           prev = at, at = nodes_[at].next) {
        ++best.scan_len;
        const Node& n = nodes_[at];
        if (n.event.time < best.time ||
            (n.event.time == best.time && n.seq < best_seq)) {
          best.time = n.event.time;
          best_seq = n.seq;
          best.node = at;
          best.prev = prev;
        }
      }
    }
    cached_ = best;
    cache_valid_ = true;
  }

  // Hot scalars first (memo + position + size share the leading cache
  // line), then the level-0 occupancy bitmap on a line of its own.
  alignas(64) Best cached_{};
  bool cache_valid_ = false;
  TimeNs cur_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  alignas(64) std::array<std::uint64_t, kLevel0Slots / 64> occ0_{};
  std::array<std::uint64_t, kLevels - 1> occ_{};
  std::uint32_t level_mask_ = 0;
  std::array<Slot0, kLevel0Slots> slots0_{};
  std::array<std::array<Slot, kSlots>, kLevels - 1> slots_ = init_upper();
  std::vector<Node> nodes_;
  std::int32_t free_head_ = -1;
  TimeNs norm_pos_ = 0;
  std::uint64_t cascades_ = 0;

  static std::array<std::array<Slot, kSlots>, kLevels - 1> init_upper() {
    std::array<std::array<Slot, kSlots>, kLevels - 1> a;
    for (auto& level : a) level.fill(Slot{});
    return a;
  }
};

}  // namespace laps
