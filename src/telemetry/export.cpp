#include "telemetry/export.h"

#include <functional>
#include <stdexcept>

#include "util/fileio.h"
#include "util/json_writer.h"

namespace laps::telemetry {
namespace {

void append_section(std::string& out, const char* key,
                    const std::vector<std::string>& names, std::size_t count,
                    const std::function<std::string(std::size_t)>& value) {
  out += "\"";
  out += key;
  out += "\":{";
  for (std::size_t i = 0; i < count; ++i) {
    if (i != 0) out += ",";
    out += JsonWriter::quote(names[i]) + ":" + value(i);
  }
  out += "}";
}

}  // namespace

std::string snapshot_jsonl_line(const MetricsRegistry& registry,
                                const MetricsSnapshot& snap) {
  const std::vector<std::string> counters = registry.counter_names();
  const std::vector<std::string> gauges = registry.gauge_names();
  const std::vector<std::string> histograms = registry.histogram_names();

  std::string out = "{\"t_ns\":" + std::to_string(snap.sim_time) +
                    ",\"seq\":" + std::to_string(snap.seq) + ",";
  append_section(out, "counters", counters, snap.counters.size(),
                 [&](std::size_t i) { return std::to_string(snap.counters[i]); });
  out += ",";
  append_section(out, "gauges", gauges, snap.gauges.size(),
                 [&](std::size_t i) { return std::to_string(snap.gauges[i]); });
  if (!snap.histograms.empty()) {
    out += ",";
    append_section(out, "histograms", histograms, snap.histograms.size(),
                   [&](std::size_t i) {
                     const HistogramSummary& h = snap.histograms[i];
                     return "{\"count\":" + std::to_string(h.count) +
                            ",\"sum\":" + std::to_string(h.sum) +
                            ",\"max\":" + std::to_string(h.max) +
                            ",\"p50\":" + std::to_string(h.p50) +
                            ",\"p90\":" + std::to_string(h.p90) +
                            ",\"p99\":" + std::to_string(h.p99) + "}";
                   });
  }
  out += "}";
  return out;
}

void write_telemetry_jsonl(const std::string& path, TelemetryProbe& probe) {
  std::string out;
  while (auto snap = probe.ring().pop()) {
    out += snapshot_jsonl_line(probe.registry(), *snap);
    out += "\n";
  }
  // The final snapshot is kept off the ring so it survives overflow; its
  // line also reports how many mid-run snapshots the ring had to drop.
  std::string last = snapshot_jsonl_line(probe.registry(),
                                         probe.final_snapshot());
  last.pop_back();  // '}'
  last += ",\"final\":true,\"dropped_snapshots\":" +
          std::to_string(probe.ring().dropped()) + "}";
  out += last;
  out += "\n";
  util::write_file_atomic(path, out, "telemetry JSONL");
}

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string prometheus_metric_name(const std::string& name) {
  std::string out = "laps_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_text(const TelemetryProbe& probe) {
  const MetricsRegistry& registry = probe.registry();
  const MetricsSnapshot& snap = probe.final_snapshot();
  const std::string labels =
      "{scenario=\"" + prometheus_escape(probe.info().scenario) +
      "\",scheduler=\"" + prometheus_escape(probe.info().scheduler) + "\"}";

  std::string out;
  const std::vector<std::string> counters = registry.counter_names();
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const std::string metric = prometheus_metric_name(counters[i]) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + labels + " " + std::to_string(snap.counters[i]) + "\n";
  }
  const std::vector<std::string> gauges = registry.gauge_names();
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const std::string metric = prometheus_metric_name(gauges[i]);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + labels + " " + std::to_string(snap.gauges[i]) + "\n";
  }
  const std::vector<std::string> histograms = registry.histogram_names();
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const Histogram merged = registry.merged_histogram(
        HistogramId{static_cast<std::uint32_t>(i)});
    const std::string metric = prometheus_metric_name(histograms[i]);
    const std::string label_prefix =
        "{scenario=\"" + prometheus_escape(probe.info().scenario) +
        "\",scheduler=\"" + prometheus_escape(probe.info().scheduler) + "\",";
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const Histogram::Bucket& bucket : merged.buckets()) {
      cumulative += bucket.count;
      out += metric + "_bucket" + label_prefix + "le=\"" +
             std::to_string(bucket.upper_bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket" + label_prefix + "le=\"+Inf\"} " +
           std::to_string(merged.count()) + "\n";
    // count/sum/max are exact (bucket bounds are not — the log2 histogram
    // quantizes to 1/32-relative bucket tops), so true means come from
    // _sum/_count, and _max needs no bucket at all.
    out += metric + "_sum" + labels + " " + std::to_string(merged.sum()) +
           "\n";
    out += metric + "_count" + labels + " " + std::to_string(merged.count()) +
           "\n";
    out += metric + "_max" + labels + " " + std::to_string(merged.max()) +
           "\n";
  }
  return out;
}

void write_telemetry_prometheus(const std::string& path,
                                const TelemetryProbe& probe) {
  util::write_file_atomic(path, prometheus_text(probe), "telemetry exposition");
}

}  // namespace laps::telemetry
