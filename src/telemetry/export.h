#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/probe.h"

namespace laps::telemetry {

/// One snapshot as a single-line JSON object (no trailing newline):
///
///   {"t_ns":N,"seq":N,"counters":{name:N,...},"gauges":{name:N,...},
///    "histograms":{name:{"count":N,"sum":N,"max":N,"p50":N,"p90":N,
///    "p99":N}}}
///
/// Instrument names come from `registry` in id order, so a stream of lines
/// from one run is column-stable. Counters-only snapshots emit no
/// "histograms" key.
std::string snapshot_jsonl_line(const MetricsRegistry& registry,
                                const MetricsSnapshot& snap);

/// Streams the probe's ring (oldest first) plus its final snapshot to
/// `path` as JSONL, one snapshot per line; the final line carries
/// `"final":true` and a `"dropped_snapshots"` count (ring overflows).
/// Atomic: written to `path.tmp`, then renamed. Throws std::runtime_error
/// on I/O failure. Drains the ring.
void write_telemetry_jsonl(const std::string& path, TelemetryProbe& probe);

/// Prometheus text-exposition escaping for a label value: backslash,
/// double-quote, and newline are escaped per the spec.
std::string prometheus_escape(const std::string& value);

/// Maps an instrument name to a valid Prometheus metric name: prefixed
/// with "laps_", '.' becomes '_', and any character outside
/// [a-zA-Z0-9_:] becomes '_'.
std::string prometheus_metric_name(const std::string& name);

/// The probe's end-of-run state in Prometheus text exposition format.
/// Counters export as `laps_<name>_total`, gauges as `laps_<name>`, and
/// histograms as the standard `_bucket{le=...}/_sum/_count` series plus a
/// non-standard exact `_max` gauge. Bucket bounds inherit the log2
/// Histogram's <= 1/32 (~3%) upper-bound error, but `_sum`/`_count`/`_max`
/// are exact, so consumers compute true means from the exposition (see
/// util/histogram.h). Every sample carries
/// {scenario="...",scheduler="..."} labels, escaped via
/// prometheus_escape().
std::string prometheus_text(const TelemetryProbe& probe);

/// Writes prometheus_text() to `path` atomically (tmp+rename). Throws
/// std::runtime_error on I/O failure.
void write_telemetry_prometheus(const std::string& path,
                                const TelemetryProbe& probe);

}  // namespace laps::telemetry
