#include "telemetry/metrics.h"

#include <stdexcept>

namespace laps::telemetry {
namespace {

/// Process-wide construction stamp. Distinguishes registry instances even
/// when a destroyed registry's address is reused, so a thread-local shard
/// slot can never alias across registries.
std::atomic<std::uint64_t> g_registry_generation{0};

}  // namespace

MetricsRegistry::MetricsRegistry()
    : generation_(g_registry_generation.fetch_add(1,
                                                  std::memory_order_relaxed) +
                  1) {}

std::uint32_t MetricsRegistry::intern(std::vector<std::string>& names,
                                      const std::string& name,
                                      const char* kind) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  if (frozen_) {
    throw std::logic_error(std::string("MetricsRegistry: cannot register ") +
                           kind + " '" + name +
                           "' after shards exist (registration is frozen at "
                           "the first local_shard() call)");
  }
  names.push_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

CounterId MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return CounterId{intern(counter_names_, name, "counter")};
}

GaugeId MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GaugeId{intern(gauge_names_, name, "gauge")};
}

HistogramId MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return HistogramId{intern(histogram_names_, name, "histogram")};
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counter_names_;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauge_names_;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_names_;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct Slot {
    const MetricsRegistry* registry;
    std::uint64_t generation;
    Shard* shard;
  };
  // A small per-thread list (not a single slot): a thread alternating
  // between two live registries must get the *same* shard back each time,
  // or every call would mint a fresh shard and the shard list would grow
  // with calls instead of threads.
  thread_local std::vector<Slot> slots;
  for (const Slot& slot : slots) {
    if (slot.registry == this && slot.generation == generation_) {
      return *slot.shard;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  frozen_ = true;
  shards_.push_back(std::unique_ptr<Shard>(new Shard(
      counter_names_.size(), gauge_names_.size(), histogram_names_.size())));
  Shard* shard = shards_.back().get();
  slots.push_back(Slot{this, generation_, shard});
  return *shard;
}

std::size_t MetricsRegistry::num_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.size();
}

void MetricsRegistry::sum_atomics(MetricsSnapshot& snap,
                                  const std::vector<Shard*>& shards) const {
  for (const Shard* shard : shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i] +=
          shard->counters_[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      snap.gauges[i] += shard->gauges_[i].load(std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot_counters(TimeNs sim_time) const {
  std::vector<Shard*> shards;
  std::size_t counters = 0;
  std::size_t gauges = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) shards.push_back(shard.get());
    counters = counter_names_.size();
    gauges = gauge_names_.size();
  }
  MetricsSnapshot snap;
  snap.sim_time = sim_time;
  snap.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  snap.counters.assign(counters, 0);
  snap.gauges.assign(gauges, 0);
  sum_atomics(snap, shards);
  return snap;
}

MetricsSnapshot MetricsRegistry::snapshot(TimeNs sim_time) const {
  MetricsSnapshot snap = snapshot_counters(sim_time);
  std::vector<Shard*> shards;
  std::size_t histograms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) shards.push_back(shard.get());
    histograms = histogram_names_.size();
  }
  snap.histograms.resize(histograms);
  const auto summarize = [](const Histogram& h, HistogramSummary& summary) {
    summary.count = h.count();
    summary.sum = h.sum();
    summary.max = h.max();
    summary.p50 = h.quantile(0.50);
    summary.p90 = h.quantile(0.90);
    summary.p99 = h.quantile(0.99);
  };
  for (std::size_t i = 0; i < histograms; ++i) {
    if (shards.size() == 1) {
      // The single-writer case (one sim thread) is also the snapshot-heavy
      // one: summarize in place instead of allocating and merging a
      // multi-KB bucket copy per epoch.
      summarize(shards[0]->histograms_[i], snap.histograms[i]);
      continue;
    }
    Histogram merged;
    for (const Shard* shard : shards) merged.merge(shard->histograms_[i]);
    summarize(merged, snap.histograms[i]);
  }
  return snap;
}

Histogram MetricsRegistry::merged_histogram(HistogramId id) const {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  Histogram merged;
  for (const Shard* shard : shards) merged.merge(shard->histograms_[id.index]);
  return merged;
}

}  // namespace laps::telemetry
