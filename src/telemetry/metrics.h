#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/time.h"

namespace laps::telemetry {

/// Opaque dense handles returned by registration. Instruments are addressed
/// by index, not name, so the hot path never hashes a string.
struct CounterId {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct GaugeId {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};
struct HistogramId {
  std::uint32_t index = UINT32_MAX;
  bool valid() const { return index != UINT32_MAX; }
};

/// Exact aggregates plus bucket-bound quantiles of a merged Histogram.
/// count/sum/max are exact; p50/p90/p99 inherit Histogram::quantile's
/// bucket-upper-bound error (<= 1/32 relative, see util/histogram.h).
struct HistogramSummary {
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t max = 0;
  std::int64_t p50 = 0;
  std::int64_t p90 = 0;
  std::int64_t p99 = 0;
};

/// One point-in-time aggregation of a MetricsRegistry: every instrument in
/// registration order (pair values with the registry's *_names()). Plain
/// data — safe to move across threads, e.g. through a SnapshotRing.
struct MetricsSnapshot {
  TimeNs sim_time = 0;
  std::uint64_t seq = 0;  ///< monotone per registry, across both snapshot kinds
  std::vector<std::uint64_t> counters;
  std::vector<std::int64_t> gauges;
  std::vector<HistogramSummary> histograms;  ///< empty for counters-only snapshots
};

/// A registry of cheap, contention-free instruments: monotonic counters,
/// gauges, and log2 Histograms (the quantile instrument).
///
/// Concurrency model — sharded single-writer, relaxed-atomic publication:
///
///  * Registration (`counter()`/`gauge()`/`histogram()`) is mutex-guarded
///    and idempotent (re-registering a name returns the existing id). It is
///    frozen at the first `local_shard()` call; registering a new name
///    after that throws (shards are sized at creation and never resize, so
///    writers never reallocate under a concurrent snapshot).
///  * Each writing thread owns a private Shard obtained via
///    `local_shard()`. Counter/gauge cells are atomics written with a
///    relaxed load+store by their single owner — on x86 this compiles to a
///    plain cache-local memory add, not a `lock` RMW, which is what keeps
///    an instrument to ~1 cycle on the engine hot path.
///  * `snapshot_counters()` may run on any thread at any time: it only
///    does relaxed atomic loads and sums across shards. Values are
///    per-cell consistent but not a cross-cell atomic cut (fine for
///    monitoring; exact totals are read after writers quiesce).
///  * Histograms are deliberately *not* atomic (multi-word buckets); a full
///    `snapshot()` / `merged_histogram()` touches them and is only safe
///    when writers are quiesced or when caller and writer are the same
///    thread (the single-threaded sim loop). The TSan suite pins this
///    split: concurrent `snapshot_counters()` is race-free, full
///    aggregation is owner-only.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or looks up) an instrument by name. Thread-safe; throws
  /// std::logic_error for a *new* name once shards exist.
  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  HistogramId histogram(const std::string& name);

  /// Instrument names in id order. Stable once frozen; callers pairing
  /// these with snapshots should read them after their own registrations.
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// One thread's private slice of every instrument.
  class Shard {
   public:
    void add(CounterId id, std::uint64_t n = 1) {
      bump(counters_[id.index], n);
    }
    void set(GaugeId id, std::int64_t v) {
      gauges_[id.index].store(v, std::memory_order_relaxed);
    }
    void record(HistogramId id, std::int64_t v) {
      histograms_[id.index].record(v);
    }

    /// Raw cell access for hook bodies that cannot afford the id->cell
    /// indexing per event: cache the pointer once, bump it forever.
    std::atomic<std::uint64_t>* counter_cell(CounterId id) {
      return &counters_[id.index];
    }
    std::atomic<std::int64_t>* gauge_cell(GaugeId id) {
      return &gauges_[id.index];
    }
    Histogram* histogram_cell(HistogramId id) { return &histograms_[id.index]; }

    /// Single-writer counter publication: relaxed load+store, not
    /// fetch_add. The cell has exactly one writer (this shard's owner), so
    /// the RMW needs no atomicity — only the store must be atomic so
    /// cross-thread snapshot loads are race-free.
    static void bump(std::atomic<std::uint64_t>& cell, std::uint64_t n = 1) {
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }

   private:
    friend class MetricsRegistry;
    Shard(std::size_t counters, std::size_t gauges, std::size_t histograms)
        : counters_(counters), gauges_(gauges), histograms_(histograms) {}
    std::vector<std::atomic<std::uint64_t>> counters_;
    std::vector<std::atomic<std::int64_t>> gauges_;
    std::vector<Histogram> histograms_;
  };

  /// Returns the calling thread's shard for this registry, creating it on
  /// first use (and freezing registration). The slot is generation-stamped,
  /// so a registry constructed at a reused address cannot serve another
  /// instance's stale shard. O(#registries this thread touched) lookup —
  /// hot paths cache the Shard& (or raw cells) instead of re-calling.
  Shard& local_shard();

  std::size_t num_shards() const;

  /// Counters + gauges only; safe concurrently with writers (relaxed loads).
  MetricsSnapshot snapshot_counters(TimeNs sim_time) const;

  /// Everything including histogram summaries. Requires writers quiesced
  /// (or a single-threaded writer == caller); see class comment.
  MetricsSnapshot snapshot(TimeNs sim_time) const;

  /// Merge of one histogram across all shards, with full buckets (for the
  /// Prometheus exposition). Same quiescence requirement as snapshot().
  Histogram merged_histogram(HistogramId id) const;

 private:
  std::uint32_t intern(std::vector<std::string>& names, const std::string& name,
                       const char* kind);
  void sum_atomics(MetricsSnapshot& snap,
                   const std::vector<Shard*>& shards) const;

  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool frozen_ = false;
  const std::uint64_t generation_;
  mutable std::atomic<std::uint64_t> next_seq_{0};
};

}  // namespace laps::telemetry
