#include "telemetry/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace laps::telemetry {

#if defined(__linux__)

namespace {

const std::uint64_t kConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int open_counter(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // TOTAL_TIME_ENABLED/RUNNING let us scale away kernel multiplexing when
  // four counters don't all fit in hardware slots simultaneously.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, any CPU. group_fd=-1: independent
  // counters, so one unsupported event doesn't take down the rest.
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0));
}

double read_scaled(int fd) {
  if (fd < 0) return 0;
  std::uint64_t data[3] = {0, 0, 0};  // value, time_enabled, time_running
  if (read(fd, data, sizeof(data)) != static_cast<ssize_t>(sizeof(data))) {
    return 0;
  }
  if (data[2] == 0) return 0;  // never scheduled onto hardware
  return static_cast<double>(data[0]) * static_cast<double>(data[1]) /
         static_cast<double>(data[2]);
}

}  // namespace

PerfCounterScope::PerfCounterScope() {
  for (int i = 0; i < kCounters; ++i) fds_[i] = open_counter(kConfigs[i]);
}

PerfCounterScope::~PerfCounterScope() {
  for (int i = 0; i < kCounters; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

bool PerfCounterScope::available() const {
  for (int i = 0; i < kCounters; ++i) {
    if (fds_[i] >= 0) return true;
  }
  return false;
}

void PerfCounterScope::start() {
  for (int i = 0; i < kCounters; ++i) {
    if (fds_[i] < 0) continue;
    ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
    ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounterReading PerfCounterScope::stop() {
  PerfCounterReading reading;
  for (int i = 0; i < kCounters; ++i) {
    if (fds_[i] >= 0) ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
  }
  reading.available = available();
  reading.cycles = read_scaled(fds_[0]);
  reading.instructions = read_scaled(fds_[1]);
  reading.cache_misses = read_scaled(fds_[2]);
  reading.branch_misses = read_scaled(fds_[3]);
  return reading;
}

#else  // !__linux__ — the whole scope is a no-op.

PerfCounterScope::PerfCounterScope() = default;
PerfCounterScope::~PerfCounterScope() = default;
bool PerfCounterScope::available() const { return false; }
void PerfCounterScope::start() {}
PerfCounterReading PerfCounterScope::stop() { return {}; }

#endif

}  // namespace laps::telemetry
