#pragma once

#include <cstdint>

namespace laps::telemetry {

/// Hardware-counter readings over one start()/stop() interval. When the
/// kernel multiplexed the counters (more software users than hardware
/// slots), values are scaled by time_enabled/time_running per counter —
/// the standard perf extrapolation. `available` is false when no counter
/// could be opened; every value is then zero.
struct PerfCounterReading {
  bool available = false;
  double cycles = 0;
  double instructions = 0;
  double cache_misses = 0;
  double branch_misses = 0;

  double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
};

/// RAII wrapper over `perf_event_open` for the four counters the perf
/// trajectory cares about: cycles, instructions, cache-misses,
/// branch-misses (self, user+kernel excluded-kernel, per-thread).
///
/// Designed for graceful no-op degradation: containers and locked-down CI
/// runners reject the syscall (EACCES/EPERM under
/// kernel.perf_event_paranoid, ENOSYS under seccomp) — then available()
/// is false, start()/stop() cost nothing, and readings are all-zero with
/// available=false, so callers emit columns only when there is hardware
/// truth behind them. Non-Linux builds compile to the same no-op.
class PerfCounterScope {
 public:
  PerfCounterScope();
  ~PerfCounterScope();
  PerfCounterScope(const PerfCounterScope&) = delete;
  PerfCounterScope& operator=(const PerfCounterScope&) = delete;

  /// True when at least one hardware counter opened.
  bool available() const;

  /// Resets and enables the counters (no-op when unavailable).
  void start();

  /// Disables the counters and returns the interval reading.
  PerfCounterReading stop();

 private:
  static constexpr int kCounters = 4;
  int fds_[kCounters] = {-1, -1, -1, -1};
};

}  // namespace laps::telemetry
