#include "telemetry/probe.h"

#include <string>

#include "sim/fault.h"

namespace laps::telemetry {

TelemetryProbe::TelemetryProbe(TelemetryConfig config,
                               const Scheduler* scheduler,
                               ChromeTraceProbe* trace)
    : config_(config),
      scheduler_(scheduler),
      trace_(trace),
      ring_(config.ring_capacity) {
  register_instruments();
}

void TelemetryProbe::register_instruments() {
  c_offered_ = registry_.counter("engine.offered");
  c_dropped_ = registry_.counter("engine.dropped");
  c_dispatched_ = registry_.counter("engine.dispatched");
  c_delivered_ = registry_.counter("engine.delivered");
  c_ooo_ = registry_.counter("engine.out_of_order");
  c_migrations_ = registry_.counter("engine.flow_migrations");
  c_completions_ = registry_.counter("engine.completions");
  c_cascades_ = registry_.counter("engine.wheel_cascades");
  c_core_grants_ = registry_.counter("sched.core_grants");
  c_core_denied_ = registry_.counter("sched.core_denied");
  c_parks_ = registry_.counter("sched.parks");
  c_wakes_ = registry_.counter("sched.wakes");
  c_afd_promotions_ = registry_.counter("sched.afd_promotions");
  c_aggressive_migrations_ = registry_.counter("sched.aggressive_migrations");
  c_fault_events_ = registry_.counter("fault.events");
  g_queue_total_ = registry_.gauge("engine.queue_depth_total");
  g_queue_max_ = registry_.gauge("engine.queue_depth_max");
  g_live_cores_ = registry_.gauge("engine.live_cores");
  g_rob_occupancy_ = registry_.gauge("engine.rob_occupancy");
  g_flows_ = registry_.gauge("engine.flows");
  g_outages_ = registry_.gauge("fault.outages_in_flight");
  h_latency_ = registry_.histogram("engine.latency_ns");
}

void TelemetryProbe::on_run_begin(const RunInfo& info) {
  info_ = info;
  finished_ = false;
  next_snapshot_ = config_.interval;

  // Late registration happens here, before the first local_shard() call
  // freezes the instrument set: per-core queue gauges, and the sched.*
  // fields this policy actually exports (telemetry_sample() returns -1
  // for mechanisms it does not own — those gauges are never created).
  const std::size_t per_core =
      info.num_cores < config_.max_per_core_gauges ? info.num_cores
                                                   : config_.max_per_core_gauges;
  g_queue_core_.clear();
  for (std::size_t c = 0; c < per_core; ++c) {
    g_queue_core_.push_back(
        registry_.gauge("engine.queue_depth.core" + std::to_string(c)));
  }
  if (scheduler_ != nullptr) {
    const SchedTelemetry probe = scheduler_->telemetry_sample();
    if (probe.afc_occupancy >= 0) {
      g_afc_occupancy_ = registry_.gauge("sched.afc_occupancy");
    }
    if (probe.afd_hits >= 0) g_afd_hits_ = registry_.gauge("sched.afd_hits");
    if (probe.afd_evictions >= 0) {
      g_afd_evictions_ = registry_.gauge("sched.afd_evictions");
    }
    if (probe.pinned_flows >= 0) {
      g_pinned_flows_ = registry_.gauge("sched.pinned_flows");
    }
    if (probe.parked_cores >= 0) {
      g_parked_cores_ = registry_.gauge("sched.parked_cores");
    }
    if (probe.wake_strikes >= 0) {
      g_wake_strikes_ = registry_.gauge("sched.wake_strikes");
    }
    if (probe.core_transitions >= 0) {
      g_core_transitions_ = registry_.gauge("sched.core_transitions");
    }
  }

  shard_ = &registry_.local_shard();
  cell_offered_ = shard_->counter_cell(c_offered_);
  cell_dropped_ = shard_->counter_cell(c_dropped_);
  cell_dispatched_ = shard_->counter_cell(c_dispatched_);
  cell_delivered_ = shard_->counter_cell(c_delivered_);
  cell_ooo_ = shard_->counter_cell(c_ooo_);
  cell_migrations_ = shard_->counter_cell(c_migrations_);
  latency_cell_ = shard_->histogram_cell(h_latency_);
  n_offered_ = n_dropped_ = n_dispatched_ = 0;
  n_delivered_ = n_ooo_ = n_migrations_ = 0;
  last_completions_ = 0;
  last_cascades_ = 0;
  outages_in_flight_ = 0;
}

void TelemetryProbe::on_arrival(TimeNs, const SimPacket&) { ++n_offered_; }

void TelemetryProbe::on_drop(TimeNs, const SimPacket&, CoreId) {
  ++n_dropped_;
}

void TelemetryProbe::on_dispatch(TimeNs, const SimPacket&, CoreId,
                                 bool migrated) {
  ++n_dispatched_;
  if (migrated) ++n_migrations_;
}

void TelemetryProbe::on_departure(TimeNs now, const SimPacket& pkt, CoreId,
                                  std::uint32_t new_ooo) {
  ++n_delivered_;
  if (new_ooo != 0) n_ooo_ += new_ooo;
  latency_cell_->record(now - pkt.arrival);
}

void TelemetryProbe::publish_packet_counters() {
  // Single-writer publication of the local totals (absolute stores, not
  // deltas: the local cells ARE the counters; the registry cells mirror
  // them at boundary cadence).
  cell_offered_->store(n_offered_, std::memory_order_relaxed);
  cell_dropped_->store(n_dropped_, std::memory_order_relaxed);
  cell_dispatched_->store(n_dispatched_, std::memory_order_relaxed);
  cell_delivered_->store(n_delivered_, std::memory_order_relaxed);
  cell_ooo_->store(n_ooo_, std::memory_order_relaxed);
  cell_migrations_->store(n_migrations_, std::memory_order_relaxed);
}

void TelemetryProbe::on_epoch(TimeNs, std::span<const CoreView> cores) {
  std::int64_t total = 0;
  std::int64_t max = 0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    const std::int64_t depth = static_cast<std::int64_t>(cores[c].queue_len);
    total += depth;
    if (depth > max) max = depth;
    if (c < g_queue_core_.size()) shard_->set(g_queue_core_[c], depth);
  }
  shard_->set(g_queue_total_, total);
  shard_->set(g_queue_max_, max);

  if (scheduler_ != nullptr) {
    const SchedTelemetry t = scheduler_->telemetry_sample();
    if (g_afc_occupancy_.valid()) shard_->set(g_afc_occupancy_, t.afc_occupancy);
    if (g_afd_hits_.valid()) shard_->set(g_afd_hits_, t.afd_hits);
    if (g_afd_evictions_.valid()) {
      shard_->set(g_afd_evictions_, t.afd_evictions);
    }
    if (g_pinned_flows_.valid()) shard_->set(g_pinned_flows_, t.pinned_flows);
    if (g_parked_cores_.valid()) shard_->set(g_parked_cores_, t.parked_cores);
    if (g_wake_strikes_.valid()) shard_->set(g_wake_strikes_, t.wake_strikes);
    if (g_core_transitions_.valid()) {
      shard_->set(g_core_transitions_, t.core_transitions);
    }
  }
}

void TelemetryProbe::on_engine_sample(TimeNs now, const EngineSample& sample) {
  publish_packet_counters();
  // Cumulative engine meters arrive as totals; publish deltas so the
  // instruments stay monotone counters in every exposition.
  shard_->add(c_completions_, sample.completions - last_completions_);
  last_completions_ = sample.completions;
  shard_->add(c_cascades_, sample.wheel_cascades - last_cascades_);
  last_cascades_ = sample.wheel_cascades;
  shard_->set(g_live_cores_, static_cast<std::int64_t>(sample.live_cores));
  shard_->set(g_rob_occupancy_,
              static_cast<std::int64_t>(sample.rob_occupancy));
  shard_->set(g_flows_, static_cast<std::int64_t>(sample.flows));

  // The snapshot decision rides the engine sample (not on_epoch) so the
  // published snapshot always carries the engine gauges set just above.
  if (now >= next_snapshot_) {
    take_snapshot(now);
    while (next_snapshot_ <= now) next_snapshot_ += config_.interval;
  }
}

void TelemetryProbe::on_sched_event(TimeNs, const SchedEvent& event) {
  switch (event.kind) {
    case SchedEvent::Kind::kCoreGrant:
      shard_->add(c_core_grants_);
      break;
    case SchedEvent::Kind::kCoreDenied:
      shard_->add(c_core_denied_);
      break;
    case SchedEvent::Kind::kAggressiveMigration:
      shard_->add(c_aggressive_migrations_);
      break;
    case SchedEvent::Kind::kAfdPromotion:
      shard_->add(c_afd_promotions_);
      break;
    case SchedEvent::Kind::kPark:
      shard_->add(c_parks_);
      break;
    case SchedEvent::Kind::kWake:
      shard_->add(c_wakes_);
      break;
    default:
      break;  // fault-injection markers are counted via on_fault
  }
}

void TelemetryProbe::on_fault(TimeNs, const FaultEvent& event, std::uint32_t) {
  shard_->add(c_fault_events_);
  if (event.kind == FaultKind::kCoreDown) {
    ++outages_in_flight_;
  } else if (event.kind == FaultKind::kCoreUp && outages_in_flight_ > 0) {
    --outages_in_flight_;
  }
  shard_->set(g_outages_, outages_in_flight_);
}

void TelemetryProbe::on_run_end(const RunEnd& end) {
  // The engine emits a final engine sample before on_run_end, but publish
  // again so a probe driven directly by hooks (tests) is exact too.
  publish_packet_counters();
  final_ = registry_.snapshot(end.end);
  finished_ = true;
}

void TelemetryProbe::take_snapshot(TimeNs now) {
  // Same thread as every writer hook, so the full (histogram-inclusive)
  // snapshot is safe here; see MetricsRegistry's concurrency model.
  MetricsSnapshot snap = registry_.snapshot(now);
  if (trace_ != nullptr) emit_trace_counters(now, snap);
  ring_.push(std::move(snap));
}

void TelemetryProbe::emit_trace_counters(TimeNs now,
                                         const MetricsSnapshot& snap) {
  const auto gauge = [&](GaugeId id) -> std::int64_t {
    return id.valid() ? snap.gauges[id.index] : 0;
  };
  const auto counter = [&](CounterId id) -> std::uint64_t {
    return snap.counters[id.index];
  };
  trace_->add_counter(now, "queue_depth",
                      "{\"total\":" + std::to_string(gauge(g_queue_total_)) +
                          ",\"max\":" + std::to_string(gauge(g_queue_max_)) +
                          "}");
  trace_->add_counter(
      now, "occupancy",
      "{\"live_cores\":" + std::to_string(gauge(g_live_cores_)) +
          ",\"rob\":" + std::to_string(gauge(g_rob_occupancy_)) +
          (g_afc_occupancy_.valid()
               ? ",\"afc\":" + std::to_string(gauge(g_afc_occupancy_))
               : "") +
          "}");
  trace_->add_counter(
      now, "totals",
      "{\"drops\":" + std::to_string(counter(c_dropped_)) +
          ",\"migrations\":" + std::to_string(counter(c_migrations_)) + "}");
}

}  // namespace laps::telemetry
