#pragma once

#include <cstdint>
#include <vector>

#include "sim/probe.h"
#include "sim/probes.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot_ring.h"

namespace laps::telemetry {

struct TelemetryConfig {
  /// Snapshot cadence in simulated time (`--telemetry[=interval]`).
  TimeNs interval = 100 * kMicrosecond;
  /// SPSC ring capacity (snapshots beyond this without a consumer are
  /// dropped and counted; the final snapshot is kept separately).
  std::size_t ring_capacity = 4096;
  /// Per-core queue-depth gauges are registered for at most this many
  /// cores; larger machines still get the total/max gauges.
  std::size_t max_per_core_gauges = 64;
};

/// The live-telemetry probe: instruments the engine's packet lifecycle with
/// MetricsRegistry counters, samples gauges (queue depths, engine and
/// scheduler occupancies) at epoch cadence, and publishes MetricsSnapshots
/// into a bounded SPSC ring on the configured interval.
///
/// Hot-path cost is the design constraint: the four per-packet hooks do one
/// or two plain increments on probe-local cells (plus one histogram record
/// on departure) and nothing else — no atomics, no string work, no branches
/// on configuration. The local totals are published into the registry's
/// atomic cells at every engine-sample boundary, always before a snapshot
/// is taken, so every published snapshot (and the final one) is exact;
/// between boundaries a concurrent snapshot_counters() observer sees
/// values at most one epoch stale, which is the monitoring contract.
/// Everything else state-shaped (gauges, scheduler samples, snapshot
/// publication, Chrome counter tracks) also happens at epoch boundaries,
/// which the engine only emits when probes are attached. A telemetry-off
/// run is bit-identical by construction.
///
/// One probe observes one run (like ReportProbe). Counter totals reconcile
/// exactly with the SimReport: offered/dropped/delivered/out_of_order/
/// flow_migrations and the latency histogram's count/sum/max are counted at
/// the same hook sites ReportProbe uses.
class TelemetryProbe final : public SimProbe {
 public:
  /// `scheduler` (optional) enables the sched.* gauge family, sampled via
  /// Scheduler::telemetry_sample() at epoch cadence; fields the policy
  /// reported as N/A in the run-begin sample are never registered.
  /// `trace` (optional) merges counter tracks into a ChromeTraceProbe
  /// timeline at each snapshot.
  explicit TelemetryProbe(TelemetryConfig config = {},
                          const Scheduler* scheduler = nullptr,
                          ChromeTraceProbe* trace = nullptr);

  void on_run_begin(const RunInfo& info) override;
  void on_arrival(TimeNs now, const SimPacket& pkt) override;
  void on_drop(TimeNs now, const SimPacket& pkt, CoreId core) override;
  void on_dispatch(TimeNs now, const SimPacket& pkt, CoreId core,
                   bool migrated) override;
  void on_departure(TimeNs now, const SimPacket& pkt, CoreId core,
                    std::uint32_t new_ooo) override;
  void on_epoch(TimeNs now, std::span<const CoreView> cores) override;
  void on_engine_sample(TimeNs now, const EngineSample& sample) override;
  void on_sched_event(TimeNs now, const SchedEvent& event) override;
  void on_fault(TimeNs now, const FaultEvent& event,
                std::uint32_t flushed) override;
  void on_run_end(const RunEnd& end) override;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  SnapshotRing& ring() { return ring_; }
  const SnapshotRing& ring() const { return ring_; }

  const TelemetryConfig& config() const { return config_; }
  const RunInfo& info() const { return info_; }
  bool finished() const { return finished_; }

  /// The end-of-run snapshot (valid after on_run_end). Kept out of the
  /// ring so exporters and reconciliation tests always see final totals
  /// even when a consumer-less ring overflowed mid-run.
  const MetricsSnapshot& final_snapshot() const { return final_; }

  /// The latency histogram with full buckets (for Prometheus exposition).
  Histogram latency_histogram() const {
    return registry_.merged_histogram(h_latency_);
  }

 private:
  void register_instruments();
  void publish_packet_counters();
  void take_snapshot(TimeNs now);
  void emit_trace_counters(TimeNs now, const MetricsSnapshot& snap);

  TelemetryConfig config_;
  const Scheduler* scheduler_;
  ChromeTraceProbe* trace_;

  MetricsRegistry registry_;
  SnapshotRing ring_;
  RunInfo info_;
  MetricsSnapshot final_;
  bool finished_ = false;

  // Per-packet totals live in plain probe-local cells (single writer: the
  // sim thread) and are flushed into the registry's atomic cells via the
  // cached pointers below at every engine-sample boundary — a plain
  // increment per hook beats an atomic load+store pair when the engine
  // processes a packet in ~100 ns.
  std::uint64_t n_offered_ = 0;
  std::uint64_t n_dropped_ = 0;
  std::uint64_t n_dispatched_ = 0;
  std::uint64_t n_delivered_ = 0;
  std::uint64_t n_ooo_ = 0;
  std::uint64_t n_migrations_ = 0;

  // Cached registry cells (valid from on_run_begin). The histogram cell is
  // written directly on the hot path: it is plain memory already.
  MetricsRegistry::Shard* shard_ = nullptr;
  std::atomic<std::uint64_t>* cell_offered_ = nullptr;
  std::atomic<std::uint64_t>* cell_dropped_ = nullptr;
  std::atomic<std::uint64_t>* cell_dispatched_ = nullptr;
  std::atomic<std::uint64_t>* cell_delivered_ = nullptr;
  std::atomic<std::uint64_t>* cell_ooo_ = nullptr;
  std::atomic<std::uint64_t>* cell_migrations_ = nullptr;
  Histogram* latency_cell_ = nullptr;

  // Instrument ids (registered in the constructor).
  CounterId c_offered_, c_dropped_, c_dispatched_, c_delivered_;
  CounterId c_ooo_, c_migrations_;
  CounterId c_completions_, c_cascades_;
  CounterId c_core_grants_, c_core_denied_, c_parks_, c_wakes_;
  CounterId c_afd_promotions_, c_aggressive_migrations_;
  CounterId c_fault_events_;
  GaugeId g_queue_total_, g_queue_max_;
  GaugeId g_live_cores_, g_rob_occupancy_, g_flows_;
  GaugeId g_outages_;
  HistogramId h_latency_;

  // Registered at on_run_begin (per-core + discovered sched.* fields).
  std::vector<GaugeId> g_queue_core_;
  GaugeId g_afc_occupancy_, g_afd_hits_, g_afd_evictions_;
  GaugeId g_pinned_flows_, g_parked_cores_, g_wake_strikes_;
  GaugeId g_core_transitions_;

  // Engine-sample counters arrive as cumulative values; deltas feed the
  // registry so they stay monotone counters in expositions.
  std::uint64_t last_completions_ = 0;
  std::uint64_t last_cascades_ = 0;
  std::int64_t outages_in_flight_ = 0;
  TimeNs next_snapshot_ = 0;
};

}  // namespace laps::telemetry
