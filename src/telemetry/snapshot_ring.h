#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace laps::telemetry {

/// Bounded single-producer / single-consumer ring of MetricsSnapshots.
///
/// The producer is the TelemetryProbe on the sim thread; the consumer is
/// whoever streams snapshots out (an exporter draining at run end, or a
/// live monitor thread popping concurrently). Lock-free: one acquire load
/// of the opposite index plus a release store of your own per operation,
/// so a full ring costs the producer a branch, never a stall.
///
/// `push` fails (returns false) when the ring is full — telemetry must
/// never exert backpressure on the engine — and the producer-side
/// `dropped()` counter records how many snapshots were lost that way.
class SnapshotRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2). The ring
  /// holds capacity-1 snapshots when no consumer drains it.
  explicit SnapshotRing(std::size_t capacity = 256)
      : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(slots_.size() - 1) {}

  SnapshotRing(const SnapshotRing&) = delete;
  SnapshotRing& operator=(const SnapshotRing&) = delete;

  /// Producer side. False (and ++dropped) when full.
  bool push(MetricsSnapshot snap) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == mask_) {  // capacity-1 usable slots
      ++dropped_;
      return false;
    }
    slots_[tail & mask_] = std::move(snap);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is drained.
  std::optional<MetricsSnapshot> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    MetricsSnapshot snap = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return snap;
  }

  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return mask_; }  // usable slots

  /// Snapshots discarded because the ring was full (producer-side count;
  /// read it from the producer thread or after it quiesces).
  std::uint64_t dropped() const { return dropped_; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<MetricsSnapshot> slots_;
  const std::size_t mask_;
  std::atomic<std::size_t> head_{0};  // next slot to pop
  std::atomic<std::size_t> tail_{0};  // next slot to fill
  std::uint64_t dropped_ = 0;
};

}  // namespace laps::telemetry
