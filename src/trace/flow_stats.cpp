#include "trace/flow_stats.h"

#include <algorithm>

namespace laps {

void FlowStatsAnalyzer::record(const PacketRecord& rec) {
  if (rec.flow_id >= stats_.size()) {
    stats_.resize(rec.flow_id + 1);
  }
  FlowStat& s = stats_[rec.flow_id];
  s.flow_id = rec.flow_id;
  s.packets += 1;
  s.bytes += rec.size_bytes;
  total_packets_ += 1;
  total_bytes_ += rec.size_bytes;
}

void FlowStatsAnalyzer::consume(TraceSource& src, std::uint64_t max_packets) {
  for (std::uint64_t i = 0; i < max_packets; ++i) {
    const auto rec = src.next();
    if (!rec) break;
    record(*rec);
  }
}

std::vector<FlowStatsAnalyzer::FlowStat> FlowStatsAnalyzer::by_rank() const {
  std::vector<FlowStat> out;
  out.reserve(stats_.size());
  for (const FlowStat& s : stats_) {
    if (s.packets > 0) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const FlowStat& a, const FlowStat& b) {
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.flow_id < b.flow_id;
  });
  return out;
}

double FlowStatsAnalyzer::top_share(std::size_t k) const {
  if (total_packets_ == 0) return 0.0;
  const auto ranked = by_rank();
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    top += ranked[i].packets;
  }
  return static_cast<double>(top) / static_cast<double>(total_packets_);
}

std::size_t FlowStatsAnalyzer::distinct_flows() const {
  std::size_t n = 0;
  for (const FlowStat& s : stats_) {
    if (s.packets > 0) ++n;
  }
  return n;
}

void FlowStatsAnalyzer::reset() {
  stats_.clear();
  total_packets_ = 0;
  total_bytes_ = 0;
}

}  // namespace laps
