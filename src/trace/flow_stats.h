#pragma once

#include <cstdint>
#include <vector>

#include "trace/packet_record.h"

namespace laps {

/// Off-line per-flow statistics over a trace prefix — the analysis behind
/// paper Fig. 2 (flow-size rank distribution) and the ground truth for the
/// AFD accuracy experiments (Fig. 8).
class FlowStatsAnalyzer {
 public:
  /// One analyzed flow.
  struct FlowStat {
    std::uint32_t flow_id = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Accumulates one header.
  void record(const PacketRecord& rec);

  /// Consumes up to `max_packets` headers from `src`.
  void consume(TraceSource& src, std::uint64_t max_packets);

  /// Flows sorted by descending packet count (rank 1 first, as in Fig. 2).
  std::vector<FlowStat> by_rank() const;

  /// Fraction of all packets carried by the top `k` flows — the
  /// "few aggressive flows cause the imbalance" premise of Sec. III-A.
  double top_share(std::size_t k) const;

  std::uint64_t total_packets() const { return total_packets_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t distinct_flows() const;

  void reset();

 private:
  std::vector<FlowStat> stats_;  // indexed by flow_id, grown on demand
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace laps
