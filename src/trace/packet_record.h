#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/flow.h"

namespace laps {

/// One packet header drawn from a trace: the information the paper's
/// scheduler hardware sees (5-tuple + length). Timing is *not* part of the
/// record — per the paper's methodology (Sec. IV-C1), headers come from the
/// trace while arrival times come from the Holt-Winters traffic model.
struct PacketRecord {
  FiveTuple tuple;
  /// Dense per-trace flow index (0-based, assigned in order of first
  /// appearance). Lets the simulator keep per-flow state in flat arrays.
  std::uint32_t flow_id = 0;
  /// IP datagram length in bytes; drives the size-dependent processing
  /// times of paper Eqs. 4-5.
  std::uint16_t size_bytes = 64;
};

/// A replayable stream of packet headers. Implementations: synthetic traces
/// (SyntheticTrace), real captures (PcapTrace), and in-memory vectors for
/// tests. Streams are infinite for synthetic sources and finite for files;
/// the packet generator wraps finite sources around.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next header, or nullopt at end-of-trace (synthetic sources never end).
  virtual std::optional<PacketRecord> next() = 0;

  /// Rewinds to the beginning (synthetic sources also reset their RNG, so a
  /// reset stream replays identically).
  virtual void reset() = 0;

  /// Upper bound on the number of distinct flow_ids this source can emit,
  /// used to size per-flow arrays. 0 = unknown.
  virtual std::size_t flow_count_hint() const { return 0; }

  /// Packet-size mix of this source (for offered-load calibration against
  /// Eqs. 4-5 processing times). Returns false when the source does not
  /// know its mix; callers fall back to the default trimodal internet mix.
  /// Wrapper sources (e.g. the experiment engine's shared-trace cursors)
  /// forward this so calibration sees through them.
  virtual bool size_mix(std::vector<std::uint16_t>& sizes,
                        std::vector<double>& weights) const {
    (void)sizes;
    (void)weights;
    return false;
  }

  /// Trace name for reports ("caida1", "auck3", a pcap path, ...).
  virtual std::string name() const = 0;
};

}  // namespace laps
