#include "trace/pcap_io.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace laps {
namespace {

constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;
constexpr std::uint32_t kMagicNsec = 0xA1B23C4D;
constexpr std::uint32_t kMagicUsecSwapped = 0xD4C3B2A1;
constexpr std::uint32_t kMagicNsecSwapped = 0x4D3CB2A1;
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::uint32_t kLinkRawIp = 101;

std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

}  // namespace

PcapReader::PcapReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (!file_) throw PcapError("PcapReader: cannot open " + path);

  std::uint8_t hdr[24];
  const std::size_t hdr_got = std::fread(hdr, 1, sizeof hdr, file_);
  if (hdr_got != sizeof hdr) {
    std::fclose(file_);
    file_ = nullptr;
    throw PcapError(path, hdr_got,
                    "truncated global header (" + std::to_string(hdr_got) +
                        " of 24 bytes)");
  }
  std::uint32_t magic;
  std::memcpy(&magic, hdr, 4);
  switch (magic) {
    case kMagicUsec: swap_ = false; nanos_ = false; break;
    case kMagicNsec: swap_ = false; nanos_ = true; break;
    case kMagicUsecSwapped: swap_ = true; nanos_ = false; break;
    case kMagicNsecSwapped: swap_ = true; nanos_ = true; break;
    default:
      std::fclose(file_);
      file_ = nullptr;
      throw PcapError(path, 0, "bad magic (not a pcap file)");
  }
  link_type_ = read_u32(hdr + 20);
  snaplen_ = read_u32(hdr + 16);
  if (link_type_ != kLinkEthernet && link_type_ != kLinkRawIp) {
    std::fclose(file_);
    file_ = nullptr;
    throw PcapError(path, 20,
                    "unsupported link type " + std::to_string(link_type_));
  }
  offset_ = sizeof hdr;
}

PcapReader::~PcapReader() {
  if (file_) std::fclose(file_);
}

std::uint32_t PcapReader::read_u32(const std::uint8_t* p) const {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return swap_ ? bswap32(v) : v;
}

std::uint16_t PcapReader::read_u16(const std::uint8_t* p) const {
  // Network byte order within packet data is handled by callers; this is
  // for file-header fields only, which share the file's endianness.
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return swap_ ? static_cast<std::uint16_t>((v >> 8) | (v << 8)) : v;
}

std::optional<PcapPacket> PcapReader::next() {
  std::vector<std::uint8_t> data;
  while (true) {
    std::uint8_t rec_hdr[16];
    const std::size_t got = std::fread(rec_hdr, 1, sizeof rec_hdr, file_);
    if (got == 0) return std::nullopt;  // clean EOF
    if (got != sizeof rec_hdr) {
      // Offsets point at the start of the bad record, where a repair tool
      // would truncate the capture.
      throw PcapError(path_, offset_,
                      "truncated record header (" + std::to_string(got) +
                          " of 16 bytes, packet " +
                          std::to_string(parsed_ + skipped_) + ")");
    }
    const std::uint32_t ts_sec = read_u32(rec_hdr);
    const std::uint32_t ts_frac = read_u32(rec_hdr + 4);
    const std::uint32_t incl_len = read_u32(rec_hdr + 8);
    const std::uint32_t orig_len = read_u32(rec_hdr + 12);
    // Bound the record by the file's stated snaplen, clamped to libpcap's
    // MAXIMUM_SNAPLEN: hostile headers store "no limit" sentinels (or
    // values near UINT32_MAX that would wrap 32-bit arithmetic), and the
    // resize below must never be attacker-sized. 64-bit math keeps the
    // bound itself overflow-proof.
    constexpr std::uint64_t kMaxSnaplen = 262144;
    const std::uint64_t bound =
        std::min<std::uint64_t>(snaplen_, kMaxSnaplen) + 65536u;
    if (incl_len > bound) {
      throw PcapError(path_, offset_,
                      "implausible record length " +
                          std::to_string(incl_len) + " (bound " +
                          std::to_string(bound) + ")");
    }
    data.resize(incl_len);
    if (incl_len > 0) {
      const std::size_t body = std::fread(data.data(), 1, incl_len, file_);
      if (body != incl_len) {
        throw PcapError(path_, offset_,
                        "truncated record body (" + std::to_string(body) +
                            " of " + std::to_string(incl_len) +
                            " bytes, packet " +
                            std::to_string(parsed_ + skipped_) + ")");
      }
    }
    offset_ += sizeof rec_hdr + incl_len;

    // Locate the IPv4 header.
    std::size_t ip_off = 0;
    if (link_type_ == kLinkEthernet) {
      if (data.size() < 14) { ++skipped_; continue; }
      const std::uint16_t ethertype =
          static_cast<std::uint16_t>((data[12] << 8) | data[13]);
      if (ethertype != 0x0800) { ++skipped_; continue; }  // not IPv4
      ip_off = 14;
    }
    if (data.size() < ip_off + 20) { ++skipped_; continue; }
    const std::uint8_t* ip = data.data() + ip_off;
    if ((ip[0] >> 4) != 4) { ++skipped_; continue; }
    const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
    if (ihl < 20 || data.size() < ip_off + ihl + 4) { ++skipped_; continue; }
    const std::uint8_t proto = ip[9];
    if (proto != 6 && proto != 17) { ++skipped_; continue; }

    FiveTuple t;
    t.src_ip = (std::uint32_t(ip[12]) << 24) | (std::uint32_t(ip[13]) << 16) |
               (std::uint32_t(ip[14]) << 8) | ip[15];
    t.dst_ip = (std::uint32_t(ip[16]) << 24) | (std::uint32_t(ip[17]) << 16) |
               (std::uint32_t(ip[18]) << 8) | ip[19];
    t.protocol = proto;
    const std::uint8_t* l4 = ip + ihl;
    t.src_port = static_cast<std::uint16_t>((l4[0] << 8) | l4[1]);
    t.dst_port = static_cast<std::uint16_t>((l4[2] << 8) | l4[3]);

    const std::uint16_t ip_total =
        static_cast<std::uint16_t>((ip[2] << 8) | ip[3]);

    PcapPacket out;
    out.ts_nanos = static_cast<std::uint64_t>(ts_sec) * 1'000'000'000ULL +
                   (nanos_ ? ts_frac : static_cast<std::uint64_t>(ts_frac) * 1000ULL);
    out.record.tuple = t;
    out.record.size_bytes =
        ip_total >= 20
            ? ip_total
            : static_cast<std::uint16_t>(
                  orig_len > ip_off ? orig_len - ip_off : 20);
    const auto [it, inserted] =
        flow_ids_.emplace(t, static_cast<std::uint32_t>(flow_ids_.size()));
    out.record.flow_id = it->second;
    static_cast<void>(inserted);
    ++parsed_;
    return out;
  }
}

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : snaplen_(snaplen) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) throw PcapError("PcapWriter: cannot open " + path);
  std::uint8_t hdr[24] = {};
  const std::uint32_t magic = kMagicUsec;
  const std::uint16_t ver_major = 2, ver_minor = 4;
  const std::uint32_t link = kLinkEthernet;
  std::memcpy(hdr, &magic, 4);
  std::memcpy(hdr + 4, &ver_major, 2);
  std::memcpy(hdr + 6, &ver_minor, 2);
  std::memcpy(hdr + 16, &snaplen_, 4);
  std::memcpy(hdr + 20, &link, 4);
  if (std::fwrite(hdr, 1, sizeof hdr, file_) != sizeof hdr) {
    std::fclose(file_);
    file_ = nullptr;
    throw PcapError("PcapWriter: header write failed");
  }
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void PcapWriter::write(std::uint64_t ts_nanos, const PacketRecord& record) {
  if (!file_) throw std::logic_error("PcapWriter: write after close");

  // Frame = Ethernet(14) + IPv4(20) + L4 header (8 for UDP-sized stub) +
  // zero payload up to the IP total length, truncated at snaplen.
  const std::uint16_t ip_total =
      std::max<std::uint16_t>(record.size_bytes, 28);
  const std::uint32_t orig_len = 14u + ip_total;
  const std::uint32_t incl_len = std::min(orig_len, snaplen_);

  std::vector<std::uint8_t> frame(orig_len, 0);
  // Ethernet: synthetic MACs, EtherType IPv4.
  frame[12] = 0x08;
  frame[13] = 0x00;
  std::uint8_t* ip = frame.data() + 14;
  ip[0] = 0x45;  // v4, IHL 5
  ip[2] = static_cast<std::uint8_t>(ip_total >> 8);
  ip[3] = static_cast<std::uint8_t>(ip_total);
  ip[8] = 64;  // TTL
  ip[9] = record.tuple.protocol;
  const auto& t = record.tuple;
  ip[12] = static_cast<std::uint8_t>(t.src_ip >> 24);
  ip[13] = static_cast<std::uint8_t>(t.src_ip >> 16);
  ip[14] = static_cast<std::uint8_t>(t.src_ip >> 8);
  ip[15] = static_cast<std::uint8_t>(t.src_ip);
  ip[16] = static_cast<std::uint8_t>(t.dst_ip >> 24);
  ip[17] = static_cast<std::uint8_t>(t.dst_ip >> 16);
  ip[18] = static_cast<std::uint8_t>(t.dst_ip >> 8);
  ip[19] = static_cast<std::uint8_t>(t.dst_ip);
  std::uint8_t* l4 = ip + 20;
  l4[0] = static_cast<std::uint8_t>(t.src_port >> 8);
  l4[1] = static_cast<std::uint8_t>(t.src_port);
  l4[2] = static_cast<std::uint8_t>(t.dst_port >> 8);
  l4[3] = static_cast<std::uint8_t>(t.dst_port);

  std::uint8_t rec_hdr[16];
  const std::uint32_t ts_sec =
      static_cast<std::uint32_t>(ts_nanos / 1'000'000'000ULL);
  const std::uint32_t ts_usec =
      static_cast<std::uint32_t>((ts_nanos % 1'000'000'000ULL) / 1000ULL);
  std::memcpy(rec_hdr, &ts_sec, 4);
  std::memcpy(rec_hdr + 4, &ts_usec, 4);
  std::memcpy(rec_hdr + 8, &incl_len, 4);
  std::memcpy(rec_hdr + 12, &orig_len, 4);
  if (std::fwrite(rec_hdr, 1, sizeof rec_hdr, file_) != sizeof rec_hdr ||
      std::fwrite(frame.data(), 1, incl_len, file_) != incl_len) {
    throw PcapError("PcapWriter: record write failed");
  }
  ++written_;
}

PcapTrace::PcapTrace(std::string path) : path_(std::move(path)) {
  reader_ = std::make_unique<PcapReader>(path_);
}

std::optional<PacketRecord> PcapTrace::next() {
  auto pkt = reader_->next();
  if (!pkt) return std::nullopt;
  return pkt->record;
}

void PcapTrace::reset() { reader_ = std::make_unique<PcapReader>(path_); }

}  // namespace laps
