#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "trace/packet_record.h"
#include "util/flow.h"

namespace laps {

/// Classic libpcap file format support so the harness can replay *real*
/// captures (the paper's CAIDA/Auckland files are pcap) in place of the
/// synthetic substitutes — drop a file path anywhere a trace name is
/// accepted. Reader and writer are self-contained (no libpcap dependency,
/// which is unavailable offline).
///
/// Supported: both byte orders, microsecond (0xa1b2c3d4) and nanosecond
/// (0xa1b23c4d) timestamp magic, Ethernet (DLT_EN10MB) and raw-IP (DLT_RAW)
/// link types, IPv4 TCP/UDP (other packets are skipped and counted).

/// Typed error for unreadable or malformed pcap files (truncated headers,
/// implausible lengths, bad magic, I/O failures). Derives from
/// std::runtime_error so existing catch sites keep working, while callers
/// feeding untrusted captures can distinguish hostile input from other
/// failures. Reader errors carry structured fields — the file, the byte
/// offset where parsing stopped, and the reason — so a capture truncated
/// mid-run (the classic interrupted-tcpdump artifact) is reported as
/// "<file> at byte N: truncated record body", not a vague parse failure.
class PcapError : public std::runtime_error {
 public:
  /// Message-only form (writer-side and open failures with no offset).
  explicit PcapError(const std::string& what)
      : std::runtime_error(what), reason_(what) {}

  /// Located form: `path` + byte `offset` + `reason`.
  PcapError(const std::string& path, std::uint64_t offset,
            const std::string& reason)
      : std::runtime_error("PcapReader: " + path + " at byte " +
                           std::to_string(offset) + ": " + reason),
        path_(path),
        offset_(offset),
        reason_(reason),
        has_location_(true) {}

  const std::string& path() const { return path_; }
  std::uint64_t offset() const { return offset_; }
  const std::string& reason() const { return reason_; }
  /// True for reader errors that know where in the file they stopped.
  bool has_location() const { return has_location_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string reason_;
  bool has_location_ = false;
};

/// One on-disk packet with its capture timestamp, produced by PcapReader.
struct PcapPacket {
  std::uint64_t ts_nanos = 0;
  PacketRecord record;
};

/// Streaming pcap reader. Throws PcapError on malformed files; a file that
/// is only a valid global header (zero packets) is not an error — next()
/// returns nullopt immediately.
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  /// Next IPv4 TCP/UDP packet, or nullopt at EOF. Non-IP packets are
  /// skipped transparently (see skipped()). Flow ids are dense, assigned in
  /// order of first appearance.
  std::optional<PcapPacket> next();

  /// Packets skipped because they were not parseable IPv4 TCP/UDP.
  std::uint64_t skipped() const { return skipped_; }
  /// Packets successfully returned so far.
  std::uint64_t parsed() const { return parsed_; }
  /// Link type from the file header (1 = Ethernet, 101 = raw IP).
  std::uint32_t link_type() const { return link_type_; }
  /// True if timestamps are nanosecond-resolution.
  bool nanosecond_ts() const { return nanos_; }
  /// Byte offset of the next unread record header (24 right after the
  /// global header). PcapError offsets come from here.
  std::uint64_t offset() const { return offset_; }

 private:
  std::uint32_t read_u32(const std::uint8_t* p) const;
  std::uint16_t read_u16(const std::uint8_t* p) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  bool swap_ = false;    // file endianness differs from host
  bool nanos_ = false;   // nanosecond timestamp variant
  std::uint32_t link_type_ = 1;
  std::uint32_t snaplen_ = 65535;
  std::uint64_t offset_ = 0;  // bytes consumed; next record starts here
  std::uint64_t parsed_ = 0;
  std::uint64_t skipped_ = 0;
  std::unordered_map<FiveTuple, std::uint32_t, FiveTupleHash> flow_ids_;
};

/// Pcap writer emitting microsecond-resolution, host-order Ethernet files.
/// Synthesizes minimal Ethernet + IPv4 + TCP/UDP headers around each
/// 5-tuple; payload is zero-filled up to min(size, snaplen). Used to export
/// synthetic traces for external tools and to round-trip-test the reader.
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 96);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Appends one packet with capture timestamp `ts_nanos`.
  void write(std::uint64_t ts_nanos, const PacketRecord& record);

  /// Packets written so far.
  std::uint64_t written() const { return written_; }

  /// Flushes and closes; called by the destructor if not called earlier.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint32_t snaplen_;
  std::uint64_t written_ = 0;
};

/// Adapts PcapReader into the TraceSource interface (timestamps dropped,
/// matching the paper's use of traces purely as header streams).
class PcapTrace final : public TraceSource {
 public:
  explicit PcapTrace(std::string path);

  std::optional<PacketRecord> next() override;
  void reset() override;
  std::string name() const override { return path_; }

 private:
  std::string path_;
  std::unique_ptr<PcapReader> reader_;
};

}  // namespace laps
