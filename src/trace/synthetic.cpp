#include "trace/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace laps {

SyntheticTrace::SyntheticTrace(SyntheticTraceSpec spec)
    : spec_(std::move(spec)),
      zipf_(spec_.num_flows, spec_.zipf_alpha),
      sizes_(spec_.size_weights),
      rng_(spec_.seed) {
  if (spec_.size_bytes.size() != spec_.size_weights.size()) {
    throw std::invalid_argument(
        "SyntheticTrace: size_bytes/size_weights length mismatch");
  }
  if (spec_.burstiness < 0.0 || spec_.burstiness >= 1.0) {
    throw std::invalid_argument("SyntheticTrace: burstiness must be in [0,1)");
  }
  if (spec_.churn_per_packet < 0.0 || spec_.churn_per_packet > 1.0) {
    throw std::invalid_argument("SyntheticTrace: churn must be in [0,1]");
  }
  if (spec_.churn_per_packet > 0.0) {
    if (spec_.churn_min_rank >= spec_.num_flows) {
      throw std::invalid_argument(
          "SyntheticTrace: churn_min_rank must be below num_flows");
    }
    generation_.assign(spec_.num_flows, 0);
    slot_id_.resize(spec_.num_flows);
    for (std::uint32_t r = 0; r < spec_.num_flows; ++r) slot_id_[r] = r;
    next_id_ = static_cast<std::uint32_t>(spec_.num_flows);
  }
  if (spec_.head_dormant_fraction < 0.0 || spec_.head_dormant_fraction > 0.9) {
    throw std::invalid_argument(
        "SyntheticTrace: head_dormant_fraction must be in [0, 0.9]");
  }
  init_phases();
}

void SyntheticTrace::init_phases() {
  if (spec_.head_dormant_fraction <= 0.0) return;
  const std::size_t head =
      std::min(spec_.churn_min_rank, spec_.num_flows);
  dormant_.assign(head, false);
  // Deterministic initial phases drawn from a seed-derived stream so
  // reset() restores them exactly.
  Rng phase_rng(mix64(spec_.seed ^ 0xD0837A57));
  for (std::size_t r = 0; r < head; ++r) {
    dormant_[r] = phase_rng.chance(spec_.head_dormant_fraction);
  }
}

std::uint32_t SyntheticTrace::redirect_if_dormant(std::uint32_t rank) {
  if (dormant_.empty() || rank >= dormant_.size() || !dormant_[rank]) {
    return rank;
  }
  // A dormant head rank's traffic goes to the next active head flow
  // (wrapping), so the aggregate head share is preserved while individual
  // elephants pulse on and off.
  for (std::size_t step = 1; step <= dormant_.size(); ++step) {
    const auto candidate =
        static_cast<std::uint32_t>((rank + step) % dormant_.size());
    if (!dormant_[candidate]) return candidate;
  }
  return rank;  // every head rank dormant (possible only at fraction ~1)
}

FiveTuple SyntheticTrace::tuple_of(std::uint32_t flow_id) const {
  // Deterministic unique tuple per (seed, rank, generation). The low 24
  // bits of the source address embed the rank, guaranteeing uniqueness
  // within a generation; everything else is mixed bits so CRC16 sees
  // realistic entropy.
  const std::uint64_t gen =
      generation_.empty() ? 0 : generation_[flow_id];
  const std::uint64_t h = mix64(spec_.seed * 0x9E3779B97F4A7C15ULL +
                                flow_id + (gen << 40));
  FiveTuple t;
  // Generation rotates the /8 so retired identities never collide.
  t.src_ip = ((0x0Au + static_cast<std::uint32_t>(gen & 0xFF)) << 24) |
             (flow_id & 0x00FFFFFFu);
  t.dst_ip = static_cast<std::uint32_t>(h >> 32) | 0x01u;     // never 0
  t.src_port = static_cast<std::uint16_t>(1024 + (h & 0xFFFF) % 64000);
  t.dst_port = static_cast<std::uint16_t>((h >> 16) & 0x1 ? 80 : 443);
  t.protocol = (h >> 17) & 0x7 ? 6 : 17;  // mostly TCP, some UDP
  return t;
}

std::optional<PacketRecord> SyntheticTrace::next() {
  if (!generation_.empty() && rng_.chance(spec_.churn_per_packet)) {
    // Retire one tail identity: its slot keeps the rank's popularity but a
    // brand-new flow takes it over.
    const auto span = spec_.num_flows - spec_.churn_min_rank;
    const auto victim =
        spec_.churn_min_rank + static_cast<std::size_t>(rng_.below(span));
    ++generation_[victim];
    slot_id_[victim] = next_id_++;  // successor is a brand-new flow
  }
  if (!dormant_.empty() && rng_.chance(spec_.head_toggle_per_packet)) {
    // Re-draw one head rank's phase; stationary dormant fraction equals
    // head_dormant_fraction.
    const auto rank = static_cast<std::size_t>(rng_.below(dormant_.size()));
    dormant_[rank] = rng_.chance(spec_.head_dormant_fraction);
  }
  std::uint32_t flow;
  if (has_prev_ && rng_.chance(spec_.burstiness)) {
    flow = prev_flow_;
  } else {
    flow = redirect_if_dormant(
        static_cast<std::uint32_t>(zipf_.sample(rng_)));
  }
  prev_flow_ = flow;
  has_prev_ = true;

  PacketRecord rec;
  rec.flow_id = slot_id_.empty() ? flow : slot_id_[flow];
  rec.tuple = tuple_of(flow);
  rec.size_bytes = spec_.size_bytes[sizes_.sample(rng_)];
  return rec;
}

void SyntheticTrace::reset() {
  rng_.reseed(spec_.seed);
  has_prev_ = false;
  prev_flow_ = 0;
  if (!generation_.empty()) {
    std::fill(generation_.begin(), generation_.end(), 0);
    for (std::uint32_t r = 0; r < spec_.num_flows; ++r) slot_id_[r] = r;
    next_id_ = static_cast<std::uint32_t>(spec_.num_flows);
  }
  init_phases();
}

namespace {

SyntheticTraceSpec caida_like(const std::string& name, std::uint64_t seed,
                              double alpha, std::size_t flows) {
  SyntheticTraceSpec spec;
  spec.name = name;
  spec.num_flows = flows;
  spec.zipf_alpha = alpha;
  spec.burstiness = 0.30;
  // Backbone link: heavy short-lived-mice churn and strongly pulsing
  // elephants — the regime where Fig. 8a needs a 1024-entry annex.
  spec.churn_per_packet = 0.10;
  spec.churn_min_rank = 64;
  spec.head_dormant_fraction = 0.05;
  spec.head_toggle_per_packet = 0.0005;
  spec.seed = seed;
  return spec;
}

SyntheticTraceSpec auck_like(const std::string& name, std::uint64_t seed,
                             double alpha, std::size_t flows) {
  SyntheticTraceSpec spec;
  spec.name = name;
  spec.num_flows = flows;
  spec.zipf_alpha = alpha;
  spec.burstiness = 0.25;
  // University uplink: mild churn, steadier elephants than a backbone.
  spec.churn_per_packet = 0.02;
  spec.churn_min_rank = 64;
  spec.head_dormant_fraction = 0.0;
  spec.head_toggle_per_packet = 0.0001;
  // University uplink in 2000: smaller packets on average than a 2011
  // backbone link.
  spec.size_bytes = {64, 128, 576, 1024, 1500};
  spec.size_weights = {0.50, 0.15, 0.15, 0.08, 0.12};
  spec.seed = seed;
  return spec;
}

}  // namespace

SyntheticTraceSpec trace_spec(const std::string& name) {
  // CAIDA equinix-sanjose (OC-192 backbone, 2011): very large concurrently
  // active flow population, flat Zipf head — many near-equal elephants, the
  // regime where Fig. 8a shows a 512-entry annex is not quite enough.
  if (name == "caida1") return caida_like(name, 101, 1.02, 300'000);
  if (name == "caida2") return caida_like(name, 102, 1.00, 320'000);
  if (name == "caida3") return caida_like(name, 103, 1.05, 260'000);
  if (name == "caida4") return caida_like(name, 104, 1.06, 240'000);
  if (name == "caida5") return caida_like(name, 105, 1.04, 280'000);
  if (name == "caida6") return caida_like(name, 106, 1.03, 290'000);
  // Auckland-II (university uplink, 2000): far fewer active flows, steeper
  // head — the top-16 stand out clearly, so a 512-entry annex identifies
  // them perfectly in Fig. 8a.
  if (name == "auck1") return auck_like(name, 201, 1.30, 30'000);
  if (name == "auck2") return auck_like(name, 202, 1.35, 26'000);
  if (name == "auck3") return auck_like(name, 203, 1.28, 34'000);
  if (name == "auck4") return auck_like(name, 204, 1.32, 28'000);
  if (name == "auck5") return auck_like(name, 205, 1.27, 36'000);
  if (name == "auck6") return auck_like(name, 206, 1.33, 24'000);
  if (name == "auck7") return auck_like(name, 207, 1.29, 32'000);
  if (name == "auck8") return auck_like(name, 208, 1.31, 30'000);
  throw std::out_of_range("trace_spec: unknown trace '" + name + "'");
}

std::vector<std::string> trace_registry_names() {
  return {"caida1", "caida2", "caida3", "caida4", "caida5", "caida6",
          "auck1",  "auck2",  "auck3",  "auck4",  "auck5",  "auck6",
          "auck7",  "auck8"};
}

std::unique_ptr<SyntheticTrace> make_trace(const std::string& name) {
  return std::make_unique<SyntheticTrace>(trace_spec(name));
}

}  // namespace laps
