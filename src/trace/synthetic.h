#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/packet_record.h"
#include "util/rng.h"
#include "util/samplers.h"

namespace laps {

/// Parameters of a synthetic header trace.
///
/// Substitute for the CAIDA / Auckland-II captures of paper Tables I-II,
/// which are not redistributable. The properties that drive every result in
/// the paper are modeled explicitly:
///  * heavy-tailed flow-size distribution (Fig. 2) — `zipf_alpha` over
///    `num_flows` ranks;
///  * number of concurrently active flows (CAIDA >> Auckland, which drives
///    the annex-size requirement in Fig. 8a) — `num_flows`;
///  * short-range burstiness of real captures — `burstiness`, the
///    probability that the next packet repeats the previous flow;
///  * packet-size mix (drives Eqs. 4-5 processing time) — `size_bytes` /
///    `size_weights`, defaulting to the classic trimodal internet mix.
struct SyntheticTraceSpec {
  std::string name = "synthetic";
  std::size_t num_flows = 100'000;
  double zipf_alpha = 1.1;
  double burstiness = 0.3;
  /// Flow churn: expected identity retirements per packet. Each retirement
  /// replaces one tail flow (rank >= churn_min_rank) with a brand-new
  /// 5-tuple in the same popularity slot, modeling the short-lived mice of
  /// real captures. Elephants (head ranks) stay long-lived, as they do in
  /// practice. Churn is what makes the annex size matter (paper Fig. 8a):
  /// without it a cumulative-LFU annex eventually protects every elephant
  /// regardless of size.
  double churn_per_packet = 0.0;
  std::size_t churn_min_rank = 64;
  /// Head non-stationarity: at any instant, roughly this fraction of the
  /// head ranks (rank < churn_min_rank) is *dormant* — its traffic share is
  /// redirected to active head flows, modeling elephants that burst and go
  /// quiet within a capture. This is what exercises the annex cache's
  /// victim/inertia role (paper Sec. III-F): a detector must *retain* a
  /// currently-quiet elephant to report the cumulative top-16 correctly.
  double head_dormant_fraction = 0.0;
  /// Per-packet probability of re-drawing one random head rank's
  /// active/dormant state (stationary fraction = head_dormant_fraction).
  double head_toggle_per_packet = 0.0;
  std::vector<std::uint16_t> size_bytes = {64, 128, 576, 1024, 1500};
  std::vector<double> size_weights = {0.40, 0.10, 0.15, 0.10, 0.25};
  std::uint64_t seed = 1;
};

/// Infinite synthetic header stream over a fixed flow population.
///
/// Flow rank r (0 = most popular) is drawn Zipf(alpha); each rank maps to a
/// unique 5-tuple constructed deterministically from (seed, rank), so two
/// generators with the same spec emit the same flows — and the scheduler's
/// CRC16 sees realistic, well-spread header bytes.
class SyntheticTrace final : public TraceSource {
 public:
  explicit SyntheticTrace(SyntheticTraceSpec spec);

  std::optional<PacketRecord> next() override;
  void reset() override;
  /// Without churn the flow-id space is exactly the rank space. With churn
  /// retired identities receive fresh dense ids, so the population is
  /// unbounded and the hint is 0 (callers fall back to dynamic mapping).
  std::size_t flow_count_hint() const override {
    return spec_.churn_per_packet > 0.0 ? 0 : spec_.num_flows;
  }
  std::string name() const override { return spec_.name; }
  bool size_mix(std::vector<std::uint16_t>& sizes,
                std::vector<double>& weights) const override {
    sizes = spec_.size_bytes;
    weights = spec_.size_weights;
    return true;
  }

  const SyntheticTraceSpec& spec() const { return spec_; }

  /// The 5-tuple currently assigned to a popularity *rank* (generation-
  /// aware when churn is enabled). Without churn, rank == flow_id, so tests
  /// can reconstruct ground truth without replaying the stream.
  FiveTuple tuple_of(std::uint32_t rank) const;

 private:
  SyntheticTraceSpec spec_;
  ZipfSampler zipf_;
  DiscreteSampler sizes_;
  Rng rng_;
  std::uint32_t prev_flow_ = 0;
  bool has_prev_ = false;
  /// generation_[rank] bumps each time the rank's identity is retired;
  /// allocated lazily, only when churn_per_packet > 0.
  std::vector<std::uint32_t> generation_;
  /// slot_id_[rank] = dense flow id of the rank's *current* identity. A
  /// retired identity's id is never reused, so per-flow state downstream
  /// (ordering, migration accounting) treats the newcomer as a new flow.
  std::vector<std::uint32_t> slot_id_;
  std::uint32_t next_id_ = 0;
  /// dormant_[rank] for head ranks; allocated only when head dormancy is on.
  std::vector<bool> dormant_;

  void init_phases();
  std::uint32_t redirect_if_dormant(std::uint32_t rank);
};

/// The named traces of paper Tables I-II ("caida1".."caida6",
/// "auck1".."auck8"), realized as calibrated synthetic specs. CAIDA-like
/// traces model an OC-192 backbone monitor (hundreds of thousands of
/// concurrently active flows, flatter Zipf head); Auckland-like traces model
/// a university uplink (tens of thousands of flows, steeper head). Throws
/// std::out_of_range for unknown names.
SyntheticTraceSpec trace_spec(const std::string& name);

/// All registry names, CAIDA first, in paper order.
std::vector<std::string> trace_registry_names();

/// Convenience: construct the named trace.
std::unique_ptr<SyntheticTrace> make_trace(const std::string& name);

}  // namespace laps
