#include "traffic/generator.h"

#include <algorithm>
#include <stdexcept>

#include "trace/synthetic.h"
#include "util/samplers.h"

namespace laps {

PacketGenerator::PacketGenerator(std::vector<ServiceTraffic> services,
                                 std::uint64_t seed, double horizon_seconds)
    : horizon_s_(horizon_seconds) {
  if (services.empty()) {
    throw std::invalid_argument("PacketGenerator: no services");
  }
  if (horizon_seconds <= 0) {
    throw std::invalid_argument("PacketGenerator: horizon <= 0");
  }
  Rng seeder(seed);
  std::uint32_t offset = 0;
  services_.reserve(services.size());
  for (std::size_t i = 0; i < services.size(); ++i) {
    ServiceTraffic& traffic = services[i];
    if (!traffic.trace) {
      throw std::invalid_argument("PacketGenerator: service without trace");
    }
    const HoltWintersParams rate = traffic.rate;
    PerService s{
        std::move(traffic),
        HoltWintersRate(rate, mix64(seed + 17 * i + 1)),
        seeder.stream(i),
        /*next_time_s=*/0.0,
        /*bound_mpps=*/0.0,
        /*gflow_offset=*/0,
        /*exhausted=*/false,
        /*has_hint=*/false,
        /*dynamic_ids=*/{},
    };
    s.bound_mpps = s.curve.rate_bound_mpps(horizon_seconds);
    s.gflow_offset = offset;
    const std::size_t hint = s.traffic.trace->flow_count_hint();
    s.has_hint = hint > 0;
    offset += static_cast<std::uint32_t>(hint);
    services_.push_back(std::move(s));
    advance(services_.back());
  }
  total_flows_ = offset;
  dynamic_next_ = offset;
}

void PacketGenerator::advance(PerService& s) {
  // Poisson thinning against the constant envelope bound_mpps. Rates are in
  // Mpps; time bookkeeping in seconds (double), converted to ns on emit.
  const double rate_bound_pps = s.bound_mpps * 1e6;
  double t = s.next_time_s;
  while (true) {
    t += sample_exponential(s.rng, rate_bound_pps);
    if (t > horizon_s_) {
      s.exhausted = true;
      s.next_time_s = t;
      return;
    }
    const double accept =
        s.curve.rate_mpps(t) / s.bound_mpps;
    if (s.rng.uniform() < accept) {
      s.next_time_s = t;
      return;
    }
  }
}

std::uint32_t PacketGenerator::global_flow(PerService& s,
                                           std::uint32_t local_id) {
  if (s.has_hint) {
    return s.gflow_offset + local_id;
  }
  const auto [it, inserted] = s.dynamic_ids.emplace(local_id, dynamic_next_);
  if (inserted) {
    ++dynamic_next_;
    ++total_flows_;
  }
  return it->second;
}

ReplayStream ReplayStream::record(ArrivalStream& source) {
  auto packets = std::make_shared<std::vector<GeneratedPacket>>();
  while (auto pkt = source.next()) packets->push_back(*pkt);
  ReplayStream replay;
  replay.packets_ = std::move(packets);
  replay.total_flows_ = source.total_flows();
  return replay;
}

std::optional<GeneratedPacket> PacketGenerator::next() {
  PerService* best = nullptr;
  for (PerService& s : services_) {
    if (s.exhausted) continue;
    if (!best || s.next_time_s < best->next_time_s) best = &s;
  }
  if (!best) return std::nullopt;

  auto rec = best->traffic.trace->next();
  if (!rec) {  // finite trace: wrap around
    best->traffic.trace->reset();
    rec = best->traffic.trace->next();
    if (!rec) throw std::runtime_error("PacketGenerator: empty trace");
  }

  GeneratedPacket out;
  out.time = from_seconds(best->next_time_s);
  out.service = best->traffic.path;
  out.record = *rec;
  out.gflow = global_flow(*best, rec->flow_id);
  advance(*best);
  return out;
}

namespace {

/// Packet-size mix of a service's trace; synthetic traces expose theirs,
/// anything else gets the default internet mix.
void size_mix_of(const TraceSource* trace, std::vector<std::uint16_t>& sizes,
                 std::vector<double>& weights) {
  if (trace != nullptr && trace->size_mix(sizes, weights)) return;
  sizes = SyntheticTraceSpec{}.size_bytes;
  weights = SyntheticTraceSpec{}.size_weights;
}

}  // namespace

double mean_offered_load(const std::vector<ServiceTraffic>& services,
                         const DelayModel& delay, std::size_t num_cores,
                         double horizon_seconds) {
  if (num_cores == 0 || horizon_seconds <= 0) {
    throw std::invalid_argument("mean_offered_load: bad arguments");
  }
  // Trapezoid integration of the noise-free rate curves; 1000 steps is
  // far finer than any Table IV seasonal period over a 60 s horizon.
  constexpr int kSteps = 1000;
  double total_core_seconds = 0.0;
  for (const ServiceTraffic& s : services) {
    std::vector<std::uint16_t> sizes;
    std::vector<double> weights;
    size_mix_of(s.trace.get(), sizes, weights);
    const double t_mean_us = delay.mean_proc_time_us(s.path, sizes, weights);
    const HoltWintersRate curve(s.rate, /*seed=*/0);
    double integral = 0.0;  // Mpps * s
    const double dt = horizon_seconds / kSteps;
    for (int i = 0; i < kSteps; ++i) {
      const double t0 = i * dt;
      const double t1 = t0 + dt;
      integral +=
          0.5 * (curve.mean_rate_mpps(t0) + curve.mean_rate_mpps(t1)) * dt;
    }
    // Mpps * s * us/packet = 1e6 pkt * us = seconds of core time.
    total_core_seconds += integral * t_mean_us;
  }
  return total_core_seconds /
         (static_cast<double>(num_cores) * horizon_seconds);
}

std::vector<ServiceTraffic> scale_to_load(std::vector<ServiceTraffic> services,
                                          const DelayModel& delay,
                                          std::size_t num_cores,
                                          double horizon_seconds,
                                          double target_load) {
  const double load =
      mean_offered_load(services, delay, num_cores, horizon_seconds);
  if (load <= 0) throw std::logic_error("scale_to_load: zero offered load");
  const double k = target_load / load;
  for (ServiceTraffic& s : services) {
    s.rate.a *= k;
    s.rate.b *= k;
    s.rate.c *= k;
    s.rate.sigma *= k;
  }
  return services;
}

}  // namespace laps
