#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "trace/packet_record.h"
#include "traffic/holt_winters.h"
#include "traffic/workload.h"
#include "util/rng.h"
#include "util/time.h"

namespace laps {

/// One packet emitted by the generator: arrival time, owning service, the
/// trace header, and a *global* dense flow id (unique across services) the
/// simulator uses to index per-flow state.
struct GeneratedPacket {
  TimeNs time = 0;
  ServicePath service = ServicePath::kIpForward;
  PacketRecord record;
  std::uint32_t gflow = 0;
  /// Cluster-global per-flow sequence, stamped by the cluster dispatcher on
  /// its shard-bound copy (src/cluster) — the generator and single-engine
  /// paths leave it 0. Rides the packet like NIC RX metadata so per-shard
  /// engines need no shared numbering state.
  std::uint32_t cluster_seq = 0;
};

/// Traffic description for one service: its rate curve and header trace.
struct ServiceTraffic {
  ServicePath path = ServicePath::kIpForward;
  HoltWintersParams rate;
  std::shared_ptr<TraceSource> trace;
};

/// Multi-service packet generator, paper Fig. 6 "Packet Generator":
/// per-service arrival times follow a non-homogeneous Poisson process whose
/// intensity is the Holt-Winters curve of Eq. 1 (sampled by thinning), and
/// each arrival's header is the next record of that service's trace —
/// "the use of real network traces ensures that realistic flow scenarios
/// are created" (Sec. IV-C1). Finite traces wrap around.
/// What the simulation kernels consume: a time-ordered arrival sequence.
/// PacketGenerator produces it online; ReplayStream serves a pre-recorded
/// one (generation cost paid once, e.g. for kernel microbenchmarks or for
/// running several schedulers over byte-identical traffic).
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  /// Next packet in nondecreasing time order, or nullopt at end of stream.
  virtual std::optional<GeneratedPacket> next() = 0;

  /// Total distinct global flow ids the stream can emit (for pre-sizing
  /// per-flow arrays); 0 = unknown.
  virtual std::size_t total_flows() const = 0;
};

///
/// Packets are emitted in nondecreasing global time order. Deterministic
/// for a fixed (services, seed) pair.
class PacketGenerator final : public ArrivalStream {
 public:
  /// `horizon_seconds` bounds generation (packets after the horizon are not
  /// produced) and is also used to bound the thinning envelope.
  PacketGenerator(std::vector<ServiceTraffic> services, std::uint64_t seed,
                  double horizon_seconds);

  /// Next packet across all services, or nullopt once every service has
  /// passed the horizon.
  std::optional<GeneratedPacket> next() override;

  /// Total distinct global flow ids this generator can emit (for sizing
  /// per-flow arrays). Exact when every trace reports a hint.
  std::size_t total_flows() const override { return total_flows_; }

  /// Number of services.
  std::size_t num_services() const { return services_.size(); }

 private:
  struct PerService {
    ServiceTraffic traffic;
    HoltWintersRate curve;
    Rng rng;
    double next_time_s = 0.0;   // tentative next arrival (seconds)
    double bound_mpps = 0.0;    // thinning envelope
    std::uint32_t gflow_offset = 0;
    bool exhausted = false;
    // Cached trace->flow_count_hint() > 0: global_flow runs per packet and
    // must not pay a virtual call to re-learn a static property.
    bool has_hint = false;
    // Fallback mapping for traces without a flow-count hint.
    std::unordered_map<std::uint32_t, std::uint32_t> dynamic_ids;
  };

  void advance(PerService& s);
  std::uint32_t global_flow(PerService& s, std::uint32_t local_id);

  std::vector<PerService> services_;
  double horizon_s_;
  std::size_t total_flows_ = 0;
  std::uint32_t dynamic_next_ = 0;  // shared id pool for hint-less traces
};

/// A pre-materialized arrival sequence. `record` drains a generator into a
/// contiguous buffer; `rewind` makes the same traffic replayable any number
/// of times. Kernel microbenchmarks use this to time the simulator without
/// the (dominant) cost of online generation in the loop.
///
/// The recorded buffer is immutable and shared: `fork()` returns an
/// independent cursor over the same packets, so several consumers (e.g.
/// grid cells timing different configurations, or differential runs that
/// must see byte-identical traffic) each get the full deterministic
/// sequence without re-recording or double-consuming one stream. A
/// ReplayStream was previously single-consumer — handing it to two runs
/// meant the second saw an exhausted stream.
class ReplayStream final : public ArrivalStream {
 public:
  /// Drains `source` to exhaustion.
  static ReplayStream record(ArrivalStream& source);

  std::optional<GeneratedPacket> next() override {
    if (pos_ >= packets_->size()) return std::nullopt;
    return (*packets_)[pos_++];
  }
  std::size_t total_flows() const override { return total_flows_; }

  void rewind() { pos_ = 0; }
  std::size_t size() const { return packets_->size(); }

  /// Independent cursor at position 0 over the same recorded buffer.
  /// Cheap (shared_ptr copy); the forked stream's consumption does not
  /// affect this one and vice versa.
  ReplayStream fork() const {
    ReplayStream copy(*this);
    copy.pos_ = 0;
    return copy;
  }

 private:
  std::shared_ptr<const std::vector<GeneratedPacket>> packets_ =
      std::make_shared<std::vector<GeneratedPacket>>();
  std::size_t total_flows_ = 0;
  std::size_t pos_ = 0;
};

/// Computes the mean offered load of `services` relative to the ideal
/// capacity of `num_cores` cores over [0, horizon]:
///
///   load = (1/horizon) * Integral sum_i x_i(t) * E[T_proc,i] dt / cores
///
/// using each trace's packet-size mix for E[T_proc,i] (`fallback mix` for
/// traces that do not expose one). A value of 1.0 means the system is
/// exactly at its ideal capacity — the boundary between the paper's
/// "under-load" (Set 1) and "overload" (Set 2) regimes.
double mean_offered_load(const std::vector<ServiceTraffic>& services,
                         const DelayModel& delay, std::size_t num_cores,
                         double horizon_seconds);

/// Returns a copy of `services` with every rate curve scaled by a constant
/// factor so that mean_offered_load(...) == target_load. Used by the
/// Fig. 7 harness to pin Set 1 / Set 2 at calibrated under/over-load points
/// regardless of trace packet-size mixes (see DESIGN.md substitutions).
std::vector<ServiceTraffic> scale_to_load(std::vector<ServiceTraffic> services,
                                          const DelayModel& delay,
                                          std::size_t num_cores,
                                          double horizon_seconds,
                                          double target_load);

}  // namespace laps
