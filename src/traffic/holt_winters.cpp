#include "traffic/holt_winters.h"

#include <cmath>
#include <stdexcept>

#include "util/samplers.h"

namespace laps {

std::vector<HoltWintersParams> table4_params(int set) {
  // Paper Table IV. {a, b, C, m, sigma}; rates Mpps, periods seconds.
  if (set == 1) {
    return {
        {1.0, 0.030, 0.30, 40.0, 0.10},   // S1
        {1.8, 0.025, 0.10, 25.0, 0.05},   // S2 ("025" read as 0.025)
        {0.5, 0.010, 0.07, 60.0, 0.25},   // S3
        {0.3, 0.005, 0.09, 600.0, 0.30},  // S4
    };
  }
  if (set == 2) {
    return {
        {1.5, 0.002, 0.30, 100.0, 0.30},  // S1
        {1.3, 0.020, 0.15, 25.0, 0.05},   // S2 ("02" read as 0.02)
        {1.0, 0.004, 0.25, 30.0, 0.25},   // S3
        {0.7, 0.010, 0.18, 200.0, 0.30},  // S4
    };
  }
  throw std::invalid_argument("table4_params: set must be 1 or 2");
}

HoltWintersRate::HoltWintersRate(HoltWintersParams params, std::uint64_t seed,
                                 double noise_interval)
    : params_(params), seed_(seed), noise_interval_(noise_interval) {
  if (noise_interval <= 0) {
    throw std::invalid_argument("HoltWintersRate: noise_interval <= 0");
  }
  if (params_.m <= 0) {
    throw std::invalid_argument("HoltWintersRate: seasonal period <= 0");
  }
}

double HoltWintersRate::mean_rate_mpps(double t) const {
  const double phase = std::fmod(t, params_.m) / params_.m;
  const double season = std::sin(2.0 * 3.14159265358979323846 * phase);
  const double r = params_.a + params_.b * t + params_.c * season;
  return r > floor_mpps ? r : floor_mpps;
}

double HoltWintersRate::rate_mpps(double t) const {
  double noise = 0.0;
  if (params_.sigma > 0) {
    const auto interval = static_cast<std::uint64_t>(t / noise_interval_);
    Rng rng(mix64(seed_ ^ mix64(interval + 1)));
    noise = sample_gaussian(rng, params_.sigma);
  }
  const double r = mean_rate_mpps(t) + noise;
  return r > floor_mpps ? r : floor_mpps;
}

double HoltWintersRate::rate_bound_mpps(double horizon) const {
  const double trend_peak =
      params_.a + (params_.b > 0 ? params_.b * horizon : 0.0);
  return trend_peak + std::abs(params_.c) + 4.0 * params_.sigma + floor_mpps;
}

}  // namespace laps
