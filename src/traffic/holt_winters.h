#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace laps {

/// Parameters of the per-service traffic-rate model, paper Eq. 1:
///
///   x_i(t) = a + b*t + C*S(t % m) + n(sigma)
///
/// with `a` the baseline rate (Mpps), `b` the linear trend (Mpps/s), `C` the
/// magnitude of the seasonal component `S` with period `m` seconds, and
/// n(sigma) Gaussian noise. This is the Holt-Winters-style decomposition the
/// paper takes from Brutlag (LISA'00).
struct HoltWintersParams {
  double a = 1.0;      ///< baseline, Mpps
  double b = 0.0;      ///< trend, Mpps per second
  double c = 0.0;      ///< seasonal magnitude, Mpps
  double m = 60.0;     ///< seasonal period, seconds
  double sigma = 0.0;  ///< noise standard deviation, Mpps
};

/// The two parameter sets of paper Table IV (rates in Mpps, periods in
/// seconds). Set 1 = under-load, Set 2 = overload for a 16-core system.
/// Index: [service 0..3] = S1..S4. The paper's `b` entries "025"/"02" are
/// read as 0.025/0.02 (see DESIGN.md interpretation notes).
std::vector<HoltWintersParams> table4_params(int set);

/// Deterministic evaluation of Eq. 1.
///
/// The seasonal shape S is a unit sine (the paper does not specify S; any
/// smooth periodic shape exercises the same scheduler behaviour). The noise
/// term is piecewise-constant over `noise_interval` seconds and derived
/// purely from (seed, interval index), so x(t) is a *pure function* of t —
/// two components evaluating the same curve always agree, and replays are
/// exact.
class HoltWintersRate {
 public:
  HoltWintersRate(HoltWintersParams params, std::uint64_t seed,
                  double noise_interval = 0.1);

  /// Rate at time t (seconds), clamped below at `floor_mpps`. Mpps.
  double rate_mpps(double t) const;

  /// Rate without the noise term — used for capacity calibration.
  double mean_rate_mpps(double t) const;

  /// Supremum of rate over [0, horizon] (mean + 4 sigma); an upper bound
  /// usable by Poisson thinning.
  double rate_bound_mpps(double horizon) const;

  const HoltWintersParams& params() const { return params_; }

  /// Minimum emitted rate (default 0.01 Mpps) so the arrival process never
  /// stalls completely.
  static constexpr double floor_mpps = 0.01;

 private:
  HoltWintersParams params_;
  std::uint64_t seed_;
  double noise_interval_;
};

}  // namespace laps
