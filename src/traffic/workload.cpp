#include "traffic/workload.h"

#include <stdexcept>

namespace laps {

std::string service_name(ServicePath path) {
  switch (path) {
    case ServicePath::kVpnOut: return "S1:vpn-out";
    case ServicePath::kIpForward: return "S2:ip-fwd";
    case ServicePath::kMalwareScan: return "S3:scan";
    case ServicePath::kVpnInScan: return "S4:vpn-in";
  }
  throw std::invalid_argument("service_name: bad path");
}

TimeNs DelayModel::proc_time(ServicePath path,
                             std::uint16_t size_bytes) const {
  // The paper's Eqs. 4-5 scale with PacketSize/64byte; we take the exact
  // ratio (the underlying cost is per-64B crypto/scan block).
  const double blocks = static_cast<double>(size_bytes) / 64.0;
  switch (path) {
    case ServicePath::kVpnOut:
      return from_us(3.7 + blocks * 0.23);  // Eq. 4
    case ServicePath::kIpForward:
      return from_us(0.5);
    case ServicePath::kMalwareScan:
      return from_us(3.53);
    case ServicePath::kVpnInScan:
      return from_us(5.8 + blocks * 0.21);  // Eq. 5
  }
  throw std::invalid_argument("proc_time: bad path");
}

double DelayModel::mean_proc_time_us(
    ServicePath path, const std::vector<std::uint16_t>& sizes,
    const std::vector<double>& weights) const {
  if (sizes.size() != weights.size() || sizes.empty()) {
    throw std::invalid_argument("mean_proc_time_us: bad size mix");
  }
  double total_w = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    acc += weights[i] * to_us(proc_time(path, sizes[i]));
    total_w += weights[i];
  }
  if (total_w <= 0) throw std::invalid_argument("mean_proc_time_us: zero weight");
  return acc / total_w;
}

}  // namespace laps
