#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace laps {

/// The four services of the paper's multi-service edge-router workload
/// (Fig. 5): each *path* through the task graph is one service, and a packet
/// is tied to a single core for its whole processing.
enum class ServicePath : std::uint8_t {
  kVpnOut = 0,     ///< Path 1: outgoing packets tunneled via VPN (IPsec enc)
  kIpForward = 1,  ///< Path 2: default IP forwarding
  kMalwareScan = 2,///< Path 3: incoming packets scanned for malware
  kVpnInScan = 3,  ///< Path 4: incoming VPN packets (decrypt + scan)
};

inline constexpr std::size_t kNumServices = 4;

/// Short display name ("path1".."path4" with a hint).
std::string service_name(ServicePath path);

/// Per-packet processing-time model of paper Sec. IV-C3 (Eqs. 3-5),
/// measured on the GEMS-simulated in-order core of Table III:
///
///   PD_i = T_proc,i + FM_penalty + CC_penalty
///
///   T_proc,path2 = 0.5 us                      (IP forwarding)
///   T_proc,path3 = 3.53 us                     (malware scan)
///   T_proc,path1 = 3.7 us + (size/64B)*0.23 us (VPN encrypt, Eq. 4)
///   T_proc,path4 = 5.8 us + (size/64B)*0.21 us (VPN decrypt+scan, Eq. 5)
///
/// FM_penalty (0.8 us = four cache misses) is charged when a packet's flow
/// was last processed on a *different* core; CC_penalty (10 us, the cold
/// I-cache refill of the smallest service) when the previous packet on this
/// core belonged to a different service.
struct DelayModel {
  TimeNs fm_penalty = from_us(0.8);
  TimeNs cc_penalty = from_us(10.0);

  /// T_proc for one packet of `path` with IP length `size_bytes`.
  TimeNs proc_time(ServicePath path, std::uint16_t size_bytes) const;

  /// Full per-packet delay including optional penalties.
  TimeNs packet_delay(ServicePath path, std::uint16_t size_bytes,
                      bool flow_migrated, bool cold_cache) const {
    TimeNs d = proc_time(path, size_bytes);
    if (flow_migrated) d += fm_penalty;
    if (cold_cache) d += cc_penalty;
    return d;
  }

  /// Expected T_proc under a packet-size mix — used to calibrate offered
  /// load against the ideal capacity of an n-core system.
  double mean_proc_time_us(ServicePath path,
                           const std::vector<std::uint16_t>& sizes,
                           const std::vector<double>& weights) const;
};

}  // namespace laps
