#include "util/crc.h"

#include <array>

namespace laps {
namespace {

constexpr std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<std::uint16_t>(crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc16Table = make_crc16_table();
constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                          std::uint16_t init) {
  std::uint16_t crc = init;
  for (std::uint8_t byte : data) {
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kCrc16Table[((crc >> 8) ^ byte) & 0xFF]);
  }
  return crc;
}

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data,
                         std::uint32_t init) {
  std::uint32_t crc = init;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace laps
