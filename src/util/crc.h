#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace laps {

/// CRC16-CCITT (polynomial 0x1021, init 0xFFFF, no reflection).
///
/// This is the hash function LAPS uses over the 13-byte 5-tuple; Cao et al.
/// (INFOCOM'00) showed 16-bit CRCs spread IP headers close to uniformly,
/// which is why the paper picks it. Table-driven, one table lookup per byte.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data,
                          std::uint16_t init = 0xFFFF);

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Provided as an
/// alternative scheduler hash for ablations and for pcap sanity checking.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data,
                         std::uint32_t init = 0xFFFFFFFF);

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Used to derive
/// map keys from flow tuples and to seed per-stream RNGs.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace laps
