#include "util/duration.h"

#include <charconv>
#include <stdexcept>

namespace laps::util {

TimeNs parse_duration(const std::string& context, const std::string& value) {
  // Two-character suffixes first so "5us" is not read as "5u" + "s".
  double scale = 1.0;  // bare numbers are nanoseconds
  std::string digits = value;
  const auto strip = [&digits](const char* suffix, std::size_t len) {
    if (digits.size() > len &&
        digits.compare(digits.size() - len, len, suffix) == 0) {
      digits.resize(digits.size() - len);
      return true;
    }
    return false;
  };
  if (strip("ns", 2)) {
    scale = 1.0;
  } else if (strip("us", 2)) {
    scale = static_cast<double>(kMicrosecond);
  } else if (strip("ms", 2)) {
    scale = static_cast<double>(kMillisecond);
  } else if (strip("s", 1)) {
    scale = static_cast<double>(kSecond);
  }
  double number = 0.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), number);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
    throw std::invalid_argument(context + " wants a number, got '" + digits +
                                "'");
  }
  if (number < 0) {
    throw std::invalid_argument(context + " wants a non-negative duration, got '" +
                                value + "'");
  }
  return static_cast<TimeNs>(number * scale + 0.5);
}

}  // namespace laps::util
