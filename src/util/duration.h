#pragma once

#include <string>

#include "util/time.h"

namespace laps::util {

/// Parses a duration literal with an optional `ns`/`us`/`ms`/`s` suffix into
/// integer nanoseconds; bare numbers are nanoseconds. Fractional values are
/// allowed and rounded to the nearest tick ("1.5us" -> 1500).
///
/// This is the one duration grammar in the tree: the scheduler registry's
/// `idle_th=5us`-style parameters and the harness `--telemetry=interval`
/// flag both delegate here, so a literal that works in one place works in
/// all of them (parity pinned by tests/registry_test.cpp).
///
/// On failure throws std::invalid_argument with a message prefixed by
/// `context` (e.g. "scheduler 'laps': parameter 'idle_th'" or
/// "--telemetry"):
///
///   "<context> wants a number, got '<digits>'"          (unparseable number)
///   "<context> wants a non-negative duration, got '<value>'"  (negative)
TimeNs parse_duration(const std::string& context, const std::string& value);

}  // namespace laps::util
