#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace laps::util {

namespace {

std::string format_io_error(const std::string& what_kind,
                            const std::string& path,
                            const std::string& operation, int saved_errno) {
  std::string msg = what_kind + ": " + path + ": " + operation + " failed";
  if (saved_errno != 0) {
    msg += ": ";
    msg += std::strerror(saved_errno);
  }
  return msg;
}

/// Fsyncs the directory containing `path` so a just-renamed entry is
/// durable. Best-effort: some filesystems refuse directory fsync; that is
/// not worth failing a run over once the data itself is synced.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

IoError::IoError(const std::string& what_kind, const std::string& path,
                 const std::string& operation, int saved_errno)
    : std::runtime_error(
          format_io_error(what_kind, path, operation, saved_errno)),
      path_(path),
      operation_(operation),
      errno_(saved_errno) {}

void write_file_atomic(const std::string& path, const std::string& content,
                       const char* what_kind, bool durable) {
  // The temp name carries pid + a process-wide counter so two writers
  // racing on the same destination (e.g. an abandoned watchdog-timed-out
  // job finishing late while its retry rewrites the same artifact) never
  // share a temp file; both renames land whole files with — by the grid
  // determinism contract — identical bytes.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError(what_kind, tmp, "open", errno);
  }
  if (std::fwrite(content.data(), 1, content.size(), f) != content.size()) {
    const int saved = errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    throw IoError(what_kind, tmp, "write", saved);
  }
  if (std::fflush(f) != 0) {
    const int saved = errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    throw IoError(what_kind, tmp, "flush", saved);
  }
  if (durable && ::fsync(::fileno(f)) != 0) {
    const int saved = errno;
    std::fclose(f);
    std::remove(tmp.c_str());
    throw IoError(what_kind, tmp, "fsync", saved);
  }
  if (std::fclose(f) != 0) {
    const int saved = errno;
    std::remove(tmp.c_str());
    throw IoError(what_kind, tmp, "close", saved);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    std::remove(tmp.c_str());
    throw IoError(what_kind, path, "rename", saved);
  }
  if (durable) sync_parent_dir(path);
}

bool read_file_if_exists(const std::string& path, std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return false;
    throw IoError("file", path, "open", errno);
  }
  content.clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    content.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  const int saved = errno;
  std::fclose(f);
  if (failed) throw IoError("file", path, "read", saved);
  return true;
}

}  // namespace laps::util
