#pragma once

#include <stdexcept>
#include <string>

namespace laps::util {

/// Typed error for any artifact/journal file operation that fails. Carries
/// the path and the errno captured at the point of failure, and formats one
/// canonical message:
///
///   "<what_kind>: <path>: <operation> failed: <strerror(errno)>"
///
/// Every writer in the tree (bench JSON artifacts, probe dumps, telemetry
/// exports, the experiment journal) throws this, so all binaries report
/// artifact-write failures identically and guarded_main turns them into the
/// same nonzero exit code.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what_kind, const std::string& path,
          const std::string& operation, int saved_errno);

  const std::string& path() const { return path_; }
  const std::string& operation() const { return operation_; }
  int saved_errno() const { return errno_; }

 private:
  std::string path_;
  std::string operation_;
  int errno_;
};

/// Writes `content` to `path` via the tmp+rename discipline: the bytes land
/// in `path + ".tmp"` first and are renamed into place only once fully
/// written, so a crash or full disk mid-write leaves either the old file or
/// the new one — never a truncated hybrid. Throws IoError (with `what_kind`
/// naming the artifact, e.g. "JSON artifact" or "flow audit") on failure;
/// the temp file is removed on every failure path.
///
/// `durable` additionally fsyncs the temp file before the rename and the
/// containing directory after it, so the rename survives power loss — the
/// experiment journal needs this (one fsync'd record per completed job);
/// plain artifacts skip it.
void write_file_atomic(const std::string& path, const std::string& content,
                       const char* what_kind, bool durable = false);

/// Reads `path` into `content`. Returns false (content untouched) when the
/// file does not exist; throws IoError on any other failure. Used by the
/// experiment journal, where "no journal yet" is a normal state but a
/// half-readable one must be an error.
bool read_file_if_exists(const std::string& path, std::string& content);

}  // namespace laps::util
