#include "util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace laps {

Flags::Flags(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else {
      // Bare `--name` is boolean true. Values always use `--name=value` so
      // a flag can never accidentally swallow a positional argument.
      values_[arg] = "";
    }
  }
}

std::string Flags::get_string(const std::string& name, const std::string& def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Flags::get_double(const std::string& name, double def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool def) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes" || v == "on";
}

void Flags::finish() const {
  std::string unknown;
  for (const auto& [name, _] : values_) {
    if (!consumed_.count(name)) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (!unknown.empty()) {
    throw std::runtime_error("unknown flag(s): " + unknown);
  }
}

}  // namespace laps
