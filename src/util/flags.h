#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace laps {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Accepts `--name=value` and boolean `--name`. Unknown
/// flags are an error (typos in experiment parameters should fail loudly,
/// not silently run the default). Positional arguments are collected in
/// order.
///
///   Flags flags(argc, argv);
///   const double secs  = flags.get_double("seconds", 2.0);
///   const bool   full  = flags.get_bool("full", false);
///   flags.finish();  // rejects unconsumed (unknown) flags
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// String flag with default.
  std::string get_string(const std::string& name, const std::string& def);
  /// Integer flag with default (accepts decimal and 0x hex).
  std::int64_t get_int(const std::string& name, std::int64_t def);
  /// Floating-point flag with default.
  double get_double(const std::string& name, double def);
  /// Boolean flag: `--name`, `--name=true/false/1/0`. Default `def`.
  bool get_bool(const std::string& name, bool def);

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if the flag appeared on the command line.
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Throws std::runtime_error listing any flag that was given but never
  /// consumed by a get_*() call — i.e., a typo.
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace laps
