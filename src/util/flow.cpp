#include "util/flow.h"

#include <cstdio>

namespace laps {

std::array<std::uint8_t, 13> FiveTuple::wire_bytes() const {
  std::array<std::uint8_t, 13> out{};
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    out[at] = static_cast<std::uint8_t>(v >> 24);
    out[at + 1] = static_cast<std::uint8_t>(v >> 16);
    out[at + 2] = static_cast<std::uint8_t>(v >> 8);
    out[at + 3] = static_cast<std::uint8_t>(v);
  };
  auto put16 = [&](std::size_t at, std::uint16_t v) {
    out[at] = static_cast<std::uint8_t>(v >> 8);
    out[at + 1] = static_cast<std::uint8_t>(v);
  };
  put32(0, src_ip);
  put32(4, dst_ip);
  put16(8, src_port);
  put16(10, dst_port);
  out[12] = protocol;
  return out;
}

std::uint16_t FiveTuple::crc16() const {
  const auto bytes = wire_bytes();
  return crc16_ccitt(bytes);
}

std::string FiveTuple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s:%u -> %s:%u/%u",
                ipv4_to_string(src_ip).c_str(), src_port,
                ipv4_to_string(dst_ip).c_str(), dst_port, protocol);
  return buf;
}

std::string ipv4_to_string(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xFF,
                (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

}  // namespace laps
