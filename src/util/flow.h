#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/crc.h"

namespace laps {

/// The 5-tuple flow identifier used throughout the paper: a *flow* is the
/// set of packets sharing source/destination IPv4 address, source/destination
/// port, and IP protocol.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  /// Serializes the tuple into the canonical 13-byte wire layout the
  /// hardware hashes (big-endian fields, the order they appear in the
  /// IP/TCP headers: src ip, dst ip, src port, dst port, protocol).
  std::array<std::uint8_t, 13> wire_bytes() const;

  /// CRC16-CCITT of the 13-byte wire layout — the LAPS scheduler hash.
  std::uint16_t crc16() const;

  /// A 64-bit key for software hash maps (migration tables, statistics).
  /// Collision-free in practice for simulated flow populations: mixes all
  /// 104 tuple bits through SplitMix64 in two dependent rounds. Inline:
  /// per-packet probes compute it on their fast path.
  std::uint64_t key64() const {
    const std::uint64_t lo = (static_cast<std::uint64_t>(src_ip) << 32) | dst_ip;
    const std::uint64_t hi = (static_cast<std::uint64_t>(src_port) << 24) |
                             (static_cast<std::uint64_t>(dst_port) << 8) |
                             protocol;
    return mix64(mix64(lo) ^ hi);
  }

  /// Human-readable "a.b.c.d:p -> a.b.c.d:p/proto" form for logs and
  /// error messages.
  std::string to_string() const;
};

/// Hash functor so FiveTuple can key std::unordered_map directly.
struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.key64());
  }
};

/// Formats an IPv4 address (host byte order) as dotted quad.
std::string ipv4_to_string(std::uint32_t ip);

}  // namespace laps
