#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace laps {

Histogram::Histogram() : buckets_(kOctaves * kSubBuckets, 0) {}

std::size_t Histogram::bucket_index(std::int64_t value) {
  // Values in [0, kSubBuckets) are exact; every later octave (values with
  // most-significant bit B >= kSubBucketBits) is split into kSubBuckets
  // linear sub-buckets of width 2^(B - kSubBucketBits).
  const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits;  // >= 0
  const std::uint64_t sub = (v >> octave) - kSubBuckets;
  return kSubBuckets + static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

std::int64_t Histogram::bucket_upper_bound(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t octave = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::uint64_t lower =
      (static_cast<std::uint64_t>(kSubBuckets) + sub) << octave;
  const std::uint64_t width = 1ULL << octave;
  return static_cast<std::int64_t>(lower + width - 1);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t idx = bucket_index(value);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++buckets_.back();
  }
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_upper_bound(i), max_);
  }
  return max_;
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.push_back({bucket_upper_bound(i), buckets_[i]});
  }
  return out;
}

Histogram Histogram::restore(const std::vector<Bucket>& occupied,
                             std::uint64_t count, std::int64_t sum,
                             std::int64_t max) {
  Histogram h;
  std::uint64_t total = 0;
  for (const Bucket& b : occupied) {
    const std::size_t idx = bucket_index(b.upper_bound);
    if (idx >= h.buckets_.size() || bucket_upper_bound(idx) != b.upper_bound) {
      throw std::invalid_argument(
          "Histogram::restore: unknown bucket bound " +
          std::to_string(b.upper_bound));
    }
    if (b.count == 0 || h.buckets_[idx] != 0) {
      throw std::invalid_argument(
          "Histogram::restore: invalid bucket export at bound " +
          std::to_string(b.upper_bound));
    }
    h.buckets_[idx] = b.count;
    total += b.count;
  }
  if (total != count) {
    throw std::invalid_argument("Histogram::restore: bucket counts sum to " +
                                std::to_string(total) + ", expected " +
                                std::to_string(count));
  }
  h.count_ = count;
  h.sum_ = sum;
  h.max_ = max;
  return h;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "count=%llu mean=%.1f p50=%lld p90=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(quantile(0.50)),
                static_cast<long long>(quantile(0.90)),
                static_cast<long long>(quantile(0.99)),
                static_cast<long long>(max_));
  return buf;
}

}  // namespace laps
