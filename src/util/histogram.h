#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laps {

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 with linear
/// sub-buckets), fixed memory, O(1) record.
///
/// Used for packet latency distributions in the simulator report. Values are
/// non-negative integers (nanoseconds in practice). Relative bucket error is
/// bounded by 1/kSubBuckets (= 1/32, ~3%), plenty for reporting percentiles.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative values are clamped to zero.
  void record(std::int64_t value);

  /// Number of recorded samples.
  std::uint64_t count() const { return count_; }

  /// Sum of recorded samples (exact).
  std::int64_t sum() const { return sum_; }

  /// Arithmetic mean; 0 if empty.
  double mean() const;

  /// Maximum recorded value (exact); 0 if empty.
  std::int64_t max() const { return max_; }

  /// Value at quantile q in [0, 1] (bucket upper bound); 0 if empty.
  std::int64_t quantile(double q) const;

  /// One occupied histogram bucket: all samples in it are <= upper_bound
  /// (and above the previous occupied bucket's upper_bound).
  struct Bucket {
    std::int64_t upper_bound = 0;
    std::uint64_t count = 0;
    friend bool operator==(const Bucket&, const Bucket&) = default;
  };

  /// Occupied buckets in ascending value order (empty histogram -> empty
  /// vector). The full distribution for artifact export — quantile() is a
  /// two-point summary, this is the curve.
  std::vector<Bucket> buckets() const;

  /// Merges another histogram into this one.
  void merge(const Histogram& other);

  /// Rebuilds a histogram from its exported exact state — the occupied
  /// `buckets()` plus `count`/`sum`/`max`. Because every bucket upper bound
  /// maps back to its own index (`bucket_index(bucket_upper_bound(i)) == i`),
  /// `restore(h.buckets(), h.count(), h.sum(), h.max())` reproduces `h`
  /// exactly: identical buckets, quantiles, and summary bytes. This is what
  /// lets the experiment journal round-trip a SimReport bit-identically.
  /// Throws std::invalid_argument if the bucket list is not a valid export
  /// (unknown bound, duplicate, zero count, or count mismatch).
  static Histogram restore(const std::vector<Bucket>& occupied,
                           std::uint64_t count, std::int64_t sum,
                           std::int64_t max);

  /// Resets to empty.
  void clear();

  /// "count=... mean=... p50=... p99=... max=..." summary line.
  std::string summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets / octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Octaves for msb in [kSubBucketBits, 63], plus the exact low range.
  static constexpr int kOctaves = 64 - kSubBucketBits + 1;

  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_upper_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace laps
