#include "util/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace laps {

std::string JsonWriter::quote(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::prefix() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows "key": directly
  }
  if (stack_.empty()) return;  // document root
  if (!first_in_frame_) out_ += ',';
  out_ += '\n';
  indent();
  first_in_frame_ = false;
}

void JsonWriter::begin_object() {
  prefix();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_ = true;
}

void JsonWriter::end_object() {
  stack_.pop_back();
  if (!first_in_frame_) {
    out_ += '\n';
    indent();
  }
  out_ += '}';
  first_in_frame_ = false;
}

void JsonWriter::begin_array() {
  prefix();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_ = true;
}

void JsonWriter::end_array() {
  stack_.pop_back();
  if (!first_in_frame_) {
    out_ += '\n';
    indent();
  }
  out_ += ']';
  first_in_frame_ = false;
}

void JsonWriter::key(const std::string& name) {
  prefix();
  out_ += quote(name);
  out_ += ": ";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  prefix();
  out_ += quote(v);
}

void JsonWriter::value(bool v) {
  prefix();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(std::int64_t v) {
  prefix();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  prefix();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(double v) {
  prefix();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ += buf;
  // Bare integers stay valid JSON numbers; no decoration needed.
}

}  // namespace laps
