#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laps {

/// Minimal deterministic JSON emitter for bench artifacts.
///
/// Output is byte-stable for identical input: keys are written in call
/// order (callers iterate sorted containers), doubles use a fixed shortest
/// round-trip format, and indentation is fixed two-space. That stability is
/// what lets the determinism suite compare whole artifacts with memcmp.
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("offered"); w.value(std::uint64_t{42});
///   w.end_object();
///   w.str();  // {\n  "offered": 42\n}
class JsonWriter {
 public:
  JsonWriter() { stack_.reserve(8); }

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value or container.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(bool v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(double v);
  // Disambiguate common integer types.
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <class T>
  void field(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

  /// The document so far. Valid once every container is closed.
  const std::string& str() const { return out_; }

  /// Escapes `v` as a JSON string literal (with quotes).
  static std::string quote(const std::string& v);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void prefix();  ///< comma/newline/indent before a key or array element
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  bool first_in_frame_ = true;
  bool after_key_ = false;
};

}  // namespace laps
