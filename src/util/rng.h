#pragma once

#include <cstdint>
#include <limits>

#include "util/crc.h"

namespace laps {

/// Deterministic 64-bit RNG (xoshiro256** core seeded via SplitMix64).
///
/// Every stochastic component of the simulator draws from an `Rng` owned by
/// that component, so experiments are exactly reproducible given a seed and
/// statistically independent across components (seed streams are derived
/// with `Rng::stream`). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  /// Re-initializes state from `seed` (SplitMix64 expansion so that nearby
  /// seeds yield uncorrelated states).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = mix64(x);
      s = x;
    }
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Derives an independent RNG for a named sub-stream, e.g. one per
  /// service or per flow generator.
  Rng stream(std::uint64_t stream_id) const {
    return Rng(mix64(state_[0] ^ mix64(stream_id + 0x9E37)));
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, n). `n` must be nonzero. Uses Lemire's
  /// multiply-shift rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t n) {
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace laps
