#include "util/samplers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace laps {

ZipfSampler::ZipfSampler(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (alpha <= 0) throw std::invalid_argument("ZipfSampler: alpha must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = acc;
  }
  const double norm = 1.0 / acc;
  for (auto& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

double sample_exponential(Rng& rng, double rate) {
  if (rate <= 0) throw std::invalid_argument("sample_exponential: rate <= 0");
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - rng.uniform()) / rate;
}

double sample_bounded_pareto(Rng& rng, double shape, double lo, double hi) {
  if (!(shape > 0) || !(lo > 0) || !(hi > lo)) {
    throw std::invalid_argument("sample_bounded_pareto: bad parameters");
  }
  const double u = rng.uniform();
  const double la = std::pow(lo, shape);
  const double ha = std::pow(hi, shape);
  // Inverse CDF of the bounded Pareto distribution.
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
  return std::clamp(x, lo, hi);
}

double sample_gaussian(Rng& rng, double sigma) {
  const double u1 = 1.0 - rng.uniform();  // (0, 1], avoids log(0)
  const double u2 = rng.uniform();
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("DiscreteSampler: empty weights");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("DiscreteSampler: negative weight");
    sum += w;
  }
  if (sum <= 0) throw std::invalid_argument("DiscreteSampler: zero total");

  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's alias method: partition scaled weights into under/over-full.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / sum;
  }
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace laps
