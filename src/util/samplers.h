#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace laps {

/// Samples ranks 1..n from a Zipf(alpha) distribution:
/// P(rank = k) proportional to 1 / k^alpha.
///
/// Internet flow-size distributions are well modeled as Zipfian ("the war
/// between mice and elephants", Guo & Matta 2001); the paper's Fig. 2 shows
/// exactly this rank/size behaviour for the CAIDA and Auckland traces. The
/// sampler precomputes the inverse CDF once (O(n) memory, O(log n) per draw)
/// so that draws are cheap during trace generation.
class ZipfSampler {
 public:
  /// `n` ranks, skew `alpha` > 0. Larger alpha = heavier head.
  ZipfSampler(std::size_t n, double alpha);

  /// Draws a rank in [0, n). Rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank `k` (0-based).
  double pmf(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
  double alpha_;
};

/// Exponential inter-arrival sampler: mean 1/rate.
/// Returns +inf-free positive doubles; rate must be > 0.
double sample_exponential(Rng& rng, double rate);

/// Bounded Pareto sampler over [lo, hi] with tail index `shape`.
/// Used for flow duration and burst length modeling.
double sample_bounded_pareto(Rng& rng, double shape, double lo, double hi);

/// Normal(0, sigma) via Box-Muller (single value; simple and allocation
/// free). Used for the Holt-Winters noise term n(sigma) of paper Eq. 1.
double sample_gaussian(Rng& rng, double sigma);

/// Weighted discrete sampler over a fixed set of outcomes (alias method,
/// O(1) per draw). Used for the empirical packet-size mix.
class DiscreteSampler {
 public:
  /// `weights` need not be normalized; must be non-empty, all >= 0, sum > 0.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;        // alias-method acceptance probability
  std::vector<std::uint32_t> alias_;
};

}  // namespace laps
