#include "util/tableio.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace laps {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto emit = [](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  std::string out;
  emit(headers_, out);
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char digits[32];
  std::snprintf(digits, sizeof digits, "%lld", static_cast<long long>(v));
  std::string raw = digits;
  const bool neg = !raw.empty() && raw[0] == '-';
  std::string body = neg ? raw.substr(1) : raw;
  std::string out;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i > 0 && (body.size() - i) % 3 == 0) out += ',';
    out += body[i];
  }
  return neg ? "-" + out : out;
}

std::string Table::pct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace laps
