#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace laps {

/// Fixed-width ASCII table builder for experiment output.
///
/// Every bench binary prints its figure/table through this class so results
/// are uniformly formatted and machine-parsable (also emits CSV). Example:
///
///   Table t({"scenario", "scheduler", "drop%"});
///   t.add_row({"T1", "LAPS", Table::num(0.12, 2)});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Column headers (for structured export, e.g. JSON artifacts).
  const std::vector<std::string>& headers() const { return headers_; }

  /// Raw row cells in insertion order.
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Renders as an aligned ASCII table with a header separator.
  std::string to_string() const;

  /// Renders as CSV (header + rows).
  std::string to_csv() const;

  /// Formats a double with `digits` decimal places.
  static std::string num(double v, int digits = 3);
  /// Formats an integer with thousands separators ("1,234,567").
  static std::string num(std::int64_t v);
  /// Formats a ratio as a percentage string with `digits` decimals.
  static std::string pct(double ratio, int digits = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace laps
