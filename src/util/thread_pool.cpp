#include "util/thread_pool.h"

namespace laps {

std::size_t ThreadPool::resolve(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  threads = resolve(threads);
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders the flag store against workers re-checking their wait
    // predicate, so no worker can sleep through the shutdown notify.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  const std::size_t target =
      next_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  wake_.notify_one();
}

bool ThreadPool::try_pop(std::size_t worker, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  // Own queue first (front = submission order), then steal from the back of
  // the others, scanning from the next neighbour to spread contention.
  for (std::size_t k = 0; k < n; ++k) {
    WorkerQueue& q = *queues_[(worker + k) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (k == 0) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  std::function<void()> task;
  for (;;) {
    if (try_pop(index, task)) {
      task();           // packaged_task captures any exception
      task = nullptr;   // release captured state before sleeping
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait(lock, [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    // On shutdown keep draining until every queue is empty: the destructor
    // guarantees all submitted work runs.
    if (stopping_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace laps
