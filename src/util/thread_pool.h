#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace laps {

/// Work-stealing thread pool for the experiment engine.
///
/// Each worker owns a deque; `submit` distributes tasks round-robin, workers
/// pop from the front of their own deque and steal from the back of their
/// neighbours' when empty. Exceptions thrown by a task are captured into the
/// future returned by `submit` (the worker thread never terminates on a task
/// exception). The destructor completes every task submitted so far before
/// joining — shutdown never abandons queued work.
///
/// The pool executes tasks; *determinism* of parallel experiments is the
/// caller's job (ParallelRunner collects results in submission order and
/// gives each job an independent seed, so no result ever depends on
/// scheduling order).
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Resolves a user-facing `--jobs` value: 0 -> hardware concurrency
  /// (minimum 1), anything else unchanged.
  static std::size_t resolve(std::size_t jobs);

  /// Schedules `fn` and returns a future for its result. Thread-safe.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  bool try_pop(std::size_t worker, std::function<void()>& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<std::size_t> queued_{0};  ///< submitted, not yet started
  std::atomic<std::size_t> next_{0};    ///< round-robin submission cursor
  std::atomic<bool> stopping_{false};
};

/// Runs `fn(0) .. fn(n-1)` on up to `jobs` workers and returns the results
/// in index order — the order (and therefore any downstream output) is
/// independent of how the work interleaved. `jobs <= 1` runs inline with no
/// pool. `fn` must be safe to call concurrently for distinct indices.
template <class Fn>
auto parallel_index_map(std::size_t jobs, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<R>, "parallel_index_map needs a result type");
  std::vector<R> out;
  out.reserve(n);
  jobs = ThreadPool::resolve(jobs);
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  ThreadPool pool(jobs);
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace laps
