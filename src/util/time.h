#pragma once

#include <cstdint>

namespace laps {

/// Simulation time in integer nanoseconds.
///
/// All simulator components exchange time as `TimeNs`. An integer clock keeps
/// event ordering exact and comparisons total; the paper's delay constants
/// (0.5 us .. 10 us) are all exact multiples of 1 ns. A signed 64-bit tick
/// covers ~292 years, far beyond any simulated run.
using TimeNs = std::int64_t;

/// One microsecond expressed in `TimeNs` ticks.
inline constexpr TimeNs kMicrosecond = 1'000;
/// One millisecond expressed in `TimeNs` ticks.
inline constexpr TimeNs kMillisecond = 1'000'000;
/// One second expressed in `TimeNs` ticks.
inline constexpr TimeNs kSecond = 1'000'000'000;

/// Converts fractional microseconds to the integer tick clock (rounds to
/// nearest tick). Used for the paper's delay constants, e.g. 3.53 us.
constexpr TimeNs from_us(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kMicrosecond) + 0.5);
}

/// Converts fractional seconds to ticks (rounds to nearest tick).
constexpr TimeNs from_seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts ticks back to fractional seconds, for reporting only.
constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts ticks back to fractional microseconds, for reporting only.
constexpr double to_us(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

}  // namespace laps
