#include "util/toeplitz.h"

namespace laps {

// Microsoft's RSS verification key (NDIS documentation).
const std::array<std::uint8_t, 40> ToeplitzHash::kDefaultKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

ToeplitzHash::ToeplitzHash(const std::array<std::uint8_t, 40>& key)
    : key_(key) {}

std::uint32_t ToeplitzHash::hash_bytes(const std::uint8_t* data,
                                       std::size_t len) const {
  // Classic bit-serial Toeplitz: for each input bit set, XOR in the 32-bit
  // window of the key starting at that bit position.
  std::uint32_t result = 0;
  std::uint32_t window = (std::uint32_t(key_[0]) << 24) |
                         (std::uint32_t(key_[1]) << 16) |
                         (std::uint32_t(key_[2]) << 8) | key_[3];
  std::size_t next_key_byte = 4;
  for (std::size_t i = 0; i < len; ++i) {
    std::uint8_t byte = data[i];
    for (int bit = 7; bit >= 0; --bit) {
      if (byte & (1u << bit)) result ^= window;
      // Slide the key window left by one bit, pulling in the next key bit.
      const std::uint8_t next_key_bit =
          next_key_byte < key_.size()
              ? (key_[next_key_byte] >> bit) & 1u
              : 0u;
      window = (window << 1) | next_key_bit;
    }
    ++next_key_byte;
  }
  return result;
}

std::uint32_t ToeplitzHash::hash(const FiveTuple& tuple) const {
  // RSS TCP/IPv4 input: src ip, dst ip, src port, dst port (network order).
  std::uint8_t input[12];
  const auto wire = tuple.wire_bytes();
  for (int i = 0; i < 12; ++i) input[i] = wire[i];
  return hash_bytes(input, sizeof input);
}

std::uint16_t naive_fold_hash(const FiveTuple& tuple) {
  return static_cast<std::uint16_t>(
      (tuple.src_ip + tuple.dst_ip + tuple.src_port + tuple.dst_port +
       tuple.protocol) &
      0xFFFF);
}

}  // namespace laps
