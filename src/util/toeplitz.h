#pragma once

#include <array>
#include <cstdint>

#include "util/flow.h"

namespace laps {

/// Toeplitz hash over the 5-tuple — the hash used by NIC receive-side
/// scaling (RSS), provided as an alternative to the paper's CRC16 for the
/// hash-quality ablation. The bench compares CRC16, Toeplitz, and a naive
/// modulo fold for bucket uniformity and flow-bundle balance (Cao et al.,
/// INFOCOM'00, is the paper's reference for why CRC16 is a good choice).
class ToeplitzHash {
 public:
  /// 40-byte RSS key; the default is Microsoft's canonical verification key
  /// so hash values match published RSS test vectors.
  explicit ToeplitzHash(
      const std::array<std::uint8_t, 40>& key = kDefaultKey);

  /// 32-bit Toeplitz hash of the 12-byte src/dst address+port block (the
  /// standard RSS TCP/IPv4 input; protocol is not part of RSS input).
  std::uint32_t hash(const FiveTuple& tuple) const;

  /// Toeplitz hash over arbitrary bytes (up to 36 bytes of input).
  std::uint32_t hash_bytes(const std::uint8_t* data, std::size_t len) const;

  static const std::array<std::uint8_t, 40> kDefaultKey;

 private:
  std::array<std::uint8_t, 40> key_;
};

/// Deliberately poor hash for the ablation: folds the tuple with modulo,
/// which correlates with address assignment patterns exactly the way
/// real deployments regret.
std::uint16_t naive_fold_hash(const FiveTuple& tuple);

}  // namespace laps
