// Tests for src/baselines: FCFS, StaticHash, AFS, and the oracle top-K
// scheduler, driven through a hand-controlled NPU view.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/hybrids.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/live_core_set.h"
#include "util/rng.h"

namespace laps {
namespace {

class FakeView final : public NpuView {
 public:
  explicit FakeView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = 0;
  }
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

  TimeNs now_ = 0;
  std::vector<CoreView> cores_;
};

SimPacket make_packet(std::uint32_t flow,
                      ServicePath service = ServicePath::kIpForward) {
  SimPacket pkt;
  pkt.tuple.src_ip = 0x0A000000u + flow;
  pkt.tuple.dst_ip = static_cast<std::uint32_t>(mix64(flow) >> 32) | 1u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1024 + flow % 60000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  pkt.gflow = flow;
  pkt.service = service;
  return pkt;
}

// ------------------------------------------------------------------ FCFS ---

TEST(Fcfs, PicksLeastLoadedCore) {
  FcfsScheduler fcfs;
  fcfs.attach(4);
  FakeView view(4);
  view.cores_[0].queue_len = 5;
  view.cores_[1].queue_len = 2;
  view.cores_[2].queue_len = 9;
  view.cores_[3].queue_len = 7;
  EXPECT_EQ(fcfs.schedule(make_packet(1), view), 1u);
}

TEST(Fcfs, BusyCountsAsLoad) {
  FcfsScheduler fcfs;
  fcfs.attach(2);
  FakeView view(2);
  view.cores_[0].busy = true;  // load 1
  view.cores_[1].busy = false;
  EXPECT_EQ(fcfs.schedule(make_packet(1), view), 1u);
}

TEST(Fcfs, SpreadsTiesAcrossCores) {
  FcfsScheduler fcfs;
  fcfs.attach(4);
  FakeView view(4);  // all equal
  std::set<CoreId> used;
  for (int i = 0; i < 16; ++i) used.insert(fcfs.schedule(make_packet(1), view));
  EXPECT_GT(used.size(), 1u) << "rotation must break ties";
}

TEST(Fcfs, IgnoresFlowIdentity) {
  FcfsScheduler fcfs;
  fcfs.attach(4);
  FakeView view(4);
  view.cores_[2].queue_len = 0;
  view.cores_[0].queue_len = 1;
  view.cores_[1].queue_len = 1;
  view.cores_[3].queue_len = 1;
  // Same flow, but the least-loaded core wins regardless.
  EXPECT_EQ(fcfs.schedule(make_packet(42), view), 2u);
  view.cores_[2].queue_len = 9;
  view.cores_[3].queue_len = 0;
  EXPECT_EQ(fcfs.schedule(make_packet(42), view), 3u);
}

// ------------------------------------------------------------ StaticHash ---

TEST(StaticHash, SameFlowSameCore) {
  StaticHashScheduler hash;
  hash.attach(8);
  FakeView view(8);
  for (std::uint32_t f = 0; f < 200; ++f) {
    const CoreId first = hash.schedule(make_packet(f), view);
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(hash.schedule(make_packet(f), view), first) << "flow " << f;
    }
  }
}

TEST(StaticHash, IgnoresLoad) {
  StaticHashScheduler hash;
  hash.attach(4);
  FakeView view(4);
  const CoreId home = hash.schedule(make_packet(3), view);
  view.cores_[home].queue_len = 32;  // saturated
  EXPECT_EQ(hash.schedule(make_packet(3), view), home);
}

TEST(StaticHash, SpreadsFlowsAcrossAllCores) {
  StaticHashScheduler hash;
  hash.attach(8);
  FakeView view(8);
  std::map<CoreId, int> hist;
  for (std::uint32_t f = 0; f < 8000; ++f) {
    ++hist[hash.schedule(make_packet(f), view)];
  }
  EXPECT_EQ(hist.size(), 8u);
  for (const auto& [core, n] : hist) {
    EXPECT_GT(n, 500) << "core " << core;  // ~1000 expected
  }
}

TEST(StaticHash, ExplicitBucketCount) {
  StaticHashScheduler hash(64);
  hash.attach(4);
  FakeView view(4);
  EXPECT_LT(hash.schedule(make_packet(1), view), 4u);
}

// ------------------------------------------------------------------- AFS ---

TEST(Afs, NoShiftWhileBalanced) {
  AfsScheduler afs(24);
  afs.attach(4);
  FakeView view(4);
  const CoreId home = afs.schedule(make_packet(5), view);
  view.cores_[home].queue_len = 23;  // just below threshold
  EXPECT_EQ(afs.schedule(make_packet(5), view), home);
  EXPECT_EQ(afs.extra_stats().at("bundle_shifts"), 0.0);
}

TEST(Afs, ShiftsBundleOnOverload) {
  AfsScheduler afs(24);
  afs.attach(4);
  FakeView view(4);
  const CoreId home = afs.schedule(make_packet(5), view);
  view.cores_[home].queue_len = 24;
  for (CoreId c = 0; c < 4; ++c) {
    if (c != home) view.cores_[c].queue_len = 4;
  }
  const CoreId shifted = afs.schedule(make_packet(5), view);
  EXPECT_NE(shifted, home);
  EXPECT_EQ(afs.extra_stats().at("bundle_shifts"), 1.0);
  // The whole bucket moved: the flow now sticks to the new core.
  view.cores_[home].queue_len = 0;
  EXPECT_EQ(afs.schedule(make_packet(5), view), shifted);
}

TEST(Afs, ShiftMovesArbitraryCohabitants) {
  // Two flows sharing a bucket both move — the "arbitrary flows" defect
  // LAPS fixes. Find two flows with the same bucket by brute force.
  AfsScheduler afs(24, /*num_buckets=*/16);
  afs.attach(4);
  FakeView view(4);

  const SimPacket a = make_packet(1);
  std::uint32_t other = 2;
  StaticHashScheduler probe(16);
  probe.attach(4);
  auto bucket_of = [&](const SimPacket& p) {
    return p.tuple.crc16() % 16;
  };
  while (bucket_of(make_packet(other)) != bucket_of(a)) ++other;
  const SimPacket b = make_packet(other);

  const CoreId home = afs.schedule(a, view);
  ASSERT_EQ(afs.schedule(b, view), home);
  view.cores_[home].queue_len = 30;
  const CoreId shifted = afs.schedule(a, view);
  ASSERT_NE(shifted, home);
  view.cores_[home].queue_len = 0;
  EXPECT_EQ(afs.schedule(b, view), shifted)
      << "the innocent bundle-mate was migrated too";
}

TEST(Afs, NoShiftWhenEveryoneOverloaded) {
  AfsScheduler afs(24);
  afs.attach(4);
  FakeView view(4);
  const CoreId home = afs.schedule(make_packet(5), view);
  for (CoreId c = 0; c < 4; ++c) view.cores_[c].queue_len = 30;
  EXPECT_EQ(afs.schedule(make_packet(5), view), home);
  EXPECT_EQ(afs.extra_stats().at("bundle_shifts"), 0.0);
}

// ---------------------------------------------------------- OracleTopK ---

TEST(OracleTopK, MigratesOnlyTrueTopFlows) {
  OracleTopKScheduler oracle(/*k=*/1, /*high_thresh=*/24,
                             /*refresh_interval=*/10);
  oracle.attach(4);
  FakeView view(4);

  const SimPacket heavy = make_packet(1);
  const SimPacket light = make_packet(2);
  for (int i = 0; i < 50; ++i) oracle.schedule(heavy, view);
  for (int i = 0; i < 3; ++i) oracle.schedule(light, view);

  const CoreId heavy_home = oracle.schedule(heavy, view);
  const CoreId light_home = oracle.schedule(light, view);

  // Overload both homes; only the heavy flow may move.
  view.cores_[heavy_home].queue_len = 30;
  view.cores_[light_home].queue_len = 30;
  const CoreId light_after = oracle.schedule(light, view);
  EXPECT_EQ(light_after, light_home) << "light flow is not in the top-1";
  const CoreId heavy_after = oracle.schedule(heavy, view);
  EXPECT_NE(heavy_after, heavy_home);
  EXPECT_EQ(oracle.extra_stats().at("oracle_migrations"), 1.0);

  // The pin persists.
  view.cores_[heavy_home].queue_len = 0;
  EXPECT_EQ(oracle.schedule(heavy, view), heavy_after);
}

TEST(OracleTopK, NameCarriesK) {
  OracleTopKScheduler oracle(16);
  EXPECT_EQ(oracle.name(), "OracleTop16");
}

TEST(OracleTopK, AttachResetsState) {
  OracleTopKScheduler oracle(1, 24, 10);
  oracle.attach(4);
  FakeView view(4);
  for (int i = 0; i < 50; ++i) oracle.schedule(make_packet(1), view);
  oracle.attach(4);
  EXPECT_EQ(oracle.extra_stats().at("oracle_migrations"), 0.0);
}

TEST(OracleTopK, NoMigrationWhenAllOverloaded) {
  OracleTopKScheduler oracle(1, 24, 10);
  oracle.attach(4);
  FakeView view(4);
  for (int i = 0; i < 50; ++i) oracle.schedule(make_packet(1), view);
  for (CoreId c = 0; c < 4; ++c) view.cores_[c].queue_len = 30;
  oracle.schedule(make_packet(1), view);
  EXPECT_EQ(oracle.extra_stats().at("oracle_migrations"), 0.0)
      << "no destination below high_thresh exists";
}

// ----------------------------------------------------------- LiveCoreSet ---

TEST(LiveCoreSet, TransitionsSignalOnce) {
  LiveCoreSet live;
  live.reset(4);
  EXPECT_EQ(live.live_count(), 4u);
  EXPECT_TRUE(live.mark_down(2)) << "first down is a transition";
  EXPECT_FALSE(live.mark_down(2)) << "repeat down is not";
  EXPECT_TRUE(live.is_down(2));
  EXPECT_EQ(live.live_count(), 3u);
  EXPECT_TRUE(live.mark_up(2));
  EXPECT_FALSE(live.mark_up(2));
  EXPECT_EQ(live.live_count(), 4u);
}

TEST(LiveCoreSet, OutOfRangeReadsAsDownAndIsIgnored) {
  LiveCoreSet live;
  live.reset(2);
  EXPECT_TRUE(live.is_down(2));
  EXPECT_TRUE(live.is_down(999));
  EXPECT_FALSE(live.mark_down(2));
  EXPECT_FALSE(live.mark_up(2));
  EXPECT_EQ(live.live_count(), 2u);
}

TEST(LiveCoreSet, LiveCoresAscendingAndEmptyWhenAllDown) {
  LiveCoreSet live;
  live.reset(5);
  live.mark_down(1);
  live.mark_down(3);
  EXPECT_EQ(live.live_cores(), (std::vector<CoreId>{0, 2, 4}));
  for (CoreId c = 0; c < 5; ++c) live.mark_down(c);
  EXPECT_TRUE(live.live_cores().empty());
  EXPECT_EQ(live.live_count(), 0u);
}

// ----------------------------------------- last live core goes down -------
//
// Regression for the LiveCoreSet dedupe: every baseline must survive the
// moment its final live core fails (any answer is a drop — the engine
// accounts it), keep returning in-range cores, and resume routing to the
// first core that recovers.

TEST(Fcfs, SurvivesLastLiveCoreDown) {
  FcfsScheduler fcfs;
  fcfs.attach(4);
  FakeView view(4);
  for (CoreId c = 0; c < 4; ++c) fcfs.notify_core_down(c, view);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(fcfs.schedule(make_packet(i), view), 4u);
  }
  fcfs.notify_core_up(2, view);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fcfs.schedule(make_packet(i), view), 2u);
  }
}

TEST(StaticHash, SurvivesLastLiveCoreDown) {
  StaticHashScheduler hash;
  hash.attach(4);
  FakeView view(4);
  for (CoreId c = 0; c < 3; ++c) hash.notify_core_down(c, view);
  EXPECT_EQ(hash.schedule(make_packet(1), view), 3u)
      << "one live core left: everything hashes to it";
  hash.notify_core_down(3, view);  // the last live core
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(hash.schedule(make_packet(i), view), 4u);
  }
  // Repeated notification of an already-down core must not rebuild or
  // corrupt the table.
  hash.notify_core_down(3, view);
  hash.notify_core_up(1, view);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(hash.schedule(make_packet(i), view), 1u);
  }
}

TEST(Afs, SurvivesLastLiveCoreDown) {
  AfsScheduler afs;
  afs.attach(4);
  FakeView view(4);
  for (CoreId c = 0; c < 4; ++c) view.cores_[c].queue_len = 30;  // overload
  for (CoreId c = 0; c < 4; ++c) afs.notify_core_down(c, view);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(afs.schedule(make_packet(i), view), 4u)
        << "overload scan must not shift a bundle onto a dead core";
  }
  afs.notify_core_up(0, view);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(afs.schedule(make_packet(i), view), 0u);
  }
}

TEST(Hybrids, SurviveLastLiveCoreDown) {
  HashMigrateScheduler hm;
  AfsPowerScheduler ap;
  for (Scheduler* s : {static_cast<Scheduler*>(&hm),
                       static_cast<Scheduler*>(&ap)}) {
    SCOPED_TRACE(s->name());
    s->attach(4);
    FakeView view(4);
    for (CoreId c = 0; c < 4; ++c) s->notify_core_down(c, view);
    for (int i = 0; i < 8; ++i) {
      EXPECT_LT(s->schedule(make_packet(i), view), 4u);
    }
    s->notify_core_up(2, view);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(s->schedule(make_packet(i), view), 2u);
    }
  }
}

}  // namespace
}  // namespace laps
