// Tests for src/cache: the O(1) LFU cache, the Aggressive Flow Detector,
// the ElephantTrap baseline, Space-Saving, and the exact top-K truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "cache/afd.h"
#include "cache/elephant_trap.h"
#include "cache/lfu_cache.h"
#include "cache/space_saving.h"
#include "cache/topk.h"
#include "util/rng.h"
#include "util/samplers.h"

namespace laps {
namespace {

// ------------------------------------------------------------- LfuCache ---

TEST(LfuCache, RejectsZeroCapacity) {
  EXPECT_THROW(LfuCache<int>(0), std::invalid_argument);
}

TEST(LfuCache, InsertAndContains) {
  LfuCache<int> c(4);
  c.insert(1);
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_EQ(c.size(), 1u);
}

TEST(LfuCache, TouchIncrementsFrequency) {
  LfuCache<int> c(4);
  c.insert(1);
  EXPECT_EQ(c.freq_of(1), 1u);
  EXPECT_EQ(c.touch(1), 2u);
  EXPECT_EQ(c.touch(1), 3u);
  EXPECT_EQ(c.freq_of(1), 3u);
}

TEST(LfuCache, TouchMissReturnsNullopt) {
  LfuCache<int> c(4);
  EXPECT_FALSE(c.touch(9).has_value());
  EXPECT_EQ(c.size(), 0u);  // touch must not insert
}

TEST(LfuCache, EvictsLeastFrequent) {
  LfuCache<int> c(2);
  c.insert(1);
  c.insert(2);
  c.touch(1);  // 1 has freq 2, 2 has freq 1
  const auto victim = c.insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, 2);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(3));
}

TEST(LfuCache, TieBrokenByLru) {
  LfuCache<int> c(2);
  c.insert(1);
  c.insert(2);
  // Both freq 1; 1 is older (least recently inserted/touched).
  const auto victim = c.insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, 1);
}

TEST(LfuCache, TouchRefreshesRecencyWithinFrequency) {
  LfuCache<int> c(2);
  c.insert(1);
  c.insert(2);
  c.touch(1);
  c.touch(2);  // both freq 2 now; 1 touched earlier -> LRU
  const auto victim = c.insert(3);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, 1);
}

TEST(LfuCache, InsertCarriesInitialFrequency) {
  LfuCache<int> c(2);
  c.insert(1, 100);
  c.insert(2, 1);
  const auto victim = c.insert(3, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->key, 2) << "high-frequency entry must survive";
}

TEST(LfuCache, EraseRemoves) {
  LfuCache<int> c(4);
  c.insert(1);
  const auto gone = c.erase(1);
  ASSERT_TRUE(gone.has_value());
  EXPECT_EQ(gone->freq, 1u);
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.erase(1).has_value());
}

TEST(LfuCache, EntriesSortedByFrequencyDescending) {
  LfuCache<int> c(4);
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.touch(2);
  c.touch(2);
  c.touch(3);
  const auto entries = c.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 2);
  EXPECT_EQ(entries[1].key, 3);
  EXPECT_EQ(entries[2].key, 1);
}

TEST(LfuCache, MinFreqTracksMinimum) {
  LfuCache<int> c(4);
  EXPECT_EQ(c.min_freq(), 0u);
  c.insert(1, 5);
  c.insert(2, 3);
  EXPECT_EQ(c.min_freq(), 3u);
  c.erase(2);
  EXPECT_EQ(c.min_freq(), 5u);
}

TEST(LfuCache, AgeHalvesCounters) {
  LfuCache<int> c(4);
  c.insert(1, 8);
  c.insert(2, 3);
  c.insert(3, 1);
  c.age_halve();
  EXPECT_EQ(c.freq_of(1), 4u);
  EXPECT_EQ(c.freq_of(2), 1u);
  EXPECT_EQ(c.freq_of(3), 1u);  // clamped at 1
  EXPECT_EQ(c.size(), 3u);
}

TEST(LfuCache, ClearEmpties) {
  LfuCache<int> c(4);
  c.insert(1);
  c.insert(2);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.contains(1));
}

TEST(LfuCache, EvictOnEmptyThrows) {
  LfuCache<int> c(2);
  EXPECT_THROW(c.evict_lfu(), std::logic_error);
}

// Property: the O(1) implementation behaves exactly like a straightforward
// reference LFU (map scan for minimum, FIFO recency list) over random
// operation sequences.
class LfuModelCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LfuModelCheck, MatchesReferenceModel) {
  constexpr std::size_t kCapacity = 8;
  LfuCache<int> fast(kCapacity);

  struct RefEntry {
    std::uint64_t freq;
    std::uint64_t last_use;  // for LRU tie-break (lower = older)
  };
  std::map<int, RefEntry> ref;
  std::uint64_t tick = 0;

  auto ref_evict = [&]() {
    auto victim = ref.begin();
    for (auto it = ref.begin(); it != ref.end(); ++it) {
      if (it->second.freq < victim->second.freq ||
          (it->second.freq == victim->second.freq &&
           it->second.last_use < victim->second.last_use)) {
        victim = it;
      }
    }
    const int key = victim->first;
    ref.erase(victim);
    return key;
  };

  Rng rng(GetParam());
  for (int step = 0; step < 4000; ++step) {
    const int key = static_cast<int>(rng.below(24));
    ++tick;
    switch (rng.below(4)) {
      case 0:
      case 1: {  // access pattern: touch, insert on miss
        const auto hit = fast.touch(key);
        const auto it = ref.find(key);
        ASSERT_EQ(hit.has_value(), it != ref.end()) << "step " << step;
        if (it != ref.end()) {
          it->second.freq += 1;
          it->second.last_use = tick;
          ASSERT_EQ(*hit, it->second.freq);
        } else {
          const auto victim = fast.insert(key, 1);
          if (ref.size() == kCapacity) {
            const int ref_victim = ref_evict();
            ASSERT_TRUE(victim.has_value());
            ASSERT_EQ(victim->key, ref_victim) << "step " << step;
          } else {
            ASSERT_FALSE(victim.has_value());
          }
          ref[key] = RefEntry{1, tick};
        }
        break;
      }
      case 2: {  // erase
        const auto gone = fast.erase(key);
        ASSERT_EQ(gone.has_value(), ref.count(key) == 1);
        ref.erase(key);
        break;
      }
      case 3: {  // invariant audit
        ASSERT_EQ(fast.size(), ref.size());
        for (const auto& [k, e] : ref) {
          ASSERT_EQ(fast.freq_of(k), e.freq);
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LfuModelCheck,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------------------------ AFD ---

AfdConfig small_afd() {
  AfdConfig cfg;
  cfg.afc_entries = 4;
  cfg.annex_entries = 16;
  cfg.promote_threshold = 3;
  return cfg;
}

TEST(Afd, ColdFlowEntersAnnexNotAfc) {
  Afd afd(small_afd());
  afd.access(7);
  EXPECT_FALSE(afd.is_aggressive(7));
  EXPECT_EQ(afd.annex_size(), 1u);
  EXPECT_EQ(afd.afc_size(), 0u);
}

TEST(Afd, PromotionRequiresThresholdCrossing) {
  Afd afd(small_afd());
  // threshold 3: counter must EXCEED 3, i.e. 4th access promotes.
  afd.access(7);  // insert, count 1
  afd.access(7);  // count 2
  afd.access(7);  // count 3 (== threshold, not promoted)
  EXPECT_FALSE(afd.is_aggressive(7));
  afd.access(7);  // count 4 > 3 -> promoted
  EXPECT_TRUE(afd.is_aggressive(7));
  EXPECT_EQ(afd.stats().promotions, 1u);
}

TEST(Afd, OnePacketMiceNeverReachAfc) {
  Afd afd(small_afd());
  for (std::uint64_t mouse = 100; mouse < 5000; ++mouse) {
    afd.access(mouse);
  }
  EXPECT_EQ(afd.afc_size(), 0u);
  EXPECT_EQ(afd.stats().promotions, 0u);
}

TEST(Afd, AfcVictimDemotedToAnnexWithCounter) {
  AfdConfig cfg = small_afd();
  cfg.afc_entries = 1;
  Afd afd(cfg);
  for (int i = 0; i < 4; ++i) afd.access(1);  // 1 promoted
  EXPECT_TRUE(afd.is_aggressive(1));
  for (int i = 0; i < 5; ++i) afd.access(2);  // 2 promoted, 1 demoted
  EXPECT_TRUE(afd.is_aggressive(2));
  EXPECT_FALSE(afd.is_aggressive(1));
  EXPECT_EQ(afd.stats().demotions, 1u);
  // Flow 1 sits in the annex with its old counter: one more access must
  // re-promote it immediately (counter already above threshold).
  afd.access(1);
  EXPECT_TRUE(afd.is_aggressive(1));
}

TEST(Afd, InvalidateRemovesFromAfc) {
  Afd afd(small_afd());
  for (int i = 0; i < 4; ++i) afd.access(1);
  ASSERT_TRUE(afd.is_aggressive(1));
  afd.invalidate(1);
  EXPECT_FALSE(afd.is_aggressive(1));
  EXPECT_EQ(afd.stats().invalidations, 1u);
  afd.invalidate(999);  // no-op
  EXPECT_EQ(afd.stats().invalidations, 1u);
}

TEST(Afd, IsAggressiveDoesNotPerturbCounters) {
  Afd afd(small_afd());
  afd.access(1);
  const auto before = afd.stats();
  for (int i = 0; i < 100; ++i) afd.is_aggressive(1);
  EXPECT_EQ(afd.stats().accesses, before.accesses);
  EXPECT_EQ(afd.stats().annex_hits, before.annex_hits);
}

TEST(Afd, ResetClearsEverything) {
  Afd afd(small_afd());
  for (int i = 0; i < 10; ++i) afd.access(1);
  afd.reset();
  EXPECT_EQ(afd.afc_size(), 0u);
  EXPECT_EQ(afd.annex_size(), 0u);
  EXPECT_EQ(afd.stats().accesses, 0u);
}

TEST(Afd, SamplingReducesSampledCount) {
  AfdConfig cfg = small_afd();
  cfg.sample_probability = 0.1;
  Afd afd(cfg);
  for (int i = 0; i < 20'000; ++i) afd.access(static_cast<std::uint64_t>(i));
  EXPECT_EQ(afd.stats().accesses, 20'000u);
  EXPECT_NEAR(static_cast<double>(afd.stats().sampled), 2'000.0, 300.0);
}

TEST(Afd, StatsAccounting) {
  Afd afd(small_afd());
  afd.access(1);  // annex insert
  afd.access(1);  // annex hit
  afd.access(2);  // annex insert
  EXPECT_EQ(afd.stats().annex_inserts, 2u);
  EXPECT_EQ(afd.stats().annex_hits, 1u);
  EXPECT_EQ(afd.stats().afc_hits, 0u);
  // Accesses 3 and 4: annex hits (count 4 > threshold 3 promotes); access 5
  // is the first AFC hit.
  for (int i = 0; i < 3; ++i) afd.access(1);
  EXPECT_EQ(afd.stats().promotions, 1u);
  EXPECT_EQ(afd.stats().afc_hits, 1u);
  afd.access(1);  // second AFC hit
  EXPECT_EQ(afd.stats().afc_hits, 2u);
}

// The headline property (paper Fig. 8a): on a heavy-tailed stream, the AFD
// identifies the true top flows with high accuracy, and a bigger annex only
// helps.
class AfdAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AfdAccuracy, FindsTopFlowsOnZipfStream) {
  AfdConfig cfg;
  cfg.afc_entries = 16;
  cfg.annex_entries = 512;
  cfg.promote_threshold = 8;
  Afd afd(cfg);
  ExactTopK truth;

  ZipfSampler zipf(20'000, 1.25);
  Rng rng(GetParam());
  for (int i = 0; i < 400'000; ++i) {
    const std::uint64_t flow = mix64(zipf.sample(rng) + 1);
    afd.access(flow);
    truth.access(flow);
  }
  const auto acc = score_detector(truth, afd.aggressive_flows(), 16);
  EXPECT_EQ(acc.claimed, 16u);
  // Paper reports 100% for Auckland-like skew at 512 entries; allow a
  // single miss for seed robustness.
  EXPECT_LE(acc.false_positives, 1u) << "fpr=" << acc.false_positive_ratio();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AfdAccuracy, ::testing::Values(11, 22, 33, 44));

TEST(AfdAccuracy, LargerAnnexIsMoreAccurateOnFlatStream) {
  // CAIDA-like regime: flat head, many active flows. Average FPR over
  // several seeds must not increase when the annex grows 64 -> 1024.
  auto run = [](std::size_t annex, std::uint64_t seed) {
    AfdConfig cfg;
    cfg.afc_entries = 16;
    cfg.annex_entries = annex;
    cfg.promote_threshold = 8;
    Afd afd(cfg);
    ExactTopK truth;
    ZipfSampler zipf(100'000, 1.03);
    Rng rng(seed);
    for (int i = 0; i < 300'000; ++i) {
      const std::uint64_t flow = mix64(zipf.sample(rng) + 1);
      afd.access(flow);
      truth.access(flow);
    }
    return score_detector(truth, afd.aggressive_flows(), 16)
        .false_positive_ratio();
  };
  double small = 0, large = 0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    small += run(64, seed);
    large += run(1024, seed);
  }
  EXPECT_LE(large, small + 1e-9);
}

// ----------------------------------------------------------- ElephantTrap ---

TEST(ElephantTrap, RejectsBadTopK) {
  EXPECT_THROW(ElephantTrap(8, 0), std::invalid_argument);
  EXPECT_THROW(ElephantTrap(8, 9), std::invalid_argument);
}

TEST(ElephantTrap, TracksHeavyFlow) {
  ElephantTrap trap(8, 2);
  for (int i = 0; i < 100; ++i) trap.access(42);
  trap.access(1);
  EXPECT_TRUE(trap.is_elephant(42));
}

TEST(ElephantTrap, SingleCacheSuffersMiceChurn) {
  // The failure mode the AFD fixes: a 16-entry single cache flooded by
  // one-packet mice loses elephants that the two-level AFD keeps.
  ElephantTrap trap(16, 16);
  AfdConfig cfg;
  cfg.afc_entries = 16;
  cfg.annex_entries = 256;
  cfg.promote_threshold = 4;
  Afd afd(cfg);
  ExactTopK truth;

  ZipfSampler zipf(50'000, 1.1);
  Rng rng(99);
  for (int i = 0; i < 300'000; ++i) {
    const std::uint64_t flow = mix64(zipf.sample(rng) + 1);
    trap.access(flow);
    afd.access(flow);
    truth.access(flow);
  }
  const auto trap_acc = score_detector(truth, trap.elephants(), 16);
  const auto afd_acc = score_detector(truth, afd.aggressive_flows(), 16);
  EXPECT_LT(afd_acc.false_positive_ratio(), trap_acc.false_positive_ratio());
}

TEST(ElephantTrap, ResetClears) {
  ElephantTrap trap(4, 2);
  trap.access(1);
  trap.reset();
  EXPECT_EQ(trap.size(), 0u);
  EXPECT_EQ(trap.accesses(), 0u);
}

// ------------------------------------------------------------ SpaceSaving ---

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving(0), std::invalid_argument);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving ss(8);
  for (int i = 0; i < 5; ++i) ss.access(1);
  for (int i = 0; i < 3; ++i) ss.access(2);
  EXPECT_EQ(ss.estimate(1), 5u);
  EXPECT_EQ(ss.estimate(2), 3u);
  const auto top = ss.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(SpaceSaving, OverestimatesNeverUnderestimates) {
  SpaceSaving ss(16);
  std::map<std::uint64_t, std::uint64_t> exact;
  ZipfSampler zipf(500, 1.2);
  Rng rng(4);
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t flow = zipf.sample(rng);
    ss.access(flow);
    ++exact[flow];
  }
  for (const auto& c : ss.top_k(16)) {
    const std::uint64_t truth = exact[c.key];
    EXPECT_GE(c.count, truth) << "key " << c.key;
    EXPECT_LE(c.count - c.error, truth) << "key " << c.key;
  }
}

TEST(SpaceSaving, GuaranteedHeavyHitterIsMonitored) {
  // Space-Saving guarantee: any flow with count > N/capacity is present.
  SpaceSaving ss(10);
  constexpr int kHeavy = 5000;
  ZipfSampler zipf(1000, 1.01);
  Rng rng(6);
  for (int i = 0; i < kHeavy; ++i) ss.access(777'777);
  for (int i = 0; i < 20'000; ++i) ss.access(mix64(zipf.sample(rng)) % 997);
  for (int i = 0; i < kHeavy; ++i) ss.access(777'777);
  EXPECT_GE(ss.estimate(777'777), static_cast<std::uint64_t>(2 * kHeavy));
}

TEST(SpaceSaving, TotalCountsAllAccesses) {
  SpaceSaving ss(4);
  for (int i = 0; i < 100; ++i) ss.access(static_cast<std::uint64_t>(i));
  EXPECT_EQ(ss.total(), 100u);
  EXPECT_EQ(ss.size(), 4u);
}

TEST(SpaceSaving, ResetClears) {
  SpaceSaving ss(4);
  ss.access(1);
  ss.reset();
  EXPECT_EQ(ss.total(), 0u);
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.estimate(1), 0u);
}

// -------------------------------------------------------------- ExactTopK ---

TEST(ExactTopK, CountsAndRanks) {
  ExactTopK t;
  for (int i = 0; i < 5; ++i) t.access(10);
  for (int i = 0; i < 3; ++i) t.access(20);
  t.access(30);
  EXPECT_EQ(t.count(10), 5u);
  EXPECT_EQ(t.count(99), 0u);
  EXPECT_EQ(t.distinct(), 3u);
  EXPECT_EQ(t.total(), 9u);
  const auto top = t.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 10u);
  EXPECT_EQ(top[1], 20u);
}

TEST(ExactTopK, TopKLargerThanPopulation) {
  ExactTopK t;
  t.access(1);
  EXPECT_EQ(t.top_k(16).size(), 1u);
}

TEST(ExactTopK, DeterministicTieBreak) {
  ExactTopK t;
  t.access(5);
  t.access(3);
  t.access(9);
  const auto top = t.top_k(3);
  EXPECT_EQ(top, (std::vector<std::uint64_t>{3, 5, 9}));
}

TEST(ScoreDetector, CountsFalsePositives) {
  ExactTopK truth;
  for (int i = 0; i < 10; ++i) truth.access(1);
  for (int i = 0; i < 9; ++i) truth.access(2);
  truth.access(3);

  const auto acc = score_detector(truth, {1, 999}, 2);
  EXPECT_EQ(acc.claimed, 2u);
  EXPECT_EQ(acc.true_positives, 1u);
  EXPECT_EQ(acc.false_positives, 1u);
  EXPECT_DOUBLE_EQ(acc.false_positive_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(acc.recall(2), 0.5);
}

TEST(ScoreDetector, EmptyClaimIsZeroFpr) {
  ExactTopK truth;
  truth.access(1);
  const auto acc = score_detector(truth, {}, 16);
  EXPECT_DOUBLE_EQ(acc.false_positive_ratio(), 0.0);
}

}  // namespace
}  // namespace laps
