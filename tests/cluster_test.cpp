// Tests for the sharded multi-NP cluster fabric (src/cluster): the
// shards=1 pass-through identity against the single-engine path, the
// lockstep-vs-threaded differential grid, fault isolation between shards,
// and the cross-NP accounting invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dispatchers.h"
#include "exp/dispatcher_registry.h"
#include "exp/scheduler_registry.h"
#include "sim/fault.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "sim/timing_wheel.h"
#include "trace/synthetic.h"
#include "traffic/generator.h"

namespace laps {
namespace {

// Small overloaded scenario (12 Mpps offered vs 4 x 2 Mpps IP-forward
// capacity): drops, deep queues, reordering, and load-balancing decisions
// all exercised in ~2 ms of simulated time.
ScenarioConfig small_scenario(std::uint64_t seed, bool restore_order,
                              double load_mpps = 12.0) {
  ScenarioConfig cfg;
  cfg.name = "cluster-test";
  cfg.num_cores = 4;
  cfg.queue_capacity = 8;
  cfg.seconds = 0.002;
  cfg.seed = seed;
  cfg.restore_order = restore_order;
  SyntheticTraceSpec spec;
  spec.name = "plain";
  spec.num_flows = 512;
  spec.seed = seed * 31 + 7;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{load_mpps, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};
  return cfg;
}

ReplayStream record_traffic(const ScenarioConfig& cfg) {
  for (const ServiceTraffic& s : cfg.services) s.trace->reset();
  PacketGenerator gen(cfg.services, cfg.seed, cfg.seconds);
  return ReplayStream::record(gen);
}

ClusterConfig cluster_config(const ScenarioConfig& cfg, std::size_t shards,
                             std::size_t threads = 1) {
  ClusterConfig cluster;
  cluster.name = cfg.name;
  cluster.num_shards = shards;
  cluster.cores_per_shard = cfg.num_cores;
  cluster.queue_capacity = cfg.queue_capacity;
  cluster.delay = cfg.delay;
  cluster.restore_order = cfg.restore_order;
  cluster.event_queue = cfg.event_queue;
  cluster.threads = threads;
  cluster.make_scheduler = [] { return make_scheduler("afs"); };
  return cluster;
}

// Core-only fault slice: shard loses a core for most of the run.
std::shared_ptr<const FaultPlan> core_fault_plan() {
  return std::make_shared<const FaultPlan>(
      parse_fault_plan("down:1@300us;up:1@1500us"));
}

// ------------------------------------------------- shards=1 identity ---

// The acceptance bar of the cluster layer: one shard behind the pass
// dispatcher IS the single-engine path — byte-identical SimReport JSON,
// across both event-queue implementations, order restoration, and a fault
// plan (whose trailing-event and frozen-clock rules the stepping API must
// reproduce exactly).
TEST(ClusterIdentity, SingleShardPassMatchesEngineByteForByte) {
  for (const EventQueueKind queue :
       {EventQueueKind::kWheel, EventQueueKind::kHeap}) {
    for (const bool restore : {false, true}) {
      for (const bool faulted : {false, true}) {
        ScenarioConfig cfg = small_scenario(42, restore);
        cfg.event_queue = queue;
        if (faulted) cfg.faults = core_fault_plan();

        auto engine_sched = make_scheduler("afs");
        const std::string engine_json =
            report_to_json(run_scenario(cfg, *engine_sched));

        // run_scenario realizes traffic-side fault events by wrapping the
        // generator; mirror that exactly (core-only plans pass traffic
        // through unchanged, but the identity must not depend on that).
        for (const ServiceTraffic& s : cfg.services) s.trace->reset();
        PacketGenerator gen(cfg.services, cfg.seed, cfg.seconds);
        ClusterConfig cluster = cluster_config(cfg, 1);
        if (faulted) cluster.shard_faults = {cfg.faults};
        PassDispatcher pass;
        ClusterReport report;
        if (faulted) {
          FaultTrafficStream stream(gen, *cfg.faults);
          report = run_cluster(cluster, stream, pass);
        } else {
          report = run_cluster(cluster, gen, pass);
        }
        ASSERT_EQ(report.shards.size(), 1u);
        ASSERT_EQ(report_to_json(report.shards[0]), engine_json)
            << "queue=" << (queue == EventQueueKind::kWheel ? "wheel" : "heap")
            << " restore=" << restore << " faulted=" << faulted;
        // The merged detector over one shard is the shard's own detector.
        EXPECT_EQ(report.cluster_out_of_order, report.shards[0].out_of_order);
        EXPECT_EQ(report.cross_np_out_of_order, 0u);
        EXPECT_EQ(report.cross_np_migrations, 0u);
      }
    }
  }
}

TEST(ClusterIdentity, PassTargetsTheConfiguredShard) {
  const ScenarioConfig cfg = small_scenario(7, false);
  ReplayStream replay = record_traffic(cfg);
  ClusterConfig cluster = cluster_config(cfg, 2);
  PassDispatcher pass(1);
  ReplayStream run = replay.fork();
  const ClusterReport report = run_cluster(cluster, run, pass);
  EXPECT_EQ(report.shards[0].offered, 0u);
  EXPECT_EQ(report.shards[1].offered, report.offered);
  EXPECT_GT(report.offered, 0u);
}

// ------------------------------------------- lockstep vs threaded grid ---

// Differential determinism: the per-shard-thread executor must be a pure
// performance knob. Every dispatcher x shard-count x fault cell produces a
// ClusterReport byte-identical to the single-threaded lockstep oracle.
TEST(ClusterDifferential, ThreadedMatchesLockstepByteForByte) {
  const std::vector<std::string> dispatchers = {
      "rss", "rr", "fdir:slots=64", "affinity:th=8", "load:th=8"};
  for (const bool faulted : {false, true}) {
    const ScenarioConfig cfg = small_scenario(faulted ? 1301 : 2013, false);
    ReplayStream replay = record_traffic(cfg);
    for (const std::string& spec : dispatchers) {
      for (const std::size_t shards : {2u, 3u}) {
        std::string lockstep_json;
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          ClusterConfig cluster = cluster_config(cfg, shards, threads);
          if (faulted) {
            cluster.shard_faults.assign(shards, nullptr);
            cluster.shard_faults[0] = core_fault_plan();
          }
          auto dispatcher = make_dispatcher(spec);
          ReplayStream run = replay.fork();
          const std::string json = cluster_report_to_json(
              run_cluster(cluster, run, *dispatcher));
          if (threads == 1) {
            lockstep_json = json;
          } else {
            ASSERT_EQ(json, lockstep_json)
                << "dispatch=" << spec << " shards=" << shards
                << " faulted=" << faulted;
          }
        }
      }
    }
  }
}

TEST(ClusterDifferential, RepeatRunsAreByteIdentical) {
  const ScenarioConfig cfg = small_scenario(99, false);
  ReplayStream replay = record_traffic(cfg);
  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    ClusterConfig cluster = cluster_config(cfg, 3, /*threads=*/2);
    auto dispatcher = make_dispatcher("affinity:th=8");
    ReplayStream run = replay.fork();
    const std::string json =
        cluster_report_to_json(run_cluster(cluster, run, *dispatcher));
    if (rep == 0) {
      first = json;
    } else {
      ASSERT_EQ(json, first);
    }
  }
}

// ------------------------------------------------------ fault isolation ---

// Shards are independent NPs: a fault plan inside shard 0 must not perturb
// the sibling shards' reports at all. Valid for rss because its dispatch
// decisions ignore the load gauges — feedback dispatchers (load, affinity)
// legitimately re-route around a degraded shard.
TEST(ClusterChaos, ShardFaultsDoNotPerturbSiblingsUnderRss) {
  const ScenarioConfig cfg = small_scenario(555, false);
  ReplayStream replay = record_traffic(cfg);
  std::vector<std::string> healthy;
  for (const bool faulted : {false, true}) {
    ClusterConfig cluster = cluster_config(cfg, 3);
    if (faulted) {
      cluster.shard_faults.assign(3, nullptr);
      cluster.shard_faults[0] = core_fault_plan();
    }
    RssDispatcher rss;
    ReplayStream run = replay.fork();
    const ClusterReport report = run_cluster(cluster, run, rss);
    ASSERT_EQ(report.shards.size(), 3u);
    if (!faulted) {
      for (const SimReport& shard : report.shards) {
        healthy.push_back(report_to_json(shard));
      }
    } else {
      EXPECT_NE(report_to_json(report.shards[0]), healthy[0])
          << "fault plan had no effect on the faulted shard";
      EXPECT_EQ(report_to_json(report.shards[1]), healthy[1]);
      EXPECT_EQ(report_to_json(report.shards[2]), healthy[2]);
    }
  }
}

// ------------------------------------------------- accounting invariants ---

TEST(ClusterInvariants, ConservationAndOrderBounds) {
  const ScenarioConfig cfg = small_scenario(2718, false);
  ReplayStream replay = record_traffic(cfg);
  for (const std::string& spec :
       {std::string("rss"), std::string("rr"), std::string("fdir:slots=64"),
        std::string("affinity:th=8"), std::string("load:th=8")}) {
    ClusterConfig cluster = cluster_config(cfg, 3);
    auto dispatcher = make_dispatcher(spec);
    ReplayStream run = replay.fork();
    const ClusterReport report = run_cluster(cluster, run, *dispatcher);

    std::uint64_t shard_offered = 0;
    std::uint64_t shard_ooo = 0;
    for (const SimReport& shard : report.shards) {
      shard_offered += shard.offered;
      shard_ooo += shard.out_of_order;
      // Fully drained: every dispatched packet either departed or dropped.
      EXPECT_EQ(shard.offered, shard.delivered + shard.dropped) << spec;
      EXPECT_EQ(shard.in_flight_at_end, 0u) << spec;
    }
    EXPECT_EQ(report.offered, shard_offered) << spec;
    EXPECT_EQ(report.delivered + report.dropped, report.offered) << spec;
    EXPECT_EQ(report.intra_np_out_of_order, shard_ooo) << spec;
    // The merged egress is a supersequence of every shard's: the cluster
    // detector sees at least each shard's own inversions.
    EXPECT_GE(report.cluster_out_of_order, report.intra_np_out_of_order)
        << spec;
    EXPECT_EQ(report.cross_np_out_of_order,
              report.cluster_out_of_order - report.intra_np_out_of_order)
        << spec;
  }
}

TEST(ClusterInvariants, RssPinsFlowsToShards) {
  const ScenarioConfig cfg = small_scenario(31415, false);
  ReplayStream replay = record_traffic(cfg);
  ClusterConfig cluster = cluster_config(cfg, 4);
  RssDispatcher rss;
  ReplayStream run = replay.fork();
  const ClusterReport report = run_cluster(cluster, run, rss);
  // Hash dispatch never moves a flow between NPs, so all reordering is
  // intra-NP — the cluster-level detector must agree exactly.
  EXPECT_EQ(report.cross_np_migrations, 0u);
  EXPECT_EQ(report.cross_np_out_of_order, 0u);
  EXPECT_EQ(report.cluster_out_of_order, report.intra_np_out_of_order);
}

TEST(ClusterInvariants, RoundRobinSpraysFlowsAcrossShards) {
  const ScenarioConfig cfg = small_scenario(161803, false);
  ReplayStream replay = record_traffic(cfg);
  ClusterConfig cluster = cluster_config(cfg, 3);
  RoundRobinDispatcher rr;
  ReplayStream run = replay.fork();
  const ClusterReport report = run_cluster(cluster, run, rr);
  // Packet-level round robin scatters every multi-packet flow across NPs:
  // the reorder-maximizing baseline the NIC-side dispatchers exist to beat.
  EXPECT_GT(report.cross_np_migrations, 0u);
  EXPECT_GT(report.cross_np_out_of_order, 0u);
}

TEST(ClusterInvariants, DrainBlocksAffinityMigrations) {
  const ScenarioConfig cfg = small_scenario(27182, false);
  ReplayStream replay = record_traffic(cfg);
  ClusterConfig cluster = cluster_config(cfg, 3);
  AffinityDispatcher drain(/*migrate_threshold=*/0, /*drain=*/true);
  AffinityDispatcher nodrain(/*migrate_threshold=*/0, /*drain=*/false);
  ReplayStream run1 = replay.fork();
  const ClusterReport with_drain = run_cluster(cluster, run1, drain);
  ReplayStream run2 = replay.fork();
  const ClusterReport without = run_cluster(cluster, run2, nodrain);
  // In-flight-aware redirection is order-SAFE, not just order-friendly: a
  // drain-gated migration happens only when every prior packet of the flow
  // completed by the last barrier, so its old-shard departures all precede
  // the new packet's arrival — the A-TFN claim, exact: zero cross-NP
  // inversions no matter how many migrations fire. Dropping the gate
  // reintroduces them.
  EXPECT_GT(with_drain.extra.at("affinity_migrations"), 0.0);
  EXPECT_GT(with_drain.extra.at("affinity_blocked_migrations"), 0.0);
  EXPECT_EQ(with_drain.cross_np_out_of_order, 0u);
  EXPECT_GT(without.cross_np_out_of_order, 0u);
  EXPECT_LE(with_drain.cross_np_ooo_ratio(), without.cross_np_ooo_ratio());
}

// ------------------------------------------------------------ validation ---

TEST(ClusterValidation, BadConfigsThrow) {
  const ScenarioConfig cfg = small_scenario(1, false);
  ReplayStream replay = record_traffic(cfg);
  RssDispatcher rss;
  {
    ClusterConfig cluster = cluster_config(cfg, 2);
    cluster.num_shards = 0;
    ReplayStream run = replay.fork();
    EXPECT_THROW(run_cluster(cluster, run, rss), std::invalid_argument);
  }
  {
    ClusterConfig cluster = cluster_config(cfg, 2);
    cluster.sync_ns = 0;
    ReplayStream run = replay.fork();
    EXPECT_THROW(run_cluster(cluster, run, rss), std::invalid_argument);
  }
  {
    ClusterConfig cluster = cluster_config(cfg, 2);
    cluster.make_scheduler = nullptr;
    ReplayStream run = replay.fork();
    EXPECT_THROW(run_cluster(cluster, run, rss), std::invalid_argument);
  }
  {
    ClusterConfig cluster = cluster_config(cfg, 2);
    cluster.shard_faults.assign(1, nullptr);  // wrong arity
    ReplayStream run = replay.fork();
    EXPECT_THROW(run_cluster(cluster, run, rss), std::invalid_argument);
  }
  {
    // A pass target beyond the shard count is a config error at attach.
    ClusterConfig cluster = cluster_config(cfg, 2);
    PassDispatcher bad(5);
    ReplayStream run = replay.fork();
    EXPECT_THROW(run_cluster(cluster, run, bad), std::invalid_argument);
  }
}

TEST(ClusterValidation, ReportJsonShapeIsStable) {
  const ScenarioConfig cfg = small_scenario(3, false);
  ReplayStream replay = record_traffic(cfg);
  ClusterConfig cluster = cluster_config(cfg, 2);
  auto dispatcher = make_dispatcher("fdir:slots=64");
  ReplayStream run = replay.fork();
  const std::string json =
      cluster_report_to_json(run_cluster(cluster, run, *dispatcher));
  EXPECT_NE(json.find("\"schema\": \"laps-cluster-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"num_shards\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"fdir_inserts\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
}

}  // namespace
}  // namespace laps
