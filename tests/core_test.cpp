// Tests for src/core: incremental-hash map table, migration table, core
// allocator, and the LAPS scheduler's decision logic driven through a fake
// NPU view.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/core_allocator.h"
#include "core/laps.h"
#include "core/map_table.h"
#include "core/migration_table.h"
#include "util/rng.h"

namespace laps {
namespace {

// --------------------------------------------------------------- MapTable ---

TEST(MapTable, RejectsEmpty) {
  EXPECT_THROW(MapTable({}), std::invalid_argument);
}

TEST(MapTable, SingleBucketAlwaysHits) {
  MapTable t({7});
  for (int h = 0; h < 1000; ++h) {
    EXPECT_EQ(t.core_for(static_cast<std::uint16_t>(h)), 7u);
  }
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.base(), 1u);
}

TEST(MapTable, PowerOfTwoUsesPlainModulo) {
  MapTable t({10, 11, 12, 13});
  EXPECT_EQ(t.base(), 4u);
  for (std::uint32_t h = 0; h < 4096; ++h) {
    EXPECT_EQ(t.bucket_index(static_cast<std::uint16_t>(h)), h % 4);
  }
}

TEST(MapTable, PaperSplitFunction) {
  // b = 5, m = 4: h1 = k%4; bucket 0 has been split, so keys with h1 == 0
  // use h2 = k%8 (landing in 0 or 4); everything else stays at h1.
  MapTable t({0, 1, 2, 3});
  t.add_core(4);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.base(), 4u);
  for (std::uint32_t k = 0; k < 4096; ++k) {
    const auto h = static_cast<std::uint16_t>(k);
    const std::size_t idx = t.bucket_index(h);
    if (k % 4 == 0) {
      EXPECT_EQ(idx, k % 8) << "split bucket keys use h2";
      EXPECT_TRUE(idx == 0 || idx == 4);
    } else {
      EXPECT_EQ(idx, k % 4) << "unsplit bucket keys use h1";
    }
  }
}

TEST(MapTable, GrowOnlyDisturbsSplitBucket) {
  // THE incremental-hashing property (Sec. III-C): adding a core moves only
  // flows that previously hashed to the bucket being split.
  MapTable t({0, 1, 2, 3, 4, 5});
  std::map<std::uint16_t, std::size_t> before;
  for (std::uint32_t h = 0; h < 65536; ++h) {
    before[static_cast<std::uint16_t>(h)] =
        t.bucket_index(static_cast<std::uint16_t>(h));
  }
  const std::size_t split_bucket = t.size() - t.base();  // next to split
  t.add_core(6);
  for (const auto& [h, old_idx] : before) {
    const std::size_t new_idx = t.bucket_index(h);
    if (old_idx == split_bucket) {
      EXPECT_TRUE(new_idx == old_idx || new_idx == old_idx + t.base())
          << "hash " << h;
    } else {
      EXPECT_EQ(new_idx, old_idx) << "hash " << h;
    }
  }
}

TEST(MapTable, BaseDoublesWhenBucketsReachTwiceM) {
  MapTable t({0, 1});  // b=2, m=2
  EXPECT_EQ(t.base(), 2u);
  t.add_core(2);  // b=3, m=2
  EXPECT_EQ(t.base(), 2u);
  t.add_core(3);  // b=4 -> m doubles to 4 (paper: "h2 becomes CRC%4m")
  EXPECT_EQ(t.base(), 4u);
}

TEST(MapTable, IndexAlwaysInRange) {
  Rng rng(5);
  std::vector<CoreId> cores{0};
  MapTable t(cores);
  for (CoreId c = 1; c < 23; ++c) t.add_core(c);
  for (int i = 0; i < 65536; ++i) {
    ASSERT_LT(t.bucket_index(static_cast<std::uint16_t>(i)), t.size());
  }
}

TEST(MapTable, RemoveCoreShiftsOthers) {
  MapTable t({10, 20, 30, 40});
  EXPECT_TRUE(t.remove_core(20));
  EXPECT_EQ(t.buckets(), (std::vector<CoreId>{10, 30, 40}));
  EXPECT_EQ(t.base(), 2u);
  EXPECT_FALSE(t.contains(20));
}

TEST(MapTable, RemoveUnknownOrLastFails) {
  MapTable t({1, 2});
  EXPECT_FALSE(t.remove_core(99));
  EXPECT_TRUE(t.remove_core(1));
  EXPECT_FALSE(t.remove_core(2)) << "last bucket must stay";
  EXPECT_EQ(t.size(), 1u);
}

TEST(MapTable, GrowShrinkRoundTripRestoresMapping) {
  MapTable t({0, 1, 2, 3});
  std::map<std::uint16_t, CoreId> before;
  for (std::uint32_t h = 0; h < 65536; ++h) {
    before[static_cast<std::uint16_t>(h)] =
        t.core_for(static_cast<std::uint16_t>(h));
  }
  t.add_core(4);
  EXPECT_TRUE(t.remove_core(4));
  for (const auto& [h, core] : before) {
    EXPECT_EQ(t.core_for(h), core);
  }
}

TEST(MapTable, DisruptionFractionMatchesTheory) {
  // Growing b -> b+1 should rehash ~1/b of the key space (one bucket),
  // vs. a full `% b` remap which moves ~ (b-1)/b of keys. This quantifies
  // the paper's "minimal disruption" claim.
  MapTable t({0, 1, 2, 3, 4, 5, 6, 7});
  std::vector<std::size_t> before(65536);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    before[h] = t.bucket_index(static_cast<std::uint16_t>(h));
  }
  t.add_core(8);
  int moved = 0;
  for (std::uint32_t h = 0; h < 65536; ++h) {
    moved += before[h] != t.bucket_index(static_cast<std::uint16_t>(h));
  }
  // Half the split bucket moves: expected 65536/8/2 = 4096.
  EXPECT_NEAR(moved, 4096, 300);
}

// --------------------------------------------------------- MigrationTable ---

TEST(MigrationTable, RejectsZeroCapacity) {
  EXPECT_THROW(MigrationTable(0), std::invalid_argument);
}

TEST(MigrationTable, AddLookupErase) {
  MigrationTable t(4);
  EXPECT_FALSE(t.lookup(1).has_value());
  t.add(1, 5);
  EXPECT_EQ(t.lookup(1), 5u);
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_FALSE(t.lookup(1).has_value());
}

TEST(MigrationTable, FifoEvictionWhenFull) {
  MigrationTable t(2);
  t.add(1, 0);
  t.add(2, 0);
  t.add(3, 0);  // evicts 1
  EXPECT_FALSE(t.lookup(1).has_value());
  EXPECT_TRUE(t.lookup(2).has_value());
  EXPECT_TRUE(t.lookup(3).has_value());
  EXPECT_EQ(t.size(), 2u);
}

TEST(MigrationTable, RepinRefreshesAgeAndTarget) {
  MigrationTable t(2);
  t.add(1, 0);
  t.add(2, 0);
  t.add(1, 7);  // re-pin 1: now newest, target 7
  t.add(3, 0);  // evicts 2 (oldest), not 1
  EXPECT_EQ(t.lookup(1), 7u);
  EXPECT_FALSE(t.lookup(2).has_value());
}

TEST(MigrationTable, RemoveCoreEntries) {
  MigrationTable t(8);
  t.add(1, 3);
  t.add(2, 4);
  t.add(3, 3);
  EXPECT_EQ(t.remove_core_entries(3), 2u);
  EXPECT_FALSE(t.lookup(1).has_value());
  EXPECT_EQ(t.lookup(2), 4u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(MigrationTable, ClearEmpties) {
  MigrationTable t(4);
  t.add(1, 1);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.keys_in_order().empty());
}

// ---------------------------------------------------------- CoreAllocator ---

TEST(CoreAllocator, RejectsBadConstruction) {
  EXPECT_THROW(CoreAllocator(4, 0), std::invalid_argument);
  EXPECT_THROW(CoreAllocator(2, 4), std::invalid_argument);
  EXPECT_THROW(CoreAllocator(4, 2, 0), std::invalid_argument);
}

TEST(CoreAllocator, EvenInitialSplit) {
  CoreAllocator a(16, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(a.cores_of(s).size(), 4u) << "service " << s;
  }
  // Ownership is a partition.
  std::set<CoreId> all;
  for (std::size_t s = 0; s < 4; ++s) {
    for (CoreId c : a.cores_of(s)) {
      EXPECT_TRUE(all.insert(c).second);
      EXPECT_EQ(a.owner(c), s);
    }
  }
  EXPECT_EQ(all.size(), 16u);
}

TEST(CoreAllocator, UnevenSplitCoversAllCores) {
  CoreAllocator a(10, 4);
  std::size_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GE(a.cores_of(s).size(), 2u);
    total += a.cores_of(s).size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(CoreAllocator, GrantTakesLongestSurplus) {
  CoreAllocator a(8, 2);  // service 0: cores 0-3, service 1: cores 4-7
  a.mark_surplus(0, 100);
  a.mark_surplus(1, 50);  // marked earlier = surplus longer
  const auto granted = a.grant_core(1);
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, 1u);
  EXPECT_EQ(a.owner(1), 1u);
  EXPECT_EQ(a.cores_of(0).size(), 3u);
  EXPECT_EQ(a.cores_of(1).size(), 5u);
  EXPECT_EQ(a.transfers(), 1u);
}

TEST(CoreAllocator, GrantSkipsOwnSurplus) {
  CoreAllocator a(4, 2);
  a.mark_surplus(0, 10);  // owned by requesting service 0
  EXPECT_FALSE(a.grant_core(0).has_value());
  EXPECT_TRUE(a.is_surplus(0));
}

TEST(CoreAllocator, GrantRespectsMinCores) {
  CoreAllocator a(2, 2, /*min_cores=*/1);
  a.mark_surplus(1, 5);  // service 1's only core
  EXPECT_FALSE(a.grant_core(0).has_value())
      << "victim may not drop below min_cores";
}

TEST(CoreAllocator, UnmarkPreventsGrant) {
  CoreAllocator a(4, 2);
  a.mark_surplus(2, 5);
  a.unmark_surplus(2);
  EXPECT_FALSE(a.is_surplus(2));
  EXPECT_FALSE(a.grant_core(0).has_value());
}

TEST(CoreAllocator, MarkIsIdempotent) {
  CoreAllocator a(4, 2);
  a.mark_surplus(2, 5);
  a.mark_surplus(2, 999);  // keeps the original (earlier) timestamp
  EXPECT_EQ(a.surplus_count(), 1u);
  a.mark_surplus(3, 1);
  const auto granted = a.grant_core(0);
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, 3u) << "core 3 marked at t=1 is the longest surplus";
}

TEST(CoreAllocator, GrantClearsMark) {
  CoreAllocator a(4, 2);
  a.mark_surplus(2, 5);
  const auto granted = a.grant_core(0);
  ASSERT_TRUE(granted.has_value());
  EXPECT_FALSE(a.is_surplus(*granted));
}

TEST(CoreAllocator, OwnershipStaysPartitionUnderChurn) {
  CoreAllocator a(12, 3);
  Rng rng(9);
  for (int step = 0; step < 2000; ++step) {
    const CoreId c = static_cast<CoreId>(rng.below(12));
    switch (rng.below(3)) {
      case 0: a.mark_surplus(c, step); break;
      case 1: a.unmark_surplus(c); break;
      case 2: a.grant_core(rng.below(3)); break;
    }
    // Invariant: every core owned exactly once; every service >= 1 core.
    std::size_t total = 0;
    for (std::size_t s = 0; s < 3; ++s) {
      ASSERT_GE(a.cores_of(s).size(), 1u);
      total += a.cores_of(s).size();
      for (CoreId core : a.cores_of(s)) ASSERT_EQ(a.owner(core), s);
    }
    ASSERT_EQ(total, 12u);
  }
}

TEST(CoreAllocator, GrantDrainsSurplusPoolToExhaustion) {
  CoreAllocator a(8, 2);  // service 0: cores 0-3, service 1: cores 4-7
  a.mark_surplus(0, 10);
  a.mark_surplus(1, 20);
  a.mark_surplus(2, 30);
  std::vector<CoreId> granted;
  while (const auto core = a.grant_core(1)) granted.push_back(*core);
  EXPECT_EQ(granted, (std::vector<CoreId>{0, 1, 2}))
      << "grants follow surplus age until the pool is empty";
  EXPECT_EQ(a.surplus_count(), 0u);
  EXPECT_FALSE(a.grant_core(1).has_value());
  EXPECT_EQ(a.cores_of(0).size(), 1u);  // at min_cores now
}

TEST(CoreAllocator, UnmarkMidPoolSkipsThatCore) {
  CoreAllocator a(8, 2);
  a.mark_surplus(0, 10);
  a.mark_surplus(1, 20);
  a.mark_surplus(2, 30);
  a.unmark_surplus(1);  // owner touched it again: no longer a donor
  const auto first = a.grant_core(1);
  const auto second = a.grant_core(1);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(*second, 2u) << "core 1 was unmarked and must be skipped";
  EXPECT_EQ(a.owner(1), 0u);
}

TEST(CoreAllocator, OfflineCoresAreNeverGranted) {
  CoreAllocator a(8, 2);
  a.mark_surplus(0, 10);
  a.set_offline(0);
  EXPECT_TRUE(a.is_offline(0));
  EXPECT_FALSE(a.is_surplus(0)) << "failure clears the surplus mark";
  EXPECT_FALSE(a.grant_core(1).has_value());
  EXPECT_EQ(a.online_of(0), 3u);
  EXPECT_EQ(a.owner(0), 0u) << "ownership survives the outage";
  a.set_online(0);
  EXPECT_EQ(a.online_of(0), 4u);
  // Back online the core is grantable again once re-marked.
  a.mark_surplus(0, 50);
  const auto granted = a.grant_core(1);
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, 0u);
}

TEST(CoreAllocator, OfflineTransitionsAreIdempotent) {
  CoreAllocator a(4, 2);
  a.set_offline(3);
  a.set_offline(3);
  EXPECT_EQ(a.online_of(1), 1u);
  a.set_online(3);
  a.set_online(3);
  EXPECT_EQ(a.online_of(1), 2u);
}

TEST(CoreAllocator, GrantAnyTakesFromRichestDonorButNeverItsLastCore) {
  CoreAllocator a(8, 2);  // service 0: cores 0-3, service 1: cores 4-7
  // Kill all of service 0; service 1 is the only possible donor.
  for (CoreId c = 0; c < 4; ++c) a.set_offline(c);
  EXPECT_EQ(a.online_of(0), 0u);
  const std::uint64_t transfers_before = a.transfers();
  std::size_t granted = 0;
  while (const auto core = a.grant_any(0)) {
    EXPECT_EQ(a.owner(*core), 0u);
    EXPECT_FALSE(a.is_offline(*core));
    ++granted;
  }
  EXPECT_EQ(granted, 3u) << "the donor must keep one online core";
  EXPECT_EQ(a.online_of(1), 1u);
  EXPECT_EQ(a.online_of(0), 3u);
  EXPECT_EQ(a.transfers(), transfers_before + 3);
  EXPECT_FALSE(a.grant_any(0).has_value())
      << "no donor with two online cores remains";
}

// ------------------------------------------------------------------ LAPS ---

/// Hand-controlled NPU view for driving the scheduler directly.
class FakeView final : public NpuView {
 public:
  explicit FakeView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = 0;
  }
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

  TimeNs now_ = 0;
  std::vector<CoreView> cores_;
};

/// A packet of `service` whose tuple is distinct per flow id.
SimPacket make_packet(std::uint32_t flow, ServicePath service) {
  SimPacket pkt;
  pkt.tuple.src_ip = 0x0A000000u + flow;
  pkt.tuple.dst_ip = static_cast<std::uint32_t>(mix64(flow) >> 32) | 1u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1024 + flow % 60000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  pkt.gflow = flow;
  pkt.service = service;
  return pkt;
}

LapsConfig test_config(std::size_t services = 2) {
  LapsConfig cfg;
  cfg.num_services = services;
  cfg.high_thresh = 24;
  cfg.idle_th = from_us(100);
  cfg.afd.afc_entries = 4;
  cfg.afd.annex_entries = 32;
  cfg.afd.promote_threshold = 2;
  return cfg;
}

TEST(Laps, RejectsZeroServices) {
  LapsConfig cfg;
  cfg.num_services = 0;
  EXPECT_THROW(LapsScheduler{cfg}, std::invalid_argument);
}

TEST(Laps, RoutesWithinOwningService) {
  LapsScheduler laps(test_config(2));
  laps.attach(8);  // service 0: cores 0-3, service 1: cores 4-7
  FakeView view(8);
  for (std::uint32_t f = 0; f < 200; ++f) {
    const CoreId c0 = laps.schedule(make_packet(f, ServicePath::kVpnOut), view);
    EXPECT_LT(c0, 4u) << "service 0 packets stay on service 0 cores";
    const CoreId c1 =
        laps.schedule(make_packet(f + 1000, ServicePath::kIpForward), view);
    EXPECT_GE(c1, 4u);
  }
}

TEST(Laps, FlowAffinityIsStable) {
  LapsScheduler laps(test_config(1));
  laps.attach(4);
  FakeView view(4);
  std::map<std::uint32_t, CoreId> first;
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t f = 0; f < 100; ++f) {
      const CoreId c =
          laps.schedule(make_packet(f, ServicePath::kIpForward), view);
      const auto [it, inserted] = first.emplace(f, c);
      if (!inserted) {
        EXPECT_EQ(it->second, c) << "flow " << f;
      }
    }
  }
}

TEST(Laps, NonAggressiveFlowNotMigratedUnderImbalance) {
  LapsScheduler laps(test_config(1));
  laps.attach(4);
  FakeView view(4);
  const SimPacket pkt = make_packet(1, ServicePath::kIpForward);
  const CoreId home = laps.schedule(pkt, view);
  // Overload the home core; flow 1 is cold (1 AFD access), so no migration.
  view.cores_[home].queue_len = 32;
  const CoreId c = laps.schedule(pkt, view);
  EXPECT_EQ(c, home) << "cold flows ride out the imbalance";
}

TEST(Laps, AggressiveFlowMigratesToLeastLoaded) {
  LapsScheduler laps(test_config(1));
  laps.attach(4);
  FakeView view(4);
  const SimPacket pkt = make_packet(1, ServicePath::kIpForward);
  const CoreId home = laps.schedule(pkt, view);
  // Make the flow aggressive: enough accesses to pass annex -> AFC.
  for (int i = 0; i < 10; ++i) laps.schedule(pkt, view);
  ASSERT_TRUE(laps.afd().is_aggressive(pkt.flow_key()));

  view.cores_[home].queue_len = 30;  // overloaded
  CoreId expect_min = home == 2 ? 3 : 2;
  view.cores_[expect_min].queue_len = 0;
  for (CoreId c = 0; c < 4; ++c) {
    if (c != home && c != expect_min) view.cores_[c].queue_len = 10;
  }
  const CoreId migrated = laps.schedule(pkt, view);
  EXPECT_EQ(migrated, expect_min);
  // Listing 1: the AFC entry is invalidated after migration, and the pin
  // persists for subsequent packets.
  EXPECT_FALSE(laps.afd().is_aggressive(pkt.flow_key()));
  view.cores_[home].queue_len = 0;
  EXPECT_EQ(laps.schedule(pkt, view), expect_min)
      << "migration table overrides the hash path";
}

TEST(Laps, AllCoresOverloadedRequestsCore) {
  LapsScheduler laps(test_config(2));
  laps.attach(8);
  FakeView view(8);
  // Let service 1's cores idle long enough to be marked surplus.
  view.now_ = from_us(500);
  laps.schedule(make_packet(1, ServicePath::kVpnOut), view);  // marks 4-7
  // Now overload all of service 0's cores.
  for (CoreId c = 0; c < 4; ++c) {
    view.cores_[c].queue_len = 32;
    view.cores_[c].idle_since = -1;
  }
  const std::size_t before = laps.allocator().cores_of(0).size();
  laps.schedule(make_packet(2, ServicePath::kVpnOut), view);
  EXPECT_EQ(laps.allocator().cores_of(0).size(), before + 1)
      << "request_core() should steal a surplus core from service 1";
  EXPECT_EQ(laps.allocator().cores_of(1).size(), 3u);
  EXPECT_GT(laps.map_table(0).size(), before);
}

TEST(Laps, DispatchUnmarksSurplus) {
  LapsScheduler laps(test_config(2));
  laps.attach(8);
  FakeView view(8);
  view.now_ = from_us(500);  // all cores idle since 0 -> all marked
  const SimPacket pkt = make_packet(1, ServicePath::kVpnOut);
  const CoreId target = laps.schedule(pkt, view);
  EXPECT_FALSE(laps.allocator().is_surplus(target))
      << "the dispatched core must be reclaimed from the surplus list";
}

TEST(Laps, ServiceIndexWrapsModulo) {
  // Single-service config (the Fig. 9 setup): any ServicePath lands on
  // service 0 and every core is usable.
  LapsScheduler laps(test_config(1));
  laps.attach(4);
  FakeView view(4);
  const CoreId c = laps.schedule(make_packet(1, ServicePath::kVpnInScan), view);
  EXPECT_LT(c, 4u);
}

TEST(Laps, StalePinIsDropped) {
  LapsScheduler laps(test_config(2));
  laps.attach(8);
  FakeView view(8);
  // Build an aggressive flow on service 0 and migrate it to a pin. With
  // now_ == 0 no surplus marking can happen yet (idle_th not reached).
  const SimPacket pkt = make_packet(7, ServicePath::kVpnOut);
  const CoreId home = laps.schedule(pkt, view);
  for (int i = 0; i < 10; ++i) laps.schedule(pkt, view);
  view.cores_[home].queue_len = 30;
  const CoreId pinned = laps.schedule(pkt, view);
  ASSERT_NE(pinned, home);
  view.cores_[home].queue_len = 0;

  // Make the *pinned* core the only idle-marked one, then overload all of
  // service 1 so its next packet steals exactly that core.
  view.now_ = from_us(500);
  for (CoreId c = 0; c < 4; ++c) {
    if (c != pinned) view.cores_[c].idle_since = -1;
  }
  for (CoreId c = 4; c < 8; ++c) {
    view.cores_[c].queue_len = 32;
    view.cores_[c].idle_since = -1;
  }
  laps.schedule(make_packet(900, ServicePath::kIpForward), view);
  ASSERT_EQ(laps.allocator().owner(pinned), 1u)
      << "the surplus grant must take the pinned core";
  // The flow must fall back to its hash path, not follow the stolen core.
  const CoreId after = laps.schedule(pkt, view);
  EXPECT_EQ(laps.allocator().owner(after), 0u);
  EXPECT_NE(after, pinned);
}

TEST(Laps, ExtraStatsExposeCounters) {
  LapsScheduler laps(test_config(1));
  laps.attach(4);
  FakeView view(4);
  laps.schedule(make_packet(1, ServicePath::kIpForward), view);
  const auto stats = laps.extra_stats();
  EXPECT_TRUE(stats.count("aggressive_migrations"));
  EXPECT_TRUE(stats.count("core_requests"));
  EXPECT_TRUE(stats.count("core_transfers"));
  EXPECT_TRUE(stats.count("afd_promotions"));
}

TEST(Laps, MinCoresPreventsStarvation) {
  LapsConfig cfg = test_config(2);
  cfg.min_cores_per_service = 2;
  LapsScheduler laps(cfg);
  laps.attach(4);  // 2 cores each; nothing may be donated
  FakeView view(4);
  view.now_ = from_us(1000);
  laps.schedule(make_packet(1, ServicePath::kVpnOut), view);  // mark all idle
  for (CoreId c = 0; c < 2; ++c) {
    view.cores_[c].queue_len = 32;
    view.cores_[c].idle_since = -1;
  }
  laps.schedule(make_packet(2, ServicePath::kVpnOut), view);
  EXPECT_EQ(laps.allocator().cores_of(1).size(), 2u);
  EXPECT_GE(laps.extra_stats().at("core_requests_denied"), 1.0);
}

}  // namespace
}  // namespace laps
