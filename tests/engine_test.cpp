// Tests for the SimEngine kernel and the SimProbe observability layer:
// the golden determinism suite (engine vs seed Npu, byte-identical report
// JSON), RingQueue, probe dispatch ordering, ReplayStream equivalence, and
// regressions found during the refactor (EventHeap single-element pop
// self-move).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/engine.h"
#include "sim/event_heap.h"
#include "sim/probes.h"
#include "sim/report_json.h"
#include "sim/ring_queue.h"
#include "sim/runner.h"
#include "trace/synthetic.h"

namespace laps {
namespace {

// -------------------------------------------------------------- RingQueue ---

TEST(RingQueue, RejectsZeroCapacity) {
  EXPECT_THROW(RingQueue<int>(0), std::invalid_argument);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q(4);
  q.push_back(1);
  q.push_back(2);
  q.push_back(3);
  EXPECT_EQ(q.front(), 1);
  q.pop_front();
  EXPECT_EQ(q.front(), 2);
  q.pop_front();
  EXPECT_EQ(q.front(), 3);
  q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundManyTimes) {
  RingQueue<int> q(3);
  int next_in = 0;
  int next_out = 0;
  // Steady-state occupancy 2 over 100 operations: head and tail wrap the
  // 3-slot buffer dozens of times and FIFO order must survive every wrap.
  q.push_back(next_in++);
  q.push_back(next_in++);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
    q.push_back(next_in++);
    EXPECT_EQ(q.size(), 2u);
  }
}

TEST(RingQueue, FullAndEmptyBoundaries) {
  RingQueue<int> q(2);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.front(), std::logic_error);
  EXPECT_THROW(q.pop_front(), std::logic_error);
  q.push_back(1);
  q.push_back(2);
  EXPECT_TRUE(q.full());
  EXPECT_THROW(q.push_back(3), std::logic_error);
  q.pop_front();
  EXPECT_FALSE(q.full());
  q.push_back(3);
  EXPECT_EQ(q.front(), 2);
}

TEST(RingQueue, CapacityOne) {
  RingQueue<std::string> q(1);
  for (int i = 0; i < 5; ++i) {
    q.push_back("v" + std::to_string(i));
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.front(), "v" + std::to_string(i));
    q.pop_front();
    EXPECT_TRUE(q.empty());
  }
}

TEST(RingQueue, ClearResets) {
  RingQueue<int> q(3);
  q.push_back(1);
  q.push_back(2);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back(9);
  EXPECT_EQ(q.front(), 9);
}

// -------------------------------------------- EventHeap self-move (found) ---

// Popping the last element used to self-move-assign heap_.front() from
// heap_.back() (the same object); for payloads with non-trivial move
// assignment (e.g. std::string) that can clear the element being returned.
TEST(EventHeap, SingleElementPopSurvivesNonTrivialPayload) {
  struct Ev {
    TimeNs time;
    std::string payload;
  };
  EventHeap<Ev> heap;
  heap.push({5, std::string(64, 'x')});  // beyond any SSO buffer
  const Ev out = heap.pop();
  EXPECT_EQ(out.time, 5);
  EXPECT_EQ(out.payload, std::string(64, 'x'));
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, DrainToOneRepeatedly) {
  struct Ev {
    TimeNs time;
    std::string payload;
  };
  EventHeap<Ev> heap;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      heap.push({static_cast<TimeNs>(i), "p" + std::to_string(i)});
    }
    for (int i = 0; i < 4; ++i) {
      const Ev e = heap.pop();
      EXPECT_EQ(e.payload, "p" + std::to_string(i));
    }
    EXPECT_TRUE(heap.empty());
  }
}

// ----------------------------------------------- CoreView narrow contract ---

// The seed's CoreView carried a `last_service` field that schedulers were
// trusted not to read (the paper's schedulers cannot see I-cache contents).
// The refactor enforces that structurally: the field must not exist.
template <typename T>
concept ExposesLastService = requires(const T& v) { v.last_service; };
static_assert(!ExposesLastService<CoreView>,
              "CoreView must not expose simulator-private I-cache state");
static_assert(sizeof(CoreView) <= 16,
              "CoreView should stay a small observable tuple; simulator "
              "state belongs in SimEngine::CoreState");

// ----------------------------------------------------------- test helpers ---

class PinnedScheduler final : public Scheduler {
 public:
  explicit PinnedScheduler(CoreId core) : core_(core) {}
  void attach(std::size_t) override {}
  CoreId schedule(const SimPacket&, const NpuView&) override { return core_; }
  std::string name() const override { return "Pinned"; }

 private:
  CoreId core_;
};

ScenarioConfig golden_scenario(const std::string& trace, std::uint64_t seed,
                               double load_mpps, bool restore_order,
                               std::size_t flows = 4096) {
  ScenarioConfig cfg;
  cfg.name = "golden." + trace;
  cfg.num_cores = 4;
  cfg.queue_capacity = 8;
  cfg.seconds = 0.002;
  cfg.seed = seed;
  cfg.restore_order = restore_order;
  SyntheticTraceSpec spec;
  spec.name = trace;
  spec.num_flows = flows;
  spec.seed = seed * 31 + 7;
  if (trace == "churny") {
    spec.churn_per_packet = 0.01;
    spec.zipf_alpha = 1.2;
  }
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{load_mpps, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};
  return cfg;
}

std::unique_ptr<Scheduler> make_sched(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsScheduler>();
  if (name == "StaticHash") return std::make_unique<StaticHashScheduler>();
  if (name == "AFS") return std::make_unique<AfsScheduler>();
  LapsConfig cfg;
  cfg.num_services = 1;
  return std::make_unique<LapsScheduler>(cfg);
}

// ------------------------------------------------------------ golden suite ---

// The acceptance bar of the refactor: for every scenario x scheduler x seed
// cell, the engine-backed run_scenario and the retained seed kernel produce
// byte-identical SimReport JSON. Any divergence in event ordering, penalty
// charging, drop accounting, or double arithmetic shows up here.
TEST(GoldenDeterminism, EngineMatchesSeedNpuByteForByte) {
  const std::vector<std::string> traces = {"plain", "churny"};
  const std::vector<std::string> schedulers = {"FCFS", "StaticHash", "AFS",
                                               "LAPS"};
  const std::vector<std::uint64_t> seeds = {1, 42};
  for (const auto& trace : traces) {
    for (const auto& sched_name : schedulers) {
      for (std::uint64_t seed : seeds) {
        // 12 Mpps on 4 IP-forwarding cores (8 Mpps capacity) = sustained
        // overload: drops, deep queues, and load-balancing decisions all
        // exercised.
        const ScenarioConfig cfg =
            golden_scenario(trace, seed, 12.0, /*restore_order=*/false);
        auto s1 = make_sched(sched_name);
        auto s2 = make_sched(sched_name);
        const std::string engine_json =
            report_to_json(run_scenario(cfg, *s1));
        const std::string npu_json =
            report_to_json(run_scenario_reference(cfg, *s2));
        ASSERT_EQ(engine_json, npu_json)
            << "trace=" << trace << " scheduler=" << sched_name
            << " seed=" << seed;
      }
    }
  }
}

TEST(GoldenDeterminism, MatchesWithOrderRestoration) {
  for (std::uint64_t seed : {9ull, 77ull}) {
    const ScenarioConfig cfg =
        golden_scenario("plain", seed, 12.0, /*restore_order=*/true);
    auto s1 = make_sched("AFS");
    auto s2 = make_sched("AFS");
    ASSERT_EQ(report_to_json(run_scenario(cfg, *s1)),
              report_to_json(run_scenario_reference(cfg, *s2)))
        << "seed=" << seed;
  }
}

TEST(GoldenDeterminism, ReplayedTrafficMatchesOnlineGeneration) {
  const ScenarioConfig cfg = golden_scenario("plain", 5, 10.0, false);
  auto s1 = make_sched("AFS");
  const SimReport online = run_scenario(cfg, *s1);

  for (const ServiceTraffic& s : cfg.services) s.trace->reset();
  PacketGenerator gen(cfg.services, cfg.seed, cfg.seconds);
  ReplayStream replay = ReplayStream::record(gen);
  auto s2 = make_sched("AFS");
  SimEngineConfig ecfg;
  ecfg.num_cores = cfg.num_cores;
  ecfg.queue_capacity = cfg.queue_capacity;
  ecfg.delay = cfg.delay;
  ecfg.restore_order = cfg.restore_order;
  ReportProbe probe;
  SimEngine engine(ecfg, *s2, ProbeSet{&probe});
  engine.run(replay, cfg.name);

  EXPECT_EQ(report_to_json(online), report_to_json(probe.take_report()));
}

// -------------------------------------------------------------- probe layer ---

/// Records the hook sequence as a compact string for order assertions.
class SequenceProbe final : public SimProbe {
 public:
  void on_run_begin(const RunInfo&) override { log_ += "B"; }
  void on_arrival(TimeNs, const SimPacket&) override { log_ += "a"; }
  void on_drop(TimeNs, const SimPacket&, CoreId) override { log_ += "x"; }
  void on_dispatch(TimeNs, const SimPacket&, CoreId, bool) override {
    log_ += "d";
  }
  void on_service_start(TimeNs, const SimPacket&, CoreId, TimeNs, bool,
                        bool) override {
    log_ += "s";
  }
  void on_departure(TimeNs, const SimPacket&, CoreId, std::uint32_t) override {
    log_ += "c";
  }
  void on_epoch(TimeNs, std::span<const CoreView>) override { log_ += "e"; }
  void on_run_end(const RunEnd&) override { log_ += "E"; }

  const std::string& log() const { return log_; }

 private:
  std::string log_;
};

TEST(ProbeSet, IgnoresNullAndCapsCapacity) {
  ProbeSet set;
  set.add(nullptr);
  EXPECT_TRUE(set.empty());
  std::vector<SequenceProbe> probes(ProbeSet::kMaxProbes);
  for (auto& p : probes) set.add(&p);
  EXPECT_EQ(set.size(), ProbeSet::kMaxProbes);
  SequenceProbe extra;
  EXPECT_THROW(set.add(&extra), std::length_error);
}

TEST(SimProbe, LifecycleOrderPerPacket) {
  // One pinned core, light load: every packet must log arrival, dispatch,
  // service start, then completion, bracketed by run begin/end.
  const ScenarioConfig cfg = golden_scenario("plain", 3, 0.2, false, 16);
  PinnedScheduler sched(0);
  SequenceProbe seq;
  ProbeSet extra;
  extra.add(&seq);
  run_scenario(cfg, sched, extra);

  const std::string& log = seq.log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log.front(), 'B');
  EXPECT_EQ(log.back(), 'E');
  // Hooks fire in lifecycle order: no service start before a dispatch, no
  // completion before a service start.
  std::size_t dispatched = 0, started = 0, completed = 0;
  for (char c : log) {
    if (c == 'd') ++dispatched;
    if (c == 's') {
      ++started;
      ASSERT_LE(started, dispatched);
    }
    if (c == 'c') {
      ++completed;
      ASSERT_LE(completed, started);
    }
  }
  EXPECT_GT(dispatched, 0u);
  EXPECT_EQ(completed, started);
}

TEST(SimProbe, DropsAreObserved) {
  // Everything pinned to one slow core at high load: drops guaranteed.
  const ScenarioConfig cfg = golden_scenario("plain", 4, 10.0, false, 64);
  PinnedScheduler sched(0);
  SequenceProbe seq;
  ProbeSet extra;
  extra.add(&seq);
  const SimReport report = run_scenario(cfg, sched, extra);
  ASSERT_GT(report.dropped, 0u);
  const auto drops = static_cast<std::uint64_t>(
      std::count(seq.log().begin(), seq.log().end(), 'x'));
  EXPECT_EQ(drops, report.dropped);
}

TEST(SimProbe, EpochsFireAtFixedBoundaries) {
  const ScenarioConfig cfg = golden_scenario("plain", 6, 2.0, false, 64);
  PinnedScheduler sched(0);

  class EpochProbe final : public SimProbe {
   public:
    std::vector<TimeNs> times;
    void on_epoch(TimeNs now, std::span<const CoreView>) override {
      times.push_back(now);
    }
  } epochs;

  ProbeSet extra;
  extra.add(&epochs);
  const TimeNs window = from_us(100.0);
  run_scenario(cfg, sched, extra, window);
  // 2 ms horizon / 100 us window: epochs at 100us, 200us, ... strictly
  // increasing multiples of the window.
  ASSERT_GE(epochs.times.size(), 10u);
  for (std::size_t i = 0; i < epochs.times.size(); ++i) {
    EXPECT_EQ(epochs.times[i], static_cast<TimeNs>(i + 1) * window);
  }
}

TEST(SimProbe, EpochsDoNotAlterPhysics) {
  const ScenarioConfig cfg = golden_scenario("plain", 8, 12.0, false);
  auto s1 = make_sched("AFS");
  auto s2 = make_sched("AFS");
  SequenceProbe seq;  // any probe, to force the epoch-enabled path
  ProbeSet extra;
  extra.add(&seq);
  const SimReport with_epochs =
      run_scenario(cfg, *s1, extra, from_us(50.0));
  const SimReport without = run_scenario(cfg, *s2);
  EXPECT_EQ(report_to_json(with_epochs), report_to_json(without));
}

TEST(TimeSeriesProbe, ProducesWindowedSeries) {
  const ScenarioConfig cfg = golden_scenario("plain", 11, 8.0, false);
  auto sched = make_sched("AFS");
  TimeSeriesProbe series(from_us(100.0));
  ProbeSet extra;
  extra.add(&series);
  run_scenario(cfg, *sched, extra, from_us(100.0));
  const std::string json = series.to_json();
  EXPECT_NE(json.find("\"laps-bench-v1\""), std::string::npos);
  EXPECT_NE(json.find("qdepth_mean"), std::string::npos);
  // 2 ms at 100 us windows -> at least 20 rows.
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

TEST(ChromeTraceProbe, EmitsServiceSpans) {
  const ScenarioConfig cfg = golden_scenario("plain", 12, 2.0, false, 64);
  auto sched = make_sched("LAPS");
  ChromeTraceProbe trace;
  ProbeSet extra;
  extra.add(&trace);
  run_scenario(cfg, *sched, extra);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // service spans
}

// ------------------------------------------------------------- sched events ---

TEST(SchedEvents, LapsEmitsThroughSinkOnlyWhenObserved) {
  // Single service, 2 cores, sustained overload: LAPS migrates aggressive
  // flows, which must surface as on_sched_event callbacks.
  ScenarioConfig cfg = golden_scenario("plain", 13, 12.0, false, 256);

  class SchedEventProbe final : public SimProbe {
   public:
    std::vector<SchedEvent> events;
    void on_sched_event(TimeNs, const SchedEvent& e) override {
      events.push_back(e);
    }
  } probe;

  auto sched = make_sched("LAPS");
  ProbeSet extra;
  extra.add(&probe);
  const SimReport report = run_scenario(cfg, *sched, extra);
  const double migrations = report.extra.count("aggressive_migrations")
                                ? report.extra.at("aggressive_migrations")
                                : 0.0;
  const auto emitted = static_cast<double>(std::count_if(
      probe.events.begin(), probe.events.end(), [](const SchedEvent& e) {
        return e.kind == SchedEvent::Kind::kAggressiveMigration;
      }));
  EXPECT_EQ(emitted, migrations);
  // Attaching the sink must not have changed the simulated physics.
  auto sched2 = make_sched("LAPS");
  EXPECT_EQ(report_to_json(run_scenario(cfg, *sched2)),
            report_to_json(report));
}

TEST(SchedEvents, KindNamesAreStable) {
  EXPECT_STREQ(SchedEvent::kind_name(SchedEvent::Kind::kCoreGrant),
               "core_grant");
  EXPECT_STREQ(SchedEvent::kind_name(SchedEvent::Kind::kAfdPromotion),
               "afd_promotion");
  EXPECT_STREQ(SchedEvent::kind_name(SchedEvent::Kind::kPark), "park");
}

// ---------------------------------------------------------------- FlowBlock ---

TEST(FlowBlock, GrowPreservesStateAndDefaults) {
  FlowBlock flows;
  flows.ensure(0);
  flows.ingress_seq(0) = 41;
  flows.last_assigned_plus1(0) = 3;
  // Force several geometric growth steps.
  flows.ensure(100'000);
  EXPECT_EQ(flows.ingress_seq(0), 41u);
  EXPECT_EQ(flows.last_assigned_plus1(0), 3u);
  EXPECT_EQ(flows.ingress_seq(100'000), 0u);
  EXPECT_EQ(flows.egress_hi(100'000), 0u);
  EXPECT_EQ(flows.last_assigned_plus1(100'000), 0u);  // 0 = no previous core
  EXPECT_EQ(flows.last_proc_plus1(100'000), 0u);
}

}  // namespace
}  // namespace laps
