// Seeded fuzz harness for the completion queues: randomized push / pop /
// cancel interleavings, replayed identically through the TimingWheel, the
// EventHeap, and a deliberately-dumb sorted-vector reference model. Any
// divergence — ordering, top()/top_time() disagreement, size drift — fails
// with the offending seed in the message, so a failure reproduces exactly.
//
// Cancellation is exercised the way the engine does it (sim/fault.cpp's
// flush path): events carry a generation stamp, cancellation bumps the
// live generation, and stale events are discarded *after* popping. The
// queues never see a remove(); what the fuzzer checks is that lazily
// cancelled events still pop in exactly the same order from every
// implementation, so the caller-side discard loop behaves identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_heap.h"
#include "sim/timing_wheel.h"
#include "util/rng.h"

namespace laps {
namespace {

constexpr std::size_t kCores = 8;

struct Ev {
  TimeNs time = 0;
  int id = 0;
  std::uint32_t core = 0;
  std::uint32_t gen = 0;
};

/// One decoded fuzz action. A schedule is derived from a seed once and then
/// replayed against every implementation, so all of them see byte-identical
/// operation streams.
struct Op {
  enum Kind { kPush, kPop, kCancel, kDrain } kind = kPush;
  TimeNs delta = 0;         ///< kPush: offset from the current clock floor
  bool tie = false;         ///< kPush: reuse the previous push time exactly
  std::uint32_t core = 0;   ///< kPush/kCancel: generation stream
};

/// Mixes tie-heavy short hops with rare huge jumps so schedules exercise
/// level-0 FIFO lists, mid-level slots, and multi-level cascades alike.
TimeNs random_delta(Rng& rng) {
  switch (rng.below(4)) {
    case 0: return static_cast<TimeNs>(rng.below(4));           // dense ties
    case 1: return static_cast<TimeNs>(rng.below(256));         // level 0-1
    case 2: return static_cast<TimeNs>(rng.below(1 << 20));     // mid levels
    default: return static_cast<TimeNs>(rng.below(1ull << 40)); // far future
  }
}

std::vector<Op> make_schedule(std::uint64_t seed, std::size_t length) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    Op op;
    const std::uint64_t roll = rng.below(100);
    if (roll < 55) {
      op.kind = Op::kPush;
      op.delta = random_delta(rng);
      op.tie = rng.chance(0.25);
      op.core = static_cast<std::uint32_t>(rng.below(kCores));
    } else if (roll < 90) {
      op.kind = Op::kPop;
    } else if (roll < 98) {
      op.kind = Op::kCancel;
      op.core = static_cast<std::uint32_t>(rng.below(kCores));
    } else {
      op.kind = Op::kDrain;  // pop to empty: exercises the empty-origin path
    }
    ops.push_back(op);
  }
  return ops;
}

/// The oracle: a sorted vector ordered by (time, insertion sequence).
/// O(n) insertion — unapologetically slow and obviously correct.
class ReferenceModel {
 public:
  void push(const Ev& e, std::uint64_t seq) {
    const Entry entry{e, seq};
    auto at = std::upper_bound(entries_.begin(), entries_.end(), entry,
                               [](const Entry& a, const Entry& b) {
                                 if (a.ev.time != b.ev.time) {
                                   return a.ev.time < b.ev.time;
                                 }
                                 return a.seq < b.seq;
                               });
    entries_.insert(at, entry);
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  TimeNs top_time() const { return entries_.front().ev.time; }
  Ev pop() {
    const Ev out = entries_.front().ev;
    entries_.erase(entries_.begin());
    return out;
  }

 private:
  struct Entry {
    Ev ev;
    std::uint64_t seq;
  };
  std::vector<Entry> entries_;
};

/// The full pop record of one run: every popped event, including the ones
/// the caller then discards as cancelled (marked), so implementations must
/// agree on the raw order, not just the surviving one.
struct PoppedEv {
  TimeNs time;
  int id;
  bool cancelled;
  bool operator==(const PoppedEv&) const = default;
};

template <typename Queue>
std::vector<PoppedEv> run_schedule(const std::vector<Op>& ops,
                                   const std::string& label) {
  Queue queue;
  ReferenceModel model;
  std::vector<PoppedEv> log;
  std::vector<std::uint32_t> live_gen(kCores, 0);
  std::uint64_t seq = 0;
  TimeNs clock = 0;       // floor for new pushes: the last popped time
  TimeNs last_push = 0;
  int next_id = 0;

  auto pop_one = [&] {
    EXPECT_EQ(queue.top_time(), model.top_time()) << label;
    const Ev got = queue.pop();
    const Ev want = model.pop();
    ASSERT_EQ(got.time, want.time) << label << " at pop " << log.size();
    ASSERT_EQ(got.id, want.id) << label << " at pop " << log.size();
    clock = got.time;
    log.push_back(
        PoppedEv{got.time, got.id, got.gen != live_gen[got.core]});
  };

  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush: {
        const TimeNs t = op.tie && last_push >= clock
                             ? last_push
                             : clock + op.delta;
        last_push = t;
        const Ev e{t, next_id++, op.core, live_gen[op.core]};
        queue.push(e);
        model.push(e, seq++);
        break;
      }
      case Op::kPop: {
        if (model.empty()) break;
        pop_one();
        break;
      }
      case Op::kCancel:
        // Lazy cancellation: everything this core has in flight goes
        // stale; the events themselves stay queued.
        ++live_gen[op.core];
        break;
      case Op::kDrain: {
        while (!model.empty()) pop_one();
        break;
      }
    }
    EXPECT_EQ(queue.size(), model.size()) << label;
    EXPECT_EQ(queue.empty(), model.empty()) << label;
  }
  while (!model.empty()) pop_one();
  EXPECT_TRUE(queue.empty()) << label;
  return log;
}

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, WheelAndHeapMatchTheReferenceModel) {
  const std::uint64_t seed = GetParam();
  const std::vector<Op> ops = make_schedule(seed, 4000);
  const auto wheel_log = run_schedule<TimingWheel<Ev>>(
      ops, "wheel/seed=" + std::to_string(seed));
  const auto heap_log =
      run_schedule<EventHeap<Ev>>(ops, "heap/seed=" + std::to_string(seed));
  // Each run already diffed against the model op by op; this final check
  // pins the two implementations to each other, cancelled pops included.
  EXPECT_EQ(wheel_log, heap_log) << "seed " << seed;
  EXPECT_FALSE(wheel_log.empty()) << "degenerate schedule, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeededSchedules, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           20130806, 0xDEADBEEF, 0xC0FFEE),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace laps
