// Unit tests for the two completion-queue implementations: the hierarchical
// TimingWheel (the default) and the binary EventHeap (the differential
// oracle). Both must implement the identical (time, insertion-sequence)
// ordering contract; the scenario-level differential grid lives in
// property_test.cpp, the randomized operation fuzz in event_queue_fuzz.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_heap.h"
#include "sim/timing_wheel.h"
#include "util/rng.h"

namespace laps {
namespace {

/// Minimal event payload: a time plus an identity so tests can distinguish
/// same-tick events (the FIFO invariant is about identities, not times).
struct Ev {
  TimeNs time = 0;
  int id = 0;
};

using PopLog = std::vector<std::pair<TimeNs, int>>;

template <typename Queue>
PopLog drain(Queue& q) {
  PopLog log;
  while (!q.empty()) {
    const Ev e = q.pop();
    log.emplace_back(e.time, e.id);
  }
  return log;
}

// ------------------------------------------------------- ordering basics ---

TEST(TimingWheel, PopsInTimeOrder) {
  TimingWheel<Ev> wheel;
  const std::vector<TimeNs> times = {907, 3, 64, 65, 4096, 12, 63,
                                     4095, 128, 1, 0, 262144, 70};
  int id = 0;
  for (TimeNs t : times) wheel.push(Ev{t, id++});
  std::vector<TimeNs> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  const PopLog log = drain(wheel);
  ASSERT_EQ(log.size(), times.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(log[i].first, sorted[i]) << "position " << i;
  }
}

// Two events at the same tick pop in the order they were pushed — the FIFO
// invariant both queues must share for runs to be bit-identical.
TEST(TimingWheel, FifoAmongSameTickEvents) {
  TimingWheel<Ev> wheel;
  for (int i = 0; i < 8; ++i) wheel.push(Ev{100, i});
  wheel.push(Ev{50, 100});
  for (int i = 8; i < 16; ++i) wheel.push(Ev{100, i});
  const PopLog log = drain(wheel);
  ASSERT_EQ(log.size(), 17u);
  EXPECT_EQ(log[0], (std::pair<TimeNs, int>{50, 100}));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i) + 1],
              (std::pair<TimeNs, int>{100, i}));
  }
}

TEST(EventHeap, FifoAmongSameTickEvents) {
  EventHeap<Ev> heap;
  // Enough colliding timestamps to force sift_up/sift_down tie handling,
  // interleaved across two ticks so parent/child comparisons see equal
  // times: a naive (time-only) heap would reorder these.
  for (int i = 0; i < 32; ++i) heap.push(Ev{i % 2 == 0 ? 10 : 20, i});
  const PopLog log = drain(heap);
  ASSERT_EQ(log.size(), 32u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)],
              (std::pair<TimeNs, int>{10, 2 * i}))
        << "tick 10, position " << i;
    EXPECT_EQ(log[static_cast<std::size_t>(i) + 16],
              (std::pair<TimeNs, int>{20, 2 * i + 1}))
        << "tick 20, position " << i;
  }
}

// ------------------------------------------------------ peek is a no-op ---

TEST(TimingWheel, TopDoesNotAdvanceTheWheel) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{4016, 1});
  EXPECT_EQ(wheel.top_time(), 4016);
  EXPECT_EQ(wheel.top().id, 1);
  // The SimEngine peeks the next completion, then an arrival earlier than
  // it starts service on an idle core and schedules *before* the peeked
  // minimum. A peek that committed the wheel position would reject this.
  wheel.push(Ev{1144, 2});
  EXPECT_EQ(wheel.top_time(), 1144);
  EXPECT_EQ(wheel.top().id, 2);
  EXPECT_EQ(wheel.pop().id, 2);
  EXPECT_EQ(wheel.pop().id, 1);
}

// Regression for the first-push origin bug: pushing onto an *empty* wheel
// must not move the origin forward to the pushed time, because the caller's
// clock may still be far behind it (first completion of a run, second idle
// core starting service at an earlier arrival).
TEST(TimingWheel, EmptyPushDoesNotJumpOriginForward) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{4016, 1});           // empty push, far ahead of the origin
  EXPECT_NO_THROW(wheel.push(Ev{1144, 2}));  // earlier, still legal
  EXPECT_EQ(wheel.pop().id, 2);
  EXPECT_EQ(wheel.pop().id, 1);
}

TEST(TimingWheel, EmptyPushMovesOriginBackward) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{1000, 1});
  EXPECT_EQ(wheel.pop().id, 1);  // wheel position now 1000
  // Empty again: an earlier push is accepted (the origin moves back)...
  wheel.push(Ev{10, 2});
  // ...and constrains later pushes as usual.
  wheel.push(Ev{5000, 3});
  EXPECT_EQ(wheel.pop().id, 2);
  EXPECT_EQ(wheel.pop().id, 3);
}

// --------------------------------------------------------- error contract ---

TEST(TimingWheel, RejectsPushIntoThePast) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{100, 1});
  wheel.push(Ev{200, 2});
  EXPECT_EQ(wheel.pop().time, 100);  // wheel position commits to 100
  EXPECT_THROW(wheel.push(Ev{99, 3}), std::logic_error);
  EXPECT_THROW(wheel.push(Ev{-1, 4}), std::logic_error);
  EXPECT_EQ(wheel.pop().time, 200);  // the queue survives rejected pushes
}

TEST(TimingWheel, ThrowsOnEmptyAccess) {
  TimingWheel<Ev> wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_THROW(wheel.pop(), std::logic_error);
  EXPECT_THROW(wheel.top(), std::logic_error);
  EXPECT_THROW(wheel.top_time(), std::logic_error);
}

// ------------------------------------------------------ cascade mechanics ---

// Slot-boundary times around every power-of-64 edge: these are the inputs
// where a naive delta-based wheel mis-files events (revolution aliasing).
TEST(TimingWheel, SlotBoundaryTimesStaySorted) {
  const std::vector<TimeNs> boundaries = {
      0,    1,    62,   63,   64,   65,   127,  128,    4094,  4095,
      4096, 4097, 8191, 8192, 8193, 4160, 4161, 262143, 262144, 262145};
  TimingWheel<Ev> wheel;
  int id = 0;
  for (TimeNs t : boundaries) wheel.push(Ev{t, id++});
  std::vector<TimeNs> sorted = boundaries;
  std::sort(sorted.begin(), sorted.end());
  const PopLog log = drain(wheel);
  ASSERT_EQ(log.size(), boundaries.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(log[i].first, sorted[i]) << "position " << i;
  }
}

// The case the XOR placement exists for: an event one slot-span short of a
// full level-1 revolution from the wheel position must not share a level-1
// slot with the current position's own slot index.
TEST(TimingWheel, NoRevolutionAliasing) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{100, 0});
  wheel.push(Ev{101, 1});
  EXPECT_EQ(wheel.pop().id, 0);  // wheel position 100 (level-1 digit 1)
  // 4170 = 65*64 + 10: level-1 digit 1 == the current digit 1 under naive
  // delta placement, but its true level-1 digit is 65 & 63 = 1 only by
  // coincidence of wrap. With digit-difference placement it files at
  // level 2 (digit 1 of 4170/4096 differs) — and must pop after 101 and
  // after everything in between.
  wheel.push(Ev{4170, 2});
  wheel.push(Ev{120, 3});
  EXPECT_EQ(wheel.pop().id, 1);
  EXPECT_EQ(wheel.pop().id, 3);
  EXPECT_EQ(wheel.pop().id, 2);
}

// Cascading is lazy: a short far slot is popped by direct unlink (no
// redistribution at all), but once the wheel position advances *into* a
// multi-tick slot's span, the slot's remaining events must cascade down so
// the cross-level order stays exact.
TEST(TimingWheel, StaleSlotsActuallyCascade) {
  TimingWheel<Ev> wheel;
  wheel.push(Ev{1, 0});
  wheel.push(Ev{70'000, 1});  // same level-2 slot as 70'001 vs origin 0
  wheel.push(Ev{70'001, 2});
  EXPECT_EQ(wheel.pop().id, 0);
  // Popping 70'000 moves the position into the level-2 slot still holding
  // 70'001; the next locate must redistribute it (level-2 digit of the
  // position now equals the slot index — the strict level order would
  // otherwise be wrong).
  EXPECT_EQ(wheel.pop().id, 1);
  EXPECT_EQ(wheel.pop().id, 2);
  EXPECT_GT(wheel.cascades(), 0u);
}

// A same-tick group bigger than the scan limit cascades (twice: level 2 to
// 1 to 0) instead of being rescanned in place, and must still pop FIFO.
TEST(TimingWheel, CascadePreservesFifoWithinATick) {
  TimingWheel<Ev> wheel;
  static_assert(10 > TimingWheel<Ev>::kCascadeScanLimit,
                "group must exceed the scan limit to force the cascade path");
  // All at the same far-away tick, pushed in id order from origin 0: they
  // land in one level-2 slot, then cascade together.
  for (int i = 0; i < 10; ++i) wheel.push(Ev{70'000, i});
  wheel.push(Ev{5, 100});
  EXPECT_EQ(wheel.pop().id, 100);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(wheel.pop().id, i) << "cascaded FIFO position " << i;
  }
  EXPECT_GT(wheel.cascades(), 1u);
}

// ------------------------------------------------------------ clear/reuse ---

// clear() must reset the insertion sequence as well as the storage: a
// cleared queue replays a schedule bit-identically to a fresh one.
template <typename Queue>
PopLog replay_schedule(Queue& q) {
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    q.push(Ev{static_cast<TimeNs>(rng.below(32)), i});  // dense tie field
  }
  return drain(q);
}

TEST(TimingWheel, ClearResetsToFreshState) {
  TimingWheel<Ev> wheel;
  const PopLog fresh = replay_schedule(wheel);
  wheel.push(Ev{999, -1});  // leave residue, then wipe it
  wheel.clear();
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.cascades(), 0u);
  const PopLog replay = replay_schedule(wheel);
  EXPECT_EQ(fresh, replay);
}

TEST(EventHeap, ClearResetsToFreshState) {
  EventHeap<Ev> heap;
  const PopLog fresh = replay_schedule(heap);
  heap.push(Ev{999, -1});
  heap.clear();
  EXPECT_TRUE(heap.empty());
  const PopLog replay = replay_schedule(heap);
  EXPECT_EQ(fresh, replay);
}

// ----------------------------------------------------------- flag parsing ---

TEST(EventQueueKindTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(event_queue_kind_name(EventQueueKind::kWheel), "wheel");
  EXPECT_STREQ(event_queue_kind_name(EventQueueKind::kHeap), "heap");
  EXPECT_EQ(parse_event_queue_kind("wheel"), EventQueueKind::kWheel);
  EXPECT_EQ(parse_event_queue_kind("heap"), EventQueueKind::kHeap);
  EXPECT_THROW(parse_event_queue_kind("calendar"), std::invalid_argument);
  EXPECT_THROW(parse_event_queue_kind(""), std::invalid_argument);
}

// ------------------------------------------- wheel vs heap, dense random ---

// Quick structural differential (the scenario-level one is in
// property_test.cpp): identical randomized push/pop interleavings produce
// identical pop logs. Deliberately tie-heavy.
TEST(EventQueueDifferentialUnit, WheelMatchesHeapOnTieHeavySequences) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 20130806ull}) {
    TimingWheel<Ev> wheel;
    EventHeap<Ev> heap;
    PopLog wheel_log;
    PopLog heap_log;
    Rng rng(seed);
    TimeNs clock = 0;  // last popped time: the floor for legal pushes
    int id = 0;
    for (int op = 0; op < 2000; ++op) {
      if (wheel.empty() || rng.chance(0.6)) {
        const TimeNs t = clock + static_cast<TimeNs>(rng.below(8));
        wheel.push(Ev{t, id});
        heap.push(Ev{t, id});
        ++id;
      } else {
        EXPECT_EQ(wheel.top_time(), heap.top_time());
        const Ev w = wheel.pop();
        const Ev h = heap.pop();
        clock = w.time;
        wheel_log.emplace_back(w.time, w.id);
        heap_log.emplace_back(h.time, h.id);
      }
    }
    while (!wheel.empty()) {
      const Ev w = wheel.pop();
      const Ev h = heap.pop();
      wheel_log.emplace_back(w.time, w.id);
      heap_log.emplace_back(h.time, h.id);
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_EQ(wheel_log, heap_log) << "seed " << seed;
  }
}

}  // namespace
}  // namespace laps
